//! Frequency statistics for categorical columns: counts, heavy hitters,
//! `RelFreq(k)` (the paper's heterogeneous-frequencies metric), and entropy.

use foresight_data::CategoricalColumn;

/// A frequency table over a categorical column, sorted most-frequent first.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyTable {
    /// `(label, count)` pairs, descending by count (ties broken by label).
    pub entries: Vec<(String, u64)>,
    /// Total present (non-missing) count.
    pub total: u64,
}

impl FrequencyTable {
    /// Builds the table from a categorical column.
    pub fn from_column(col: &CategoricalColumn) -> Self {
        let mut counts = vec![0u64; col.cardinality()];
        let mut total = 0u64;
        for code in col.present_codes() {
            counts[code as usize] += 1;
            total += 1;
        }
        let mut entries: Vec<(String, u64)> = col
            .labels()
            .iter()
            .cloned()
            .zip(counts)
            .filter(|(_, c)| *c > 0)
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Self { entries, total }
    }

    /// Builds a table from discrete numeric values (the paper allows the
    /// heterogeneous-frequency insight on "discrete numerical" columns too).
    pub fn from_numeric(values: &[f64]) -> Self {
        let mut map: std::collections::BTreeMap<String, u64> = Default::default();
        let mut total = 0u64;
        for &v in values {
            if !v.is_nan() {
                *map.entry(format!("{v}")).or_insert(0) += 1;
                total += 1;
            }
        }
        let mut entries: Vec<(String, u64)> = map.into_iter().collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Self { entries, total }
    }

    /// Number of distinct observed values.
    pub fn cardinality(&self) -> usize {
        self.entries.len()
    }

    /// The paper's `RelFreq(k, c)`: total relative frequency of the `k` most
    /// frequent values. High values ⇒ a few heavy hitters dominate.
    pub fn rel_freq(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let top: u64 = self.entries.iter().take(k).map(|(_, c)| c).sum();
        top as f64 / self.total as f64
    }

    /// Shannon entropy (nats) of the empirical distribution.
    pub fn entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        self.entries
            .iter()
            .map(|(_, c)| {
                let p = *c as f64 / n;
                -p * p.ln()
            })
            .sum()
    }

    /// Entropy normalized by `ln(cardinality)` ∈ [0, 1]; 1 = uniform.
    /// `1 − normalized_entropy` is the concentration insight metric.
    pub fn normalized_entropy(&self) -> f64 {
        let card = self.cardinality();
        if card <= 1 {
            return if card == 1 { 0.0 } else { f64::NAN };
        }
        self.entropy() / (card as f64).ln()
    }

    /// The `k` most frequent `(label, count)` pairs.
    pub fn top_k(&self, k: usize) -> &[(String, u64)] {
        &self.entries[..k.min(self.entries.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(values: &[&str]) -> CategoricalColumn {
        CategoricalColumn::from_strings(values.iter().copied())
    }

    #[test]
    fn counts_sorted_descending() {
        let t = FrequencyTable::from_column(&col(&["a", "b", "a", "c", "a", "b"]));
        assert_eq!(t.total, 6);
        assert_eq!(t.entries[0], ("a".into(), 3));
        assert_eq!(t.entries[1], ("b".into(), 2));
        assert_eq!(t.entries[2], ("c".into(), 1));
    }

    #[test]
    fn rel_freq_matches_paper_definition() {
        let t = FrequencyTable::from_column(&col(&["a", "b", "a", "c", "a", "b"]));
        assert!((t.rel_freq(1) - 0.5).abs() < 1e-12);
        assert!((t.rel_freq(2) - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(t.rel_freq(99), 1.0);
        assert_eq!(t.rel_freq(0), 0.0);
    }

    #[test]
    fn entropy_uniform_vs_concentrated() {
        let uniform = FrequencyTable::from_column(&col(&["a", "b", "c", "d"]));
        assert!((uniform.entropy() - (4.0f64).ln()).abs() < 1e-12);
        assert!((uniform.normalized_entropy() - 1.0).abs() < 1e-12);
        let conc = FrequencyTable::from_column(&col(&["a", "a", "a", "a", "a", "b"]));
        assert!(conc.normalized_entropy() < 0.7);
    }

    #[test]
    fn missing_excluded() {
        let t = FrequencyTable::from_column(&col(&["a", "", "a", ""]));
        assert_eq!(t.total, 2);
        assert_eq!(t.cardinality(), 1);
        assert_eq!(t.normalized_entropy(), 0.0);
    }

    #[test]
    fn numeric_discretization() {
        let t = FrequencyTable::from_numeric(&[1.0, 2.0, 1.0, f64::NAN, 1.0]);
        assert_eq!(t.total, 4);
        assert_eq!(t.entries[0], ("1".into(), 3));
    }

    #[test]
    fn empty_table_degenerate() {
        let t = FrequencyTable::from_column(&CategoricalColumn::default());
        assert_eq!(t.total, 0);
        assert_eq!(t.rel_freq(3), 0.0);
        assert_eq!(t.entropy(), 0.0);
        assert!(t.normalized_entropy().is_nan());
    }

    #[test]
    fn tie_break_is_deterministic() {
        let t = FrequencyTable::from_column(&col(&["b", "a"]));
        assert_eq!(t.entries[0].0, "a");
    }
}
