//! Gaussian kernel density estimation with Silverman's bandwidth rule.
//! Used by the density visualization and by KDE-based mode counting.

use crate::moments::Moments;
use crate::quantile;

/// A Gaussian KDE over a numeric sample.
#[derive(Debug, Clone)]
pub struct Kde {
    data: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Fits a KDE with Silverman's rule-of-thumb bandwidth
    /// `0.9·min(σ, IQR/1.34)·n^{−1/5}`. NaNs are skipped.
    ///
    /// Returns `None` for empty input or zero spread.
    pub fn fit(values: &[f64]) -> Option<Self> {
        let data: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if data.is_empty() {
            return None;
        }
        let m = Moments::from_slice(&data);
        let sd = m.population_std();
        let iqr = quantile::iqr(&data).unwrap_or(0.0);
        let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
        if spread <= 0.0 {
            return None;
        }
        let bandwidth = 0.9 * spread * (data.len() as f64).powf(-0.2);
        Some(Self { data, bandwidth })
    }

    /// Fits with an explicit bandwidth (> 0).
    pub fn with_bandwidth(values: &[f64], bandwidth: f64) -> Option<Self> {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        let data: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if data.is_empty() {
            return None;
        }
        Some(Self { data, bandwidth })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h * self.data.len() as f64);
        self.data
            .iter()
            .map(|&xi| (-0.5 * ((x - xi) / h).powi(2)).exp())
            .sum::<f64>()
            * norm
    }

    /// Density evaluated on a uniform grid of `points` spanning the data
    /// range padded by 3 bandwidths. Returns `(xs, densities)`.
    pub fn grid(&self, points: usize) -> (Vec<f64>, Vec<f64>) {
        let min = self.data.iter().copied().fold(f64::INFINITY, f64::min) - 3.0 * self.bandwidth;
        let max =
            self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 3.0 * self.bandwidth;
        let step = (max - min) / (points.max(2) - 1) as f64;
        let xs: Vec<f64> = (0..points).map(|i| min + i as f64 * step).collect();
        let ds = xs.iter().map(|&x| self.density(x)).collect();
        (xs, ds)
    }

    /// Counts local maxima of the KDE on a grid, ignoring peaks whose height
    /// is below `min_height_frac` of the tallest peak. A robust mode counter.
    pub fn count_modes(&self, grid_points: usize, min_height_frac: f64) -> usize {
        let (_, ds) = self.grid(grid_points);
        let peak = ds.iter().copied().fold(0.0f64, f64::max);
        if peak <= 0.0 {
            return 0;
        }
        let mut modes = 0;
        for i in 1..ds.len().saturating_sub(1) {
            if ds[i] > ds[i - 1] && ds[i] >= ds[i + 1] && ds[i] >= min_height_frac * peak {
                modes += 1;
            }
        }
        modes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::datasets::dist::normal_quantile;

    fn normal_sample(n: usize) -> Vec<f64> {
        (1..n)
            .map(|i| normal_quantile(i as f64 / n as f64))
            .collect()
    }

    #[test]
    fn density_integrates_to_one() {
        let kde = Kde::fit(&normal_sample(500)).unwrap();
        let (xs, ds) = kde.grid(400);
        let step = xs[1] - xs[0];
        let integral: f64 = ds.iter().map(|d| d * step).sum();
        assert!((integral - 1.0).abs() < 0.01, "integral {integral}");
    }

    #[test]
    fn normal_has_one_mode() {
        let kde = Kde::fit(&normal_sample(1000)).unwrap();
        assert_eq!(kde.count_modes(256, 0.1), 1);
    }

    #[test]
    fn separated_mixture_has_two_modes() {
        let mut data = normal_sample(400);
        data.extend(normal_sample(400).iter().map(|v| v + 8.0));
        let kde = Kde::fit(&data).unwrap();
        assert_eq!(kde.count_modes(512, 0.1), 2);
    }

    #[test]
    fn density_peaks_at_data_mass() {
        let kde = Kde::fit(&normal_sample(500)).unwrap();
        assert!(kde.density(0.0) > kde.density(2.5));
        assert!(kde.density(0.0) > kde.density(-2.5));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(Kde::fit(&[]).is_none());
        assert!(Kde::fit(&[f64::NAN]).is_none());
        assert!(Kde::fit(&[1.0, 1.0, 1.0]).is_none());
        assert!(Kde::with_bandwidth(&[1.0, 1.0], 0.5).is_some());
    }

    #[test]
    fn explicit_bandwidth_respected() {
        let kde = Kde::with_bandwidth(&[0.0, 10.0], 1.0).unwrap();
        assert_eq!(kde.bandwidth(), 1.0);
        // with narrow bandwidth the two points are separate modes
        assert_eq!(kde.count_modes(512, 0.1), 2);
    }
}
