//! Normality measures — backing the scenario's "has a Normal distribution"
//! observation (§4.1). The ranking metric is the Jarque–Bera statistic
//! (smaller = more normal); a normality *score* in (0, 1] is derived for
//! ranking "most normal first".

use crate::moments::Moments;

/// The Jarque–Bera test statistic `n/6·(γ₁² + (κ−3)²/4)`.
///
/// Asymptotically χ²(2) under normality. Returns `NaN` for fewer than 8
/// observations or zero variance (too little information to judge shape).
pub fn jarque_bera(values: &[f64]) -> f64 {
    let m = Moments::from_slice(values);
    jarque_bera_from_moments(&m)
}

/// Jarque–Bera from a precomputed (possibly merged/sketched) moment summary.
pub fn jarque_bera_from_moments(m: &Moments) -> f64 {
    let n = m.count();
    if n < 8 {
        return f64::NAN;
    }
    let skew = m.skewness();
    let kurt = m.kurtosis();
    if !skew.is_finite() || !kurt.is_finite() {
        return f64::NAN;
    }
    n as f64 / 6.0 * (skew * skew + (kurt - 3.0) * (kurt - 3.0) / 4.0)
}

/// χ²(2) upper-tail probability: `P(X > x) = exp(−x/2)`.
/// The asymptotic p-value of the Jarque–Bera test.
pub fn chi2_2_sf(x: f64) -> f64 {
    if x < 0.0 {
        1.0
    } else {
        (-x / 2.0).exp()
    }
}

/// Normality score in [0, 1]: the asymptotic JB p-value. 1 ⇒ perfectly
/// consistent with normality, → 0 for strong departures. Used to rank the
/// normality insight class "most normal first".
pub fn normality_score(values: &[f64]) -> f64 {
    let jb = jarque_bera(values);
    if jb.is_nan() {
        return f64::NAN;
    }
    chi2_2_sf(jb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::datasets::dist::normal_quantile;

    fn normal_sample(n: usize) -> Vec<f64> {
        (1..n)
            .map(|i| normal_quantile(i as f64 / n as f64))
            .collect()
    }

    #[test]
    fn normal_sample_scores_high() {
        let score = normality_score(&normal_sample(2000));
        assert!(score > 0.5, "score {score}");
    }

    #[test]
    fn skewed_sample_scores_low() {
        let skewed: Vec<f64> = normal_sample(2000).iter().map(|z| z.exp()).collect();
        let score = normality_score(&skewed);
        assert!(score < 1e-6, "score {score}");
    }

    #[test]
    fn heavy_tailed_sample_scores_low() {
        let heavy: Vec<f64> = normal_sample(2000)
            .iter()
            .map(|z| 0.3 * (z / 0.3).sinh())
            .collect();
        assert!(normality_score(&heavy) < 1e-3);
    }

    #[test]
    fn jb_zero_for_exact_normal_shape() {
        // a sample with skew=0 and kurt=3 exactly would give JB=0; our
        // quantile-constructed sample is extremely close
        let jb = jarque_bera(&normal_sample(5000));
        assert!(jb < 1.0, "jb {jb}");
    }

    #[test]
    fn small_or_degenerate_samples_nan() {
        assert!(jarque_bera(&[1.0, 2.0, 3.0]).is_nan());
        assert!(jarque_bera(&[5.0; 20]).is_nan());
        assert!(normality_score(&[]).is_nan());
    }

    #[test]
    fn sf_monotone() {
        assert_eq!(chi2_2_sf(0.0), 1.0);
        assert!(chi2_2_sf(1.0) > chi2_2_sf(5.0));
        assert_eq!(chi2_2_sf(-1.0), 1.0);
    }

    #[test]
    fn moments_and_slice_paths_agree() {
        let data = normal_sample(500);
        let m = Moments::from_slice(&data);
        assert_eq!(jarque_bera(&data), jarque_bera_from_moments(&m));
    }
}
