//! Bivariate association measures: Pearson's ρ, Spearman's ρ, Kendall's τ-b.
//!
//! Pearson is the paper's primary linear-relationship metric (§2.2 item 6);
//! Spearman is the alternative ranking metric the §4.1 scenario switches to;
//! Kendall rounds out the monotonic-relationship insight class.

use crate::rank::{fractional_ranks, tie_group_sizes};

/// Pairwise-complete filter: returns the rows where both columns are present.
fn complete_pairs(x: &[f64], y: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut xs = Vec::with_capacity(x.len());
    let mut ys = Vec::with_capacity(y.len());
    for (&a, &b) in x.iter().zip(y) {
        if !a.is_nan() && !b.is_nan() {
            xs.push(a);
            ys.push(b);
        }
    }
    (xs, ys)
}

/// Pearson product-moment correlation coefficient.
///
/// `ρ(x,y) = Σ(xᵢ−μx)(yᵢ−μy) / (n·σx·σy)`. Missing values are excluded
/// pairwise. Returns `NaN` for fewer than 2 complete pairs or zero variance.
///
/// # Examples
/// ```
/// use foresight_stats::correlation::pearson;
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "columns must have equal length");
    let (xs, ys) = complete_pairs(x, y);
    pearson_complete(&xs, &ys)
}

/// Pearson on data already known to be NaN-free.
pub fn pearson_complete(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    if n < 2 {
        return f64::NAN;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

/// Spearman rank correlation: Pearson on fractional ranks. Captures any
/// monotonic (not just linear) relationship; missing values excluded pairwise.
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "columns must have equal length");
    let (xs, ys) = complete_pairs(x, y);
    if xs.len() < 2 {
        return f64::NAN;
    }
    let rx = fractional_ranks(&xs);
    let ry = fractional_ranks(&ys);
    pearson_complete(&rx, &ry)
}

/// Kendall's τ-b with tie correction.
///
/// O(n²) pair counting — fine for the column lengths Foresight visualizes;
/// for ranking at scale the Spearman metric (O(n log n)) is preferred.
pub fn kendall_tau_b(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "columns must have equal length");
    let (xs, ys) = complete_pairs(x, y);
    let n = xs.len();
    if n < 2 {
        return f64::NAN;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = xs[i] - xs[j];
            let dy = ys[i] - ys[j];
            let s = dx * dy;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as f64;
    let t1: f64 = tie_group_sizes(&xs)
        .iter()
        .map(|&t| (t * (t - 1) / 2) as f64)
        .sum();
    let t2: f64 = tie_group_sizes(&ys)
        .iter()
        .map(|&t| (t * (t - 1) / 2) as f64)
        .sum();
    let denom = ((n0 - t1) * (n0 - t2)).sqrt();
    if denom == 0.0 {
        return f64::NAN;
    }
    (concordant - discordant) as f64 / denom
}

/// A column preprocessed for repeated Pearson computations: values centered
/// on their mean, with the sum of squared deviations precomputed.
///
/// Centering is the expensive, column-local part of Pearson's ρ. When one
/// column participates in many pairs (the all-pairs enumeration behind the
/// Figure 2 heatmap and the linear-relationship carousel), materializing the
/// centered values once turns each pair into a single fused dot-product pass
/// instead of three passes plus two allocations.
///
/// [`pearson_centered`] over two `CenteredColumn`s is **bit-identical** to
/// [`pearson_complete`] over the raw columns: the deviations `xᵢ−μx` are the
/// same values, and every accumulator sums the same terms in the same order.
#[derive(Debug, Clone)]
pub struct CenteredColumn {
    /// `xᵢ − μx` for every row, in row order.
    pub centered: Vec<f64>,
    /// `Σ (xᵢ − μx)²`, accumulated in row order.
    pub sxx: f64,
}

/// Centers a column for repeated [`pearson_centered`] calls.
///
/// Returns `None` when the column contains missing values (pairwise deletion
/// makes the mean pair-dependent, so centering cannot be shared — callers
/// fall back to [`pearson`]) or has fewer than 2 rows.
pub fn center(x: &[f64]) -> Option<CenteredColumn> {
    let n = x.len();
    if n < 2 || x.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let centered: Vec<f64> = x.iter().map(|&a| a - mx).collect();
    let mut sxx = 0.0;
    for &dx in &centered {
        sxx += dx * dx;
    }
    Some(CenteredColumn { centered, sxx })
}

/// Pearson's ρ over two pre-centered columns — one fused pass per pair.
///
/// Bit-identical to [`pearson_complete`] on the raw columns (see
/// [`CenteredColumn`]). Returns `NaN` on zero variance.
pub fn pearson_centered(x: &CenteredColumn, y: &CenteredColumn) -> f64 {
    assert_eq!(
        x.centered.len(),
        y.centered.len(),
        "columns must have equal length"
    );
    let mut sxy = 0.0;
    for (&dx, &dy) in x.centered.iter().zip(&y.centered) {
        sxy += dx * dy;
    }
    if x.sxx <= 0.0 || y.sxx <= 0.0 {
        return f64::NAN;
    }
    sxy / (x.sxx * y.sxx).sqrt()
}

/// All pairwise Pearson correlations among `columns`, returned as a dense
/// symmetric matrix with unit diagonal — the data behind the paper's
/// Figure 2 overview heatmap. O(d²·n).
pub fn pearson_matrix(columns: &[&[f64]]) -> Vec<Vec<f64>> {
    let d = columns.len();
    let mut m = vec![vec![0.0; d]; d];
    for i in 0..d {
        m[i][i] = 1.0;
        for j in (i + 1)..d {
            let rho = pearson(columns[i], columns[j]);
            m[i][j] = rho;
            m[j][i] = rho;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| -3.0 * v + 7.0).collect();
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y) + 1.0).abs() < 1e-12);
        assert!((kendall_tau_b(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_nonlinear_separates_metrics() {
        let x: Vec<f64> = (1..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.powi(5)).collect();
        // Spearman sees a perfect monotone relationship
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        // Pearson is dragged below 1 by the curvature
        assert!(pearson(&x, &y) < 0.9);
    }

    #[test]
    fn independence_is_near_zero() {
        // x alternates fast; y is slowly increasing — essentially uncorrelated
        let x: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let y: Vec<f64> = (0..200).map(|i| i as f64).collect();
        assert!(pearson(&x, &y).abs() < 0.05);
    }

    #[test]
    fn missing_values_pairwise_deleted() {
        let x = [1.0, 2.0, f64::NAN, 4.0, 5.0];
        let y = [2.0, 4.0, 100.0, 8.0, f64::NAN];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(pearson(&[1.0], &[2.0]).is_nan());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_nan()); // zero variance
        assert!(spearman(&[], &[]).is_nan());
        assert!(kendall_tau_b(&[3.0, 3.0], &[1.0, 1.0]).is_nan());
    }

    #[test]
    fn kendall_with_ties_matches_known_value() {
        // hand-checkable example
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 3.0, 2.0, 4.0];
        // pairs: (1,2):c (1,2):c (1,3):c (2,2): tie x (2,3):c (2,3):c → C=5,D=0
        // t1 = 1 pair tied in x, t2 = 0
        let n0 = 6.0f64;
        let expected = 5.0 / ((n0 - 1.0) * n0).sqrt();
        assert!((kendall_tau_b(&x, &y) - expected).abs() < 1e-12);
    }

    #[test]
    fn matrix_symmetric_unit_diagonal() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|v| v * v).collect();
        let c: Vec<f64> = a.iter().map(|v| -v).collect();
        let m = pearson_matrix(&[&a, &b, &c]);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(*v, m[j][i]);
            }
        }
        assert!((m[0][2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn centered_is_bit_identical_to_complete() {
        // awkward magnitudes so any reassociation of the float ops would show
        let x: Vec<f64> = (0..257)
            .map(|i| (i as f64).sin() * 1e7 + (i as f64).sqrt())
            .collect();
        let y: Vec<f64> = (0..257)
            .map(|i| ((i * i) as f64).cos() * 3.5e-3 + i as f64)
            .collect();
        let cx = center(&x).unwrap();
        let cy = center(&y).unwrap();
        let fused = pearson_centered(&cx, &cy);
        let reference = pearson_complete(&x, &y);
        assert_eq!(fused.to_bits(), reference.to_bits());
    }

    #[test]
    fn center_rejects_missing_and_short_columns() {
        assert!(center(&[1.0, f64::NAN, 3.0]).is_none());
        assert!(center(&[1.0]).is_none());
        assert!(center(&[]).is_none());
    }

    #[test]
    fn centered_degenerate_variance_is_nan() {
        let flat = center(&[2.0, 2.0, 2.0]).unwrap();
        let live = center(&[1.0, 2.0, 3.0]).unwrap();
        assert!(pearson_centered(&flat, &live).is_nan());
    }

    #[test]
    fn spearman_invariant_under_monotone_transform() {
        let x = [3.0, 1.0, 4.0, 1.5, 5.0, 9.0, 2.6];
        let y = [2.0f64, 7.0, 1.0, 8.0, 2.0, 8.0, 3.0];
        let y_t: Vec<f64> = y.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y) - spearman(&x, &y_t)).abs() < 1e-12);
    }
}
