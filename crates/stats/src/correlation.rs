//! Bivariate association measures: Pearson's ρ, Spearman's ρ, Kendall's τ-b.
//!
//! Pearson is the paper's primary linear-relationship metric (§2.2 item 6);
//! Spearman is the alternative ranking metric the §4.1 scenario switches to;
//! Kendall rounds out the monotonic-relationship insight class.
//!
//! # Hot-path structure
//!
//! The covariance passes run on the lane-split kernels in [`crate::kernel`]
//! (scalar fallback behind the same entry points), and pairwise-complete
//! missing-value deletion is allocation-free on the batch paths: callers
//! that score many pairs hold one [`PairScratch`] plus one
//! [`PresenceMask`] per column ([`foresight_data::column::NumericColumn::presence`])
//! and compact each pair into the reused buffers with
//! [`complete_pairs_masked_into`]. The allocating [`pearson`] /
//! [`spearman`] / [`kendall_tau_b`] forms stay as the convenient
//! one-shot API.

use crate::kernel;
use crate::rank::{fractional_ranks, tie_group_sizes};
use foresight_data::PresenceMask;

/// Reusable compaction buffers for pairwise-complete deletion — one pair of
/// `Vec<f64>` that every scored pair overwrites instead of allocating.
#[derive(Debug, Default, Clone)]
pub struct PairScratch {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl PairScratch {
    /// An empty scratch; buffers grow to the longest column seen.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Pairwise-complete filter into caller-provided scratch: fills
/// `scratch` with the rows where both columns are present and returns the
/// compacted pair of slices. The element test is `is_nan` per row; when
/// presence masks for the columns are already at hand,
/// [`complete_pairs_masked_into`] skips even that.
pub fn complete_pairs_into<'s>(
    x: &[f64],
    y: &[f64],
    scratch: &'s mut PairScratch,
) -> (&'s [f64], &'s [f64]) {
    scratch.xs.clear();
    scratch.ys.clear();
    scratch.xs.reserve(x.len());
    scratch.ys.reserve(y.len());
    for (&a, &b) in x.iter().zip(y) {
        if !a.is_nan() && !b.is_nan() {
            scratch.xs.push(a);
            scratch.ys.push(b);
        }
    }
    (&scratch.xs, &scratch.ys)
}

/// Pairwise-complete filter driven by precomputed [`PresenceMask`]s: the
/// masks are ANDed word-by-word and only the set bits are gathered, so the
/// per-pair cost is branch-light and the per-column `is_nan` sweep happens
/// once per column (at mask build time) instead of once per pair.
///
/// Produces exactly the rows (in row order) that [`complete_pairs_into`]
/// would — the downstream statistics are bit-identical.
pub fn complete_pairs_masked_into<'s>(
    x: &[f64],
    y: &[f64],
    x_mask: &PresenceMask,
    y_mask: &PresenceMask,
    scratch: &'s mut PairScratch,
) -> (&'s [f64], &'s [f64]) {
    debug_assert_eq!(x.len(), x_mask.len());
    debug_assert_eq!(y.len(), y_mask.len());
    scratch.xs.clear();
    scratch.ys.clear();
    scratch.xs.reserve(x.len());
    scratch.ys.reserve(y.len());
    for (w, (&wx, &wy)) in x_mask.words().iter().zip(y_mask.words()).enumerate() {
        let mut bits = wx & wy;
        while bits != 0 {
            let row = w * 64 + bits.trailing_zeros() as usize;
            scratch.xs.push(x[row]);
            scratch.ys.push(y[row]);
            bits &= bits - 1;
        }
    }
    (&scratch.xs, &scratch.ys)
}

/// Pairwise-complete filter, allocating form — a convenience wrapper over
/// [`complete_pairs_into`] for one-shot callers and doc examples. Repeated
/// pair scoring should hold a [`PairScratch`] instead.
///
/// # Examples
/// ```
/// use foresight_stats::correlation::complete_pairs;
/// let (xs, ys) = complete_pairs(&[1.0, f64::NAN, 3.0], &[2.0, 5.0, f64::NAN]);
/// assert_eq!((xs, ys), (vec![1.0], vec![2.0]));
/// ```
pub fn complete_pairs(x: &[f64], y: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut scratch = PairScratch::new();
    complete_pairs_into(x, y, &mut scratch);
    (scratch.xs, scratch.ys)
}

/// Pearson product-moment correlation coefficient.
///
/// `ρ(x,y) = Σ(xᵢ−μx)(yᵢ−μy) / (n·σx·σy)`. Missing values are excluded
/// pairwise. Returns `NaN` for fewer than 2 complete pairs or zero variance.
///
/// # Examples
/// ```
/// use foresight_stats::correlation::pearson;
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let mut scratch = PairScratch::new();
    pearson_with(x, y, &mut scratch)
}

/// [`pearson`] with caller-provided compaction scratch (no allocation once
/// the scratch has grown to the column length).
pub fn pearson_with(x: &[f64], y: &[f64], scratch: &mut PairScratch) -> f64 {
    assert_eq!(x.len(), y.len(), "columns must have equal length");
    let (xs, ys) = complete_pairs_into(x, y, scratch);
    pearson_complete(xs, ys)
}

/// [`pearson`] with precomputed presence masks *and* caller scratch — the
/// form the all-pairs layers use so each column is NaN-scanned once.
pub fn pearson_masked(
    x: &[f64],
    y: &[f64],
    x_mask: &PresenceMask,
    y_mask: &PresenceMask,
    scratch: &mut PairScratch,
) -> f64 {
    assert_eq!(x.len(), y.len(), "columns must have equal length");
    if x_mask.all_present() && y_mask.all_present() {
        return pearson_complete(x, y);
    }
    let (xs, ys) = complete_pairs_masked_into(x, y, x_mask, y_mask, scratch);
    pearson_complete(xs, ys)
}

/// Pearson on data already known to be NaN-free.
///
/// Runs on the lane-split kernels ([`crate::kernel`]); the scalar oracle is
/// [`pearson_complete_scalar`]. Within one kernel mode the result is
/// bit-identical to [`pearson_centered`] over the same (pre-centered)
/// columns.
pub fn pearson_complete(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    if n < 2 {
        return f64::NAN;
    }
    let nf = n as f64;
    let mx = kernel::sum(x) / nf;
    let my = kernel::sum(y) / nf;
    let (sxy, sxx, syy) = kernel::dot3_centered(x, y, mx, my);
    if sxx <= 0.0 || syy <= 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

/// The sequential reference implementation of [`pearson_complete`], kept as
/// the property-test oracle and benchmark baseline.
pub fn pearson_complete_scalar(x: &[f64], y: &[f64]) -> f64 {
    kernel::with_mode(kernel::KernelMode::Scalar, || pearson_complete(x, y))
}

/// Spearman rank correlation: Pearson on fractional ranks. Captures any
/// monotonic (not just linear) relationship; missing values excluded pairwise.
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    let mut scratch = PairScratch::new();
    spearman_with(x, y, &mut scratch)
}

/// [`spearman`] with caller-provided compaction scratch.
pub fn spearman_with(x: &[f64], y: &[f64], scratch: &mut PairScratch) -> f64 {
    assert_eq!(x.len(), y.len(), "columns must have equal length");
    let (xs, ys) = complete_pairs_into(x, y, scratch);
    spearman_complete(xs, ys)
}

/// [`spearman`] with precomputed presence masks and caller scratch.
pub fn spearman_masked(
    x: &[f64],
    y: &[f64],
    x_mask: &PresenceMask,
    y_mask: &PresenceMask,
    scratch: &mut PairScratch,
) -> f64 {
    assert_eq!(x.len(), y.len(), "columns must have equal length");
    if x_mask.all_present() && y_mask.all_present() {
        return spearman_complete(x, y);
    }
    let (xs, ys) = complete_pairs_masked_into(x, y, x_mask, y_mask, scratch);
    spearman_complete(xs, ys)
}

fn spearman_complete(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let rx = fractional_ranks(xs);
    let ry = fractional_ranks(ys);
    pearson_complete(&rx, &ry)
}

/// Kendall's τ-b with tie correction.
///
/// O(n²) pair counting — fine for the column lengths Foresight visualizes;
/// for ranking at scale the Spearman metric (O(n log n)) is preferred.
pub fn kendall_tau_b(x: &[f64], y: &[f64]) -> f64 {
    let mut scratch = PairScratch::new();
    kendall_tau_b_with(x, y, &mut scratch)
}

/// [`kendall_tau_b`] with caller-provided compaction scratch.
pub fn kendall_tau_b_with(x: &[f64], y: &[f64], scratch: &mut PairScratch) -> f64 {
    assert_eq!(x.len(), y.len(), "columns must have equal length");
    let (xs, ys) = complete_pairs_into(x, y, scratch);
    let n = xs.len();
    if n < 2 {
        return f64::NAN;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = xs[i] - xs[j];
            let dy = ys[i] - ys[j];
            let s = dx * dy;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as f64;
    let t1: f64 = tie_group_sizes(xs)
        .iter()
        .map(|&t| (t * (t - 1) / 2) as f64)
        .sum();
    let t2: f64 = tie_group_sizes(ys)
        .iter()
        .map(|&t| (t * (t - 1) / 2) as f64)
        .sum();
    let denom = ((n0 - t1) * (n0 - t2)).sqrt();
    if denom == 0.0 {
        return f64::NAN;
    }
    (concordant - discordant) as f64 / denom
}

/// A column preprocessed for repeated Pearson computations: values centered
/// on their mean, with the sum of squared deviations precomputed.
///
/// Centering is the expensive, column-local part of Pearson's ρ. When one
/// column participates in many pairs (the all-pairs enumeration behind the
/// Figure 2 heatmap and the linear-relationship carousel), materializing the
/// centered values once turns each pair into a single fused dot-product pass
/// instead of three passes plus two allocations.
///
/// [`pearson_centered`] over two `CenteredColumn`s is **bit-identical** to
/// [`pearson_complete`] over the raw columns: the deviations `xᵢ−μx` are the
/// same values, and every accumulator sums the same terms on the same lane
/// schedule (see [`crate::kernel`]). The contract holds within one kernel
/// mode — both calls on one thread, which is how the batch scorers run.
#[derive(Debug, Clone)]
pub struct CenteredColumn {
    /// `xᵢ − μx` for every row, in row order.
    pub centered: Vec<f64>,
    /// `Σ (xᵢ − μx)²`, accumulated on the kernel lane schedule.
    pub sxx: f64,
}

/// Centers a column for repeated [`pearson_centered`] calls.
///
/// Returns `None` when the column contains missing values (pairwise deletion
/// makes the mean pair-dependent, so centering cannot be shared — callers
/// fall back to [`pearson`]) or has fewer than 2 rows.
pub fn center(x: &[f64]) -> Option<CenteredColumn> {
    let n = x.len();
    if n < 2 || x.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mx = kernel::sum(x) / n as f64;
    let centered: Vec<f64> = x.iter().map(|&a| a - mx).collect();
    let sxx = kernel::dot(&centered, &centered);
    Some(CenteredColumn { centered, sxx })
}

/// Pearson's ρ over two pre-centered columns — one fused pass per pair.
///
/// Bit-identical to [`pearson_complete`] on the raw columns (see
/// [`CenteredColumn`]). Returns `NaN` on zero variance.
pub fn pearson_centered(x: &CenteredColumn, y: &CenteredColumn) -> f64 {
    assert_eq!(
        x.centered.len(),
        y.centered.len(),
        "columns must have equal length"
    );
    let sxy = kernel::dot(&x.centered, &y.centered);
    if x.sxx <= 0.0 || y.sxx <= 0.0 {
        return f64::NAN;
    }
    sxy / (x.sxx * y.sxx).sqrt()
}

/// All pairwise Pearson correlations among `columns`, returned as a dense
/// symmetric matrix with unit diagonal — the data behind the paper's
/// Figure 2 overview heatmap. O(d²·n), with one presence mask per column
/// and one shared compaction scratch across all O(d²) pairs.
pub fn pearson_matrix(columns: &[&[f64]]) -> Vec<Vec<f64>> {
    let d = columns.len();
    let masks: Vec<PresenceMask> = columns
        .iter()
        .map(|c| PresenceMask::from_values(c))
        .collect();
    let mut scratch = PairScratch::new();
    let mut m = vec![vec![0.0; d]; d];
    for i in 0..d {
        m[i][i] = 1.0;
        for j in (i + 1)..d {
            let rho = pearson_masked(columns[i], columns[j], &masks[i], &masks[j], &mut scratch);
            m[i][j] = rho;
            m[j][i] = rho;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| -3.0 * v + 7.0).collect();
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y) + 1.0).abs() < 1e-12);
        assert!((kendall_tau_b(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_nonlinear_separates_metrics() {
        let x: Vec<f64> = (1..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.powi(5)).collect();
        // Spearman sees a perfect monotone relationship
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        // Pearson is dragged below 1 by the curvature
        assert!(pearson(&x, &y) < 0.9);
    }

    #[test]
    fn independence_is_near_zero() {
        // x alternates fast; y is slowly increasing — essentially uncorrelated
        let x: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let y: Vec<f64> = (0..200).map(|i| i as f64).collect();
        assert!(pearson(&x, &y).abs() < 0.05);
    }

    #[test]
    fn missing_values_pairwise_deleted() {
        let x = [1.0, 2.0, f64::NAN, 4.0, 5.0];
        let y = [2.0, 4.0, 100.0, 8.0, f64::NAN];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(pearson(&[1.0], &[2.0]).is_nan());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_nan()); // zero variance
        assert!(spearman(&[], &[]).is_nan());
        assert!(kendall_tau_b(&[3.0, 3.0], &[1.0, 1.0]).is_nan());
    }

    #[test]
    fn kendall_with_ties_matches_known_value() {
        // hand-checkable example
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 3.0, 2.0, 4.0];
        // pairs: (1,2):c (1,2):c (1,3):c (2,2): tie x (2,3):c (2,3):c → C=5,D=0
        // t1 = 1 pair tied in x, t2 = 0
        let n0 = 6.0f64;
        let expected = 5.0 / ((n0 - 1.0) * n0).sqrt();
        assert!((kendall_tau_b(&x, &y) - expected).abs() < 1e-12);
    }

    #[test]
    fn matrix_symmetric_unit_diagonal() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|v| v * v).collect();
        let c: Vec<f64> = a.iter().map(|v| -v).collect();
        let m = pearson_matrix(&[&a, &b, &c]);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(*v, m[j][i]);
            }
        }
        assert!((m[0][2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn centered_is_bit_identical_to_complete() {
        // awkward magnitudes so any reassociation of the float ops would show
        let x: Vec<f64> = (0..257)
            .map(|i| (i as f64).sin() * 1e7 + (i as f64).sqrt())
            .collect();
        let y: Vec<f64> = (0..257)
            .map(|i| ((i * i) as f64).cos() * 3.5e-3 + i as f64)
            .collect();
        let cx = center(&x).unwrap();
        let cy = center(&y).unwrap();
        let fused = pearson_centered(&cx, &cy);
        let reference = pearson_complete(&x, &y);
        assert_eq!(fused.to_bits(), reference.to_bits());
    }

    #[test]
    fn centered_bit_identity_holds_in_scalar_mode_too() {
        crate::kernel::with_mode(crate::kernel::KernelMode::Scalar, || {
            let x: Vec<f64> = (0..131)
                .map(|i| (i as f64).sin() * 1e7 + (i as f64).sqrt())
                .collect();
            let y: Vec<f64> = (0..131).map(|i| (i as f64 * 0.3).cos() * 42.0).collect();
            let cx = center(&x).unwrap();
            let cy = center(&y).unwrap();
            assert_eq!(
                pearson_centered(&cx, &cy).to_bits(),
                pearson_complete(&x, &y).to_bits()
            );
        });
    }

    #[test]
    fn scratch_and_masked_paths_match_allocating_path_bitwise() {
        let x: Vec<f64> = (0..300)
            .map(|i| {
                if i % 11 == 0 {
                    f64::NAN
                } else {
                    (i as f64).sin() * 1e4
                }
            })
            .collect();
        let y: Vec<f64> = (0..300)
            .map(|i| {
                if i % 17 == 3 {
                    f64::NAN
                } else {
                    (i as f64).cos() * 2.5
                }
            })
            .collect();
        let reference = pearson(&x, &y);
        let mut scratch = PairScratch::new();
        assert_eq!(
            pearson_with(&x, &y, &mut scratch).to_bits(),
            reference.to_bits()
        );
        let mx = PresenceMask::from_values(&x);
        let my = PresenceMask::from_values(&y);
        assert_eq!(
            pearson_masked(&x, &y, &mx, &my, &mut scratch).to_bits(),
            reference.to_bits()
        );
        assert_eq!(
            spearman_masked(&x, &y, &mx, &my, &mut scratch).to_bits(),
            spearman(&x, &y).to_bits()
        );
        assert_eq!(
            kendall_tau_b_with(&x, &y, &mut scratch).to_bits(),
            kendall_tau_b(&x, &y).to_bits()
        );
    }

    #[test]
    fn center_rejects_missing_and_short_columns() {
        assert!(center(&[1.0, f64::NAN, 3.0]).is_none());
        assert!(center(&[1.0]).is_none());
        assert!(center(&[]).is_none());
    }

    #[test]
    fn centered_degenerate_variance_is_nan() {
        let flat = center(&[2.0, 2.0, 2.0]).unwrap();
        let live = center(&[1.0, 2.0, 3.0]).unwrap();
        assert!(pearson_centered(&flat, &live).is_nan());
    }

    #[test]
    fn spearman_invariant_under_monotone_transform() {
        let x = [3.0, 1.0, 4.0, 1.5, 5.0, 9.0, 2.6];
        let y = [2.0f64, 7.0, 1.0, 8.0, 2.0, 8.0, 3.0];
        let y_t: Vec<f64> = y.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y) - spearman(&x, &y_t)).abs() < 1e-12);
    }
}
