//! Exact quantiles and order statistics (the ground truth that quantile
//! sketches are measured against).

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `values` by linear interpolation
/// between order statistics (type-7, the R/NumPy default). NaNs are skipped.
///
/// # Examples
/// ```
/// use foresight_stats::quantile::quantile;
/// let v = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&v, 0.5), Some(2.5));
/// assert_eq!(quantile(&v, 0.0), Some(1.0));
/// assert_eq!(quantile(&v, 1.0), Some(4.0));
/// ```
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("nan filtered"));
    Some(quantile_sorted(&sorted, q))
}

/// Quantile of an already-sorted, NaN-free slice (type-7 interpolation).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Several quantiles in one sort.
pub fn quantiles(values: &[f64], qs: &[f64]) -> Option<Vec<f64>> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("nan filtered"));
    Some(qs.iter().map(|&q| quantile_sorted(&sorted, q)).collect())
}

/// Median shorthand.
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// Interquartile range `Q3 − Q1`.
pub fn iqr(values: &[f64]) -> Option<f64> {
    let qs = quantiles(values, &[0.25, 0.75])?;
    Some(qs[1] - qs[0])
}

/// The rank of `x` in `values`: the fraction of values ≤ x. This is the
/// quantity quantile sketches guarantee error on (ε·n rank error).
pub fn rank_of(values: &[f64], x: f64) -> f64 {
    let present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if present.is_empty() {
        return f64::NAN;
    }
    present.iter().filter(|&&v| v <= x).count() as f64 / present.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn interpolation() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&v, 0.25), Some(20.0));
        assert_eq!(quantile(&v, 0.1), Some(14.0));
    }

    #[test]
    fn nan_and_empty() {
        assert_eq!(quantile(&[f64::NAN], 0.5), None);
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[f64::NAN, 7.0], 0.5), Some(7.0));
    }

    #[test]
    fn iqr_of_uniform() {
        let v: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(iqr(&v), Some(50.0));
    }

    #[test]
    fn single_value() {
        assert_eq!(quantile(&[42.0], 0.3), Some(42.0));
    }

    #[test]
    fn rank_of_fraction() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(rank_of(&v, 2.0), 0.5);
        assert_eq!(rank_of(&v, 0.0), 0.0);
        assert_eq!(rank_of(&v, 9.0), 1.0);
        assert!(rank_of(&[], 1.0).is_nan());
    }

    #[test]
    fn batch_matches_single() {
        let v = [5.0, 1.0, 9.0, 3.0, 7.0];
        let qs = quantiles(&v, &[0.0, 0.5, 1.0]).unwrap();
        assert_eq!(qs[0], quantile(&v, 0.0).unwrap());
        assert_eq!(qs[1], quantile(&v, 0.5).unwrap());
        assert_eq!(qs[2], quantile(&v, 1.0).unwrap());
    }
}
