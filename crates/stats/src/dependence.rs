//! General statistical dependence — the paper's "general statistical
//! dependencies" insight class. Chi-squared and Cramér's V for categorical
//! pairs; binned mutual information for numeric pairs.

use crate::histogram::{BinRule, Histogram};
use foresight_data::CategoricalColumn;

/// A contingency table between two categorical columns (missing rows
/// dropped pairwise).
#[derive(Debug, Clone)]
pub struct ContingencyTable {
    counts: Vec<Vec<u64>>,
    total: u64,
}

impl ContingencyTable {
    /// Cross-tabulates two categorical columns of equal length.
    pub fn new(a: &CategoricalColumn, b: &CategoricalColumn) -> Self {
        assert_eq!(a.len(), b.len(), "columns must have equal length");
        let mut counts = vec![vec![0u64; b.cardinality()]; a.cardinality()];
        let mut total = 0u64;
        for (ca, cb) in a.codes().iter().zip(b.codes()) {
            if *ca != foresight_data::column::NULL_CODE && *cb != foresight_data::column::NULL_CODE
            {
                counts[*ca as usize][*cb as usize] += 1;
                total += 1;
            }
        }
        Self { counts, total }
    }

    /// Builds from raw counts (for tests and binned numeric data).
    pub fn from_counts(counts: Vec<Vec<u64>>) -> Self {
        let total = counts.iter().flatten().sum();
        Self { counts, total }
    }

    /// Row marginal totals.
    pub fn row_totals(&self) -> Vec<u64> {
        self.counts.iter().map(|r| r.iter().sum()).collect()
    }

    /// Column marginal totals.
    pub fn col_totals(&self) -> Vec<u64> {
        let cols = self.counts.first().map(|r| r.len()).unwrap_or(0);
        (0..cols)
            .map(|j| self.counts.iter().map(|r| r[j]).sum())
            .collect()
    }

    /// Pearson's chi-squared statistic against independence.
    pub fn chi_squared(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rows = self.row_totals();
        let cols = self.col_totals();
        let n = self.total as f64;
        let mut chi2 = 0.0;
        for (i, row) in self.counts.iter().enumerate() {
            for (j, &obs) in row.iter().enumerate() {
                let expected = rows[i] as f64 * cols[j] as f64 / n;
                if expected > 0.0 {
                    let diff = obs as f64 - expected;
                    chi2 += diff * diff / expected;
                }
            }
        }
        chi2
    }

    /// Cramér's V ∈ [0, 1]: `√(χ²/n / min(r−1, c−1))`. The normalized
    /// dependence strength used as the ranking metric.
    pub fn cramers_v(&self) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let r = self.row_totals().iter().filter(|&&t| t > 0).count();
        let c = self.col_totals().iter().filter(|&&t| t > 0).count();
        let k = r.min(c);
        if k < 2 {
            return f64::NAN;
        }
        (self.chi_squared() / self.total as f64 / (k - 1) as f64).sqrt()
    }

    /// Asymptotic p-value of the chi-squared independence test
    /// (`df = (r−1)(c−1)` over non-empty rows/columns).
    pub fn chi_squared_p_value(&self) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let r = self.row_totals().iter().filter(|&&t| t > 0).count();
        let c = self.col_totals().iter().filter(|&&t| t > 0).count();
        if r < 2 || c < 2 {
            return f64::NAN;
        }
        let df = ((r - 1) * (c - 1)) as f64;
        crate::special::chi2_sf(self.chi_squared(), df)
    }

    /// Mutual information (nats) of the empirical joint distribution.
    pub fn mutual_information(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rows = self.row_totals();
        let cols = self.col_totals();
        let n = self.total as f64;
        let mut mi = 0.0;
        for (i, row) in self.counts.iter().enumerate() {
            for (j, &obs) in row.iter().enumerate() {
                if obs > 0 {
                    let pxy = obs as f64 / n;
                    let px = rows[i] as f64 / n;
                    let py = cols[j] as f64 / n;
                    mi += pxy * (pxy / (px * py)).ln();
                }
            }
        }
        mi.max(0.0)
    }

    /// Normalized mutual information `MI / √(H(x)·H(y))` ∈ [0, 1].
    pub fn normalized_mutual_information(&self) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let n = self.total as f64;
        let h = |totals: Vec<u64>| -> f64 {
            totals
                .iter()
                .filter(|&&t| t > 0)
                .map(|&t| {
                    let p = t as f64 / n;
                    -p * p.ln()
                })
                .sum()
        };
        let hx = h(self.row_totals());
        let hy = h(self.col_totals());
        if hx <= 0.0 || hy <= 0.0 {
            return f64::NAN;
        }
        (self.mutual_information() / (hx * hy).sqrt()).min(1.0)
    }
}

/// Binned mutual information between two numeric columns: each column is
/// histogram-binned, then MI of the induced discrete joint is computed.
/// Missing values are dropped pairwise.
pub fn binned_mutual_information(x: &[f64], y: &[f64], rule: BinRule) -> f64 {
    assert_eq!(x.len(), y.len(), "columns must have equal length");
    let (mut xs, mut ys) = (Vec::new(), Vec::new());
    for (&a, &b) in x.iter().zip(y) {
        if !a.is_nan() && !b.is_nan() {
            xs.push(a);
            ys.push(b);
        }
    }
    let (Some(hx), Some(hy)) = (Histogram::build(&xs, rule), Histogram::build(&ys, rule)) else {
        return f64::NAN;
    };
    let mut counts = vec![vec![0u64; hy.n_bins()]; hx.n_bins()];
    for (&a, &b) in xs.iter().zip(&ys) {
        counts[hx.bin_of(a)][hy.bin_of(b)] += 1;
    }
    ContingencyTable::from_counts(counts).normalized_mutual_information()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat(values: &[&str]) -> CategoricalColumn {
        CategoricalColumn::from_strings(values.iter().copied())
    }

    #[test]
    fn perfect_dependence() {
        let a = cat(&["x", "y", "x", "y", "x", "y"]);
        let b = cat(&["p", "q", "p", "q", "p", "q"]);
        let t = ContingencyTable::new(&a, &b);
        assert!((t.cramers_v() - 1.0).abs() < 1e-12);
        assert!((t.normalized_mutual_information() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independence_near_zero() {
        // balanced 2x2 independent table
        let t = ContingencyTable::from_counts(vec![vec![50, 50], vec![50, 50]]);
        assert_eq!(t.chi_squared(), 0.0);
        assert!((t.cramers_v()).abs() < 1e-9);
        assert!(t.mutual_information() < 1e-12);
    }

    #[test]
    fn chi_squared_known_value() {
        // classic example: observed [[10,20],[30,40]]
        let t = ContingencyTable::from_counts(vec![vec![10, 20], vec![30, 40]]);
        // expected: row totals 30,70; col totals 40,60; n=100
        // e = [[12,18],[28,42]]; chi2 = 4/12 + 4/18 + 4/28 + 4/42
        let expected = 4.0 / 12.0 + 4.0 / 18.0 + 4.0 / 28.0 + 4.0 / 42.0;
        assert!((t.chi_squared() - expected).abs() < 1e-12);
    }

    #[test]
    fn p_value_separates_dependence_from_independence() {
        let dependent = ContingencyTable::from_counts(vec![vec![90, 10], vec![10, 90]]);
        assert!(dependent.chi_squared_p_value() < 1e-10);
        let independent = ContingencyTable::from_counts(vec![vec![50, 50], vec![50, 50]]);
        assert!((independent.chi_squared_p_value() - 1.0).abs() < 1e-9);
        let degenerate = ContingencyTable::from_counts(vec![vec![10, 20]]);
        assert!(degenerate.chi_squared_p_value().is_nan());
    }

    #[test]
    fn missing_dropped_pairwise() {
        let a = cat(&["x", "", "x", "y"]);
        let b = cat(&["p", "q", "", "q"]);
        let t = ContingencyTable::new(&a, &b);
        assert_eq!(t.total, 2);
    }

    #[test]
    fn degenerate_single_category() {
        let a = cat(&["x", "x", "x"]);
        let b = cat(&["p", "q", "p"]);
        let t = ContingencyTable::new(&a, &b);
        assert!(t.cramers_v().is_nan());
    }

    #[test]
    fn binned_mi_detects_nonlinear_dependence() {
        // y = x² is invisible to Pearson but has high MI
        let x: Vec<f64> = (-500..500).map(|i| i as f64 / 100.0).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let mi = binned_mutual_information(&x, &y, BinRule::Fixed(16));
        assert!(mi > 0.5, "mi = {mi}");
        let rho = crate::correlation::pearson(&x, &y);
        assert!(rho.abs() < 0.05, "pearson = {rho}");
    }

    #[test]
    fn binned_mi_independent_near_zero() {
        // deterministic "independent" pattern: x cycles fast, y cycles slow
        let n = 4096;
        let x: Vec<f64> = (0..n).map(|i| (i % 64) as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| (i / 64) as f64).collect();
        let mi = binned_mutual_information(&x, &y, BinRule::Fixed(8));
        assert!(mi < 0.05, "mi = {mi}");
    }

    #[test]
    fn binned_mi_empty_is_nan() {
        assert!(binned_mutual_information(&[], &[], BinRule::Fixed(4)).is_nan());
    }
}
