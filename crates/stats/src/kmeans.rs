//! k-means clustering and silhouette scoring — the substrate for the
//! paper's segmentation insight ("a strong clustering of (x,y)-values
//! according to z-values").

/// Result of a k-means run on 2-D points.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centers.
    pub centers: Vec<[f64; 2]>,
    /// Per-point cluster assignment.
    pub assignment: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations until convergence.
    pub iterations: usize,
}

/// A tiny deterministic xorshift RNG so clustering is reproducible without
/// threading a generic RNG through the engine.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_range(&mut self, n: usize) -> usize {
        (self.next_f64() * n as f64) as usize % n
    }
}

fn dist2(a: [f64; 2], b: [f64; 2]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    dx * dx + dy * dy
}

/// Runs k-means++ seeded k-means on 2-D points. Deterministic for a fixed
/// `seed`. Panics if `k == 0`; returns a degenerate single-cluster result
/// when there are fewer points than `k`.
pub fn kmeans(points: &[[f64; 2]], k: usize, seed: u64, max_iter: usize) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    let n = points.len();
    if n == 0 {
        return KMeansResult {
            centers: Vec::new(),
            assignment: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }
    let k = k.min(n);
    let mut rng = XorShift(seed | 1);

    // k-means++ seeding.
    let mut centers: Vec<[f64; 2]> = Vec::with_capacity(k);
    centers.push(points[rng.next_range(n)]);
    let mut d2: Vec<f64> = points.iter().map(|&p| dist2(p, centers[0])).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            points[rng.next_range(n)]
        } else {
            let mut target = rng.next_f64() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            points[chosen]
        };
        centers.push(next);
        for (i, &p) in points.iter().enumerate() {
            d2[i] = d2[i].min(dist2(p, next));
        }
    }

    // Lloyd iterations.
    let mut assignment = vec![0usize; n];
    let mut iterations = 0;
    for iter in 0..max_iter {
        iterations = iter + 1;
        let mut changed = false;
        for (i, &p) in points.iter().enumerate() {
            let best = (0..centers.len())
                .min_by(|&a, &b| {
                    dist2(p, centers[a])
                        .partial_cmp(&dist2(p, centers[b]))
                        .expect("finite distances")
                })
                .expect("k > 0");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![[0.0f64; 2]; centers.len()];
        let mut counts = vec![0usize; centers.len()];
        for (i, &p) in points.iter().enumerate() {
            sums[assignment[i]][0] += p[0];
            sums[assignment[i]][1] += p[1];
            counts[assignment[i]] += 1;
        }
        for c in 0..centers.len() {
            if counts[c] > 0 {
                centers[c] = [sums[c][0] / counts[c] as f64, sums[c][1] / counts[c] as f64];
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&assignment)
        .map(|(&p, &a)| dist2(p, centers[a]))
        .sum();
    KMeansResult {
        centers,
        assignment,
        inertia,
        iterations,
    }
}

/// Mean silhouette coefficient of a labeled 2-D point set, in [−1, 1].
/// Near 1 ⇒ tight, well-separated clusters (a strong segmentation insight);
/// near 0 ⇒ overlapping; negative ⇒ misassigned.
///
/// O(n²); callers should sample large point sets first.
pub fn silhouette(points: &[[f64; 2]], labels: &[usize]) -> f64 {
    assert_eq!(points.len(), labels.len(), "labels must match points");
    let n = points.len();
    if n < 2 {
        return f64::NAN;
    }
    let k = labels.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    if k < 2 {
        return f64::NAN;
    }
    let counts = {
        let mut c = vec![0usize; k];
        for &l in labels {
            c[l] += 1;
        }
        c
    };
    let mut total = 0.0;
    let mut scored = 0usize;
    for i in 0..n {
        if counts[labels[i]] < 2 {
            continue; // silhouette undefined for singleton clusters
        }
        let mut sums = vec![0.0f64; k];
        for j in 0..n {
            if i != j {
                sums[labels[j]] += dist2(points[i], points[j]).sqrt();
            }
        }
        let a = sums[labels[i]] / (counts[labels[i]] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != labels[i] && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b);
            scored += 1;
        }
    }
    if scored == 0 {
        f64::NAN
    } else {
        total / scored as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<[f64; 2]>, Vec<usize>) {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            let t = i as f64 * 0.1;
            pts.push([t.sin() * 0.3, t.cos() * 0.3]);
            labels.push(0);
            pts.push([10.0 + t.sin() * 0.3, 10.0 + t.cos() * 0.3]);
            labels.push(1);
        }
        (pts, labels)
    }

    #[test]
    fn recovers_two_blobs() {
        let (pts, truth) = two_blobs();
        let r = kmeans(&pts, 2, 42, 100);
        // all points in the same blob share an assignment
        let a0 = r.assignment[0];
        for (i, &l) in truth.iter().enumerate() {
            if l == 0 {
                assert_eq!(r.assignment[i], a0);
            } else {
                assert_ne!(r.assignment[i], a0);
            }
        }
        assert!(r.inertia < 20.0);
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let (pts, labels) = two_blobs();
        let s = silhouette(&pts, &labels);
        assert!(s > 0.9, "silhouette {s}");
    }

    #[test]
    fn silhouette_low_for_random_labels() {
        let (pts, _) = two_blobs();
        // points alternate blobs at even/odd indices, so (i/2) % 2 puts half
        // of each blob in each label — a genuinely bad clustering
        let labels: Vec<usize> = (0..pts.len()).map(|i| (i / 2) % 2).collect();
        let s = silhouette(&pts, &labels);
        assert!(s < 0.3, "silhouette {s}");
    }

    #[test]
    fn deterministic_for_seed() {
        let (pts, _) = two_blobs();
        let a = kmeans(&pts, 3, 7, 50);
        let b = kmeans(&pts, 3, 7, 50);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(kmeans(&[], 2, 1, 10).assignment.is_empty());
        let one = kmeans(&[[1.0, 2.0]], 3, 1, 10);
        assert_eq!(one.centers.len(), 1);
        assert!(silhouette(&[[0.0, 0.0]], &[0]).is_nan());
        assert!(silhouette(&[[0.0, 0.0], [1.0, 1.0]], &[0, 0]).is_nan());
    }

    #[test]
    fn inertia_decreases_with_k() {
        let (pts, _) = two_blobs();
        let r1 = kmeans(&pts, 1, 3, 50);
        let r2 = kmeans(&pts, 2, 3, 50);
        assert!(r2.inertia < r1.inertia);
    }
}
