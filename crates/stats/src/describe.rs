//! One-stop column summary combining moments, quantiles, and shape metrics.

use crate::moments::Moments;
use crate::quantile;
use serde::{Deserialize, Serialize};

/// A descriptive summary of one numeric column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Description {
    /// Present (non-missing) count.
    pub count: u64,
    /// Missing count.
    pub missing: u64,
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Standardized skewness γ₁.
    pub skewness: f64,
    /// Kurtosis (normal = 3).
    pub kurtosis: f64,
}

/// Summarizes a numeric slice (NaN = missing).
pub fn describe(values: &[f64]) -> Option<Description> {
    let m = Moments::from_slice(values);
    if m.count() == 0 {
        return None;
    }
    let qs = quantile::quantiles(values, &[0.25, 0.5, 0.75])?;
    Some(Description {
        count: m.count(),
        missing: values.len() as u64 - m.count(),
        mean: m.mean(),
        std: m.population_std(),
        min: m.min(),
        q1: qs[0],
        median: qs[1],
        q3: qs[2],
        max: m.max(),
        skewness: m.skewness(),
        kurtosis: m.kurtosis(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_fields_consistent() {
        let v = [1.0, 2.0, f64::NAN, 3.0, 4.0, 5.0];
        let d = describe(&v).unwrap();
        assert_eq!(d.count, 5);
        assert_eq!(d.missing, 1);
        assert_eq!(d.mean, 3.0);
        assert_eq!(d.median, 3.0);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 5.0);
        assert!(d.q1 < d.median && d.median < d.q3);
    }

    #[test]
    fn empty_is_none() {
        assert!(describe(&[]).is_none());
        assert!(describe(&[f64::NAN]).is_none());
    }
}
