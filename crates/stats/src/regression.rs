//! Simple ordinary-least-squares line fit, for the scatter plot's
//! superimposed best-fit line (paper §2.2, insight 6).

/// An OLS line `y = slope·x + intercept` with its fit quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination R² ∈ [0, 1].
    pub r_squared: f64,
    /// Number of complete pairs used.
    pub n: usize,
}

/// Fits `y ~ x` by least squares, excluding missing values pairwise.
/// Returns `None` with fewer than 2 complete pairs or zero x-variance.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    assert_eq!(x.len(), y.len(), "columns must have equal length");
    let (mut sx, mut sy, mut n) = (0.0, 0.0, 0usize);
    for (&a, &b) in x.iter().zip(y) {
        if !a.is_nan() && !b.is_nan() {
            sx += a;
            sy += b;
            n += 1;
        }
    }
    if n < 2 {
        return None;
    }
    let mx = sx / n as f64;
    let my = sy / n as f64;
    let (mut sxx, mut sxy, mut syy) = (0.0, 0.0, 0.0);
    for (&a, &b) in x.iter().zip(y) {
        if !a.is_nan() && !b.is_nan() {
            sxx += (a - mx) * (a - mx);
            sxy += (a - mx) * (b - my);
            syy += (b - my) * (b - my);
        }
    }
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy <= 0.0 {
        1.0
    } else {
        (sxy * sxy / (sxx * syy)).min(1.0)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.5 * v - 4.0).collect();
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 2.5).abs() < 1e-12);
        assert!((f.intercept + 4.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(f.n, 20);
    }

    #[test]
    fn r_squared_equals_pearson_squared() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [2.1, 3.9, 6.2, 8.1, 9.7, 12.5];
        let f = linear_fit(&x, &y).unwrap();
        let rho = crate::correlation::pearson(&x, &y);
        assert!((f.r_squared - rho * rho).abs() < 1e-12);
    }

    #[test]
    fn missing_pairs_excluded() {
        let x = [1.0, f64::NAN, 3.0, 4.0];
        let y = [2.0, 100.0, 6.0, 8.0];
        let f = linear_fit(&x, &y).unwrap();
        assert_eq!(f.n, 3);
        assert!((f.slope - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[3.0, 3.0], &[1.0, 2.0]).is_none());
        assert!(linear_fit(&[], &[]).is_none());
    }

    #[test]
    fn constant_y_has_r2_one_slope_zero() {
        let x = [1.0, 2.0, 3.0];
        let y = [5.0, 5.0, 5.0];
        let f = linear_fit(&x, &y).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r_squared, 1.0);
    }
}
