//! Lane-split f64 reduction kernels — the SIMD-width compute layer under
//! the moment and correlation hot paths.
//!
//! Every kernel here follows one structure: the input is consumed in
//! [`LANES`]-wide chunks feeding [`LANES`] *independent* accumulators (so
//! the loop body has no loop-carried dependency chain and auto-vectorizes
//! to packed f64 arithmetic), the lane accumulators are reduced in lane
//! order (`acc[0] + acc[1] + …`), and the sub-chunk tail is folded in
//! sequentially. Because the split/reduce schedule is **fixed**, a given
//! input always produces the same bits — and any two kernels that share
//! the schedule (e.g. the fused Pearson pass and the pre-centered Pearson
//! pass) stay bit-identical to each other.
//!
//! # Vectorized vs scalar
//!
//! Each public entry point dispatches on a per-thread [`KernelMode`]:
//! `Vectorized` (the default) takes the lane-split path, `Scalar` the
//! original sequential loops. The scalar path is kept as the correctness
//! oracle for property tests and as the baseline for the `exp_simd`
//! benchmark; it can also be forced process-wide by setting the
//! `FORESIGHT_KERNEL=scalar` environment variable (read once per thread).
//!
//! The mode is thread-local on purpose: tests and benchmarks flip it
//! without racing unrelated threads, and the bit-identity contracts
//! (centered ≡ complete Pearson) only require that the *pair* of calls
//! being compared runs under one mode — which a single thread guarantees.
//! Worker threads spawned mid-build (e.g. the rayon fan-out) start in the
//! environment-derived default.

use std::cell::Cell;

/// Accumulator lanes per chunk. 32 f64 lanes span four AVX-512 (or eight
/// AVX2) registers per accumulator family, which matters twice over: the
/// packed adds within a register remove the element-at-a-time serial chain,
/// and the four independent registers overlap the ~4-cycle FP-add latency
/// that a single vector accumulator would still serialize on. Measured on
/// the fused covariance pass, 32 lanes runs ~2.8× faster than 8; 64 lanes
/// regresses again (the three-family fused pass needs 24 accumulator
/// registers and starts spilling). On narrower targets the independent
/// lanes still break the dependency chain, which is most of the win.
pub const LANES: usize = 32;

/// Which implementation the stats kernels run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Lane-split multi-accumulator loops (the default).
    Vectorized,
    /// The original sequential reference loops (oracle / fallback).
    Scalar,
}

impl KernelMode {
    /// Stable lowercase name, used in telemetry and trace attributes.
    pub fn name(self) -> &'static str {
        match self {
            KernelMode::Vectorized => "vectorized",
            KernelMode::Scalar => "scalar",
        }
    }
}

fn mode_from_env() -> KernelMode {
    match std::env::var("FORESIGHT_KERNEL") {
        Ok(v) if v.eq_ignore_ascii_case("scalar") => KernelMode::Scalar,
        _ => KernelMode::Vectorized,
    }
}

thread_local! {
    static MODE: Cell<KernelMode> = Cell::new(mode_from_env());
}

/// The active kernel mode on this thread.
pub fn mode() -> KernelMode {
    MODE.with(Cell::get)
}

/// Sets this thread's kernel mode (until the next [`set_mode`]).
pub fn set_mode(m: KernelMode) {
    MODE.with(|c| c.set(m));
}

/// Runs `f` under `m`, restoring the previous mode afterwards — the
/// recommended way for tests and benchmarks to compare implementations.
pub fn with_mode<T>(m: KernelMode, f: impl FnOnce() -> T) -> T {
    let prev = mode();
    set_mode(m);
    let out = f();
    set_mode(prev);
    out
}

/// Reduces lane accumulators in lane order. Shared by every kernel so that
/// kernels with matching chunk schedules stay bit-identical.
#[inline]
fn reduce(acc: [f64; LANES]) -> f64 {
    let mut s = 0.0;
    for a in acc {
        s += a;
    }
    s
}

/// Σxᵢ with the fixed lane schedule (dispatches on [`mode`]).
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    match mode() {
        KernelMode::Scalar => x.iter().sum(),
        KernelMode::Vectorized => sum_lanes(x),
    }
}

fn sum_lanes(x: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let chunks = x.chunks_exact(LANES);
    let tail = chunks.remainder();
    for c in chunks {
        for l in 0..LANES {
            acc[l] += c[l];
        }
    }
    let mut s = reduce(acc);
    for &v in tail {
        s += v;
    }
    s
}

/// Σxᵢyᵢ with the fixed lane schedule (dispatches on [`mode`]).
///
/// The lane pattern matches the `sxy` accumulator of [`dot3_centered`]
/// exactly, which is what keeps the pre-centered Pearson path bit-identical
/// to the fused one.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    match mode() {
        KernelMode::Scalar => x.iter().zip(y).map(|(&a, &b)| a * b).sum(),
        KernelMode::Vectorized => dot_lanes(x, y),
    }
}

fn dot_lanes(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let chunks = x.chunks_exact(LANES).zip(y.chunks_exact(LANES));
    for (cx, cy) in chunks {
        for l in 0..LANES {
            acc[l] += cx[l] * cy[l];
        }
    }
    let mut s = reduce(acc);
    let done = x.len() - x.len() % LANES;
    for (&a, &b) in x[done..].iter().zip(&y[done..]) {
        s += a * b;
    }
    s
}

/// The fused covariance pass behind Pearson's ρ: one sweep over `(x, y)`
/// producing `(Σdxdy, Σdx², Σdy²)` for `dx = xᵢ − mx`, `dy = yᵢ − my`,
/// all three accumulated on the fixed lane schedule.
#[inline]
pub fn dot3_centered(x: &[f64], y: &[f64], mx: f64, my: f64) -> (f64, f64, f64) {
    debug_assert_eq!(x.len(), y.len());
    match mode() {
        KernelMode::Scalar => {
            let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
            for (&a, &b) in x.iter().zip(y) {
                let dx = a - mx;
                let dy = b - my;
                sxy += dx * dy;
                sxx += dx * dx;
                syy += dy * dy;
            }
            (sxy, sxx, syy)
        }
        KernelMode::Vectorized => dot3_lanes(x, y, mx, my),
    }
}

fn dot3_lanes(x: &[f64], y: &[f64], mx: f64, my: f64) -> (f64, f64, f64) {
    let mut axy = [0.0f64; LANES];
    let mut axx = [0.0f64; LANES];
    let mut ayy = [0.0f64; LANES];
    let chunks = x.chunks_exact(LANES).zip(y.chunks_exact(LANES));
    for (cx, cy) in chunks {
        for l in 0..LANES {
            let dx = cx[l] - mx;
            let dy = cy[l] - my;
            axy[l] += dx * dy;
            axx[l] += dx * dx;
            ayy[l] += dy * dy;
        }
    }
    let (mut sxy, mut sxx, mut syy) = (reduce(axy), reduce(axx), reduce(ayy));
    let done = x.len() - x.len() % LANES;
    for (&a, &b) in x[done..].iter().zip(&y[done..]) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    (sxy, sxx, syy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_roundtrip_and_names() {
        // the thread default follows FORESIGHT_KERNEL, so assert against the
        // env-derived mode rather than hard-coding Vectorized
        let default = mode_from_env();
        assert_eq!(mode(), default);
        assert_eq!(KernelMode::Vectorized.name(), "vectorized");
        assert_eq!(KernelMode::Scalar.name(), "scalar");
        let flipped = match default {
            KernelMode::Vectorized => KernelMode::Scalar,
            KernelMode::Scalar => KernelMode::Vectorized,
        };
        let inner = with_mode(flipped, mode);
        assert_eq!(inner, flipped);
        assert_eq!(mode(), default);
    }

    #[test]
    fn sum_and_dot_match_scalar_closely() {
        // lane reassociation may change bits; it must not change values
        // beyond summation rounding
        let x: Vec<f64> = (0..103).map(|i| (i as f64).sin() * 1e6).collect();
        let y: Vec<f64> = (0..103).map(|i| (i as f64).cos() * 1e-3).collect();
        let s = sum_lanes(&x);
        let exact: f64 = x.iter().sum();
        assert!((s - exact).abs() <= exact.abs() * 1e-12 + 1e-9);
        let d = dot_lanes(&x, &y);
        let exact: f64 = x.iter().zip(&y).map(|(&a, &b)| a * b).sum();
        assert!((d - exact).abs() <= exact.abs() * 1e-12 + 1e-9);
    }

    #[test]
    fn dot3_sxy_lanes_match_dot_lanes_bitwise() {
        // the contract that keeps pearson_centered ≡ pearson_complete: the
        // sxy accumulator of the fused pass and the plain dot product use
        // one lane schedule
        let x: Vec<f64> = (0..77).map(|i| (i as f64).sin() * 1e7).collect();
        let y: Vec<f64> = (0..77).map(|i| (i as f64 * 0.7).cos() * 3.0).collect();
        let (sxy, _, _) = dot3_lanes(&x, &y, 0.0, 0.0);
        assert_eq!(sxy.to_bits(), dot_lanes(&x, &y).to_bits());
    }

    #[test]
    fn empty_and_tail_only_inputs() {
        assert_eq!(sum_lanes(&[]), 0.0);
        assert_eq!(dot_lanes(&[], &[]), 0.0);
        let x = [1.5, -2.0, 3.25]; // shorter than one chunk
        assert_eq!(sum_lanes(&x), 1.5 - 2.0 + 3.25);
        assert_eq!(dot_lanes(&x, &x), 1.5f64 * 1.5 + 4.0 + 3.25 * 3.25);
    }
}
