//! Fractional ranking with tie handling (average ranks).

/// Assigns 1-based fractional ranks to `values`; ties receive the average of
/// the ranks they span (the convention Spearman's ρ requires).
///
/// NaNs are ranked last and should be filtered by callers that care.
///
/// # Examples
/// ```
/// use foresight_stats::rank::fractional_ranks;
/// assert_eq!(fractional_ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
/// ```
pub fn fractional_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or_else(|| values[a].is_nan().cmp(&values[b].is_nan()))
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // ranks i+1 ..= j+1 (1-based) are tied; assign their average
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Counts, for each element, how many tie groups exist and their sizes —
/// used by tie-corrected statistics (Kendall τ-b).
pub fn tie_group_sizes(values: &[f64]) -> Vec<usize> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("nan filtered"));
    let mut groups = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        if j > i {
            groups.push(j - i + 1);
        }
        i = j + 1;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ties() {
        assert_eq!(fractional_ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn all_tied() {
        assert_eq!(fractional_ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn mixed_ties() {
        // sorted: 1(r1) 2(r2,3 -> 2.5) 2 4(r4)
        assert_eq!(
            fractional_ranks(&[2.0, 1.0, 4.0, 2.0]),
            vec![2.5, 1.0, 4.0, 2.5]
        );
    }

    #[test]
    fn rank_sum_invariant() {
        // sum of ranks must always be n(n+1)/2
        let values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        let ranks = fractional_ranks(&values);
        let sum: f64 = ranks.iter().sum();
        assert_eq!(sum, 55.0);
    }

    #[test]
    fn tie_groups() {
        assert_eq!(tie_group_sizes(&[1.0, 2.0, 3.0]), Vec::<usize>::new());
        assert_eq!(tie_group_sizes(&[1.0, 1.0, 2.0, 2.0, 2.0]), vec![2, 3]);
    }

    #[test]
    fn empty() {
        assert!(fractional_ranks(&[]).is_empty());
    }
}
