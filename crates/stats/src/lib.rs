//! # foresight-stats
//!
//! Exact statistics for the Foresight insight-recommendation system: the
//! ranking metrics behind every insight class (§2.2 of the paper) and the
//! ground truth that the sketch estimators in `foresight-sketch` are
//! measured against.
//!
//! * [`kernel`] — lane-split f64 reduction kernels (vectorized/scalar modes)
//! * [`moments`] — single-pass mergeable mean/variance/skewness/kurtosis
//! * [`correlation`] — Pearson, Spearman, Kendall τ-b, full matrices
//! * [`quantile`] / [`histogram`] / [`kde`] — distribution shape
//! * [`outlier`] — pluggable detectors and the outlier-strength metric
//! * [`frequency`] — `RelFreq(k)`, entropy, heavy hitters
//! * [`dependence`] — χ², Cramér's V, (binned) mutual information
//! * [`multimodal`] — Hartigan's dip statistic, bimodality coefficient
//! * [`normality`] — Jarque–Bera
//! * [`kmeans`] — k-means++ and silhouette (segmentation insight)
//! * [`regression`] — OLS best-fit line for scatter plots

#![warn(missing_docs)]

pub mod correlation;
pub mod dependence;
pub mod describe;
pub mod frequency;
pub mod histogram;
pub mod kde;
pub mod kernel;
pub mod kmeans;
pub mod moments;
pub mod multimodal;
pub mod normality;
pub mod outlier;
pub mod quantile;
pub mod rank;
pub mod regression;
pub mod special;

pub use correlation::{kendall_tau_b, pearson, pearson_matrix, spearman};
pub use describe::{describe, Description};
pub use frequency::FrequencyTable;
pub use histogram::{BinRule, Histogram};
pub use moments::Moments;
pub use multimodal::dip_statistic;
pub use normality::{jarque_bera, normality_score};
pub use outlier::{outlier_strength, IqrDetector, MadDetector, OutlierDetector, ZScoreDetector};
pub use special::{chi2_sf, gamma_p, gamma_q, ln_gamma};
