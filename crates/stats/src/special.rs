//! Special functions: log-gamma and the regularized incomplete gamma
//! functions, supporting χ² tail probabilities for any degrees of freedom
//! (the dependence insight's significance reporting).

/// Natural log of the gamma function (Lanczos approximation, g = 7).
/// Accurate to ~15 significant digits for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0");
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // reflection formula
        return (std::f64::consts::PI / (std::f64::consts::PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + i as f64 + 1.0);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x)/Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes style). Both converge to ~1e-12.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // series: P(a,x) = e^{-x} x^a / Γ(a) · Σ x^n / (a·(a+1)···(a+n))
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive");
    if x <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Q(a, x) by Lentz's continued fraction (valid for x ≥ a + 1).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / f64::MIN_POSITIVE;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < f64::MIN_POSITIVE {
            d = f64::MIN_POSITIVE;
        }
        c = b + an / c;
        if c.abs() < f64::MIN_POSITIVE {
            c = f64::MIN_POSITIVE;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

/// χ² upper-tail probability `P(X > x)` with `df` degrees of freedom:
/// the p-value of a chi-squared test statistic.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(df / 2.0, x / 2.0).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 9.0), (10.0, 3.0)] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!((p + q - 1.0).abs() < 1e-12, "a={a} x={x}: {p} + {q}");
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn chi2_sf_matches_tables() {
        // classic critical values: P(X > 3.841 | df=1) = 0.05,
        // P(X > 5.991 | df=2) = 0.05, P(X > 16.919 | df=9) = 0.05
        assert!((chi2_sf(3.841, 1.0) - 0.05).abs() < 5e-4);
        assert!((chi2_sf(5.991, 2.0) - 0.05).abs() < 5e-4);
        assert!((chi2_sf(16.919, 9.0) - 0.05).abs() < 5e-4);
        // df=2 has the closed form exp(-x/2)
        for x in [0.5, 2.0, 7.0] {
            assert!((chi2_sf(x, 2.0) - (-x / 2.0f64).exp()).abs() < 1e-10);
        }
    }

    #[test]
    fn chi2_sf_monotone_and_bounded() {
        let mut prev = 1.0;
        for i in 0..50 {
            let x = i as f64 * 0.5;
            let p = chi2_sf(x, 4.0);
            assert!(p <= prev + 1e-12);
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
        assert_eq!(chi2_sf(0.0, 3.0), 1.0);
        assert!(chi2_sf(1000.0, 3.0) < 1e-100);
    }

    #[test]
    fn agrees_with_jarque_bera_special_case() {
        // crate::normality uses the df=2 closed form; the general function
        // must agree with it
        for x in [0.1, 1.0, 4.2, 11.0] {
            assert!((chi2_sf(x, 2.0) - crate::normality::chi2_2_sf(x)).abs() < 1e-10);
        }
    }
}
