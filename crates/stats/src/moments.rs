//! Single-pass, mergeable central moments (mean through kurtosis).
//!
//! The paper notes (§3) that "skewness and kurtosis can both be computed for
//! numeric columns in a single pass by maintaining and combining a few
//! running sums". This module implements that with the numerically stable
//! Welford/Pébay update formulas for the first four central moments, plus a
//! `merge` that makes the summary *composable* across data partitions — the
//! same composability the sketch catalog relies on.

use crate::kernel::{self, KernelMode, LANES};
use serde::{Deserialize, Serialize};

/// Streaming summary of the first four central moments of a sequence.
///
/// # Examples
/// ```
/// use foresight_stats::moments::Moments;
///
/// let m: Moments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(m.count(), 8);
/// assert_eq!(m.mean(), 5.0);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..Default::default()
        }
    }

    /// Builds the summary of a slice, skipping NaNs.
    ///
    /// Dispatches on the thread's [`kernel::mode`]: the default vectorized
    /// path is a branch-free two-pass build — [`kernel::LANES`]-split
    /// count/sum/min/max, then lane-split central power sums `Σdᵏ` around
    /// the exact pass-1 mean — with no divisions or cross-iteration
    /// dependencies inside either loop. The reassociation means the result
    /// can differ from the streaming [`Moments::from_slice_scalar`] update
    /// in the last bits — the `kernel_oracle` property tests pin the ε;
    /// count, `min`, and `max` are always exact.
    pub fn from_slice(values: &[f64]) -> Self {
        match kernel::mode() {
            KernelMode::Scalar => Self::from_slice_scalar(values),
            KernelMode::Vectorized => Self::from_slice_lanes(values),
        }
    }

    /// The sequential reference implementation of [`Moments::from_slice`]
    /// — one streaming [`Moments::update`] per present value. Kept as the
    /// oracle the vectorized path is property-tested against.
    pub fn from_slice_scalar(values: &[f64]) -> Self {
        let mut m = Self::new();
        for &v in values {
            if !v.is_nan() {
                m.update(v);
            }
        }
        m
    }

    /// Branch-free two-pass build. Pass 1: lane-split count, sum, min, max
    /// (a NaN contributes 0 to count and sum; `f64::min`/`max` ignore NaN
    /// operands on their own). Pass 2: lane-split central power sums
    /// `m2 = Σd²`, `m3 = Σd³`, `m4 = Σd⁴` with `d = x − mean` (0 for
    /// missing). Neither loop divides or carries a value across iterations,
    /// so both compile to straight-line SIMD; the sub-[`LANES`] tail folds
    /// into the same lane accumulators (lane = position in the final
    /// partial chunk) and lanes reduce in fixed lane order. The schedule is
    /// therefore **positional**: the value at index `i` always lands in
    /// lane `i % LANES`, so appending all-NaN rows — which the streaming
    /// writer's column-granular invalidation treats as leaving the column
    /// untouched — yields bit-identical moments, not merely close ones.
    /// The two-pass form is also *more* accurate than streaming Welford on
    /// offset-heavy data: deviations are taken against the final mean, so
    /// the only reassociation error is the lane split itself.
    fn from_slice_lanes(values: &[f64]) -> Self {
        let mut cnt = [0.0f64; LANES];
        let mut sum = [0.0f64; LANES];
        let mut lo = [f64::INFINITY; LANES];
        let mut hi = [f64::NEG_INFINITY; LANES];
        let tail = values.chunks_exact(LANES).remainder();
        for c in values.chunks_exact(LANES) {
            for l in 0..LANES {
                let x = c[l];
                let present = !x.is_nan();
                cnt[l] += f64::from(present as u8);
                sum[l] += if present { x } else { 0.0 };
                lo[l] = lo[l].min(x);
                hi[l] = hi[l].max(x);
            }
        }
        for (l, &x) in tail.iter().enumerate() {
            let present = !x.is_nan();
            cnt[l] += f64::from(present as u8);
            sum[l] += if present { x } else { 0.0 };
            lo[l] = lo[l].min(x);
            hi[l] = hi[l].max(x);
        }
        let mut n = 0.0f64;
        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for l in 0..LANES {
            n += cnt[l];
            total += sum[l];
            min = min.min(lo[l]);
            max = max.max(hi[l]);
        }
        if n == 0.0 {
            return Self::new();
        }
        let mean = total / n;

        let mut s2 = [0.0f64; LANES];
        let mut s3 = [0.0f64; LANES];
        let mut s4 = [0.0f64; LANES];
        for c in values.chunks_exact(LANES) {
            for l in 0..LANES {
                let x = c[l];
                let d = if x.is_nan() { 0.0 } else { x - mean };
                let d2 = d * d;
                s2[l] += d2;
                s3[l] += d2 * d;
                s4[l] += d2 * d2;
            }
        }
        for (l, &x) in tail.iter().enumerate() {
            let d = if x.is_nan() { 0.0 } else { x - mean };
            let d2 = d * d;
            s2[l] += d2;
            s3[l] += d2 * d;
            s4[l] += d2 * d2;
        }
        let mut m2 = 0.0f64;
        let mut m3 = 0.0f64;
        let mut m4 = 0.0f64;
        for l in 0..LANES {
            m2 += s2[l];
            m3 += s3[l];
            m4 += s4[l];
        }
        Self {
            n: n as u64,
            mean,
            m2,
            m3,
            m4,
            min,
            max,
        }
    }

    /// Adds one observation (Pébay's incremental update).
    pub fn update(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (Pébay's pairwise formulas).
    /// `a.merge(&b)` equals the summary of the concatenated inputs up to
    /// floating-point error, making `Moments` a composable sketch.
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;

        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;

        self.mean = (na * self.mean + nb * other.mean) / n;
        self.n += other.n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Minimum observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Population variance `σ² = M2/n` — the paper's dispersion metric.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) variance `M2/(n−1)`.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Coefficient of variation `σ/|μ|` (scale-free dispersion).
    pub fn coefficient_of_variation(&self) -> f64 {
        self.population_std() / self.mean().abs()
    }

    /// Standardized skewness coefficient `γ₁ = M3/n / σ³` — the paper's skew
    /// metric. Zero for symmetric data; `NaN` for constant data.
    pub fn skewness(&self) -> f64 {
        let var = self.population_variance();
        if self.n == 0 || var <= 0.0 {
            return f64::NAN;
        }
        (self.m3 / self.n as f64) / var.powf(1.5)
    }

    /// Kurtosis `M4/n / σ⁴` — the paper's heavy-tails metric (normal ≈ 3).
    pub fn kurtosis(&self) -> f64 {
        let var = self.population_variance();
        if self.n == 0 || var <= 0.0 {
            return f64::NAN;
        }
        (self.m4 / self.n as f64) / (var * var)
    }

    /// Excess kurtosis (kurtosis − 3).
    pub fn excess_kurtosis(&self) -> f64 {
        self.kurtosis() - 3.0
    }
}

impl FromIterator<f64> for Moments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut m = Self::new();
        for v in iter {
            if !v.is_nan() {
                m.update(v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(values: &[f64]) -> (f64, f64, f64, f64) {
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let skew = values.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n / var.powf(1.5);
        let kurt = values.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n / (var * var);
        (mean, var, skew, kurt)
    }

    #[test]
    fn matches_naive_two_pass() {
        let values = [1.0, 2.0, 2.5, 3.0, 8.0, -1.0, 4.5, 4.5, 0.0, 10.0];
        let m = Moments::from_slice(&values);
        let (mean, var, skew, kurt) = naive(&values);
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.population_variance() - var).abs() < 1e-12);
        assert!((m.skewness() - skew).abs() < 1e-12);
        assert!((m.kurtosis() - kurt).abs() < 1e-12);
        assert_eq!(m.min(), -1.0);
        assert_eq!(m.max(), 10.0);
    }

    #[test]
    fn merge_equals_batch() {
        let a = [1.0, 5.0, 2.0, 8.0];
        let b = [3.0, 3.0, 9.0, -2.0, 0.5];
        let mut ma = Moments::from_slice(&a);
        let mb = Moments::from_slice(&b);
        ma.merge(&mb);
        let all: Vec<f64> = a.iter().chain(&b).copied().collect();
        let whole = Moments::from_slice(&all);
        assert_eq!(ma.count(), whole.count());
        assert!((ma.mean() - whole.mean()).abs() < 1e-12);
        assert!((ma.population_variance() - whole.population_variance()).abs() < 1e-12);
        assert!((ma.skewness() - whole.skewness()).abs() < 1e-10);
        assert!((ma.kurtosis() - whole.kurtosis()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Moments::from_slice(&[1.0, 2.0]);
        let before = a;
        a.merge(&Moments::new());
        assert_eq!(a, before);
        let mut e = Moments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn empty_and_constant_edge_cases() {
        let e = Moments::new();
        assert_eq!(e.count(), 0);
        assert!(e.mean().is_nan());
        assert!(e.population_variance().is_nan());
        let c = Moments::from_slice(&[4.0, 4.0, 4.0]);
        assert_eq!(c.population_variance(), 0.0);
        assert!(c.skewness().is_nan());
        assert!(c.kurtosis().is_nan());
    }

    #[test]
    fn nan_skipped() {
        let m = Moments::from_slice(&[1.0, f64::NAN, 3.0]);
        assert_eq!(m.count(), 2);
        assert_eq!(m.mean(), 2.0);
    }

    #[test]
    fn trailing_nan_padding_is_bit_identical() {
        // the streaming writer's column-granular invalidation reuses a
        // column's cached exact scores when every appended row is NaN —
        // sound only if NaN padding cannot move a single bit of any
        // moment, under either kernel mode and across every tail length
        let values: Vec<f64> = (0..103)
            .map(|i| ((i * 37) % 101) as f64 + (i as f64).sin() * 1e3)
            .collect();
        for pad in [
            1usize,
            7,
            crate::kernel::LANES,
            crate::kernel::LANES * 2 + 1,
        ] {
            let mut padded = values.clone();
            padded.extend(std::iter::repeat(f64::NAN).take(pad));
            for mode in [
                crate::kernel::KernelMode::Vectorized,
                crate::kernel::KernelMode::Scalar,
            ] {
                crate::kernel::with_mode(mode, || {
                    let a = Moments::from_slice(&values);
                    let b = Moments::from_slice(&padded);
                    assert_eq!(a.count(), b.count());
                    assert_eq!(a.mean().to_bits(), b.mean().to_bits());
                    assert_eq!(
                        a.population_variance().to_bits(),
                        b.population_variance().to_bits()
                    );
                    assert_eq!(a.skewness().to_bits(), b.skewness().to_bits());
                    assert_eq!(
                        a.kurtosis().to_bits(),
                        b.kurtosis().to_bits(),
                        "{mode:?} pad {pad}"
                    );
                });
            }
        }
    }

    #[test]
    fn normal_sample_kurtosis_near_three() {
        // deterministic pseudo-normal via the quantile trick
        let n = 10_000;
        let values: Vec<f64> = (1..n)
            .map(|i| foresight_data::datasets::dist::normal_quantile(i as f64 / n as f64))
            .collect();
        let m = Moments::from_slice(&values);
        assert!(m.skewness().abs() < 0.01, "skew {}", m.skewness());
        assert!((m.kurtosis() - 3.0).abs() < 0.1, "kurt {}", m.kurtosis());
    }

    #[test]
    fn numerical_stability_large_offset() {
        // classic catastrophic-cancellation case: tiny variance on huge mean
        let values: Vec<f64> = (0..1000).map(|i| 1e9 + (i % 7) as f64).collect();
        let m = Moments::from_slice(&values);
        let (_, var, _, _) = naive(&values);
        assert!((m.population_variance() - var).abs() / var < 1e-6);
    }
}
