//! Outlier detection — the paper's insight #4.
//!
//! The paper specifies "a user-configurable outlier-detection algorithm"
//! whose flagged points are scored by "the average standardized distance of
//! the outliers from the mean" (in standard deviations). [`OutlierDetector`]
//! is that plug-in point; three standard detectors from Aggarwal's *Outlier
//! Analysis* are provided.

use crate::moments::Moments;
use crate::quantile;

/// A pluggable outlier detector over a numeric column.
pub trait OutlierDetector: Send + Sync {
    /// Human-readable name used in UI and experiment output.
    fn name(&self) -> &'static str;

    /// Returns the indices of detected outliers. `values` may contain NaN
    /// (missing) entries, which are never outliers.
    fn detect(&self, values: &[f64]) -> Vec<usize>;
}

/// Flags points more than `threshold` standard deviations from the mean.
#[derive(Debug, Clone, Copy)]
pub struct ZScoreDetector {
    /// Distance threshold in standard deviations (commonly 3).
    pub threshold: f64,
}

impl Default for ZScoreDetector {
    fn default() -> Self {
        Self { threshold: 3.0 }
    }
}

impl OutlierDetector for ZScoreDetector {
    fn name(&self) -> &'static str {
        "z-score"
    }

    fn detect(&self, values: &[f64]) -> Vec<usize> {
        let m = Moments::from_slice(values);
        let (mu, sd) = (m.mean(), m.population_std());
        if !sd.is_finite() || sd == 0.0 {
            return Vec::new();
        }
        values
            .iter()
            .enumerate()
            .filter(|(_, &v)| !v.is_nan() && ((v - mu) / sd).abs() > self.threshold)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Tukey's fences: flags points outside `[Q1 − k·IQR, Q3 + k·IQR]`
/// (`k = 1.5` is the classic box-and-whisker convention, matching the
/// paper's box-plot visualization for this insight).
#[derive(Debug, Clone, Copy)]
pub struct IqrDetector {
    /// Fence multiplier (1.5 = outliers, 3.0 = far outliers).
    pub k: f64,
}

impl Default for IqrDetector {
    fn default() -> Self {
        Self { k: 1.5 }
    }
}

impl OutlierDetector for IqrDetector {
    fn name(&self) -> &'static str {
        "iqr"
    }

    fn detect(&self, values: &[f64]) -> Vec<usize> {
        let Some(qs) = quantile::quantiles(values, &[0.25, 0.75]) else {
            return Vec::new();
        };
        let (q1, q3) = (qs[0], qs[1]);
        let iqr = q3 - q1;
        let lo = q1 - self.k * iqr;
        let hi = q3 + self.k * iqr;
        values
            .iter()
            .enumerate()
            .filter(|(_, &v)| !v.is_nan() && (v < lo || v > hi))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Median-absolute-deviation detector: robust z-score
/// `0.6745·|x − median| / MAD > threshold`.
#[derive(Debug, Clone, Copy)]
pub struct MadDetector {
    /// Robust z threshold (commonly 3.5, per Iglewicz & Hoaglin).
    pub threshold: f64,
}

impl Default for MadDetector {
    fn default() -> Self {
        Self { threshold: 3.5 }
    }
}

impl OutlierDetector for MadDetector {
    fn name(&self) -> &'static str {
        "mad"
    }

    fn detect(&self, values: &[f64]) -> Vec<usize> {
        let Some(med) = quantile::median(values) else {
            return Vec::new();
        };
        let deviations: Vec<f64> = values
            .iter()
            .map(|v| {
                if v.is_nan() {
                    f64::NAN
                } else {
                    (v - med).abs()
                }
            })
            .collect();
        let Some(mad) = quantile::median(&deviations) else {
            return Vec::new();
        };
        if mad == 0.0 {
            return Vec::new();
        }
        values
            .iter()
            .enumerate()
            .filter(|(_, &v)| !v.is_nan() && 0.6745 * (v - med).abs() / mad > self.threshold)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The paper's outlier-insight score: mean standardized distance (in
/// standard deviations) of the detected outliers from the column mean.
/// Zero when no outliers are detected.
pub fn outlier_strength(values: &[f64], detector: &dyn OutlierDetector) -> f64 {
    let outliers = detector.detect(values);
    if outliers.is_empty() {
        return 0.0;
    }
    let m = Moments::from_slice(values);
    let (mu, sd) = (m.mean(), m.population_std());
    if !sd.is_finite() || sd == 0.0 {
        return 0.0;
    }
    outliers
        .iter()
        .map(|&i| ((values[i] - mu) / sd).abs())
        .sum::<f64>()
        / outliers.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_outlier() -> Vec<f64> {
        let mut v: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        v.push(1000.0);
        v
    }

    #[test]
    fn zscore_finds_planted_outlier() {
        let v = with_outlier();
        let found = ZScoreDetector::default().detect(&v);
        assert_eq!(found, vec![100]);
    }

    #[test]
    fn iqr_finds_planted_outlier() {
        let v = with_outlier();
        let found = IqrDetector::default().detect(&v);
        assert!(found.contains(&100));
    }

    #[test]
    fn mad_finds_planted_outlier_and_resists_masking() {
        // two huge outliers inflate the sd enough to weaken z-score;
        // MAD is unaffected
        let mut v: Vec<f64> = (0..50).map(|i| (i % 5) as f64).collect();
        v.push(1e6);
        v.push(-1e6);
        let mad_found = MadDetector::default().detect(&v);
        assert!(mad_found.contains(&50) && mad_found.contains(&51));
    }

    #[test]
    fn clean_data_no_outliers() {
        let v: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        assert!(ZScoreDetector::default().detect(&v).is_empty());
        assert!(MadDetector::default().detect(&v).is_empty());
        assert_eq!(outlier_strength(&v, &ZScoreDetector::default()), 0.0);
    }

    #[test]
    fn strength_grows_with_extremity() {
        let mut near: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let mut far = near.clone();
        near.push(40.0);
        far.push(400.0);
        let d = ZScoreDetector::default();
        assert!(outlier_strength(&far, &d) > outlier_strength(&near, &d));
    }

    #[test]
    fn nan_never_flagged() {
        let v = [1.0, 2.0, f64::NAN, 3.0, 100.0];
        for det in [
            &ZScoreDetector::default() as &dyn OutlierDetector,
            &IqrDetector::default(),
            &MadDetector::default(),
        ] {
            assert!(!det.detect(&v).contains(&2), "{} flagged NaN", det.name());
        }
    }

    #[test]
    fn constant_data_degenerate() {
        let v = [5.0; 20];
        assert!(ZScoreDetector::default().detect(&v).is_empty());
        assert!(MadDetector::default().detect(&v).is_empty());
        assert_eq!(outlier_strength(&v, &IqrDetector::default()), 0.0);
    }
}
