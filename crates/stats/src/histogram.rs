//! Equal-width histograms with standard bin-count rules.
//!
//! The histogram is the paper's visualization for the dispersion, skew, and
//! heavy-tails insights; it is also the binning substrate for the mutual
//! information estimator in [`crate::dependence`].

use serde::{Deserialize, Serialize};

/// How many bins to use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BinRule {
    /// A fixed number of bins.
    Fixed(usize),
    /// Sturges' rule: `⌈log₂ n⌉ + 1`.
    Sturges,
    /// Freedman–Diaconis: width `2·IQR/n^{1/3}` (robust to outliers).
    FreedmanDiaconis,
    /// Square-root rule: `⌈√n⌉`.
    SquareRoot,
}

/// An equal-width histogram over `[min, max]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram of `values` (NaNs skipped) using `rule`.
    ///
    /// Returns `None` when there are no present values.
    pub fn build(values: &[f64], rule: BinRule) -> Option<Self> {
        let present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if present.is_empty() {
            return None;
        }
        let n = present.len();
        let min = present.iter().copied().fold(f64::INFINITY, f64::min);
        let max = present.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let bins = match rule {
            BinRule::Fixed(b) => b.max(1),
            BinRule::Sturges => (n as f64).log2().ceil() as usize + 1,
            BinRule::SquareRoot => (n as f64).sqrt().ceil() as usize,
            BinRule::FreedmanDiaconis => {
                let iqr = crate::quantile::iqr(&present).unwrap_or(0.0);
                if iqr <= 0.0 || max == min {
                    (n as f64).log2().ceil() as usize + 1
                } else {
                    let width = 2.0 * iqr / (n as f64).cbrt();
                    (((max - min) / width).ceil() as usize).clamp(1, 512)
                }
            }
        };
        let mut h = Self {
            min,
            max,
            counts: vec![0; bins],
            total: 0,
        };
        for &v in &present {
            let b = h.bin_of(v);
            h.counts[b] += 1;
            h.total += 1;
        }
        Some(h)
    }

    /// Index of the bin containing `v` (clamped to the range).
    pub fn bin_of(&self, v: f64) -> usize {
        if self.max == self.min {
            return 0;
        }
        let frac = (v - self.min) / (self.max - self.min);
        ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1)
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.counts.len()
    }

    /// Total count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Range minimum.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Range maximum.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// `[lo, hi)` edges of bin `b` (last bin is closed).
    pub fn bin_edges(&self, b: usize) -> (f64, f64) {
        let width = (self.max - self.min) / self.counts.len() as f64;
        (
            self.min + b as f64 * width,
            self.min + (b + 1) as f64 * width,
        )
    }

    /// Per-bin densities (count / total / width); integrates to 1.
    pub fn densities(&self) -> Vec<f64> {
        let width = (self.max - self.min) / self.counts.len() as f64;
        if width == 0.0 || self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64 / width)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_bins_uniform_data() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::build(&v, BinRule::Fixed(10)).unwrap();
        assert_eq!(h.n_bins(), 10);
        assert_eq!(h.total(), 100);
        for &c in h.counts() {
            assert_eq!(c, 10);
        }
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let h = Histogram::build(&[0.0, 10.0], BinRule::Fixed(5)).unwrap();
        assert_eq!(h.bin_of(10.0), 4);
        assert_eq!(h.bin_of(0.0), 0);
        assert_eq!(h.counts()[4], 1);
    }

    #[test]
    fn sturges_count() {
        let v: Vec<f64> = (0..1024).map(|i| i as f64).collect();
        let h = Histogram::build(&v, BinRule::Sturges).unwrap();
        assert_eq!(h.n_bins(), 11);
    }

    #[test]
    fn constant_column_single_bin_ok() {
        let h = Histogram::build(&[3.0, 3.0, 3.0], BinRule::FreedmanDiaconis).unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.bin_of(3.0), 0);
    }

    #[test]
    fn empty_or_all_nan() {
        assert!(Histogram::build(&[], BinRule::Sturges).is_none());
        assert!(Histogram::build(&[f64::NAN], BinRule::Sturges).is_none());
    }

    #[test]
    fn densities_integrate_to_one() {
        let v: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let h = Histogram::build(&v, BinRule::Fixed(20)).unwrap();
        let width = (h.max() - h.min()) / 20.0;
        let integral: f64 = h.densities().iter().map(|d| d * width).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_edges_cover_range() {
        let v: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let h = Histogram::build(&v, BinRule::Fixed(7)).unwrap();
        assert_eq!(h.bin_edges(0).0, 0.0);
        assert!((h.bin_edges(6).1 - 49.0).abs() < 1e-12);
    }
}
