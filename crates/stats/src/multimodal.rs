//! Multimodality measures — the paper's multimodality insight class.
//!
//! The primary ranking metric is **Hartigan's dip statistic** (Hartigan &
//! Hartigan, 1985): the maximum distance between the empirical CDF and the
//! closest unimodal CDF. The implementation is a faithful translation of the
//! published algorithm (AS 217, as refined in Maechler's `diptest`). The dip
//! lies in `[1/(2n), 0.25]`; larger values mean stronger multimodality.
//!
//! A KDE mode count ([`crate::kde::Kde::count_modes`]) and the bimodality
//! coefficient are provided as secondary metrics.

use crate::moments::Moments;

/// Computes Hartigan's dip statistic of a sample (NaNs skipped).
///
/// Returns `None` for an empty sample; returns `Some(0.0)` for constant or
/// single-point samples (perfectly unimodal).
///
/// # Examples
/// ```
/// use foresight_stats::multimodal::dip_statistic;
/// // two point masses: the most bimodal sample possible → dip = 0.25
/// let d = dip_statistic(&[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0]).unwrap();
/// assert!((d - 0.25).abs() < 1e-12);
/// ```
pub fn dip_statistic(values: &[f64]) -> Option<f64> {
    let mut x: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if x.is_empty() {
        return None;
    }
    x.sort_by(|a, b| a.partial_cmp(b).expect("nan filtered"));
    Some(dip_sorted(&x))
}

/// Dip of an already-sorted, NaN-free sample.
///
/// Index arithmetic below is 1-based (`x[1..=n]`) to mirror the reference
/// implementation line by line; `xv[0]` is a sentinel.
pub fn dip_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n < 2 || sorted[n - 1] == sorted[0] {
        return 0.0;
    }
    // 1-based copy.
    let mut x = Vec::with_capacity(n + 1);
    x.push(f64::NAN);
    x.extend_from_slice(sorted);

    let mut low: usize = 1;
    let mut high: usize = n;
    // Work in "count" units; the final result is divided by 2n, so the
    // initial 1.0 is the 1/(2n) floor.
    let mut dip: f64 = 1.0;

    let mut mn = vec![0usize; n + 1];
    let mut mj = vec![0usize; n + 1];
    let mut gcm = vec![0usize; n + 2];
    let mut lcm = vec![0usize; n + 2];

    // Indices over which combination is necessary for the convex minorant.
    mn[1] = 1;
    for j in 2..=n {
        mn[j] = j - 1;
        loop {
            let mnj = mn[j];
            if mnj == 1 {
                break;
            }
            let mnmnj = mn[mnj];
            if (x[j] - x[mnj]) * (mnj as f64 - mnmnj as f64)
                < (x[mnj] - x[mnmnj]) * (j as f64 - mnj as f64)
            {
                break;
            }
            mn[j] = mnmnj;
        }
    }
    // Indices for the concave majorant.
    mj[n] = n;
    for k in (1..n).rev() {
        mj[k] = k + 1;
        loop {
            let mjk = mj[k];
            if mjk == n {
                break;
            }
            let mjmjk = mj[mjk];
            if (x[k] - x[mjk]) * (mjk as f64 - mjmjk as f64)
                < (x[mjk] - x[mjmjk]) * (k as f64 - mjk as f64)
            {
                break;
            }
            mj[k] = mjmjk;
        }
    }

    // The cycling: repeatedly narrow [low, high] to the modal interval.
    loop {
        // GCM change points from high down to low.
        gcm[1] = high;
        let mut i = 1;
        while gcm[i] > low {
            gcm[i + 1] = mn[gcm[i]];
            i += 1;
        }
        let l_gcm = i;
        let mut ig = l_gcm;
        let mut ix = ig as i64 - 1;

        // LCM change points from low up to high.
        lcm[1] = low;
        let mut i = 1;
        while lcm[i] < high {
            lcm[i + 1] = mj[lcm[i]];
            i += 1;
        }
        let l_lcm = i;
        let mut ih = l_lcm;
        let mut iv: usize = 2;

        // Largest distance between GCM and LCM on [low, high].
        let mut d = 0.0f64;
        if l_gcm != 2 || l_lcm != 2 {
            loop {
                let gcmix = gcm[ix as usize];
                let lcmiv = lcm[iv];
                if gcmix > lcmiv {
                    // Next envelope point comes from the LCM.
                    let gcmi1 = gcm[(ix + 1) as usize];
                    let dx = (lcmiv as f64 - gcmi1 as f64 + 1.0)
                        - (x[lcmiv] - x[gcmi1]) * (gcmix as f64 - gcmi1 as f64)
                            / (x[gcmix] - x[gcmi1]);
                    iv += 1;
                    if dx >= d {
                        d = dx;
                        ig = (ix + 1) as usize;
                        ih = iv - 1;
                    }
                } else {
                    // Next envelope point comes from the GCM.
                    let lcmiv1 = lcm[iv - 1];
                    let dx = (x[gcmix] - x[lcmiv1]) * (lcmiv as f64 - lcmiv1 as f64)
                        / (x[lcmiv] - x[lcmiv1])
                        - (gcmix as f64 - lcmiv1 as f64 - 1.0);
                    ix -= 1;
                    if dx >= d {
                        d = dx;
                        ig = (ix + 1) as usize;
                        ih = iv;
                    }
                }
                if ix < 1 {
                    ix = 1;
                }
                if iv > l_lcm {
                    iv = l_lcm;
                }
                if gcm[ix as usize] == lcm[iv] {
                    break;
                }
            }
        } else {
            d = 1.0;
        }
        if d < dip {
            break;
        }

        // Dip within the current convex minorant.
        let mut dip_l = 0.0f64;
        for j in ig..l_gcm {
            let mut max_t = 1.0f64;
            let (jb, je) = (gcm[j + 1], gcm[j]);
            if je > jb + 1 && x[je] != x[jb] {
                let c = (je - jb) as f64 / (x[je] - x[jb]);
                for jj in jb..=je {
                    let t = (jj - jb + 1) as f64 - (x[jj] - x[jb]) * c;
                    if t > max_t {
                        max_t = t;
                    }
                }
            }
            if max_t > dip_l {
                dip_l = max_t;
            }
        }
        // Dip within the current concave majorant.
        let mut dip_u = 0.0f64;
        for j in ih..l_lcm {
            let mut max_t = 1.0f64;
            let (jb, je) = (lcm[j], lcm[j + 1]);
            if je > jb + 1 && x[je] != x[jb] {
                let c = (je - jb) as f64 / (x[je] - x[jb]);
                for jj in jb..=je {
                    let t = (x[jj] - x[jb]) * c - (jj as f64 - jb as f64 - 1.0);
                    if t > max_t {
                        max_t = t;
                    }
                }
            }
            if max_t > dip_u {
                dip_u = max_t;
            }
        }

        let dipnew = dip_l.max(dip_u);
        if dipnew > dip {
            dip = dipnew;
        }

        if low == gcm[ig] && high == lcm[ih] {
            break; // no further improvement possible
        }
        low = gcm[ig];
        high = lcm[ih];
    }
    dip / (2.0 * n as f64)
}

/// The bimodality coefficient `BC = (γ₁² + 1)/κ` (population form), in
/// (0, 1]; values above ~5/9 suggest bimodality. A cheap secondary metric
/// computable from the composable moments sketch.
pub fn bimodality_coefficient(values: &[f64]) -> f64 {
    let m = Moments::from_slice(values);
    let kurt = m.kurtosis();
    if !kurt.is_finite() || kurt == 0.0 {
        return f64::NAN;
    }
    let skew = m.skewness();
    (skew * skew + 1.0) / kurt
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::datasets::dist::normal_quantile;

    fn normal_sample(n: usize) -> Vec<f64> {
        (1..n)
            .map(|i| normal_quantile(i as f64 / n as f64))
            .collect()
    }

    #[test]
    fn uniform_spacing_has_minimal_dip() {
        // perfectly uniform data is exactly unimodal: dip = 1/(2n)
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = dip_statistic(&x).unwrap();
        assert!((d - 1.0 / 200.0).abs() < 1e-12, "dip = {d}");
    }

    #[test]
    fn two_point_masses_reach_max_dip() {
        let d = dip_statistic(&[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!((d - 0.25).abs() < 1e-12, "dip = {d}");
    }

    #[test]
    fn bimodal_beats_unimodal() {
        let uni = normal_sample(800);
        let mut bi = normal_sample(400);
        bi.extend(normal_sample(400).iter().map(|v| v + 6.0));
        let d_uni = dip_statistic(&uni).unwrap();
        let d_bi = dip_statistic(&bi).unwrap();
        assert!(
            d_bi > 3.0 * d_uni,
            "bimodal dip {d_bi} not ≫ unimodal dip {d_uni}"
        );
    }

    #[test]
    fn dip_bounds_hold() {
        for data in [
            normal_sample(50),
            (0..30).map(|i| (i * i) as f64).collect::<Vec<_>>(),
            vec![1.0, 1.0, 2.0, 2.0, 3.0],
        ] {
            let n = data.len() as f64;
            let d = dip_statistic(&data).unwrap();
            assert!(d >= 1.0 / (2.0 * n) - 1e-12, "dip {d} below floor");
            assert!(d <= 0.25 + 1e-12, "dip {d} above ceiling");
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(dip_statistic(&[]).is_none());
        assert_eq!(dip_statistic(&[5.0]), Some(0.0));
        assert_eq!(dip_statistic(&[3.0, 3.0, 3.0]), Some(0.0));
        assert_eq!(dip_statistic(&[f64::NAN, 2.0]), Some(0.0));
    }

    #[test]
    fn insensitive_to_order() {
        let a = vec![5.0, 1.0, 3.0, 2.0, 4.0, 1.5, 3.5];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(dip_statistic(&a), dip_statistic(&b));
    }

    #[test]
    fn trimodal_still_detected() {
        let mut tri = normal_sample(300);
        tri.extend(normal_sample(300).iter().map(|v| v + 7.0));
        tri.extend(normal_sample(300).iter().map(|v| v + 14.0));
        let d = dip_statistic(&tri).unwrap();
        let d_uni = dip_statistic(&normal_sample(900)).unwrap();
        assert!(d > 3.0 * d_uni, "trimodal dip {d} vs unimodal {d_uni}");
    }

    #[test]
    fn bimodality_coefficient_separates() {
        let uni = normal_sample(2000);
        let mut bi = normal_sample(1000);
        bi.extend(normal_sample(1000).iter().map(|v| v + 6.0));
        let bc_uni = bimodality_coefficient(&uni);
        let bc_bi = bimodality_coefficient(&bi);
        assert!(bc_uni < 5.0 / 9.0, "uni BC = {bc_uni}");
        assert!(bc_bi > 5.0 / 9.0, "bi BC = {bc_bi}");
    }
}
