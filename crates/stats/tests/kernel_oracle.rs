//! Property tests pinning the vectorized kernels to their scalar oracles.
//!
//! Two kinds of contract, matching `DESIGN.md` §13:
//!
//! * **Bit-identity** where the floating-point schedule is shared: the
//!   masked and scratch-reusing correlation entry points compact exactly
//!   the rows the allocating form would, and the pre-centered Pearson path
//!   shares the fused pass's lane schedule — so those pairs must agree to
//!   the bit, in either kernel mode.
//! * **Pinned ε** where the lane split reassociates sums: vectorized
//!   `sum`/`dot`/`dot3_centered` and `Moments::from_slice` against their
//!   sequential oracles. Count, `min`, and `max` are exact regardless —
//!   only the floating-point accumulations may move in the last bits.
//!
//! Inputs deliberately cover every lane-remainder length (0 ..= 2·LANES),
//! leading/interleaved/all-NaN patterns, subnormals, and ±∞.

use foresight_data::PresenceMask;
use foresight_stats::correlation::{
    center, pearson, pearson_centered, pearson_complete, pearson_complete_scalar, pearson_masked,
    pearson_with, spearman, spearman_masked, spearman_with, PairScratch,
};
use foresight_stats::kernel::{self, KernelMode, LANES};
use foresight_stats::moments::Moments;
use proptest::prelude::*;

fn finite(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 0..max_len)
}

/// Finite data with ~20% NaN holes.
fn holey(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    // ~20% NaN: the stub's `prop_oneof!` is unweighted, so repeat the
    // finite arm
    proptest::collection::vec(
        prop_oneof![
            -1e6f64..1e6,
            -1e6f64..1e6,
            -1e6f64..1e6,
            -1e6f64..1e6,
            Just(f64::NAN),
        ],
        0..max_len,
    )
}

/// Everything the kernels must survive: NaN, ±∞, subnormals, signed zero.
fn wild(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            -1e6f64..1e6,
            -1e6f64..1e6,
            -1e6f64..1e6,
            -1e6f64..1e6,
            -1e6f64..1e6,
            -1e6f64..1e6,
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(5e-324),  // smallest positive subnormal
            Just(-1e-310), // negative subnormal
            Just(-0.0),
        ],
        0..max_len,
    )
}

fn close(a: f64, b: f64, rel: f64, abs: f64) -> bool {
    (a - b).abs() <= b.abs() * rel + abs
}

/// Count/min/max must match the oracle exactly; the accumulated moments may
/// differ by lane reassociation on finite data and must agree on
/// finite-vs-non-finite classification otherwise.
fn assert_moments_match(values: &[f64]) -> Result<(), TestCaseError> {
    let vec = kernel::with_mode(KernelMode::Vectorized, || Moments::from_slice(values));
    let scal = Moments::from_slice_scalar(values);
    prop_assert_eq!(vec.count(), scal.count());
    prop_assert_eq!(vec.min().to_bits(), scal.min().to_bits());
    prop_assert_eq!(vec.max().to_bits(), scal.max().to_bits());
    if vec.count() == 0 {
        // empty summary (no present values): every derived statistic is
        // the same 0/0 NaN on both paths
        prop_assert_eq!(vec.mean().to_bits(), scal.mean().to_bits());
        return Ok(());
    }
    let all_finite = values.iter().all(|v| v.is_nan() || v.is_finite());
    if all_finite {
        prop_assert!(
            close(vec.mean(), scal.mean(), 1e-9, 1e-9),
            "mean {} vs {}",
            vec.mean(),
            scal.mean()
        );
        prop_assert!(
            close(
                vec.population_variance(),
                scal.population_variance(),
                1e-6,
                1e-6
            ),
            "variance {} vs {}",
            vec.population_variance(),
            scal.population_variance()
        );
        for (a, b) in [
            (vec.skewness(), scal.skewness()),
            (vec.excess_kurtosis(), scal.excess_kurtosis()),
        ] {
            // shape statistics are ratios of power sums: compare only when
            // the oracle's value is stable, and classify NaN together
            prop_assert_eq!(a.is_nan(), b.is_nan(), "shape {} vs {}", a, b);
            if b.is_finite() && b.abs() < 1e6 {
                prop_assert!(close(a, b, 1e-3, 1e-3), "shape {} vs {}", a, b);
            }
        }
    } else {
        // a present ±∞ poisons the sums on both paths — the exact garbage
        // differs (∞·0 = NaN appears at different steps) but neither path
        // may launder it into a finite number
        prop_assert!(!vec.mean().is_finite(), "vectorized mean {}", vec.mean());
        prop_assert!(!scal.mean().is_finite(), "scalar mean {}", scal.mean());
    }
    Ok(())
}

proptest! {
    #[test]
    fn sum_and_dot_match_scalar(x in finite(200)) {
        let y: Vec<f64> = x.iter().map(|v| v * 0.75 - 3.0).collect();
        let (sv, dv) = kernel::with_mode(KernelMode::Vectorized, || {
            (kernel::sum(&x), kernel::dot(&x, &y))
        });
        let (ss, ds) = kernel::with_mode(KernelMode::Scalar, || {
            (kernel::sum(&x), kernel::dot(&x, &y))
        });
        prop_assert!(close(sv, ss, 1e-12, 1e-9), "sum {} vs {}", sv, ss);
        prop_assert!(close(dv, ds, 1e-12, 1e-6), "dot {} vs {}", dv, ds);
    }

    #[test]
    fn dot3_matches_scalar(x in finite(200), mx in -10.0f64..10.0, my in -10.0f64..10.0) {
        let y: Vec<f64> = x.iter().rev().copied().collect();
        let v = kernel::with_mode(KernelMode::Vectorized, || kernel::dot3_centered(&x, &y, mx, my));
        let s = kernel::with_mode(KernelMode::Scalar, || kernel::dot3_centered(&x, &y, mx, my));
        for ((a, b), name) in [(v.0, s.0), (v.1, s.1), (v.2, s.2)].into_iter().zip(["sxy", "sxx", "syy"]) {
            prop_assert!(close(a, b, 1e-9, 1e-6), "{}: {} vs {}", name, a, b);
        }
    }

    #[test]
    fn pearson_complete_matches_scalar(pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..120)) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let v = pearson_complete(&x, &y);
        let s = pearson_complete_scalar(&x, &y);
        prop_assert_eq!(v.is_nan(), s.is_nan());
        if !v.is_nan() {
            prop_assert!(close(v, s, 1e-9, 1e-9), "{} vs {}", v, s);
        }
    }

    #[test]
    fn moments_match_oracle_on_finite_data(values in finite(200)) {
        assert_moments_match(&values)?;
    }

    #[test]
    fn moments_match_oracle_with_nan_holes(values in holey(200)) {
        assert_moments_match(&values)?;
    }

    #[test]
    fn moments_classify_wild_inputs_like_oracle(values in wild(150)) {
        let vec = kernel::with_mode(KernelMode::Vectorized, || Moments::from_slice(&values));
        let scal = Moments::from_slice_scalar(&values);
        prop_assert_eq!(vec.count(), scal.count());
        prop_assert_eq!(vec.min().to_bits(), scal.min().to_bits());
        prop_assert_eq!(vec.max().to_bits(), scal.max().to_bits());
        let has_inf = values.iter().any(|v| v.is_infinite());
        if has_inf {
            prop_assert!(!vec.mean().is_finite() && !scal.mean().is_finite());
        } else if vec.count() > 0 {
            prop_assert!(close(vec.mean(), scal.mean(), 1e-9, 1e-9));
        }
    }

    #[test]
    fn masked_and_scratch_paths_are_bit_identical(x in holey(150), mode_scalar in prop_oneof![Just(false), Just(true)]) {
        // the NaN-mask compaction must select exactly the rows the per-row
        // scan selects, in the same order — downstream statistics then agree
        // to the bit, whichever kernel mode runs them
        let y: Vec<f64> = x.iter().rev().map(|v| v * 1.5 + 1.0).collect();
        let mode = if mode_scalar { KernelMode::Scalar } else { KernelMode::Vectorized };
        kernel::with_mode(mode, || -> Result<(), TestCaseError> {
            let mx = PresenceMask::from_values(&x);
            let my = PresenceMask::from_values(&y);
            let mut scratch = PairScratch::new();
            prop_assert_eq!(
                pearson_with(&x, &y, &mut scratch).to_bits(),
                pearson(&x, &y).to_bits()
            );
            prop_assert_eq!(
                pearson_masked(&x, &y, &mx, &my, &mut scratch).to_bits(),
                pearson(&x, &y).to_bits()
            );
            prop_assert_eq!(
                spearman_with(&x, &y, &mut scratch).to_bits(),
                spearman(&x, &y).to_bits()
            );
            prop_assert_eq!(
                spearman_masked(&x, &y, &mx, &my, &mut scratch).to_bits(),
                spearman(&x, &y).to_bits()
            );
            Ok(())
        })?;
    }

    #[test]
    fn centered_pearson_is_bit_identical_to_fused(pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..120), mode_scalar in prop_oneof![Just(false), Just(true)]) {
        // pearson_centered and pearson_complete share one lane schedule —
        // the contract that lets the batch scorers cache centered columns
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let mode = if mode_scalar { KernelMode::Scalar } else { KernelMode::Vectorized };
        kernel::with_mode(mode, || -> Result<(), TestCaseError> {
            let (Some(cx), Some(cy)) = (center(&x), center(&y)) else {
                return Ok(()); // degenerate (constant) column
            };
            prop_assert_eq!(
                pearson_centered(&cx, &cy).to_bits(),
                pearson_complete(&x, &y).to_bits()
            );
            Ok(())
        })?;
    }
}

/// Every lane-remainder class, exhaustively: lengths 0 ..= 2·LANES with a
/// deterministic value pattern, so chunk/tail boundaries are all exercised
/// even if proptest's random lengths happen to miss one.
#[test]
fn every_remainder_length_matches_oracle() {
    for n in 0..=2 * LANES {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                if i % 7 == 3 {
                    f64::NAN
                } else {
                    (i as f64 * 0.37).sin() * 1e3
                }
            })
            .collect();
        assert_moments_match(&values).unwrap();
        let y: Vec<f64> = values.iter().rev().copied().collect();
        let mut scratch = PairScratch::new();
        assert_eq!(
            pearson_with(&values, &y, &mut scratch).to_bits(),
            pearson(&values, &y).to_bits(),
            "scratch path diverges at n = {n}"
        );
    }
}

/// Leading-NaN and all-NaN inputs: the compaction and the branch-free
/// moment passes must agree with the oracle when presence starts late or
/// never.
#[test]
fn leading_and_all_nan_patterns() {
    let n = 3 * LANES + 5;
    let leading: Vec<f64> = (0..n)
        .map(|i| if i < LANES + 3 { f64::NAN } else { i as f64 })
        .collect();
    assert_moments_match(&leading).unwrap();
    let all_nan = vec![f64::NAN; n];
    assert_moments_match(&all_nan).unwrap();
    let m = Moments::from_slice(&all_nan);
    assert_eq!(m.count(), 0);
    assert!(m.min().is_nan(), "empty summary reports NaN min");
    assert!(m.max().is_nan(), "empty summary reports NaN max");
}

/// Subnormal inputs survive both paths without flushing to garbage: exact
/// count/min/max, and the means stay tiny rather than zero or NaN.
#[test]
fn subnormals_are_preserved() {
    let values: Vec<f64> = (0..2 * LANES + 3)
        .map(|i| 5e-324 * (i as f64 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    assert_moments_match(&values).unwrap();
    let vec = Moments::from_slice(&values);
    assert!(vec.mean().abs() < 1e-300);
}
