//! Property-based tests for the exact statistics.

use foresight_stats::correlation::{pearson, spearman};
use foresight_stats::moments::Moments;
use foresight_stats::multimodal::dip_statistic;
use foresight_stats::quantile::{quantile, rank_of};
use foresight_stats::rank::fractional_ranks;
use proptest::prelude::*;

fn data(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 2..max_len)
}

proptest! {
    #[test]
    fn moments_merge_associative(a in data(50), b in data(50), c in data(50)) {
        // (a ⊕ b) ⊕ c == summary of concatenation, within float tolerance
        let mut left = Moments::from_slice(&a);
        left.merge(&Moments::from_slice(&b));
        left.merge(&Moments::from_slice(&c));
        let all: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        let whole = Moments::from_slice(&all);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= whole.mean().abs() * 1e-9 + 1e-9);
        let (va, vb) = (left.population_variance(), whole.population_variance());
        prop_assert!((va - vb).abs() <= vb.abs() * 1e-6 + 1e-6, "var {} vs {}", va, vb);
    }

    #[test]
    fn moments_min_max_exact(values in data(100)) {
        let m = Moments::from_slice(&values);
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(m.min(), lo);
        prop_assert_eq!(m.max(), hi);
        prop_assert!(m.population_variance() >= 0.0);
    }

    #[test]
    fn ranks_are_a_permutation_average(values in data(80)) {
        let ranks = fractional_ranks(&values);
        let sum: f64 = ranks.iter().sum();
        let n = values.len() as f64;
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        // ranks are order-consistent
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] < values[j] {
                    prop_assert!(ranks[i] < ranks[j]);
                }
            }
        }
    }

    #[test]
    fn correlations_bounded_and_symmetric(pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..60)) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = pearson(&x, &y);
        if r.is_finite() {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            prop_assert!((r - pearson(&y, &x)).abs() < 1e-12);
        }
        let s = spearman(&x, &y);
        if s.is_finite() {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
        }
    }

    #[test]
    fn pearson_affine_invariant(values in data(50), a in 0.1f64..10.0, b in -100.0f64..100.0) {
        let y: Vec<f64> = values.iter().map(|v| a * v + b).collect();
        let r = pearson(&values, &y);
        if r.is_finite() {
            prop_assert!((r - 1.0).abs() < 1e-6, "r = {}", r);
        }
    }

    #[test]
    fn quantiles_monotone(values in data(100), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&values, lo).unwrap();
        let b = quantile(&values, hi).unwrap();
        prop_assert!(a <= b);
        // quantile is always within the data range
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min && b <= max);
    }

    #[test]
    fn rank_of_quantile_consistent(values in data(100), q in 0.05f64..0.95) {
        let v = quantile(&values, q).unwrap();
        let r = rank_of(&values, v);
        // type-7 interpolation guarantees count(≤ v) ≥ ⌊q(n−1)⌋ + 1,
        // i.e. rank ≥ q − 1/n
        let n = values.len() as f64;
        prop_assert!(r + 1.0 / n + 1e-9 >= q, "rank {} < q {} - 1/n", r, q);
    }

    #[test]
    fn dip_bounds(values in data(100)) {
        let d = dip_statistic(&values).unwrap();
        let n = values.len() as f64;
        prop_assert!(d <= 0.25 + 1e-12, "dip {}", d);
        // distinct-value samples respect the floor; ties can push below it
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        if sorted.len() == values.len() {
            prop_assert!(d + 1e-12 >= 1.0 / (2.0 * n), "dip {}", d);
        }
    }

    #[test]
    fn dip_translation_and_scale_invariant(values in data(60), shift in -1e3f64..1e3, scale in 0.1f64..10.0) {
        let transformed: Vec<f64> = values.iter().map(|v| v * scale + shift).collect();
        let d1 = dip_statistic(&values).unwrap();
        let d2 = dip_statistic(&transformed).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-9, "{} vs {}", d1, d2);
    }
}
