//! Random projection (Johnson–Lindenstrauss / AMS-style) sketch.
//!
//! Each column is projected onto `k` shared random Gaussian directions:
//! `yᵢ = (1/√k)·Σⱼ xⱼ·gᵢⱼ`. Inner products, Euclidean norms (F₂ moments),
//! and distances between columns are preserved in expectation with variance
//! `O(1/k)` — the real-valued sibling of the hyperplane sketch, used when a
//! magnitude (not just an angle) is needed.

use crate::traits::{MergeError, Mergeable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration shared across all projections of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProjectionConfig {
    /// Number of random directions.
    pub k: usize,
    /// Seed of the shared directions.
    pub seed: u64,
}

impl Default for ProjectionConfig {
    fn default() -> Self {
        Self {
            k: 128,
            seed: 0xA11CE,
        }
    }
}

/// Builds projection sketches with shared randomness.
#[derive(Debug, Clone)]
pub struct SharedProjections {
    config: ProjectionConfig,
}

impl SharedProjections {
    /// Creates the shared family.
    pub fn new(config: ProjectionConfig) -> Self {
        assert!(config.k > 0, "k must be positive");
        Self { config }
    }

    /// Projects several equal-length columns in one pass over the rows,
    /// streaming the shared Gaussian directions. `NaN` entries contribute 0.
    pub fn project_columns(&self, columns: &[&[f64]]) -> Vec<ProjectionSketch> {
        let k = self.config.k;
        let n = columns.first().map(|c| c.len()).unwrap_or(0);
        for c in columns {
            assert_eq!(c.len(), n, "all columns must have equal length");
        }
        let mut acc = vec![vec![0.0f64; k]; columns.len()];
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut g = vec![0.0f64; k];
        for j in 0..n {
            fill_gaussians(&mut rng, &mut g);
            for (c, col) in columns.iter().enumerate() {
                let v = col[j];
                if v.is_nan() || v == 0.0 {
                    continue;
                }
                let acc_c = &mut acc[c];
                for i in 0..k {
                    acc_c[i] += v * g[i];
                }
            }
        }
        let scale = 1.0 / (k as f64).sqrt();
        acc.into_iter()
            .map(|mut y| {
                for v in &mut y {
                    *v *= scale;
                }
                ProjectionSketch {
                    y,
                    config: self.config,
                    rows: n as u64,
                }
            })
            .collect()
    }

    /// Projects a single column.
    pub fn project_column(&self, column: &[f64]) -> ProjectionSketch {
        self.project_columns(&[column])
            .pop()
            .expect("one column in, one sketch out")
    }
}

fn fill_gaussians(rng: &mut StdRng, out: &mut [f64]) {
    let mut i = 0;
    while i < out.len() {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        out[i] = r * theta.cos();
        i += 1;
        if i < out.len() {
            out[i] = r * theta.sin();
            i += 1;
        }
    }
}

/// A projected column: `k` real numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectionSketch {
    y: Vec<f64>,
    config: ProjectionConfig,
    rows: u64,
}

impl ProjectionSketch {
    /// The projected coordinates.
    pub fn coords(&self) -> &[f64] {
        &self.y
    }

    /// Estimated squared Euclidean norm `‖x‖²` (the F₂ moment).
    pub fn norm_squared(&self) -> f64 {
        self.y.iter().map(|v| v * v).sum()
    }

    /// Estimated inner product `⟨x, z⟩` with another column's sketch.
    pub fn dot(&self, other: &Self) -> Result<f64, MergeError> {
        self.check(other)?;
        Ok(self.y.iter().zip(&other.y).map(|(a, b)| a * b).sum())
    }

    /// Estimated squared Euclidean distance `‖x − z‖²`.
    pub fn distance_squared(&self, other: &Self) -> Result<f64, MergeError> {
        self.check(other)?;
        Ok(self
            .y
            .iter()
            .zip(&other.y)
            .map(|(a, b)| (a - b) * (a - b))
            .sum())
    }

    fn check(&self, other: &Self) -> Result<(), MergeError> {
        if self.config.k != other.config.k {
            return Err(MergeError::SizeMismatch(self.config.k, other.config.k));
        }
        if self.config.seed != other.config.seed {
            return Err(MergeError::SeedMismatch);
        }
        if self.rows != other.rows {
            return Err(MergeError::ParameterMismatch("row universe"));
        }
        Ok(())
    }
}

impl Mergeable for ProjectionSketch {
    /// Merging sketches of disjoint row partitions (with disjoint shared
    /// randomness streams) is coordinate-wise addition by linearity.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.config.k != other.config.k {
            return Err(MergeError::SizeMismatch(self.config.k, other.config.k));
        }
        if self.config.seed != other.config.seed {
            return Err(MergeError::SeedMismatch);
        }
        for (a, b) in self.y.iter_mut().zip(&other.y) {
            *a += b;
        }
        self.rows += other.rows;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_vectors(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        // x, a scaled copy, and an orthogonal-ish vector
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 37 % 100) as f64 - 50.0) / 50.0)
            .collect();
        let scaled: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        let orth: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { x[i + 1] } else { -x[i - 1] })
            .collect();
        (x, scaled, orth)
    }

    #[test]
    fn norm_preserved() {
        let (x, _, _) = unit_vectors(2_000);
        let sp = SharedProjections::new(ProjectionConfig { k: 512, seed: 1 });
        let s = sp.project_column(&x);
        let exact: f64 = x.iter().map(|v| v * v).sum();
        assert!(
            (s.norm_squared() - exact).abs() / exact < 0.15,
            "est {} exact {exact}",
            s.norm_squared()
        );
    }

    #[test]
    fn dot_products_preserved() {
        let (x, scaled, orth) = unit_vectors(2_000);
        let sp = SharedProjections::new(ProjectionConfig { k: 1024, seed: 2 });
        let sk = sp.project_columns(&[&x, &scaled, &orth]);
        let exact_xs: f64 = x.iter().zip(&scaled).map(|(a, b)| a * b).sum();
        let est = sk[0].dot(&sk[1]).unwrap();
        assert!((est - exact_xs).abs() / exact_xs < 0.15, "est {est}");
        // orthogonal vectors: dot near zero relative to norms
        let est_orth = sk[0].dot(&sk[2]).unwrap();
        assert!(est_orth.abs() < 0.15 * exact_xs, "orth dot {est_orth}");
    }

    #[test]
    fn distances_preserved() {
        let (x, scaled, _) = unit_vectors(1_000);
        let sp = SharedProjections::new(ProjectionConfig { k: 1024, seed: 3 });
        let sk = sp.project_columns(&[&x, &scaled]);
        let exact: f64 = x.iter().zip(&scaled).map(|(a, b)| (a - b) * (a - b)).sum();
        let est = sk[0].distance_squared(&sk[1]).unwrap();
        assert!((est - exact).abs() / exact < 0.2, "est {est} exact {exact}");
    }

    #[test]
    fn incompatible_rejected() {
        let x = vec![1.0, 2.0];
        let a = SharedProjections::new(ProjectionConfig { k: 64, seed: 1 }).project_column(&x);
        let b = SharedProjections::new(ProjectionConfig { k: 64, seed: 9 }).project_column(&x);
        assert!(a.dot(&b).is_err());
    }

    #[test]
    fn nan_treated_as_zero() {
        let x = vec![1.0, f64::NAN, 3.0];
        let z = vec![1.0, 0.0, 3.0];
        let sp = SharedProjections::new(ProjectionConfig { k: 64, seed: 4 });
        assert_eq!(sp.project_column(&x), sp.project_column(&z));
    }

    #[test]
    fn merge_is_additive() {
        let sp = SharedProjections::new(ProjectionConfig { k: 32, seed: 5 });
        let x = vec![1.0, 2.0, 3.0];
        let mut a = sp.project_column(&x);
        let b = sp.project_column(&x);
        a.merge(&b).unwrap();
        for (m, s) in a.coords().iter().zip(b.coords()) {
            assert!((m - 2.0 * s).abs() < 1e-12);
        }
    }
}
