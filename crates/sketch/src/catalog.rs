//! The per-table sketch catalog — the paper's preprocessing phase (§3).
//!
//! One build pass produces, for every numeric column: composable moments,
//! a hyperplane (correlation) sketch, a KLL quantile sketch, and a
//! reservoir sample; and for every categorical column: a SpaceSaving
//! heavy-hitter sketch and a stable-projection entropy sketch. Insight
//! queries are then answered from the catalog without touching the raw data.

use crate::entropy::EntropySketch;
use crate::freq::space_saving::SpaceSaving;
use crate::hyperplane::{HyperplaneConfig, HyperplaneSketch, SharedHyperplanes};
use crate::quantile::kll::KllSketch;
use crate::sample::Reservoir;
use foresight_data::Table;
use foresight_stats::moments::Moments;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tuning knobs for catalog construction.
#[derive(Debug, Clone)]
pub struct CatalogConfig {
    /// Hyperplane bits per column; `None` applies the paper's
    /// `k = O(log²n)` rule via [`HyperplaneConfig::for_rows`].
    pub hyperplane_k: Option<usize>,
    /// KLL accuracy parameter.
    pub kll_k: usize,
    /// SpaceSaving counters per categorical column.
    pub freq_counters: usize,
    /// Entropy-sketch registers.
    pub entropy_k: usize,
    /// Reservoir sample size per numeric column.
    pub reservoir: usize,
    /// Seed for all shared randomness.
    pub seed: u64,
    /// Build columns in parallel with rayon (the paper's future-work
    /// parallelism; ablated in the benchmarks).
    pub parallel: bool,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            hyperplane_k: None,
            kll_k: 200,
            freq_counters: 64,
            entropy_k: 256,
            reservoir: 1_000,
            seed: 0xF0E5,
            parallel: false,
        }
    }
}

/// Sketches of one numeric column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NumericSketches {
    /// Composable first-four-moments summary (dispersion, skew, kurtosis).
    pub moments: Moments,
    /// Random hyperplane sketch (pairwise correlation estimates).
    pub hyperplane: HyperplaneSketch,
    /// Hyperplane sketch of the rank-transformed column: since Spearman's ρ
    /// is Pearson on ranks, two of these combine into a Spearman estimate.
    pub rank_hyperplane: HyperplaneSketch,
    /// KLL quantile sketch (approximate quantiles, IQR, box plots).
    pub quantiles: KllSketch,
    /// Uniform reservoir sample (shape metrics with no dedicated sketch).
    pub reservoir: Reservoir,
}

/// Sketches of one categorical column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CategoricalSketches {
    /// SpaceSaving heavy hitters (approximate `RelFreq(k)` and Pareto data).
    pub heavy_hitters: SpaceSaving,
    /// Stable-projection entropy sketch (concentration metric).
    pub entropy: EntropySketch,
    /// Present (non-missing) count.
    pub total: u64,
    /// Exact distinct-label count (known from dictionary encoding).
    pub cardinality: usize,
}

/// All sketches of one table, keyed by column index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SketchCatalog {
    numeric: HashMap<usize, NumericSketches>,
    categorical: HashMap<usize, CategoricalSketches>,
    rows: usize,
    hyperplane_config: HyperplaneConfig,
}

impl SketchCatalog {
    /// Builds the catalog for `table`.
    pub fn build(table: &Table, config: &CatalogConfig) -> Self {
        let hyperplane_config = match config.hyperplane_k {
            Some(k) => HyperplaneConfig {
                k,
                seed: config.seed,
                ..Default::default()
            },
            None => HyperplaneConfig::for_rows(table.n_rows(), config.seed),
        };
        let hp = SharedHyperplanes::new(hyperplane_config);

        let numeric_indices = table.numeric_indices();
        let numeric_cols: Vec<&[f64]> = numeric_indices
            .iter()
            .map(|&i| table.numeric(i).expect("index from schema").values())
            .collect();

        // Hyperplane sketches: shared randomness means each chunk of columns
        // can re-stream the same Gaussian sequence independently, so
        // column-chunk parallelism is exact, not approximate.
        let sketch_all = |cols: &[&[f64]]| -> Vec<HyperplaneSketch> {
            if config.parallel && cols.len() > 1 {
                cols.par_chunks(8.max(cols.len() / rayon::current_num_threads().max(1)))
                    .flat_map(|chunk| hp.sketch_columns(chunk))
                    .collect()
            } else {
                hp.sketch_columns(cols)
            }
        };
        let hyperplanes = sketch_all(&numeric_cols);

        // Rank-transform each column (missing cells stay missing) and sketch
        // the ranks with the same shared hyperplanes → Spearman estimates.
        let rank_transform = |col: &&[f64]| -> Vec<f64> {
            let present: Vec<f64> = col.iter().copied().filter(|v| !v.is_nan()).collect();
            let ranks = foresight_stats::rank::fractional_ranks(&present);
            let mut out = Vec::with_capacity(col.len());
            let mut next = 0usize;
            for &v in col.iter() {
                if v.is_nan() {
                    out.push(f64::NAN);
                } else {
                    out.push(ranks[next]);
                    next += 1;
                }
            }
            out
        };
        let ranked: Vec<Vec<f64>> = if config.parallel {
            numeric_cols.par_iter().map(rank_transform).collect()
        } else {
            numeric_cols.iter().map(rank_transform).collect()
        };
        let ranked_refs: Vec<&[f64]> = ranked.iter().map(Vec::as_slice).collect();
        let rank_hyperplanes = sketch_all(&ranked_refs);

        type NumericJob<'a> = (
            &'a usize,
            ((&'a &'a [f64], &'a HyperplaneSketch), &'a HyperplaneSketch),
        );
        let build_one =
            |(&idx, ((col, hyperplane), rank_hp)): NumericJob| -> (usize, NumericSketches) {
                let mut quantiles = KllSketch::new(config.kll_k);
                let mut reservoir =
                    Reservoir::new(config.reservoir.max(1), config.seed ^ idx as u64);
                for &v in col.iter() {
                    quantiles.insert(v);
                    reservoir.insert(v);
                }
                (
                    idx,
                    NumericSketches {
                        moments: Moments::from_slice(col),
                        hyperplane: hyperplane.clone(),
                        rank_hyperplane: rank_hp.clone(),
                        quantiles,
                        reservoir,
                    },
                )
            };

        let zipped: Vec<NumericJob> = numeric_indices
            .iter()
            .zip(
                numeric_cols
                    .iter()
                    .zip(hyperplanes.iter())
                    .zip(rank_hyperplanes.iter()),
            )
            .collect();
        let numeric: HashMap<usize, NumericSketches> = if config.parallel {
            zipped.into_par_iter().map(build_one).collect()
        } else {
            zipped.into_iter().map(build_one).collect()
        };

        let cat_one = |&idx: &usize| -> (usize, CategoricalSketches) {
            let col = table.categorical(idx).expect("index from schema");
            // dictionary encoding gives exact per-label counts cheaply; the
            // sketches absorb them as weighted inserts (equivalent to
            // streaming every row, but O(cardinality·k) instead of O(n·k))
            let mut counts = vec![0u64; col.cardinality()];
            for code in col.present_codes() {
                counts[code as usize] += 1;
            }
            let mut heavy = SpaceSaving::new(config.freq_counters);
            let mut entropy = EntropySketch::new(config.entropy_k, config.seed);
            for (code, &c) in counts.iter().enumerate() {
                if c > 0 {
                    let label = &col.labels()[code];
                    heavy.insert_weighted(label, c);
                    entropy.insert_weighted(label, c);
                }
            }
            let total = counts.iter().sum();
            (
                idx,
                CategoricalSketches {
                    heavy_hitters: heavy,
                    entropy,
                    total,
                    cardinality: col.cardinality(),
                },
            )
        };

        let cat_indices = table.categorical_indices();
        let categorical: HashMap<usize, CategoricalSketches> = if config.parallel {
            cat_indices.par_iter().map(cat_one).collect()
        } else {
            cat_indices.iter().map(cat_one).collect()
        };

        Self {
            numeric,
            categorical,
            rows: table.n_rows(),
            hyperplane_config,
        }
    }

    /// Rows of the sketched table.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The hyperplane configuration in effect.
    pub fn hyperplane_config(&self) -> HyperplaneConfig {
        self.hyperplane_config
    }

    /// Sketches of the numeric column at `idx`.
    pub fn numeric(&self, idx: usize) -> Option<&NumericSketches> {
        self.numeric.get(&idx)
    }

    /// Sketches of the categorical column at `idx`.
    pub fn categorical(&self, idx: usize) -> Option<&CategoricalSketches> {
        self.categorical.get(&idx)
    }

    /// Indices of sketched numeric columns (unordered).
    pub fn numeric_indices(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.numeric.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Estimated Pearson correlation between two numeric columns, from the
    /// hyperplane sketches alone — `O(k)` bits of work, no data access.
    pub fn correlation(&self, i: usize, j: usize) -> Option<f64> {
        let a = self.numeric.get(&i)?;
        let b = self.numeric.get(&j)?;
        a.hyperplane.correlation(&b.hyperplane).ok()
    }

    /// Estimated Spearman rank correlation between two numeric columns,
    /// from the rank-transformed hyperplane sketches.
    pub fn spearman(&self, i: usize, j: usize) -> Option<f64> {
        let a = self.numeric.get(&i)?;
        let b = self.numeric.get(&j)?;
        a.rank_hyperplane.correlation(&b.rank_hyperplane).ok()
    }

    /// Serializes the catalog to JSON, so the preprocessing phase can run
    /// once and be reused across sessions.
    pub fn save(&self, writer: impl std::io::Write) -> serde_json::Result<()> {
        serde_json::to_writer(writer, self)
    }

    /// Restores a catalog serialized with [`SketchCatalog::save`].
    pub fn load(reader: impl std::io::Read) -> serde_json::Result<Self> {
        serde_json::from_reader(reader)
    }

    /// Total memory consumed by the hyperplane bit vectors, in bytes —
    /// the `|B|·k` bits the paper quotes.
    pub fn hyperplane_bytes(&self) -> usize {
        self.numeric
            .values()
            .map(|s| s.hyperplane.size_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::datasets::{synth, SynthConfig};
    use foresight_stats::correlation::pearson;

    fn table() -> (
        foresight_data::Table,
        foresight_data::datasets::SynthGroundTruth,
    ) {
        synth(&SynthConfig {
            rows: 4_000,
            numeric_cols: 12,
            categorical_cols: 3,
            correlated_fraction: 0.5,
            ..Default::default()
        })
    }

    #[test]
    fn covers_every_column() {
        let (t, _) = table();
        let cat = SketchCatalog::build(&t, &CatalogConfig::default());
        for idx in t.numeric_indices() {
            assert!(cat.numeric(idx).is_some(), "numeric {idx} missing");
        }
        for idx in t.categorical_indices() {
            assert!(cat.categorical(idx).is_some(), "categorical {idx} missing");
        }
        assert_eq!(cat.rows(), 4_000);
    }

    #[test]
    fn sketch_correlations_track_exact() {
        let (t, truth) = table();
        let cat = SketchCatalog::build(
            &t,
            &CatalogConfig {
                hyperplane_k: Some(1024),
                ..Default::default()
            },
        );
        for &(i, j, _) in &truth.correlated_pairs {
            let est = cat.correlation(i, j).unwrap();
            let exact = pearson(
                t.numeric(i).unwrap().values(),
                t.numeric(j).unwrap().values(),
            );
            assert!(
                (est - exact).abs() < 0.12,
                "pair ({i},{j}): est {est}, exact {exact}"
            );
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let (t, _) = table();
        let seq = SketchCatalog::build(
            &t,
            &CatalogConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let par = SketchCatalog::build(
            &t,
            &CatalogConfig {
                parallel: true,
                ..Default::default()
            },
        );
        for idx in seq.numeric_indices() {
            let a = seq.numeric(idx).unwrap();
            let b = par.numeric(idx).unwrap();
            assert_eq!(a.hyperplane, b.hyperplane, "column {idx} differs");
            assert_eq!(a.moments, b.moments);
            assert_eq!(a.quantiles, b.quantiles);
        }
    }

    #[test]
    fn sketch_spearman_tracks_exact() {
        let (t, truth) = table();
        let cat = SketchCatalog::build(
            &t,
            &CatalogConfig {
                hyperplane_k: Some(1024),
                ..Default::default()
            },
        );
        for &(i, j, _) in &truth.correlated_pairs {
            let est = cat.spearman(i, j).unwrap();
            let exact = foresight_stats::correlation::spearman(
                t.numeric(i).unwrap().values(),
                t.numeric(j).unwrap().values(),
            );
            assert!(
                (est - exact).abs() < 0.12,
                "pair ({i},{j}): est {est}, exact {exact}"
            );
        }
    }

    #[test]
    fn moments_match_exact() {
        let (t, _) = table();
        let cat = SketchCatalog::build(&t, &CatalogConfig::default());
        let idx = t.numeric_indices()[0];
        let exact = Moments::from_slice(t.numeric(idx).unwrap().values());
        assert_eq!(cat.numeric(idx).unwrap().moments, exact);
    }

    #[test]
    fn quantile_sketch_close_to_exact() {
        let (t, _) = table();
        let cat = SketchCatalog::build(&t, &CatalogConfig::default());
        let idx = t.numeric_indices()[0];
        let values = t.numeric(idx).unwrap().values();
        let exact = foresight_stats::quantile::quantile(values, 0.5).unwrap();
        let est = cat.numeric(idx).unwrap().quantiles.quantile(0.5).unwrap();
        let spread = foresight_stats::quantile::iqr(values).unwrap();
        assert!(
            (est - exact).abs() < 0.2 * spread,
            "est {est} exact {exact}"
        );
    }

    #[test]
    fn categorical_sketches_sane() {
        let (t, _) = table();
        let cat = SketchCatalog::build(&t, &CatalogConfig::default());
        let idx = t.categorical_indices()[0];
        let s = cat.categorical(idx).unwrap();
        assert_eq!(s.total, 4_000);
        assert!(s.cardinality > 1);
        let ent = s.entropy.estimate();
        assert!(ent > 0.0 && ent < (s.cardinality as f64).ln() + 0.5);
        assert!(!s.heavy_hitters.top().is_empty());
    }

    #[test]
    fn catalog_persists_through_serde() {
        let (t, _) = table();
        let cat = SketchCatalog::build(&t, &CatalogConfig::default());
        let mut buf = Vec::new();
        cat.save(&mut buf).unwrap();
        let back = SketchCatalog::load(buf.as_slice()).unwrap();
        assert_eq!(back.rows(), cat.rows());
        assert_eq!(back.hyperplane_config(), cat.hyperplane_config());
        for idx in cat.numeric_indices() {
            assert_eq!(
                back.correlation(idx, cat.numeric_indices()[0]),
                cat.correlation(idx, cat.numeric_indices()[0])
            );
            assert_eq!(
                back.numeric(idx).unwrap().moments,
                cat.numeric(idx).unwrap().moments
            );
            assert_eq!(
                back.numeric(idx).unwrap().quantiles.quantile(0.5),
                cat.numeric(idx).unwrap().quantiles.quantile(0.5)
            );
        }
        for idx in t.categorical_indices() {
            assert_eq!(
                back.categorical(idx).unwrap().heavy_hitters.top(),
                cat.categorical(idx).unwrap().heavy_hitters.top()
            );
        }
    }

    #[test]
    fn paper_sizing_rule_applied_by_default() {
        let (t, _) = table();
        let cat = SketchCatalog::build(&t, &CatalogConfig::default());
        assert_eq!(
            cat.hyperplane_config().k,
            HyperplaneConfig::for_rows(4_000, 0xF0E5).k
        );
        // |B| columns × k bits
        assert_eq!(
            cat.hyperplane_bytes(),
            t.numeric_indices().len() * cat.hyperplane_config().k / 8
        );
    }
}
