//! The per-table sketch catalog — the paper's preprocessing phase (§3).
//!
//! One build pass produces, for every numeric column: composable moments,
//! a hyperplane (correlation) sketch, a KLL quantile sketch, and a
//! reservoir sample; and for every categorical column: a SpaceSaving
//! heavy-hitter sketch, a stable-projection entropy sketch, and a
//! HyperLogLog distinct counter. Insight queries are then answered from the
//! catalog without touching the raw data.
//!
//! # Partition-native builds
//!
//! The catalog itself is [`Mergeable`]: disjoint row shards of one table can
//! be sketched independently ([`SketchCatalog::build_shard`], fanned out
//! with rayon by [`SketchCatalog::build_sharded`]) and merged field-by-field
//! into a catalog equivalent to a single-pass build. The whole-table
//! [`SketchCatalog::build`] is just the one-shard special case, so both
//! paths share one code path and one set of guarantees:
//!
//! * **moments** — bit-identical to the single-pass build for any shard
//!   split (canonical dyadic reduction, see [`MomentForest`]);
//! * **hyperplane correlation** — shards sketch at their global row offsets
//!   under one row-keyed random family, so merged accumulators cover exactly
//!   the rows a single pass would (estimates agree to float-summation
//!   rounding, ≪ the sketch's own `O(1/√k)` error);
//! * **KLL / entropy / HLL / SpaceSaving** — standard mergeable sketches
//!   with their documented error bounds; HLL merges are exactly
//!   order-invariant;
//! * **Spearman (rank hyperplane)** — ranks are computed *per shard* and
//!   normalized to `(0, 1)`; local ranks approximate global ranks for
//!   random row splits, so merged Spearman estimates carry an extra ε on
//!   top of the sketch error (adversarially sorted splits can distort them);
//! * **reservoir** — merging draws a uniform sample of the union
//!   (distributional, not bit-equal to a single-pass reservoir).
//!
//! Mergeability demands shared randomness and shared error parameters:
//! every shard must be built under one [`CatalogConfig`] whose
//! `hyperplane_k` was pinned against the *total* row count
//! ([`CatalogConfig::resolved_for_rows`]). Mismatched seeds or widths are
//! typed [`MergeError`]s, never silently wrong estimates.

use crate::dyadic::MomentForest;
use crate::entropy::EntropySketch;
use crate::freq::space_saving::SpaceSaving;
use crate::hll::HyperLogLog;
use crate::hyperplane::{
    HyperplaneAccumulator, HyperplaneConfig, HyperplaneSketch, SharedHyperplanes,
};
use crate::quantile::kll::KllSketch;
use crate::sample::Reservoir;
use crate::traits::{MergeError, Mergeable};
use foresight_data::Table;
use foresight_stats::moments::Moments;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// HLL registers for the categorical distinct counter: 2¹² registers ≈ 1.6%
/// relative error, 4 KiB per column.
const DISTINCT_PRECISION: u8 = 12;

/// Tuning knobs for catalog construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// Hyperplane bits per column; `None` applies the paper's
    /// `k = O(log²n)` rule via [`HyperplaneConfig::for_rows`].
    pub hyperplane_k: Option<usize>,
    /// KLL accuracy parameter.
    pub kll_k: usize,
    /// SpaceSaving counters per categorical column.
    pub freq_counters: usize,
    /// Entropy-sketch registers.
    pub entropy_k: usize,
    /// Reservoir sample size per numeric column.
    pub reservoir: usize,
    /// Seed for all shared randomness.
    pub seed: u64,
    /// Build columns in parallel with rayon (the paper's future-work
    /// parallelism; ablated in the benchmarks).
    pub parallel: bool,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            hyperplane_k: None,
            kll_k: 200,
            freq_counters: 64,
            entropy_k: 256,
            reservoir: 1_000,
            seed: 0xF0E5,
            parallel: false,
        }
    }
}

impl CatalogConfig {
    /// Pins `hyperplane_k` by applying the paper's sizing rule to
    /// `total_rows` (a no-op when already set). Per-shard builds of one
    /// logical table **must** share a config resolved against the *total*
    /// row count, otherwise shards would size their hyperplane families
    /// from their own row counts and refuse to merge.
    pub fn resolved_for_rows(&self, total_rows: usize) -> Self {
        let mut resolved = self.clone();
        if resolved.hyperplane_k.is_none() {
            resolved.hyperplane_k = Some(HyperplaneConfig::for_rows(total_rows, self.seed).k);
        }
        resolved
    }

    fn hyperplane_config(&self, rows: usize) -> HyperplaneConfig {
        match self.hyperplane_k {
            Some(k) => HyperplaneConfig {
                k,
                seed: self.seed,
                ..Default::default()
            },
            None => HyperplaneConfig::for_rows(rows, self.seed),
        }
    }

    /// Checks every field that governs sketch compatibility (`parallel` is
    /// execution strategy, not identity).
    fn check_compatible(&self, other: &Self) -> Result<(), MergeError> {
        if self.seed != other.seed {
            return Err(MergeError::SeedMismatch);
        }
        if self.kll_k != other.kll_k {
            return Err(MergeError::ParameterMismatch("kll_k"));
        }
        if self.freq_counters != other.freq_counters {
            return Err(MergeError::ParameterMismatch("freq_counters"));
        }
        if self.entropy_k != other.entropy_k {
            return Err(MergeError::ParameterMismatch("entropy_k"));
        }
        if self.reservoir != other.reservoir {
            return Err(MergeError::ParameterMismatch("reservoir"));
        }
        Ok(())
    }
}

/// Sketches of one numeric column.
///
/// The public fields are the *finalized* views every insight class reads;
/// the private partition state (moment forest, hyperplane accumulators) is
/// what makes two `NumericSketches` of disjoint shards mergeable, and the
/// finalized views are refreshed from it after every merge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NumericSketches {
    /// Composable first-four-moments summary (dispersion, skew, kurtosis).
    pub moments: Moments,
    /// Random hyperplane sketch (pairwise correlation estimates).
    pub hyperplane: HyperplaneSketch,
    /// Hyperplane sketch of the rank-transformed column: since Spearman's ρ
    /// is Pearson on ranks, two of these combine into a Spearman estimate.
    pub rank_hyperplane: HyperplaneSketch,
    /// KLL quantile sketch (approximate quantiles, IQR, box plots).
    pub quantiles: KllSketch,
    /// Uniform reservoir sample (shape metrics with no dedicated sketch).
    pub reservoir: Reservoir,
    /// Partition-invariant moments state (finalizes into `moments`).
    moment_forest: MomentForest,
    /// Pre-quantization hyperplane state (finalizes into `hyperplane`).
    hyperplane_acc: HyperplaneAccumulator,
    /// Pre-quantization rank-hyperplane state.
    rank_hyperplane_acc: HyperplaneAccumulator,
}

impl NumericSketches {
    /// Re-derives the finalized views from the partition state.
    fn refresh(&mut self) {
        self.moments = self.moment_forest.finalize();
        self.hyperplane = self.hyperplane_acc.finalize();
        self.rank_hyperplane = self.rank_hyperplane_acc.finalize();
    }
}

/// Sketches of one categorical column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CategoricalSketches {
    /// SpaceSaving heavy hitters (approximate `RelFreq(k)` and Pareto data).
    pub heavy_hitters: SpaceSaving,
    /// Stable-projection entropy sketch (concentration metric).
    pub entropy: EntropySketch,
    /// Present (non-missing) count.
    pub total: u64,
    /// Distinct-label count: exact for a single-shard build (dictionary
    /// encoding), HLL-estimated (±~1.6%) after merging shards whose label
    /// universes may overlap.
    pub cardinality: usize,
    /// HyperLogLog over labels, for cardinality across merges (per-shard
    /// dictionaries are not aligned, so exact counts don't add).
    pub distinct: HyperLogLog,
}

/// All sketches of one table, keyed by column index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SketchCatalog {
    numeric: HashMap<usize, NumericSketches>,
    categorical: HashMap<usize, CategoricalSketches>,
    rows: usize,
    hyperplane_config: HyperplaneConfig,
    config: CatalogConfig,
}

impl SketchCatalog {
    /// Builds the catalog for a whole `table` — the one-shard special case
    /// of [`SketchCatalog::build_shard`].
    pub fn build(table: &Table, config: &CatalogConfig) -> Self {
        Self::build_shard(table, config, 0)
    }

    /// Builds the catalog for one shard whose rows start at global row
    /// `row_offset`.
    ///
    /// When sketching one shard of a larger table, pass a config resolved
    /// via [`CatalogConfig::resolved_for_rows`] on the **total** row count;
    /// an unresolved `hyperplane_k` falls back to this shard's own row
    /// count, which only suits whole-table builds.
    pub fn build_shard(table: &Table, config: &CatalogConfig, row_offset: u64) -> Self {
        let hyperplane_config = config.hyperplane_config(table.n_rows());
        let hp = SharedHyperplanes::new(hyperplane_config);

        let numeric_indices = table.numeric_indices();
        let numeric_cols: Vec<&[f64]> = numeric_indices
            .iter()
            .map(|&i| table.numeric(i).expect("index from schema").values())
            .collect();

        // Hyperplane accumulators: shared row-keyed randomness means each
        // chunk of columns can re-stream the same component sequence
        // independently, so column-chunk parallelism is exact, not
        // approximate — and identical to the sequential build.
        let accumulate_all = |cols: &[&[f64]]| -> Vec<HyperplaneAccumulator> {
            if config.parallel && cols.len() > 1 {
                cols.par_chunks(8.max(cols.len() / rayon::current_num_threads().max(1)))
                    .flat_map(|chunk| hp.accumulate_columns(chunk, row_offset))
                    .collect()
            } else {
                hp.accumulate_columns(cols, row_offset)
            }
        };
        let accs = accumulate_all(&numeric_cols);

        // Rank-transform each column (missing cells stay missing) and sketch
        // the ranks with the same shared hyperplanes → Spearman estimates.
        // Ranks are local to the shard, normalized to (0, 1) so shards of
        // different sizes speak one scale; see the module docs for the ε
        // this adds to merged Spearman estimates.
        let rank_transform = |col: &&[f64]| -> Vec<f64> {
            let present: Vec<f64> = col.iter().copied().filter(|v| !v.is_nan()).collect();
            let ranks = foresight_stats::rank::fractional_ranks(&present);
            let scale = 1.0 / (present.len() as f64 + 1.0);
            let mut out = Vec::with_capacity(col.len());
            let mut next = 0usize;
            for &v in col.iter() {
                if v.is_nan() {
                    out.push(f64::NAN);
                } else {
                    out.push(ranks[next] * scale);
                    next += 1;
                }
            }
            out
        };
        let ranked: Vec<Vec<f64>> = if config.parallel {
            numeric_cols.par_iter().map(rank_transform).collect()
        } else {
            numeric_cols.iter().map(rank_transform).collect()
        };
        let ranked_refs: Vec<&[f64]> = ranked.iter().map(Vec::as_slice).collect();
        let rank_accs = accumulate_all(&ranked_refs);

        type NumericJob<'a> = (
            usize,
            (
                (&'a &'a [f64], HyperplaneAccumulator),
                HyperplaneAccumulator,
            ),
        );
        let build_one = |(idx, ((col, acc), rank_acc)): NumericJob| -> (usize, NumericSketches) {
            let mut quantiles = KllSketch::new(config.kll_k);
            let mut reservoir = Reservoir::new(config.reservoir.max(1), config.seed ^ idx as u64);
            for &v in col.iter() {
                quantiles.insert(v);
                reservoir.insert(v);
            }
            let mut moment_forest = MomentForest::new();
            moment_forest.update_rows(col, row_offset);
            let mut sketches = NumericSketches {
                moments: Moments::new(),
                hyperplane: acc.finalize(),
                rank_hyperplane: rank_acc.finalize(),
                quantiles,
                reservoir,
                moment_forest,
                hyperplane_acc: acc,
                rank_hyperplane_acc: rank_acc,
            };
            sketches.moments = sketches.moment_forest.finalize();
            (idx, sketches)
        };

        let zipped: Vec<NumericJob> = numeric_indices
            .iter()
            .copied()
            .zip(numeric_cols.iter().zip(accs).zip(rank_accs))
            .collect();
        let numeric: HashMap<usize, NumericSketches> = if config.parallel {
            zipped.into_par_iter().map(build_one).collect()
        } else {
            zipped.into_iter().map(build_one).collect()
        };

        let cat_one = |&idx: &usize| -> (usize, CategoricalSketches) {
            let col = table.categorical(idx).expect("index from schema");
            // dictionary encoding gives exact per-label counts cheaply; the
            // sketches absorb them as weighted inserts (equivalent to
            // streaming every row, but O(cardinality·k) instead of O(n·k))
            let mut counts = vec![0u64; col.cardinality()];
            for code in col.present_codes() {
                counts[code as usize] += 1;
            }
            let mut heavy = SpaceSaving::new(config.freq_counters);
            let mut entropy = EntropySketch::new(config.entropy_k, config.seed);
            let mut distinct = HyperLogLog::new(DISTINCT_PRECISION, config.seed);
            for (code, &c) in counts.iter().enumerate() {
                if c > 0 {
                    let label = &col.labels()[code];
                    heavy.insert_weighted(label, c);
                    entropy.insert_weighted(label, c);
                    distinct.insert(label);
                }
            }
            let total = counts.iter().sum();
            (
                idx,
                CategoricalSketches {
                    heavy_hitters: heavy,
                    entropy,
                    total,
                    cardinality: col.cardinality(),
                    distinct,
                },
            )
        };

        let cat_indices = table.categorical_indices();
        let categorical: HashMap<usize, CategoricalSketches> = if config.parallel {
            cat_indices.par_iter().map(cat_one).collect()
        } else {
            cat_indices.iter().map(cat_one).collect()
        };

        // pin the resolved hyperplane width so `config()` can be handed to
        // later `build_shard` calls (an unresolved width would re-resolve
        // against the *new* shard's row count and fail to merge)
        let mut stored = config.clone();
        stored.hyperplane_k = Some(hyperplane_config.k);
        Self {
            numeric,
            categorical,
            rows: table.n_rows(),
            hyperplane_config,
            config: stored,
        }
    }

    /// Builds per-shard catalogs for disjoint row partitions of one table
    /// (in storage order) and merges them. Shard builds fan out with rayon
    /// when `config.parallel` is set; the merge itself folds sequentially so
    /// the result is deterministic.
    ///
    /// The config's `hyperplane_k` is resolved against the **total** row
    /// count, so every shard shares one hyperplane family regardless of its
    /// own size — the invariant that makes the shard catalogs mergeable.
    ///
    /// # Errors
    /// `ParameterMismatch("no shards")` for an empty slice; any per-field
    /// merge error from [`Mergeable::merge`] (only possible when the shards
    /// disagree on schema-derived column sets).
    pub fn build_sharded(shards: &[&Table], config: &CatalogConfig) -> Result<Self, MergeError> {
        if shards.is_empty() {
            return Err(MergeError::ParameterMismatch("no shards"));
        }
        let total: usize = shards.iter().map(|s| s.n_rows()).sum();
        let resolved = config.resolved_for_rows(total);
        let mut offset = 0u64;
        let jobs: Vec<(u64, &Table)> = shards
            .iter()
            .map(|&t| {
                let job = (offset, t);
                offset += t.n_rows() as u64;
                job
            })
            .collect();
        let catalogs: Vec<SketchCatalog> = if resolved.parallel {
            jobs.par_iter()
                .map(|&(off, t)| Self::build_shard(t, &resolved, off))
                .collect()
        } else {
            jobs.iter()
                .map(|&(off, t)| Self::build_shard(t, &resolved, off))
                .collect()
        };
        let mut iter = catalogs.into_iter();
        let mut merged = iter.next().expect("non-empty checked above");
        for shard_catalog in iter {
            merged.merge(&shard_catalog)?;
        }
        Ok(merged)
    }

    /// Rows of the sketched table.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The hyperplane configuration in effect.
    pub fn hyperplane_config(&self) -> HyperplaneConfig {
        self.hyperplane_config
    }

    /// The (resolved) build configuration — reuse it to sketch additional
    /// shards destined to merge into this catalog.
    pub fn config(&self) -> &CatalogConfig {
        &self.config
    }

    /// Sketches of the numeric column at `idx`.
    pub fn numeric(&self, idx: usize) -> Option<&NumericSketches> {
        self.numeric.get(&idx)
    }

    /// Sketches of the categorical column at `idx`.
    pub fn categorical(&self, idx: usize) -> Option<&CategoricalSketches> {
        self.categorical.get(&idx)
    }

    /// Indices of sketched numeric columns (unordered).
    pub fn numeric_indices(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.numeric.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Estimated Pearson correlation between two numeric columns, from the
    /// hyperplane sketches alone — `O(k)` bits of work, no data access.
    pub fn correlation(&self, i: usize, j: usize) -> Option<f64> {
        let a = self.numeric.get(&i)?;
        let b = self.numeric.get(&j)?;
        a.hyperplane.correlation(&b.hyperplane).ok()
    }

    /// Estimated Spearman rank correlation between two numeric columns,
    /// from the rank-transformed hyperplane sketches.
    pub fn spearman(&self, i: usize, j: usize) -> Option<f64> {
        let a = self.numeric.get(&i)?;
        let b = self.numeric.get(&j)?;
        a.rank_hyperplane.correlation(&b.rank_hyperplane).ok()
    }

    /// All pairwise Pearson estimates among the numeric columns `indices`,
    /// as a symmetric matrix with unit diagonal — the bulk form behind
    /// overview heatmaps and all-pairs carousels. Gathers each column's
    /// sketch once (no per-pair hash lookups) and tiles the pairwise
    /// Hamming/estimator pass so a block of bit vectors stays cache-hot
    /// while the partner column streams past. Returns `None` if any index
    /// has no numeric sketch; entries match [`SketchCatalog::correlation`]
    /// exactly.
    pub fn correlation_matrix(&self, indices: &[usize]) -> Option<Vec<Vec<f64>>> {
        let sketches: Option<Vec<&HyperplaneSketch>> = indices
            .iter()
            .map(|i| self.numeric.get(i).map(|s| &s.hyperplane))
            .collect();
        Some(pairwise_estimates(&sketches?))
    }

    /// All pairwise Spearman estimates among the numeric columns `indices`
    /// — the rank-sketch analogue of [`SketchCatalog::correlation_matrix`],
    /// entries matching [`SketchCatalog::spearman`] exactly.
    pub fn spearman_matrix(&self, indices: &[usize]) -> Option<Vec<Vec<f64>>> {
        let sketches: Option<Vec<&HyperplaneSketch>> = indices
            .iter()
            .map(|i| self.numeric.get(i).map(|s| &s.rank_hyperplane))
            .collect();
        Some(pairwise_estimates(&sketches?))
    }

    /// Serializes the catalog to JSON, so the preprocessing phase can run
    /// once and be reused across sessions.
    pub fn save(&self, writer: impl std::io::Write) -> serde_json::Result<()> {
        serde_json::to_writer(writer, self)
    }

    /// Restores a catalog serialized with [`SketchCatalog::save`].
    pub fn load(reader: impl std::io::Read) -> serde_json::Result<Self> {
        serde_json::from_reader(reader)
    }

    /// Total memory consumed by the hyperplane bit vectors, in bytes —
    /// the `|B|·k` bits the paper quotes.
    pub fn hyperplane_bytes(&self) -> usize {
        self.numeric
            .values()
            .map(|s| s.hyperplane.size_bytes())
            .sum()
    }

    /// Approximate resident bytes of the whole catalog: per-column sketch
    /// payloads plus their pre-quantization accumulators. A monitor
    /// resource gauge — dominant arrays only, not allocator truth.
    pub fn approx_bytes(&self) -> usize {
        let k = self.hyperplane_config.k;
        let numeric: usize = self
            .numeric
            .values()
            .map(|s| {
                // finalized bit vectors (plain + rank) …
                s.hyperplane.size_bytes()
                    + s.rank_hyperplane.size_bytes()
                    // … their accumulators keep two f64 lanes per plane
                    + 2 * (2 * k * std::mem::size_of::<f64>())
                    // KLL compactor items + reservoir sample
                    + s.quantiles.retained() * std::mem::size_of::<f64>()
                    + s.reservoir.capacity() * std::mem::size_of::<f64>()
                    // moments + forest nodes round out to a few hundred
                    + 256
            })
            .sum();
        let categorical: usize = self
            .categorical
            .values()
            .map(|s| {
                // SpaceSaving buckets (label + two counts), entropy
                // projection lanes, HLL registers
                s.heavy_hitters.capacity() * 48
                    + s.entropy.k() * std::mem::size_of::<f64>()
                    + s.distinct.m()
                    + 128
            })
            .sum();
        numeric + categorical
    }
}

/// Columns per tile of the pairwise estimator pass: a tile's bit vectors
/// (8 × k/8 bytes = 4 KiB at the common k = 4096 ceiling) stay resident
/// while every partner column streams past once per tile instead of once
/// per pair.
const PAIR_TILE: usize = 8;

/// The tiled all-pairs `cos(π·H/k)` pass over sketches that share one
/// hyperplane family (guaranteed when they come from one catalog).
fn pairwise_estimates(sketches: &[&HyperplaneSketch]) -> Vec<Vec<f64>> {
    let d = sketches.len();
    let mut m = vec![vec![0.0f64; d]; d];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
        debug_assert_eq!(sketches[i].k(), sketches[0].k());
    }
    let mut i0 = 0;
    while i0 < d {
        let i1 = (i0 + PAIR_TILE).min(d);
        for j in (i0 + 1)..d {
            for i in i0..i1.min(j) {
                let k = sketches[i].k();
                let h = sketches[i].bits().hamming(sketches[j].bits());
                let rho = (std::f64::consts::PI * h as f64 / k as f64).cos();
                m[i][j] = rho;
                m[j][i] = rho;
            }
        }
        i0 = i1;
    }
    m
}

impl Mergeable for SketchCatalog {
    /// Merges the catalog of a disjoint row shard into `self`, field by
    /// field, and refreshes every finalized view. On error `self` is left
    /// unchanged (the merge is staged on a copy).
    ///
    /// # Errors
    /// * [`MergeError::SizeMismatch`] — different hyperplane `k`
    /// * [`MergeError::SeedMismatch`] — different shared-randomness seeds
    /// * [`MergeError::ParameterMismatch`] — different error parameters
    ///   (`kll_k`, `freq_counters`, …), column sets, or overlapping row
    ///   ranges
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        let hp_a = self.hyperplane_config;
        let hp_b = other.hyperplane_config;
        if hp_a.k != hp_b.k {
            return Err(MergeError::SizeMismatch(hp_a.k, hp_b.k));
        }
        if hp_a.seed != hp_b.seed || hp_a.kind != hp_b.kind {
            return Err(MergeError::SeedMismatch);
        }
        self.config.check_compatible(&other.config)?;
        if self.numeric.len() != other.numeric.len()
            || self.numeric.keys().any(|k| !other.numeric.contains_key(k))
            || self.categorical.len() != other.categorical.len()
            || self
                .categorical
                .keys()
                .any(|k| !other.categorical.contains_key(k))
        {
            return Err(MergeError::ParameterMismatch("column sets differ"));
        }

        // stage on a copy so a mid-merge error can't leave self half-merged
        let mut numeric = self.numeric.clone();
        for (idx, sketches) in numeric.iter_mut() {
            let theirs = &other.numeric[idx];
            sketches.moment_forest.merge(&theirs.moment_forest)?;
            sketches.hyperplane_acc.merge(&theirs.hyperplane_acc)?;
            sketches
                .rank_hyperplane_acc
                .merge(&theirs.rank_hyperplane_acc)?;
            sketches.quantiles.merge(&theirs.quantiles)?;
            sketches.reservoir.merge(&theirs.reservoir)?;
            sketches.refresh();
        }
        let mut categorical = self.categorical.clone();
        for (idx, sketches) in categorical.iter_mut() {
            let theirs = &other.categorical[idx];
            sketches.heavy_hitters.merge(&theirs.heavy_hitters)?;
            sketches.entropy.merge(&theirs.entropy)?;
            sketches.distinct.merge(&theirs.distinct)?;
            sketches.total += theirs.total;
            // per-shard dictionaries aren't aligned: distinct labels of the
            // union come from the HLL, floored by each side's exact count
            sketches.cardinality = sketches
                .cardinality
                .max(theirs.cardinality)
                .max(sketches.distinct.estimate().round() as usize);
        }
        self.numeric = numeric;
        self.categorical = categorical;
        self.rows += other.rows;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Sketch;
    use foresight_data::datasets::{synth, SynthConfig};
    use foresight_stats::correlation::pearson;

    fn table() -> (
        foresight_data::Table,
        foresight_data::datasets::SynthGroundTruth,
    ) {
        synth(&SynthConfig {
            rows: 4_000,
            numeric_cols: 12,
            categorical_cols: 3,
            correlated_fraction: 0.5,
            ..Default::default()
        })
    }

    /// Splits a table's rows at the given boundaries via `filter_rows`.
    fn split_rows(t: &foresight_data::Table, bounds: &[usize]) -> Vec<foresight_data::Table> {
        bounds
            .windows(2)
            .map(|w| t.filter_rows(|r| r >= w[0] && r < w[1]))
            .collect()
    }

    #[test]
    fn covers_every_column() {
        let (t, _) = table();
        let cat = SketchCatalog::build(&t, &CatalogConfig::default());
        for idx in t.numeric_indices() {
            assert!(cat.numeric(idx).is_some(), "numeric {idx} missing");
        }
        for idx in t.categorical_indices() {
            assert!(cat.categorical(idx).is_some(), "categorical {idx} missing");
        }
        assert_eq!(cat.rows(), 4_000);
    }

    #[test]
    fn sketch_correlations_track_exact() {
        let (t, truth) = table();
        let cat = SketchCatalog::build(
            &t,
            &CatalogConfig {
                hyperplane_k: Some(1024),
                ..Default::default()
            },
        );
        for &(i, j, _) in &truth.correlated_pairs {
            let est = cat.correlation(i, j).unwrap();
            let exact = pearson(
                t.numeric(i).unwrap().values(),
                t.numeric(j).unwrap().values(),
            );
            assert!(
                (est - exact).abs() < 0.12,
                "pair ({i},{j}): est {est}, exact {exact}"
            );
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let (t, _) = table();
        let seq = SketchCatalog::build(
            &t,
            &CatalogConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let par = SketchCatalog::build(
            &t,
            &CatalogConfig {
                parallel: true,
                ..Default::default()
            },
        );
        for idx in seq.numeric_indices() {
            let a = seq.numeric(idx).unwrap();
            let b = par.numeric(idx).unwrap();
            assert_eq!(a.hyperplane, b.hyperplane, "column {idx} differs");
            assert_eq!(a.moments, b.moments);
            assert_eq!(a.quantiles, b.quantiles);
        }
    }

    #[test]
    fn sketch_spearman_tracks_exact() {
        let (t, truth) = table();
        let cat = SketchCatalog::build(
            &t,
            &CatalogConfig {
                hyperplane_k: Some(1024),
                ..Default::default()
            },
        );
        for &(i, j, _) in &truth.correlated_pairs {
            let est = cat.spearman(i, j).unwrap();
            let exact = foresight_stats::correlation::spearman(
                t.numeric(i).unwrap().values(),
                t.numeric(j).unwrap().values(),
            );
            assert!(
                (est - exact).abs() < 0.12,
                "pair ({i},{j}): est {est}, exact {exact}"
            );
        }
    }

    #[test]
    fn moments_match_exact() {
        // catalog moments come from the canonical dyadic reduction: same
        // count/min/max as a sequential pass, higher moments within float
        // tolerance (pairwise summation is at least as accurate)
        let (t, _) = table();
        let cat = SketchCatalog::build(&t, &CatalogConfig::default());
        let idx = t.numeric_indices()[0];
        let exact = Moments::from_slice(t.numeric(idx).unwrap().values());
        let got = cat.numeric(idx).unwrap().moments;
        assert_eq!(got.count(), exact.count());
        assert_eq!(got.min(), exact.min());
        assert_eq!(got.max(), exact.max());
        assert!((got.mean() - exact.mean()).abs() < 1e-10);
        assert!((got.skewness() - exact.skewness()).abs() < 1e-8);
        assert!((got.kurtosis() - exact.kurtosis()).abs() < 1e-8);
    }

    #[test]
    fn quantile_sketch_close_to_exact() {
        let (t, _) = table();
        let cat = SketchCatalog::build(&t, &CatalogConfig::default());
        let idx = t.numeric_indices()[0];
        let values = t.numeric(idx).unwrap().values();
        let exact = foresight_stats::quantile::quantile(values, 0.5).unwrap();
        let est = cat.numeric(idx).unwrap().quantiles.quantile(0.5).unwrap();
        let spread = foresight_stats::quantile::iqr(values).unwrap();
        assert!(
            (est - exact).abs() < 0.2 * spread,
            "est {est} exact {exact}"
        );
    }

    #[test]
    fn categorical_sketches_sane() {
        let (t, _) = table();
        let cat = SketchCatalog::build(&t, &CatalogConfig::default());
        let idx = t.categorical_indices()[0];
        let s = cat.categorical(idx).unwrap();
        assert_eq!(s.total, 4_000);
        assert!(s.cardinality > 1);
        let ent = s.entropy.estimate();
        assert!(ent > 0.0 && ent < (s.cardinality as f64).ln() + 0.5);
        assert!(!s.heavy_hitters.top().is_empty());
        let est = s.distinct.estimate();
        assert!(
            (est - s.cardinality as f64).abs() < 0.05 * s.cardinality as f64 + 3.0,
            "HLL {est} vs exact {}",
            s.cardinality
        );
    }

    #[test]
    fn catalog_persists_through_serde() {
        let (t, _) = table();
        let cat = SketchCatalog::build(&t, &CatalogConfig::default());
        let mut buf = Vec::new();
        cat.save(&mut buf).unwrap();
        let back = SketchCatalog::load(buf.as_slice()).unwrap();
        assert_eq!(back.rows(), cat.rows());
        assert_eq!(back.hyperplane_config(), cat.hyperplane_config());
        assert_eq!(back.config(), cat.config());
        for idx in cat.numeric_indices() {
            assert_eq!(
                back.correlation(idx, cat.numeric_indices()[0]),
                cat.correlation(idx, cat.numeric_indices()[0])
            );
            assert_eq!(
                back.numeric(idx).unwrap().moments,
                cat.numeric(idx).unwrap().moments
            );
            assert_eq!(
                back.numeric(idx).unwrap().quantiles.quantile(0.5),
                cat.numeric(idx).unwrap().quantiles.quantile(0.5)
            );
        }
        for idx in t.categorical_indices() {
            assert_eq!(
                back.categorical(idx).unwrap().heavy_hitters.top(),
                cat.categorical(idx).unwrap().heavy_hitters.top()
            );
        }
    }

    #[test]
    fn paper_sizing_rule_applied_by_default() {
        let (t, _) = table();
        let cat = SketchCatalog::build(&t, &CatalogConfig::default());
        assert_eq!(
            cat.hyperplane_config().k,
            HyperplaneConfig::for_rows(4_000, 0xF0E5).k
        );
        // |B| columns × k bits
        assert_eq!(
            cat.hyperplane_bytes(),
            t.numeric_indices().len() * cat.hyperplane_config().k / 8
        );
    }

    #[test]
    fn sharded_build_matches_single_pass() {
        let (t, _) = table();
        let config = CatalogConfig::default().resolved_for_rows(t.n_rows());
        let single = SketchCatalog::build(&t, &config);
        let shards = split_rows(&t, &[0, 1_000, 1_700, 4_000]);
        let refs: Vec<&foresight_data::Table> = shards.iter().collect();
        let merged = SketchCatalog::build_sharded(&refs, &config).unwrap();

        assert_eq!(merged.rows(), single.rows());
        assert_eq!(merged.hyperplane_config(), single.hyperplane_config());
        for idx in single.numeric_indices() {
            let s = single.numeric(idx).unwrap();
            let m = merged.numeric(idx).unwrap();
            // moments: bit-identical by the dyadic-forest construction
            assert_eq!(m.moments, s.moments, "moments differ on column {idx}");
            // correlations agree to summation rounding, far inside sketch error
            for jdx in single.numeric_indices() {
                if jdx <= idx {
                    continue;
                }
                let a = merged.correlation(idx, jdx).unwrap();
                let b = single.correlation(idx, jdx).unwrap();
                assert!(
                    (a - b).abs() < 0.05,
                    "ρ({idx},{jdx}): merged {a} single {b}"
                );
            }
            // KLL medians within the sketch's own rank error of each other
            let qa = m.quantiles.quantile(0.5).unwrap();
            let qb = s.quantiles.quantile(0.5).unwrap();
            let spread = s.moments.max() - s.moments.min();
            assert!((qa - qb).abs() < 0.1 * spread, "median {qa} vs {qb}");
            assert_eq!(m.reservoir.count(), s.reservoir.count());
        }
        for idx in t.categorical_indices() {
            let s = single.categorical(idx).unwrap();
            let m = merged.categorical(idx).unwrap();
            assert_eq!(m.total, s.total);
            // HLL register-max is exactly order-invariant
            assert_eq!(m.distinct.estimate(), s.distinct.estimate());
            assert!((m.entropy.estimate() - s.entropy.estimate()).abs() < 0.15);
        }
    }

    #[test]
    fn matrix_apis_match_per_pair_exactly() {
        let (t, _) = table();
        let cat = SketchCatalog::build(
            &t,
            &CatalogConfig {
                hyperplane_k: Some(256),
                ..Default::default()
            },
        );
        let indices = cat.numeric_indices();
        let pm = cat.correlation_matrix(&indices).unwrap();
        let sm = cat.spearman_matrix(&indices).unwrap();
        for (a, &i) in indices.iter().enumerate() {
            assert_eq!(pm[a][a], 1.0);
            for (b, &j) in indices.iter().enumerate() {
                if a == b {
                    continue;
                }
                assert_eq!(pm[a][b].to_bits(), cat.correlation(i, j).unwrap().to_bits());
                assert_eq!(sm[a][b].to_bits(), cat.spearman(i, j).unwrap().to_bits());
            }
        }
        assert!(cat.correlation_matrix(&[0, 99_999]).is_none());
    }

    #[test]
    fn seed_mismatch_is_a_typed_error() {
        let (t, _) = table();
        let shards = split_rows(&t, &[0, 2_000, 4_000]);
        let base = CatalogConfig {
            hyperplane_k: Some(256),
            ..Default::default()
        };
        let a = SketchCatalog::build_shard(&shards[0], &base, 0);
        let reseeded = CatalogConfig {
            seed: base.seed ^ 1,
            ..base.clone()
        };
        let b = SketchCatalog::build_shard(&shards[1], &reseeded, 2_000);
        let mut merged = a.clone();
        assert_eq!(merged.merge(&b), Err(MergeError::SeedMismatch));
        // staged merge: the failed attempt left no partial state behind
        assert_eq!(merged.rows(), a.rows());
        assert_eq!(
            merged.numeric(0).map(|s| s.moments),
            a.numeric(0).map(|s| s.moments)
        );
    }

    #[test]
    fn hyperplane_width_mismatch_is_a_typed_error() {
        let (t, _) = table();
        let shards = split_rows(&t, &[0, 2_000, 4_000]);
        let a = SketchCatalog::build_shard(
            &shards[0],
            &CatalogConfig {
                hyperplane_k: Some(256),
                ..Default::default()
            },
            0,
        );
        let b = SketchCatalog::build_shard(
            &shards[1],
            &CatalogConfig {
                hyperplane_k: Some(512),
                ..Default::default()
            },
            2_000,
        );
        let mut merged = a;
        assert_eq!(merged.merge(&b), Err(MergeError::SizeMismatch(256, 512)));
    }

    #[test]
    fn error_parameter_mismatch_is_typed() {
        let (t, _) = table();
        let shards = split_rows(&t, &[0, 2_000, 4_000]);
        let base = CatalogConfig {
            hyperplane_k: Some(256),
            ..Default::default()
        };
        let a = SketchCatalog::build_shard(&shards[0], &base, 0);
        let b =
            SketchCatalog::build_shard(&shards[1], &CatalogConfig { kll_k: 100, ..base }, 2_000);
        let mut merged = a;
        assert_eq!(
            merged.merge(&b),
            Err(MergeError::ParameterMismatch("kll_k"))
        );
    }

    #[test]
    fn append_style_incremental_merge() {
        // simulate streaming ingest: catalog grows one shard at a time and
        // the result still equals the all-at-once sharded build
        let (t, _) = table();
        let config = CatalogConfig::default().resolved_for_rows(t.n_rows());
        let shards = split_rows(&t, &[0, 1_500, 2_500, 4_000]);
        let refs: Vec<&foresight_data::Table> = shards.iter().collect();
        let all_at_once = SketchCatalog::build_sharded(&refs, &config).unwrap();

        let mut incremental = SketchCatalog::build_shard(&shards[0], &config, 0);
        let mut offset = shards[0].n_rows() as u64;
        for shard in &shards[1..] {
            let next = SketchCatalog::build_shard(shard, incremental.config(), offset);
            incremental.merge(&next).unwrap();
            offset += shard.n_rows() as u64;
        }
        assert_eq!(incremental.rows(), all_at_once.rows());
        for idx in all_at_once.numeric_indices() {
            assert_eq!(
                incremental.numeric(idx).unwrap().moments,
                all_at_once.numeric(idx).unwrap().moments
            );
            assert_eq!(
                incremental.numeric(idx).unwrap().hyperplane,
                all_at_once.numeric(idx).unwrap().hyperplane
            );
        }
    }
}
