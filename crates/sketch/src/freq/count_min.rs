//! The Count-Min sketch (Cormode–Muthukrishnan 2005).
//!
//! A `depth × width` array of counters with pairwise-independent row hashes.
//! Point queries return upper bounds: with width `⌈e/ε⌉` and depth
//! `⌈ln(1/δ)⌉`, the overcount is at most `εn` with probability `1−δ`.

use crate::traits::{MergeError, Mergeable, Sketch};
use serde::{Deserialize, Serialize};

/// A Count-Min sketch over string items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountMin {
    width: usize,
    depth: usize,
    seed: u64,
    table: Vec<u64>,
    n: u64,
}

impl CountMin {
    /// Creates a sketch with explicit dimensions.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width >= 2 && depth >= 1, "degenerate dimensions");
        Self {
            width,
            depth,
            seed,
            table: vec![0; width * depth],
            n: 0,
        }
    }

    /// Creates a sketch meeting an `(ε, δ)` guarantee: overcount ≤ `εn`
    /// with probability ≥ `1−δ`.
    pub fn with_error(epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta in (0,1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(width.max(2), depth, seed)
    }

    /// Width (counters per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Depth (number of hash rows).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// FNV-1a based row hash; `row` salts the hash so rows are independent.
    fn index(&self, item: &str, row: usize) -> usize {
        let mut h: u64 =
            0xcbf2_9ce4_8422_2325 ^ self.seed ^ (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for b in item.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // final avalanche to decorrelate rows further
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        (h % self.width as u64) as usize
    }

    /// Absorbs `weight` occurrences of `item`.
    pub fn insert_weighted(&mut self, item: &str, weight: u64) {
        for row in 0..self.depth {
            let idx = row * self.width + self.index(item, row);
            self.table[idx] += weight;
        }
        self.n += weight;
    }

    /// Absorbs one occurrence.
    pub fn insert(&mut self, item: &str) {
        self.insert_weighted(item, 1);
    }

    /// Point-query upper bound on the count of `item`.
    pub fn estimate(&self, item: &str) -> u64 {
        (0..self.depth)
            .map(|row| self.table[row * self.width + self.index(item, row)])
            .min()
            .unwrap_or(0)
    }
}

impl Sketch<str> for CountMin {
    fn update(&mut self, item: &str) {
        self.insert(item);
    }

    fn count(&self) -> u64 {
        self.n
    }
}

impl Mergeable for CountMin {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.width != other.width || self.depth != other.depth {
            return Err(MergeError::SizeMismatch(
                self.width * self.depth,
                other.width * other.depth,
            ));
        }
        if self.seed != other.seed {
            return Err(MergeError::SeedMismatch);
        }
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            *a += b;
        }
        self.n += other.n;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_undercounts() {
        let mut cm = CountMin::new(64, 4, 7);
        for i in 0..1_000 {
            cm.insert(&format!("item{}", i % 50));
        }
        for i in 0..50 {
            assert!(cm.estimate(&format!("item{i}")) >= 20);
        }
    }

    #[test]
    fn epsilon_bound_holds() {
        let eps = 0.01;
        let mut cm = CountMin::with_error(eps, 0.01, 3);
        let n = 50_000u64;
        for i in 0..n {
            cm.insert(&format!("k{}", i % 1_000));
        }
        let mut violations = 0;
        for i in 0..1_000 {
            let est = cm.estimate(&format!("k{i}"));
            let true_count = n / 1_000;
            assert!(est >= true_count);
            if est - true_count > (eps * n as f64) as u64 {
                violations += 1;
            }
        }
        assert!(violations <= 10, "{violations} items exceed the εn bound");
    }

    #[test]
    fn unseen_items_small() {
        let mut cm = CountMin::with_error(0.001, 0.01, 11);
        for i in 0..10_000 {
            cm.insert(&format!("x{i}"));
        }
        assert!(cm.estimate("never-seen") <= 10);
    }

    #[test]
    fn weighted_inserts() {
        let mut cm = CountMin::new(128, 4, 1);
        cm.insert_weighted("a", 500);
        cm.insert("a");
        assert!(cm.estimate("a") >= 501);
        assert_eq!(cm.count(), 501);
    }

    #[test]
    fn merge_matches_union() {
        let mut a = CountMin::new(256, 4, 9);
        let mut b = CountMin::new(256, 4, 9);
        for i in 0..500 {
            a.insert(&format!("i{}", i % 20));
            b.insert(&format!("i{}", i % 30));
        }
        let mut whole = CountMin::new(256, 4, 9);
        for i in 0..500 {
            whole.insert(&format!("i{}", i % 20));
            whole.insert(&format!("i{}", i % 30));
        }
        a.merge(&b).unwrap();
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_incompatible() {
        let mut a = CountMin::new(64, 4, 1);
        assert!(matches!(
            a.merge(&CountMin::new(32, 4, 1)),
            Err(MergeError::SizeMismatch(..))
        ));
        assert!(matches!(
            a.merge(&CountMin::new(64, 4, 2)),
            Err(MergeError::SeedMismatch)
        ));
    }

    #[test]
    fn dimension_rules() {
        let cm = CountMin::with_error(0.01, 0.05, 0);
        assert!(cm.width() >= 271);
        assert_eq!(cm.depth(), 3);
    }
}
