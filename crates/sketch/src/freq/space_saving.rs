//! The SpaceSaving frequent-items sketch (Metwally et al. 2005).
//!
//! Keeps `m` counters; an unseen item replaces the current minimum counter
//! and inherits its count (+1), recording that count as the item's maximum
//! overestimation. Counts are **upper bounds** with error ≤ `n/m` —
//! complementary to Misra–Gries' lower bounds.

use crate::traits::{MergeError, Mergeable, Sketch};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Counter {
    count: u64,
    /// Maximum possible overestimation inherited at takeover time.
    error: u64,
}

/// A SpaceSaving sketch with `m` counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceSaving {
    m: usize,
    counters: HashMap<String, Counter>,
    n: u64,
}

impl SpaceSaving {
    /// Creates a sketch with `m ≥ 1` counters.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "need at least one counter");
        Self {
            m,
            counters: HashMap::with_capacity(m),
            n: 0,
        }
    }

    /// Number of counters.
    pub fn capacity(&self) -> usize {
        self.m
    }

    /// Absorbs one occurrence of `item`.
    pub fn insert(&mut self, item: &str) {
        self.insert_weighted(item, 1);
    }

    /// Absorbs `weight` occurrences of `item`.
    pub fn insert_weighted(&mut self, item: &str, weight: u64) {
        self.n += weight;
        if let Some(c) = self.counters.get_mut(item) {
            c.count += weight;
            return;
        }
        if self.counters.len() < self.m {
            self.counters.insert(
                item.to_owned(),
                Counter {
                    count: weight,
                    error: 0,
                },
            );
            return;
        }
        // evict the minimum counter; the newcomer inherits its count
        let (min_key, min_count) = self
            .counters
            .iter()
            .min_by_key(|(k, c)| (c.count, std::cmp::Reverse(k.as_str())))
            .map(|(k, c)| (k.clone(), c.count))
            .expect("counters non-empty");
        self.counters.remove(&min_key);
        self.counters.insert(
            item.to_owned(),
            Counter {
                count: min_count + weight,
                error: min_count,
            },
        );
    }

    /// Estimated count (an upper bound; true count ≥ estimate − error).
    pub fn estimate(&self, item: &str) -> u64 {
        self.counters.get(item).map(|c| c.count).unwrap_or(0)
    }

    /// The guaranteed overestimation bound for `item` (0 when untracked).
    pub fn error_of(&self, item: &str) -> u64 {
        self.counters.get(item).map(|c| c.error).unwrap_or(0)
    }

    /// Tracked items, most frequent first: `(item, count, error)`.
    pub fn top(&self) -> Vec<(String, u64, u64)> {
        let mut v: Vec<(String, u64, u64)> = self
            .counters
            .iter()
            .map(|(k, c)| (k.clone(), c.count, c.error))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Approximate `RelFreq(k)`: relative frequency of the top-`k` items
    /// (an upper bound).
    pub fn rel_freq(&self, k: usize) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let top: u64 = self.top().iter().take(k).map(|(_, c, _)| c).sum();
        (top as f64 / self.n as f64).min(1.0)
    }
}

impl Sketch<str> for SpaceSaving {
    fn update(&mut self, item: &str) {
        self.insert(item);
    }

    fn count(&self) -> u64 {
        self.n
    }
}

impl Mergeable for SpaceSaving {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.m != other.m {
            return Err(MergeError::SizeMismatch(self.m, other.m));
        }
        // Combine counters (counts and errors add for shared items; an item
        // absent from one side could have count up to that side's min).
        let self_min = self.min_count();
        let other_min = other.min_count();
        let mut combined: HashMap<String, Counter> = HashMap::new();
        for (k, c) in &self.counters {
            let entry = combined
                .entry(k.clone())
                .or_insert(Counter { count: 0, error: 0 });
            entry.count += c.count;
            entry.error += c.error;
            if !other.counters.contains_key(k) {
                entry.count += other_min;
                entry.error += other_min;
            }
        }
        for (k, c) in &other.counters {
            let known_here = self.counters.contains_key(k);
            let entry = combined
                .entry(k.clone())
                .or_insert(Counter { count: 0, error: 0 });
            entry.count += c.count;
            entry.error += c.error;
            if !known_here {
                entry.count += self_min;
                entry.error += self_min;
            }
        }
        let mut items: Vec<(String, Counter)> = combined.into_iter().collect();
        items.sort_by(|a, b| b.1.count.cmp(&a.1.count).then_with(|| a.0.cmp(&b.0)));
        items.truncate(self.m);
        self.counters = items.into_iter().collect();
        self.n += other.n;
        Ok(())
    }
}

impl SpaceSaving {
    fn min_count(&self) -> u64 {
        if self.counters.len() < self.m {
            0
        } else {
            self.counters.values().map(|c| c.count).min().unwrap_or(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipf_stream() -> (Vec<String>, HashMap<String, u64>) {
        let mut items = Vec::new();
        let mut exact: HashMap<String, u64> = HashMap::new();
        for round in 0..2_000u64 {
            for i in 0..100u64 {
                if round % (i + 1) == 0 {
                    let label = format!("v{i}");
                    items.push(label.clone());
                    *exact.entry(label).or_insert(0) += 1;
                }
            }
        }
        (items, exact)
    }

    #[test]
    fn counts_are_upper_bounds_with_bounded_error() {
        let (items, exact) = zipf_stream();
        let mut ss = SpaceSaving::new(32);
        for it in &items {
            ss.insert(it);
        }
        let global_bound = ss.count() / 32;
        for (item, count, error) in ss.top() {
            let true_count = exact.get(&item).copied().unwrap_or(0);
            assert!(count >= true_count, "{item}: {count} < {true_count}");
            assert!(count - true_count <= error, "{item}: error bound violated");
            assert!(error <= global_bound, "{item}: error above n/m");
        }
    }

    #[test]
    fn top_items_found() {
        let (items, exact) = zipf_stream();
        let mut ss = SpaceSaving::new(32);
        for it in &items {
            ss.insert(it);
        }
        let mut truth: Vec<(&String, &u64)> = exact.iter().collect();
        truth.sort_by(|a, b| b.1.cmp(a.1));
        let reported: Vec<String> = ss.top().into_iter().map(|(k, _, _)| k).collect();
        for (item, _) in truth.iter().take(5) {
            assert!(reported.contains(item), "missing heavy hitter {item}");
        }
    }

    #[test]
    fn rel_freq_upper_bounds_exact() {
        let (items, exact) = zipf_stream();
        let mut ss = SpaceSaving::new(64);
        for it in &items {
            ss.insert(it);
        }
        let mut counts: Vec<u64> = exact.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let exact_rf = counts.iter().take(5).sum::<u64>() as f64 / items.len() as f64;
        let est = ss.rel_freq(5);
        assert!(est + 1e-12 >= exact_rf, "est {est} < exact {exact_rf}");
        assert!(est - exact_rf < 0.1, "est {est} too loose vs {exact_rf}");
    }

    #[test]
    fn small_stream_exact() {
        let mut ss = SpaceSaving::new(10);
        for it in ["a", "b", "a", "c", "a", "b"] {
            ss.insert(it);
        }
        assert_eq!(ss.estimate("a"), 3);
        assert_eq!(ss.estimate("b"), 2);
        assert_eq!(ss.error_of("a"), 0);
        assert_eq!(ss.estimate("nope"), 0);
    }

    #[test]
    fn merge_still_upper_bounds() {
        let (items, exact) = zipf_stream();
        let mid = items.len() / 2;
        let mut a = SpaceSaving::new(48);
        let mut b = SpaceSaving::new(48);
        for it in &items[..mid] {
            a.insert(it);
        }
        for it in &items[mid..] {
            b.insert(it);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.count(), items.len() as u64);
        for (item, count, _) in a.top().into_iter().take(10) {
            let true_count = exact.get(&item).copied().unwrap_or(0);
            assert!(count >= true_count, "{item}: merged {count} < {true_count}");
        }
    }

    #[test]
    fn merge_size_mismatch() {
        let mut a = SpaceSaving::new(4);
        assert!(a.merge(&SpaceSaving::new(5)).is_err());
    }
}
