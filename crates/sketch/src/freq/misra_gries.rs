//! The Misra–Gries frequent-items summary.
//!
//! With `m` counters over a stream of `n` items, every reported count
//! undercounts the true frequency by at most `n/(m+1)`, and every item with
//! true frequency above `n/(m+1)` is guaranteed to be present. This is the
//! sketch behind the approximate `RelFreq(k)` metric.

use crate::traits::{MergeError, Mergeable, Sketch};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A Misra–Gries summary with `m` counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MisraGries {
    m: usize,
    counters: HashMap<String, u64>,
    n: u64,
}

impl MisraGries {
    /// Creates a summary with `m ≥ 1` counters.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "need at least one counter");
        Self {
            m,
            counters: HashMap::with_capacity(m + 1),
            n: 0,
        }
    }

    /// Number of counters.
    pub fn capacity(&self) -> usize {
        self.m
    }

    /// Absorbs one occurrence of `item`.
    pub fn insert(&mut self, item: &str) {
        self.insert_weighted(item, 1);
    }

    /// Absorbs `weight` occurrences of `item` (used by merge).
    pub fn insert_weighted(&mut self, item: &str, weight: u64) {
        self.n += weight;
        if let Some(c) = self.counters.get_mut(item) {
            *c += weight;
            return;
        }
        if self.counters.len() < self.m {
            self.counters.insert(item.to_owned(), weight);
            return;
        }
        // decrement-all step, weighted: subtract the largest amount that
        // empties at least one counter or consumes the new item's weight
        let min_count = self.counters.values().copied().min().unwrap_or(0);
        let dec = min_count.min(weight);
        let leftover = weight - dec;
        for c in self.counters.values_mut() {
            *c -= dec;
        }
        self.counters.retain(|_, c| *c > 0);
        if leftover > 0 && self.counters.len() < self.m {
            self.counters.insert(item.to_owned(), leftover);
        }
        // else: a rare corner (all counters equal and larger than
        // weight); the item's weight is absorbed by the decrements
    }

    /// Estimated count of `item` (a lower bound on the true count; the true
    /// count exceeds it by at most `n/(m+1)`).
    pub fn estimate(&self, item: &str) -> u64 {
        self.counters.get(item).copied().unwrap_or(0)
    }

    /// Maximum undercount `n/(m+1)`.
    pub fn error_bound(&self) -> u64 {
        self.n / (self.m as u64 + 1)
    }

    /// The tracked items and their (lower-bound) counts, most frequent first.
    pub fn top(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> =
            self.counters.iter().map(|(k, &c)| (k.clone(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Approximate `RelFreq(k)`: estimated total relative frequency of the
    /// `k` most frequent items (a lower bound).
    pub fn rel_freq(&self, k: usize) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let top: u64 = self.top().iter().take(k).map(|(_, c)| c).sum();
        top as f64 / self.n as f64
    }
}

impl Sketch<str> for MisraGries {
    fn update(&mut self, item: &str) {
        self.insert(item);
    }

    fn count(&self) -> u64 {
        self.n
    }
}

impl Mergeable for MisraGries {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.m != other.m {
            return Err(MergeError::SizeMismatch(self.m, other.m));
        }
        // Standard MG merge: add counter maps, then keep the top m after
        // subtracting the (m+1)-st largest count.
        let mut combined: HashMap<String, u64> = self.counters.clone();
        for (k, &c) in &other.counters {
            *combined.entry(k.clone()).or_insert(0) += c;
        }
        let mut counts: Vec<u64> = combined.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let cut = counts.get(self.m).copied().unwrap_or(0);
        let mut kept: HashMap<String, u64> = combined
            .into_iter()
            .filter_map(|(k, c)| (c > cut).then(|| (k, c - cut)))
            .collect();
        std::mem::swap(&mut self.counters, &mut kept);
        self.n += other.n;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Zipf-ish stream with known exact counts.
    fn stream() -> (Vec<String>, HashMap<String, u64>) {
        let mut items = Vec::new();
        let mut exact: HashMap<String, u64> = HashMap::new();
        for i in 0..200u64 {
            let copies = 2_000 / (i + 1); // heavy head
            for _ in 0..copies {
                let label = format!("item{i}");
                items.push(label.clone());
                *exact.entry(label).or_insert(0) += 1;
            }
        }
        // deterministic interleave so heavy items are spread out
        let n = items.len();
        let mut shuffled = vec![String::new(); n];
        let mut idx = 0usize;
        for (placed, item) in items.into_iter().enumerate() {
            shuffled[idx] = item;
            if placed + 1 == n {
                break; // no empty slot remains to probe for
            }
            idx = (idx + 7919) % n;
            while !shuffled[idx].is_empty() {
                idx = (idx + 1) % n;
            }
        }
        (shuffled, exact)
    }

    #[test]
    fn undercount_bounded() {
        let (items, exact) = stream();
        let mut mg = MisraGries::new(20);
        for it in &items {
            mg.insert(it);
        }
        let bound = mg.error_bound();
        for (item, &true_count) in &exact {
            let est = mg.estimate(item);
            assert!(est <= true_count, "{item}: overcount {est} > {true_count}");
            assert!(
                true_count - est <= bound,
                "{item}: undercount {} > bound {bound}",
                true_count - est
            );
        }
    }

    #[test]
    fn heavy_hitters_guaranteed_present() {
        let (items, exact) = stream();
        let mut mg = MisraGries::new(20);
        for it in &items {
            mg.insert(it);
        }
        let threshold = mg.count() / 21;
        for (item, &c) in &exact {
            if c > threshold {
                assert!(mg.estimate(item) > 0, "heavy hitter {item} evicted");
            }
        }
    }

    #[test]
    fn rel_freq_lower_bounds_exact() {
        let (items, exact) = stream();
        let mut mg = MisraGries::new(30);
        for it in &items {
            mg.insert(it);
        }
        let mut counts: Vec<u64> = exact.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let exact_rf: f64 = counts.iter().take(5).sum::<u64>() as f64 / items.len() as f64;
        let est_rf = mg.rel_freq(5);
        assert!(est_rf <= exact_rf + 1e-12);
        // each of the 5 counts undercounts by at most n/(m+1)
        let bound = 5.0 * mg.error_bound() as f64 / items.len() as f64;
        assert!(
            exact_rf - est_rf <= bound,
            "rf est {est_rf} vs {exact_rf} (bound {bound})"
        );
    }

    #[test]
    fn merge_preserves_bounds() {
        let (items, exact) = stream();
        let mid = items.len() / 2;
        let mut a = MisraGries::new(20);
        let mut b = MisraGries::new(20);
        for it in &items[..mid] {
            a.insert(it);
        }
        for it in &items[mid..] {
            b.insert(it);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.count(), items.len() as u64);
        let bound = a.count() / 10; // merged bound is looser (2·n/(m+1))
        for (item, &true_count) in &exact {
            let est = a.estimate(item);
            assert!(est <= true_count);
            assert!(true_count - est <= bound);
        }
    }

    #[test]
    fn merge_size_mismatch() {
        let mut a = MisraGries::new(4);
        assert!(a.merge(&MisraGries::new(8)).is_err());
    }

    #[test]
    fn small_stream_exact() {
        let mut mg = MisraGries::new(10);
        for it in ["a", "b", "a", "c", "a"] {
            mg.insert(it);
        }
        assert_eq!(mg.estimate("a"), 3);
        assert_eq!(mg.estimate("b"), 1);
        assert_eq!(mg.estimate("zzz"), 0);
        assert_eq!(mg.top()[0].0, "a");
    }
}
