//! Frequent-items sketches: Misra–Gries (lower bounds), SpaceSaving (upper
//! bounds; used by the catalog), and Count-Min (point-query upper bounds).

pub mod count_min;
pub mod misra_gries;
pub mod space_saving;

pub use count_min::CountMin;
pub use misra_gries::MisraGries;
pub use space_saving::SpaceSaving;
