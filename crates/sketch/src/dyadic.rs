//! Partition-invariant moment aggregation over a dyadic merge tree.
//!
//! `Moments::merge` (Pébay) is exact in real arithmetic but not in floats:
//! merging per-shard summaries agrees with a single sequential pass only up
//! to rounding, and the rounding depends on where the shard boundaries fall.
//! That is fine for accuracy but breaks a stronger property the partition
//! pipeline wants: *the same table must produce the same catalog no matter
//! how its rows were sharded*.
//!
//! [`MomentForest`] restores bit-level determinism by fixing the reduction
//! tree instead of the evaluation order. Every global row is a leaf; a node
//! of height `h` covers the dyadic range `[i·2ʰ, (i+1)·2ʰ)` and its value is
//! *defined* as the Pébay merge of its two children. A shard holds the
//! canonical nodes its contiguous row range decomposes into (O(log n) of
//! them); merging shards collapses completed sibling pairs. Since each
//! node's value is a pure function of the rows it covers — never of which
//! shard supplied them — the collapsed forest, and the fold of its roots,
//! is bit-identical across every partitioning of the same rows, including
//! the single-shard (whole-table) build.
//!
//! The price is ~2 Pébay merges per row amortized instead of one Welford
//! update — a constant factor on the cheapest sketch in the catalog — and
//! O(log n) `Moments` of state per column instead of one.

use crate::traits::{MergeError, Mergeable};
use foresight_stats::moments::Moments;
use serde::{Deserialize, Serialize};

/// One canonical dyadic node: rows `[start, start + 2^height)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Node {
    start: u64,
    height: u8,
    moments: Moments,
}

impl Node {
    fn span(&self) -> u64 {
        1u64 << self.height
    }

    fn end(&self) -> u64 {
        self.start + self.span()
    }

    /// `self` and `right` are the two children of one canonical parent.
    fn is_left_sibling_of(&self, right: &Node) -> bool {
        self.height == right.height
            && right.start == self.start + self.span()
            && self.start.is_multiple_of(self.span() * 2)
    }
}

/// A mergeable, partition-invariant [`Moments`] aggregate (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MomentForest {
    /// Canonical nodes of the covered ranges, sorted by `start`, maximally
    /// collapsed (no two adjacent nodes form a canonical sibling pair).
    nodes: Vec<Node>,
}

impl MomentForest {
    /// An empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs a contiguous chunk of a column starting at global row
    /// `row_offset` (`NaN` = missing, covered but empty). Rows must be fed
    /// in increasing global order and must not overlap earlier calls.
    pub fn update_rows(&mut self, values: &[f64], row_offset: u64) {
        for (j, &v) in values.iter().enumerate() {
            let mut moments = Moments::new();
            if !v.is_nan() {
                moments.update(v);
            }
            self.push(Node {
                start: row_offset + j as u64,
                height: 0,
                moments,
            });
        }
    }

    /// Appends a node that starts at or after everything already held,
    /// then collapses completed sibling pairs bottom-up.
    fn push(&mut self, node: Node) {
        self.nodes.push(node);
        while self.nodes.len() >= 2 {
            let right = self.nodes[self.nodes.len() - 1];
            let left = self.nodes[self.nodes.len() - 2];
            if !left.is_left_sibling_of(&right) {
                break;
            }
            let mut moments = left.moments;
            moments.merge(&right.moments);
            self.nodes.truncate(self.nodes.len() - 2);
            self.nodes.push(Node {
                start: left.start,
                height: left.height + 1,
                moments,
            });
        }
    }

    /// Rows covered (present and missing alike).
    pub fn rows_covered(&self) -> u64 {
        self.nodes.iter().map(Node::span).sum()
    }

    /// Folds the canonical roots right-to-left into one summary.
    ///
    /// For a fixed set of covered rows the node set — and therefore this
    /// fold — is canonical, so the result is bit-identical across every
    /// partitioning of those rows.
    ///
    /// The fold runs right-to-left on purpose: it makes the result
    /// additionally invariant to *trailing empty coverage* (all-NaN rows
    /// appended by a stream batch that leaves this column untouched).
    /// Extending coverage restructures the forest only by (a) growing the
    /// last root through merges with empty siblings — bitwise no-ops — and
    /// (b) collapsing the last two roots into their parent, which is
    /// exactly the pairing a right-to-left fold performs first anyway. So
    /// the fold equals the value the fully-padded canonical tree would
    /// reach, and a column's finalized moments cannot move a bit when the
    /// streaming writer appends rows that hold no values for it — the
    /// invariant column-granular cache reuse is built on.
    pub fn finalize(&self) -> Moments {
        let mut out = Moments::new();
        for node in self.nodes.iter().rev() {
            let mut m = node.moments;
            m.merge(&out);
            out = m;
        }
        out
    }
}

impl Mergeable for MomentForest {
    /// Merges another forest covering disjoint global rows, re-collapsing
    /// any sibling pairs the union completes.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if other.nodes.is_empty() {
            return Ok(());
        }
        let mut all: Vec<Node> = Vec::with_capacity(self.nodes.len() + other.nodes.len());
        all.extend_from_slice(&self.nodes);
        all.extend_from_slice(&other.nodes);
        all.sort_by_key(|n| n.start);
        for pair in all.windows(2) {
            if pair[1].start < pair[0].end() {
                return Err(MergeError::ParameterMismatch("overlapping row ranges"));
            }
        }
        let mut merged = MomentForest::new();
        for node in all {
            merged.push(node);
        }
        *self = merged;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_whole(values: &[f64]) -> MomentForest {
        let mut f = MomentForest::new();
        f.update_rows(values, 0);
        f
    }

    #[test]
    fn single_pass_equals_welford_within_tolerance() {
        let values: Vec<f64> = (0..1_000).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let tree = from_whole(&values).finalize();
        let seq = Moments::from_slice(&values);
        assert_eq!(tree.count(), seq.count());
        assert!((tree.mean() - seq.mean()).abs() < 1e-12);
        assert!((tree.skewness() - seq.skewness()).abs() < 1e-9);
        assert!((tree.kurtosis() - seq.kurtosis()).abs() < 1e-9);
        assert_eq!(tree.min(), seq.min());
        assert_eq!(tree.max(), seq.max());
    }

    #[test]
    fn bit_identical_across_arbitrary_splits() {
        let values: Vec<f64> = (0..777)
            .map(|i| (i as f64 * 0.618).sin() * 40.0 + ((i % 7) as f64))
            .collect();
        let whole = from_whole(&values).finalize();
        for splits in [
            vec![0, 1, 777],
            vec![0, 100, 333, 777],
            vec![0, 64, 128, 400, 500, 777],
            vec![0, 776, 777],
        ] {
            let mut merged = MomentForest::new();
            for pair in splits.windows(2) {
                let mut shard = MomentForest::new();
                shard.update_rows(&values[pair[0]..pair[1]], pair[0] as u64);
                merged.merge(&shard).unwrap();
            }
            // bit-identical, not just close
            assert_eq!(merged.finalize(), whole, "splits {splits:?}");
        }
    }

    #[test]
    fn out_of_order_and_gapped_merges() {
        let values: Vec<f64> = (0..300).map(|i| (i % 13) as f64).collect();
        let whole = from_whole(&values).finalize();
        let mut a = MomentForest::new();
        a.update_rows(&values[200..300], 200);
        let mut b = MomentForest::new();
        b.update_rows(&values[..50], 0);
        let mut c = MomentForest::new();
        c.update_rows(&values[50..200], 50);
        let mut merged = MomentForest::new();
        merged.merge(&a).unwrap();
        merged.merge(&b).unwrap();
        merged.merge(&c).unwrap();
        assert_eq!(merged.finalize(), whole);
    }

    #[test]
    fn missing_rows_and_empty_shards() {
        let mut values: Vec<f64> = (0..128).map(|i| i as f64).collect();
        values[3] = f64::NAN;
        values[64] = f64::NAN;
        let whole = from_whole(&values).finalize();
        assert_eq!(whole.count(), 126);

        let mut merged = MomentForest::new();
        let mut shard = MomentForest::new();
        shard.update_rows(&values[..70], 0);
        merged.merge(&shard).unwrap();
        merged.merge(&MomentForest::new()).unwrap(); // empty shard
        let mut rest = MomentForest::new();
        rest.update_rows(&values[70..], 70);
        merged.merge(&rest).unwrap();
        assert_eq!(merged.finalize(), whole);
    }

    #[test]
    fn trailing_empty_coverage_is_bit_identical() {
        // a stream batch whose rows are all NaN for this column extends
        // the forest's coverage without adding values; the finalized
        // moments must not move a single bit, or the engine's "clean
        // column keeps its cached scores" rule would serve wrong answers
        let values: Vec<f64> = (0..84)
            .map(|i| (i as f64 * 0.618).sin() * 40.0 + ((i % 7) as f64))
            .collect();
        let base = from_whole(&values).finalize();
        for pad in [1usize, 4, 20, 44, 100] {
            let mut padded = values.clone();
            padded.extend(std::iter::repeat(f64::NAN).take(pad));
            let grown = from_whole(&padded).finalize();
            assert_eq!(grown, base, "pad {pad}");

            // and via the merge path, as the streaming writer drives it
            let mut merged = from_whole(&values);
            let mut empty_shard = MomentForest::new();
            empty_shard.update_rows(&vec![f64::NAN; pad], 84);
            merged.merge(&empty_shard).unwrap();
            assert_eq!(merged.finalize(), base, "merged pad {pad}");
        }
    }

    #[test]
    fn overlap_rejected() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let mut a = MomentForest::new();
        a.update_rows(&values, 0);
        let mut b = MomentForest::new();
        b.update_rows(&values, 2);
        assert!(matches!(
            a.merge(&b),
            Err(MergeError::ParameterMismatch("overlapping row ranges"))
        ));
    }

    #[test]
    fn state_stays_logarithmic() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let f = from_whole(&values);
        assert!(f.nodes.len() <= 16, "{} nodes", f.nodes.len());
        assert_eq!(f.rows_covered(), 10_000);
    }
}
