//! Multi-table LSH index over per-column hyperplane signatures.
//!
//! The catalog already stores a k-bit SimHash signature per numeric column;
//! until now those signatures were used only as *estimators* (`ρ̂ =
//! cos(πH/k)`), never as an *index*, so every pairwise insight class still
//! scanned all O(d²) column pairs. This module turns the signatures into a
//! banded LSH index: the k bits are split into `L` disjoint bands of `K`
//! bits each, and every band value becomes a bucket key in its own table.
//! Two columns with correlation ρ agree on one signature bit with
//! probability `p = 1 − arccos(ρ)/π`, so they collide in a given table with
//! probability `p^K`, and in at least one of `L` tables with probability
//! `1 − (1 − p^K)^L` — the classic S-curve that passes high-|ρ| pairs and
//! suppresses near-independent ones. Candidate generation then walks bucket
//! contents (~O(d·L) for well-spread data) instead of enumerating d² pairs,
//! and the engine re-scores the survivors with the exact or sketch scorer.
//!
//! Anti-correlation: `ρ ≈ −1` flips every signature bit, so a raw band key
//! would never collide. Each band key is therefore *canonicalized* to
//! `min(key, !key & mask)` — a column and its negation share every bucket,
//! and strongly anti-correlated pairs surface exactly like strongly
//! correlated ones (the paper's classes rank by |ρ|).
//!
//! Determinism: bucket vectors are kept sorted by column index, skips live
//! in a `BTreeMap`, and all randomness comes from the already-deterministic
//! signatures — so a rebuild, a shard-merged build, and an incremental
//! refresh of the same catalog state produce *identical* indexes.

use crate::catalog::{NumericSketches, SketchCatalog};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Default band width K in bits. With 16-bit canonical keys a chance
/// collision between independent columns costs `≈ 2⁻¹⁵` per table, while a
/// ρ = 0.95 pair still collides in a given table with `p^K ≈ 0.69`.
pub const DEFAULT_BAND_BITS: usize = 16;

/// Cap on the number of tables L, independent of signature width.
pub const MAX_TABLES: usize = 32;

/// Banding plan: `K`-bit keys × `L` tables over a `k`-bit signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LshConfig {
    /// Band width K — bits per bucket key.
    pub band_bits: usize,
    /// Number of tables L (disjoint bands; `band_bits·tables ≤ k`).
    pub tables: usize,
}

impl LshConfig {
    /// Plans banding from the signature width: `K = min(16, k)` and
    /// `L = clamp(k / K, 1, MAX_TABLES)`. Degenerate widths (`k < K`)
    /// collapse to a single table over the whole signature rather than
    /// failing. Returns `None` only for an empty signature.
    pub fn plan(signature_bits: usize) -> Option<Self> {
        if signature_bits == 0 {
            return None;
        }
        let band_bits = DEFAULT_BAND_BITS.min(signature_bits);
        let tables = (signature_bits / band_bits).clamp(1, MAX_TABLES);
        Some(Self { band_bits, tables })
    }

    /// Probability that a pair with bit-match probability `p` collides in at
    /// least one of the first `probes` tables: `1 − (1 − p^K)^probes`.
    pub fn collision_probability(&self, bit_match: f64, probes: usize) -> f64 {
        let p = bit_match.clamp(0.0, 1.0);
        let band = p.powi(self.band_bits as i32);
        1.0 - (1.0 - band).powi(probes.min(self.tables) as i32)
    }
}

/// Why a column was left out of the index — typed, never a panic. Skipped
/// columns simply produce no LSH candidates; callers that must see them
/// (e.g. a class whose candidate space includes constant columns) fall back
/// to the exhaustive scan for those pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LshSkip {
    /// Every value in the column is missing — the signature carries no
    /// information (all bits come from the `dot − mean·g_sum ≥ 0` tie rule).
    AllMissing,
    /// The column is constant: zero variance, signature is degenerate and
    /// would collide with every other constant column by construction.
    ConstantColumn,
}

impl LshSkip {
    /// Stable label for traces and tests.
    pub fn name(self) -> &'static str {
        match self {
            LshSkip::AllMissing => "all_missing",
            LshSkip::ConstantColumn => "constant_column",
        }
    }
}

/// The multi-table index: `tables[t]` maps a canonical K-bit band key to the
/// sorted list of column indices whose signature lands in that bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LshIndex {
    config: LshConfig,
    signature_bits: usize,
    tables: Vec<HashMap<u64, Vec<usize>>>,
    /// Per-column canonical band keys (one per table), kept so a column can
    /// be removed from its buckets without re-reading the old signature.
    keys: BTreeMap<usize, Vec<u64>>,
    /// Columns excluded from the index, with the typed reason.
    skipped: BTreeMap<usize, LshSkip>,
}

impl LshIndex {
    /// Builds the index from a catalog's hyperplane signatures. Returns
    /// `None` when the catalog has no usable signature width.
    pub fn build(catalog: &SketchCatalog) -> Option<Self> {
        let config = LshConfig::plan(catalog.hyperplane_config().k)?;
        let mut index = LshIndex {
            config,
            signature_bits: catalog.hyperplane_config().k,
            tables: vec![HashMap::new(); config.tables],
            keys: BTreeMap::new(),
            skipped: BTreeMap::new(),
        };
        for col in catalog.numeric_indices() {
            index.insert_column(col, catalog);
        }
        Some(index)
    }

    /// Incrementally refreshes after streamed appends: every dirty column is
    /// removed from its buckets and re-inserted from its current signature.
    /// Clean columns keep bit-identical signatures across an append, so the
    /// result is identical to a cold [`LshIndex::build`] of the new catalog.
    pub fn refresh(&mut self, catalog: &SketchCatalog, dirty_columns: &[usize]) {
        debug_assert_eq!(self.signature_bits, catalog.hyperplane_config().k);
        let numeric: BTreeSet<usize> = catalog.numeric_indices().into_iter().collect();
        for &col in dirty_columns {
            self.remove_column(col);
            if numeric.contains(&col) {
                self.insert_column(col, catalog);
            }
        }
    }

    /// The banding plan in effect.
    pub fn config(&self) -> LshConfig {
        self.config
    }

    /// Number of columns carried in buckets.
    pub fn indexed_columns(&self) -> usize {
        self.keys.len()
    }

    /// Columns excluded from the index with their typed reason.
    pub fn skips(&self) -> &BTreeMap<usize, LshSkip> {
        &self.skipped
    }

    /// Total columns the index has seen (indexed + skipped) — the `d` in the
    /// "N of d²" candidate-universe report.
    pub fn universe_columns(&self) -> usize {
        self.keys.len() + self.skipped.len()
    }

    /// All unordered column pairs `(i < j)` that collide in at least one of
    /// the first `probes` tables, sorted ascending. `probes` is the
    /// recall-vs-speed knob: each extra table adds `1 − (1−p^K)` recall mass
    /// and one more bucket walk. Clamped to `[1, L]`. Returns the pairs and
    /// the number of tables actually probed.
    pub fn candidate_pairs(&self, probes: usize) -> (Vec<(usize, usize)>, usize) {
        let probed = probes.clamp(1, self.config.tables);
        let mut pairs = BTreeSet::new();
        for table in &self.tables[..probed] {
            for bucket in table.values() {
                for (n, &a) in bucket.iter().enumerate() {
                    for &b in &bucket[n + 1..] {
                        pairs.insert((a, b)); // buckets are sorted: a < b
                    }
                }
            }
        }
        (pairs.into_iter().collect(), probed)
    }

    /// Classifies a column: the signature to index, or the typed skip.
    fn classify(sketches: &NumericSketches) -> Result<(), LshSkip> {
        if sketches.moments.count() == 0 {
            Err(LshSkip::AllMissing)
        } else if sketches.moments.population_variance() > 0.0 {
            Ok(())
        } else {
            // Zero variance, or NaN variance (single present value).
            Err(LshSkip::ConstantColumn)
        }
    }

    fn insert_column(&mut self, col: usize, catalog: &SketchCatalog) {
        let Some(sketches) = catalog.numeric(col) else {
            return;
        };
        if let Err(skip) = Self::classify(sketches) {
            self.skipped.insert(col, skip);
            return;
        }
        let bits = sketches.hyperplane.bits();
        let mask = if self.config.band_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.config.band_bits) - 1
        };
        let mut keys = Vec::with_capacity(self.config.tables);
        for t in 0..self.config.tables {
            let raw = bits.extract(t * self.config.band_bits, self.config.band_bits);
            // Canonical form: a signature and its complement share a key, so
            // ρ ≈ −1 pairs collide exactly like ρ ≈ +1 pairs.
            let key = raw.min(!raw & mask);
            let bucket = self.tables[t].entry(key).or_default();
            let pos = bucket.partition_point(|&c| c < col);
            if bucket.get(pos) != Some(&col) {
                bucket.insert(pos, col);
            }
            keys.push(key);
        }
        self.keys.insert(col, keys);
    }

    fn remove_column(&mut self, col: usize) {
        self.skipped.remove(&col);
        let Some(keys) = self.keys.remove(&col) else {
            return;
        };
        for (t, key) in keys.into_iter().enumerate() {
            if let Some(bucket) = self.tables[t].get_mut(&key) {
                if let Ok(pos) = bucket.binary_search(&col) {
                    bucket.remove(pos);
                }
                if bucket.is_empty() {
                    // Keep `tables` identical to a cold rebuild, which never
                    // materializes empty buckets.
                    self.tables[t].remove(&key);
                }
            }
        }
    }

    /// Approximate heap footprint in bytes (buckets + key cache).
    pub fn size_bytes(&self) -> usize {
        let buckets: usize = self
            .tables
            .iter()
            .map(|t| t.values().map(|b| 16 + b.len() * 8).sum::<usize>())
            .sum();
        buckets + self.keys.len() * (8 + self.config.tables * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{CatalogConfig, SketchCatalog};
    use foresight_data::{Table, TableBuilder};

    fn table_from(cols: Vec<(&str, Vec<f64>)>) -> Table {
        let mut b = TableBuilder::new("t");
        for (n, v) in cols {
            b = b.numeric(n, v);
        }
        b.build().unwrap()
    }

    fn catalog(table: &Table) -> SketchCatalog {
        SketchCatalog::build(table, &CatalogConfig::default())
    }

    #[test]
    fn plan_banding_math() {
        let c = LshConfig::plan(256).unwrap();
        assert_eq!(c.band_bits, 16);
        assert_eq!(c.tables, 16);
        // Degenerate width: one table spanning the whole signature.
        let c = LshConfig::plan(7).unwrap();
        assert_eq!(c.band_bits, 7);
        assert_eq!(c.tables, 1);
        // Very wide signatures cap at MAX_TABLES.
        let c = LshConfig::plan(16 * 100).unwrap();
        assert_eq!(c.tables, MAX_TABLES);
        assert!(LshConfig::plan(0).is_none());
    }

    #[test]
    fn collision_probability_s_curve() {
        let c = LshConfig {
            band_bits: 16,
            tables: 16,
        };
        // Near-perfect correlation → near-certain collision.
        let high = c.collision_probability(0.99, 16);
        // Independent columns (p = 0.5) → vanishing collision probability.
        let low = c.collision_probability(0.5, 16);
        assert!(high > 0.9, "high-match collision prob {high}");
        assert!(low < 0.001, "independent collision prob {low}");
        // More probes never lowers recall.
        assert!(c.collision_probability(0.9, 16) >= c.collision_probability(0.9, 1));
    }

    #[test]
    fn duplicate_columns_always_collide() {
        let vals: Vec<f64> = (0..200).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let t = table_from(vec![
            ("a", vals.clone()),
            ("b", vals.clone()),
            (
                "noise",
                (0..200).map(|i| ((i * 37 + 11) % 101) as f64).collect(),
            ),
        ]);
        let ix = LshIndex::build(&catalog(&t)).unwrap();
        // Identical signatures share every band key, so the self-pair is
        // present even at the cheapest knob setting (1 table probed).
        let (pairs, probed) = ix.candidate_pairs(1);
        assert_eq!(probed, 1);
        assert!(pairs.contains(&(0, 1)), "duplicate pair missing: {pairs:?}");
    }

    #[test]
    fn anticorrelated_columns_collide() {
        let vals: Vec<f64> = (0..300).map(|i| (i as f64 * 0.31).sin() * 5.0).collect();
        let neg: Vec<f64> = vals.iter().map(|v| -v).collect();
        let t = table_from(vec![("a", vals), ("b", neg)]);
        let ix = LshIndex::build(&catalog(&t)).unwrap();
        let (pairs, _) = ix.candidate_pairs(usize::MAX);
        assert!(
            pairs.contains(&(0, 1)),
            "ρ = −1 pair must collide via canonical keys: {pairs:?}"
        );
    }

    #[test]
    fn constant_and_all_nan_columns_get_typed_skips() {
        let t = table_from(vec![
            ("x", (0..100).map(|i| (i as f64).cos()).collect()),
            ("const", vec![4.25; 100]),
            ("nan", vec![f64::NAN; 100]),
        ]);
        let ix = LshIndex::build(&catalog(&t)).unwrap();
        assert_eq!(ix.indexed_columns(), 1);
        assert_eq!(ix.skips().get(&1), Some(&LshSkip::ConstantColumn));
        assert_eq!(ix.skips().get(&2), Some(&LshSkip::AllMissing));
        assert_eq!(ix.universe_columns(), 3);
        let (pairs, _) = ix.candidate_pairs(usize::MAX);
        assert!(pairs.is_empty());
    }

    #[test]
    fn refresh_matches_cold_rebuild() {
        let base: Vec<Vec<f64>> = (0..6)
            .map(|c| {
                (0..400)
                    .map(|i| ((i * (c + 3) + 17) % 997) as f64 * 0.01)
                    .collect()
            })
            .collect();
        let t = table_from(
            base.iter()
                .enumerate()
                .map(|(c, v)| (["a", "b", "c", "d", "e", "f"][c], v.clone()))
                .collect(),
        );
        let cat = catalog(&t);
        let mut incremental = LshIndex::build(&cat).unwrap();
        // Pretend columns 1 and 4 changed: refresh against the same catalog
        // must be a no-op that still round-trips remove+insert.
        incremental.refresh(&cat, &[1, 4]);
        let cold = LshIndex::build(&cat).unwrap();
        assert_eq!(incremental, cold);
    }

    #[test]
    fn candidate_pairs_probe_clamping() {
        let t = table_from(vec![
            ("a", (0..128).map(|i| i as f64).collect()),
            ("b", (0..128).map(|i| (i as f64) * 2.0 + 1.0).collect()),
        ]);
        let ix = LshIndex::build(&catalog(&t)).unwrap();
        let l = ix.config().tables;
        assert_eq!(ix.candidate_pairs(0).1, 1);
        assert_eq!(ix.candidate_pairs(usize::MAX).1, l);
        // Perfectly linear pair: identical or fully-complemented signatures,
        // so it collides regardless of the probe budget.
        assert!(ix.candidate_pairs(1).0.contains(&(0, 1)));
    }

    #[test]
    fn serde_roundtrip() {
        let t = table_from(vec![
            ("a", (0..100).map(|i| (i as f64).sin()).collect()),
            ("b", (0..100).map(|i| (i as f64).sin() + 0.01).collect()),
        ]);
        let ix = LshIndex::build(&catalog(&t)).unwrap();
        let json = serde_json::to_string(&ix).unwrap();
        let back: LshIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(ix, back);
    }
}
