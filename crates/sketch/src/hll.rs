//! HyperLogLog distinct-count sketch (Flajolet et al. 2007).
//!
//! Estimates the number of distinct values in a stream with ~`1.04/√m`
//! relative error using `m` one-byte registers. The catalog uses it to
//! estimate categorical cardinality when data arrives as a stream (for
//! dictionary-encoded columns the exact cardinality is free, but merged
//! partitions and external streams are not dictionary-aligned).

use crate::traits::{MergeError, Mergeable, Sketch};
use serde::{Deserialize, Serialize};

/// A HyperLogLog sketch with `2^precision` registers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
    seed: u64,
    n: u64,
}

impl HyperLogLog {
    /// Creates a sketch with `2^precision` registers; `4 ≤ precision ≤ 16`.
    pub fn new(precision: u8, seed: u64) -> Self {
        assert!((4..=16).contains(&precision), "precision out of range");
        Self {
            precision,
            registers: vec![0; 1 << precision],
            seed,
            n: 0,
        }
    }

    /// Number of registers.
    pub fn m(&self) -> usize {
        self.registers.len()
    }

    fn hash(&self, item: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in item.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // 64-bit avalanche (splitmix-style) for well-mixed high bits
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 31)
    }

    /// Absorbs one item.
    pub fn insert(&mut self, item: &str) {
        let h = self.hash(item);
        let idx = (h >> (64 - self.precision)) as usize;
        let rest = h << self.precision;
        // rank = leading zeros of the remaining bits + 1 (capped)
        let rank = (rest.leading_zeros() as u8 + 1).min(64 - self.precision + 1);
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
        self.n += 1;
    }

    /// The distinct-count estimate, with small-range (linear counting) and
    /// standard bias corrections.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }
}

impl Sketch<str> for HyperLogLog {
    fn update(&mut self, item: &str) {
        self.insert(item);
    }

    fn count(&self) -> u64 {
        self.n
    }
}

impl Mergeable for HyperLogLog {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.precision != other.precision {
            return Err(MergeError::SizeMismatch(
                self.registers.len(),
                other.registers.len(),
            ));
        }
        if self.seed != other.seed {
            return Err(MergeError::SeedMismatch);
        }
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(b);
        }
        self.n += other.n;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(distinct: usize, copies: usize, precision: u8) -> HyperLogLog {
        let mut hll = HyperLogLog::new(precision, 9);
        for rep in 0..copies {
            for i in 0..distinct {
                hll.insert(&format!("item-{i}-x"));
                let _ = rep;
            }
        }
        hll
    }

    #[test]
    fn small_cardinalities_near_exact() {
        for &d in &[10usize, 100, 500] {
            let hll = filled(d, 3, 12);
            let est = hll.estimate();
            assert!(
                (est - d as f64).abs() / (d as f64) < 0.05,
                "d={d}: est {est}"
            );
        }
    }

    #[test]
    fn large_cardinality_within_error_bound() {
        let d = 100_000;
        let hll = filled(d, 1, 12);
        let est = hll.estimate();
        // 1.04/sqrt(4096) ≈ 1.6%; allow 3 sigma
        assert!(
            (est - d as f64).abs() / (d as f64) < 0.05,
            "est {est} for {d}"
        );
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let once = filled(1_000, 1, 12);
        let thrice = filled(1_000, 3, 12);
        assert_eq!(once.estimate(), thrice.estimate());
        assert_eq!(thrice.count(), 3_000);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(10, 5);
        let mut b = HyperLogLog::new(10, 5);
        let mut whole = HyperLogLog::new(10, 5);
        for i in 0..2_000 {
            let item = format!("v{i}");
            if i % 2 == 0 {
                a.insert(&item);
            } else {
                b.insert(&item);
            }
            whole.insert(&item);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.estimate(), whole.estimate());
    }

    #[test]
    fn merge_incompatible() {
        let mut a = HyperLogLog::new(10, 1);
        assert!(a.merge(&HyperLogLog::new(11, 1)).is_err());
        assert!(a.merge(&HyperLogLog::new(10, 2)).is_err());
    }

    #[test]
    fn precision_bounds_enforced() {
        let r = std::panic::catch_unwind(|| HyperLogLog::new(3, 0));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| HyperLogLog::new(17, 0));
        assert!(r.is_err());
    }

    #[test]
    fn empty_estimates_zero() {
        let hll = HyperLogLog::new(8, 0);
        assert!(hll.estimate().abs() < 1e-9);
    }
}
