//! The Greenwald–Khanna ε-approximate quantile summary.
//!
//! Maintains `O((1/ε)·log(εn))` tuples `(v, g, Δ)` and answers any quantile
//! query with rank error at most `εn`. GK is the classic insert-only
//! quantile sketch; the mergeable alternative is [`crate::quantile::kll`].

use crate::traits::Sketch;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Tuple {
    v: f64,
    /// Difference between this tuple's minimum rank and its predecessor's.
    g: u64,
    /// Uncertainty in this tuple's rank.
    delta: u64,
}

/// A GK quantile summary with error parameter `ε`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GkSketch {
    epsilon: f64,
    tuples: Vec<Tuple>,
    n: u64,
    inserts_since_compress: u64,
}

impl GkSketch {
    /// Creates a summary with rank-error bound `ε·n` (`0 < ε < 1`).
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        Self {
            epsilon,
            tuples: Vec::new(),
            n: 0,
            inserts_since_compress: 0,
        }
    }

    /// The configured error parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of retained tuples (the space cost).
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// Inserts one value (NaN ignored).
    pub fn insert(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let pos = self.tuples.partition_point(|t| t.v < v);
        let delta = if pos == 0 || pos == self.tuples.len() {
            0
        } else {
            (2.0 * self.epsilon * self.n as f64).floor() as u64
        };
        self.tuples.insert(pos, Tuple { v, g: 1, delta });
        self.n += 1;
        self.inserts_since_compress += 1;
        if self.inserts_since_compress as f64 >= 1.0 / (2.0 * self.epsilon) {
            self.compress();
            self.inserts_since_compress = 0;
        }
    }

    /// Merges adjacent tuples whose combined uncertainty stays within 2εn.
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let threshold = (2.0 * self.epsilon * self.n as f64).floor() as u64;
        let mut out: Vec<Tuple> = Vec::with_capacity(self.tuples.len());
        out.push(self.tuples[0]);
        // middle tuples may be absorbed into their successor
        for i in 1..self.tuples.len() {
            let cur = self.tuples[i];
            let prev = *out.last().expect("non-empty");
            // never absorb the first tuple; keep the last tuple intact
            let absorbable = out.len() > 1 && prev.g + cur.g + cur.delta <= threshold;
            if absorbable {
                let merged = Tuple {
                    v: cur.v,
                    g: prev.g + cur.g,
                    delta: cur.delta,
                };
                *out.last_mut().expect("non-empty") = merged;
            } else {
                out.push(cur);
            }
        }
        self.tuples = out;
    }

    /// The estimated `q`-quantile (`0 ≤ q ≤ 1`); `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
        if self.tuples.is_empty() {
            return None;
        }
        let rank = (q * self.n as f64).ceil().max(1.0) as u64;
        let bound = (self.epsilon * self.n as f64) as u64;
        let mut r_min = 0u64;
        for (i, t) in self.tuples.iter().enumerate() {
            r_min += t.g;
            let r_max = r_min + t.delta;
            if rank + bound < r_max {
                // overshot: previous tuple was the answer
                return Some(self.tuples[i.saturating_sub(1)].v);
            }
            if rank <= r_min + bound && r_max <= rank + bound {
                return Some(t.v);
            }
        }
        Some(self.tuples.last().expect("non-empty").v)
    }

    /// Estimated rank (fraction ≤ x).
    pub fn rank(&self, x: f64) -> f64 {
        if self.n == 0 {
            return f64::NAN;
        }
        let mut r = 0u64;
        for t in &self.tuples {
            if t.v <= x {
                r += t.g;
            } else {
                break;
            }
        }
        r as f64 / self.n as f64
    }
}

impl Sketch<f64> for GkSketch {
    fn update(&mut self, item: &f64) {
        self.insert(*item);
    }

    fn count(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_stats::quantile::quantile as exact_quantile;

    fn check_errors(data: &[f64], eps: f64) {
        let mut sk = GkSketch::new(eps);
        for &v in data {
            sk.insert(v);
        }
        let mut sorted: Vec<f64> = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let est = sk.quantile(q).unwrap();
            // rank error of the returned value must be ≤ ~eps (+ slack for
            // interpolation-free answers)
            let rank = sorted.iter().filter(|&&v| v <= est).count() as f64 / sorted.len() as f64;
            assert!(
                (rank - q).abs() <= 2.0 * eps + 1.0 / sorted.len() as f64,
                "q={q}: est {est} has rank {rank} (eps {eps})"
            );
        }
    }

    #[test]
    fn rank_error_bound_uniform() {
        let data: Vec<f64> = (0..20_000).map(|i| (i * 7919 % 20_000) as f64).collect();
        check_errors(&data, 0.01);
    }

    #[test]
    fn rank_error_bound_skewed() {
        let data: Vec<f64> = (1..10_000)
            .map(|i| (i as f64).ln().exp2().powi(3))
            .collect();
        check_errors(&data, 0.02);
    }

    #[test]
    fn space_is_sublinear() {
        let mut sk = GkSketch::new(0.01);
        for i in 0..100_000 {
            sk.insert((i * 31 % 100_000) as f64);
        }
        assert!(
            sk.tuple_count() < 2_000,
            "GK kept {} tuples for 100k items",
            sk.tuple_count()
        );
        assert_eq!(sk.count(), 100_000);
    }

    #[test]
    fn small_streams_exact() {
        let mut sk = GkSketch::new(0.1);
        for v in [5.0, 1.0, 3.0] {
            sk.insert(v);
        }
        assert_eq!(sk.quantile(0.0), Some(1.0));
        assert_eq!(sk.quantile(1.0), Some(5.0));
        assert_eq!(sk.quantile(0.5), Some(3.0));
    }

    #[test]
    fn empty_and_nan() {
        let mut sk = GkSketch::new(0.05);
        assert_eq!(sk.quantile(0.5), None);
        assert!(sk.rank(1.0).is_nan());
        sk.insert(f64::NAN);
        assert_eq!(sk.count(), 0);
    }

    #[test]
    fn rank_estimates() {
        let mut sk = GkSketch::new(0.01);
        for i in 0..1_000 {
            sk.insert(i as f64);
        }
        assert!((sk.rank(500.0) - 0.5).abs() < 0.03);
        assert!((sk.rank(-5.0) - 0.0).abs() < 0.01);
        assert!((sk.rank(2_000.0) - 1.0).abs() < 0.01);
    }

    #[test]
    fn matches_exact_on_median() {
        let data: Vec<f64> = (0..5_000)
            .map(|i| ((i * 2_654_435_761u64) % 5_000) as f64)
            .collect();
        let mut sk = GkSketch::new(0.01);
        for &v in &data {
            sk.insert(v);
        }
        let exact = exact_quantile(&data, 0.5).unwrap();
        let est = sk.quantile(0.5).unwrap();
        assert!(
            (est - exact).abs() / 5_000.0 < 0.02,
            "est {est} exact {exact}"
        );
    }
}
