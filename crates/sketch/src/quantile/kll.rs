//! The KLL quantile sketch (Karnin–Lang–Liberty 2016).
//!
//! A hierarchy of compactors: level `h` holds items of weight `2^h`; when a
//! level overflows, it is sorted and every other item (random offset) is
//! promoted to the next level. KLL is fully **mergeable**, which is what the
//! catalog needs to compose per-partition sketches (§3 "composability").

use crate::traits::{MergeError, Mergeable, Sketch};
use serde::{Deserialize, Serialize};

/// Deterministic coin for compaction offsets (so tests are reproducible).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Coin(u64);

impl Coin {
    fn flip(&mut self) -> bool {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x & 1 == 1
    }
}

/// A KLL sketch with accuracy parameter `k` (≈200 gives ~1% rank error).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KllSketch {
    k: usize,
    levels: Vec<Vec<f64>>,
    n: u64,
    coin: Coin,
    min: f64,
    max: f64,
    /// Incrementally maintained Σ levels[h].len() (hot-path bookkeeping).
    retained_count: usize,
    /// Cached Σ capacity(h); recomputed only when the level count changes.
    capacity_cache: usize,
}

const C: f64 = 2.0 / 3.0;

impl KllSketch {
    /// Creates a sketch with accuracy parameter `k ≥ 8`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 8, "k must be at least 8");
        let mut sk = Self {
            k,
            levels: vec![Vec::new()],
            n: 0,
            coin: Coin(0x243F_6A88_85A3_08D3),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            retained_count: 0,
            capacity_cache: 0,
        };
        sk.capacity_cache = sk.total_capacity();
        sk
    }

    /// The accuracy parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Inserts one value (NaN ignored).
    pub fn insert(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.levels[0].push(v);
        self.retained_count += 1;
        self.n += 1;
        if self.retained_count > self.capacity_cache {
            self.compact_if_needed();
        }
    }

    fn capacity(&self, level: usize) -> usize {
        let depth = self.levels.len() - 1 - level;
        ((self.k as f64 * C.powi(depth as i32)).ceil() as usize).max(2)
    }

    fn total_retained(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    fn total_capacity(&self) -> usize {
        (0..self.levels.len()).map(|h| self.capacity(h)).sum()
    }

    fn compact_if_needed(&mut self) {
        while self.total_retained() > self.total_capacity() {
            // (both totals are cheap: the level count is O(log n))
            // find the lowest level over its individual capacity; if every
            // level is within budget the totals cannot disagree, but guard
            // against a degenerate loop anyway
            let Some(h) = (0..self.levels.len()).find(|&h| self.levels[h].len() > self.capacity(h))
            else {
                break;
            };
            self.compact_level(h);
        }
    }

    fn compact_level(&mut self, h: usize) {
        if self.levels[h].len() < 2 {
            return;
        }
        if h + 1 == self.levels.len() {
            self.levels.push(Vec::new());
            self.capacity_cache = self.total_capacity();
        }
        let mut items = std::mem::take(&mut self.levels[h]);
        let before = items.len();
        items.sort_by(|a, b| a.partial_cmp(b).expect("no NaN stored"));
        let offset = usize::from(self.coin.flip());
        // odd-length leftovers stay at level h to keep weights exact
        if items.len() % 2 == 1 {
            let keep = items.pop().expect("non-empty");
            self.levels[h].push(keep);
        }
        for (i, v) in items.into_iter().enumerate() {
            if i % 2 == offset {
                self.levels[h + 1].push(v);
            }
        }
        let after: usize = self.levels[h].len() + (before - self.levels[h].len()) / 2;
        self.retained_count -= before - after;
    }

    /// Number of retained items (the space cost).
    pub fn retained(&self) -> usize {
        self.total_retained()
    }

    /// All retained `(value, weight)` pairs, sorted by value.
    fn weighted(&self) -> Vec<(f64, u64)> {
        let mut out: Vec<(f64, u64)> = Vec::with_capacity(self.total_retained());
        for (h, level) in self.levels.iter().enumerate() {
            let w = 1u64 << h;
            out.extend(level.iter().map(|&v| (v, w)));
        }
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN stored"));
        out
    }

    /// The estimated `q`-quantile; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
        if self.n == 0 {
            return None;
        }
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        let weighted = self.weighted();
        let total: u64 = weighted.iter().map(|(_, w)| w).sum();
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (v, w) in &weighted {
            cum += w;
            if cum >= target {
                return Some(*v);
            }
        }
        Some(self.max)
    }

    /// Estimated rank of `x` (fraction of values ≤ x).
    pub fn rank(&self, x: f64) -> f64 {
        if self.n == 0 {
            return f64::NAN;
        }
        let mut below = 0u64;
        let mut total = 0u64;
        for (h, level) in self.levels.iter().enumerate() {
            let w = 1u64 << h;
            for &v in level {
                total += w;
                if v <= x {
                    below += w;
                }
            }
        }
        below as f64 / total as f64
    }

    /// Exact minimum seen.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Exact maximum seen.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

impl Sketch<f64> for KllSketch {
    fn update(&mut self, item: &f64) {
        self.insert(*item);
    }

    fn count(&self) -> u64 {
        self.n
    }
}

impl Mergeable for KllSketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.k != other.k {
            return Err(MergeError::SizeMismatch(self.k, other.k));
        }
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
        }
        for (h, level) in other.levels.iter().enumerate() {
            self.levels[h].extend_from_slice(level);
            self.retained_count += level.len();
        }
        self.capacity_cache = self.total_capacity();
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.compact_if_needed();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(data: impl IntoIterator<Item = f64>, k: usize) -> KllSketch {
        let mut sk = KllSketch::new(k);
        for v in data {
            sk.insert(v);
        }
        sk
    }

    fn scrambled(n: u64) -> impl Iterator<Item = f64> {
        (0..n).map(move |i| ((i.wrapping_mul(2_654_435_761)) % n) as f64)
    }

    #[test]
    fn rank_error_small() {
        let n = 100_000u64;
        let sk = filled(scrambled(n), 200);
        for &q in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let est = sk.quantile(q).unwrap();
            let true_rank = (est + 1.0) / n as f64;
            assert!(
                (true_rank - q).abs() < 0.025,
                "q={q}: est {est} (rank {true_rank})"
            );
        }
    }

    #[test]
    fn min_max_exact() {
        let sk = filled(scrambled(10_000), 64);
        assert_eq!(sk.quantile(0.0), Some(0.0));
        assert_eq!(sk.quantile(1.0), Some(9_999.0));
        assert_eq!(sk.min(), 0.0);
        assert_eq!(sk.max(), 9_999.0);
    }

    #[test]
    fn space_sublinear() {
        let sk = filled(scrambled(1_000_000), 200);
        assert!(sk.retained() < 3_000, "retained {}", sk.retained());
        assert_eq!(sk.count(), 1_000_000);
    }

    #[test]
    fn merge_matches_union() {
        let mut a = filled((0..50_000).map(|i| i as f64), 200);
        let b = filled((50_000..100_000).map(|i| i as f64), 200);
        a.merge(&b).unwrap();
        assert_eq!(a.count(), 100_000);
        for &q in &[0.25, 0.5, 0.75] {
            let est = a.quantile(q).unwrap();
            let expect = q * 100_000.0;
            assert!(
                (est - expect).abs() / 100_000.0 < 0.03,
                "q={q}: est {est} expect {expect}"
            );
        }
    }

    #[test]
    fn merge_requires_same_k() {
        let mut a = KllSketch::new(64);
        let b = KllSketch::new(128);
        assert!(matches!(
            a.merge(&b),
            Err(MergeError::SizeMismatch(64, 128))
        ));
    }

    #[test]
    fn empty_and_nan() {
        let mut sk = KllSketch::new(64);
        assert_eq!(sk.quantile(0.5), None);
        assert!(sk.rank(0.0).is_nan());
        assert!(sk.min().is_nan());
        sk.insert(f64::NAN);
        assert_eq!(sk.count(), 0);
        sk.insert(7.0);
        assert_eq!(sk.quantile(0.5), Some(7.0));
    }

    #[test]
    fn rank_monotone() {
        let sk = filled(scrambled(10_000), 128);
        let mut prev = 0.0;
        for x in (0..10).map(|i| i as f64 * 1_000.0) {
            let r = sk.rank(x);
            assert!(r >= prev, "rank not monotone at {x}");
            prev = r;
        }
    }

    #[test]
    fn deterministic() {
        let a = filled(scrambled(30_000), 100);
        let b = filled(scrambled(30_000), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn weights_conserved() {
        // total weight across levels must equal n at all times
        let sk = filled(scrambled(77_777), 150);
        let total: u64 = sk
            .levels
            .iter()
            .enumerate()
            .map(|(h, l)| (1u64 << h) * l.len() as u64)
            .sum();
        assert_eq!(total, 77_777);
    }
}
