//! Quantile sketches: the classic insert-only GK summary and the mergeable
//! KLL sketch the catalog uses.

pub mod gk;
pub mod kll;

pub use gk::GkSketch;
pub use kll::KllSketch;
