//! The random hyperplane (SimHash) sketch — the paper's worked example (§3).
//!
//! For shared random Gaussian vectors `r₁…r_k` (k ≪ n), each numeric column
//! `b` is summarized by the bit vector `φ(b) = (sign(b̃·r₁), …, sign(b̃·r_k))`
//! where `b̃` is the mean-centered column. By Charikar's rounding argument,
//! `cos(π·H(φ(x),φ(y))/k)` is an estimator of the Pearson correlation
//! `ρ(x,y)` — so **pairwise correlations between all columns are computed
//! from the bit vectors alone**, in `O(|B|²k)` instead of `O(|B|²n)`.
//!
//! Construction is a single pass per table: the centered dot products are
//! accumulated via `Σⱼ(xⱼ−μ)·gᵢⱼ = Σⱼxⱼ·gᵢⱼ − μ·Σⱼgᵢⱼ`, so the mean and the
//! `k` accumulators are maintained simultaneously. The shared random
//! components are streamed from a seeded row-keyed RNG and materialized only
//! in cache-sized blocks (`ROW_BLOCK` rows at a time) that all columns
//! consume before the next block is generated — see
//! [`SharedHyperplanes::accumulate_columns`].

use crate::bits::BitVec;
use crate::traits::MergeError;
use foresight_stats::kernel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The distribution of the shared random hyperplane components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HyperplaneKind {
    /// Rademacher ±1 components (the default): 64 components per RNG draw,
    /// an order of magnitude cheaper to stream than Gaussians. For sign-of-
    /// dot-product sketches the CLT makes the pair `(x̃·s, ỹ·s)` asymptotically
    /// bivariate normal with correlation ρ, so `cos(πH/k)` retains its
    /// meaning for all but tiny row counts (validated in the T1 experiment).
    #[default]
    Rademacher,
    /// Spherically symmetric Gaussian components — the paper's exact
    /// construction; exactly unbiased at any `n`, ~3× slower to build.
    Gaussian,
}

/// Configuration of the shared hyperplanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HyperplaneConfig {
    /// Number of hyperplanes (bits per column). The paper recommends
    /// `k = O(log²n)`; [`HyperplaneConfig::for_rows`] applies that rule.
    pub k: usize,
    /// Seed of the shared random vectors. Sketches are only comparable when
    /// built with the same seed (and the same row universe).
    pub seed: u64,
    /// Component distribution (Rademacher by default).
    #[serde(default)]
    pub kind: HyperplaneKind,
}

impl Default for HyperplaneConfig {
    fn default() -> Self {
        Self {
            k: 256,
            seed: 0x5EED,
            kind: HyperplaneKind::default(),
        }
    }
}

impl HyperplaneConfig {
    /// The paper's sizing rule `k = O(log²n)`, concretely `⌈1.5·log₂²(n)⌉`
    /// rounded up to a multiple of 64, clamped to `[64, 4096]`. The T1
    /// accuracy experiment shows this constant keeps mean correlation
    /// accuracy above the paper's 90% band at minimal build cost.
    pub fn for_rows(n: usize, seed: u64) -> Self {
        let l = (n.max(2) as f64).log2();
        let k = (1.5 * l * l).ceil() as usize;
        let k = k.div_ceil(64) * 64;
        Self {
            k: k.clamp(64, 4096),
            seed,
            kind: HyperplaneKind::default(),
        }
    }
}

/// Streams the shared Gaussian hyperplane components row by row.
///
/// Row `j` consumes exactly `k` Gaussians from a `seed`-keyed RNG, so every
/// column of a table sees identical hyperplanes — the property that makes the
/// per-column sketches combinable into pairwise correlation estimates.
#[derive(Debug, Clone)]
pub struct SharedHyperplanes {
    config: HyperplaneConfig,
}

impl SharedHyperplanes {
    /// Creates the shared hyperplane family.
    pub fn new(config: HyperplaneConfig) -> Self {
        assert!(config.k > 0, "k must be positive");
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> HyperplaneConfig {
        self.config
    }

    /// Sketches several columns of equal length in one logical pass.
    ///
    /// Missing (`NaN`) entries contribute the column mean, i.e. zero after
    /// centering. A thin wrapper over [`Self::accumulate_columns`] — one
    /// cache-blocked kernel serves the one-shot and partitioned builds, so
    /// the two are identical by construction.
    pub fn sketch_columns(&self, columns: &[&[f64]]) -> Vec<HyperplaneSketch> {
        self.accumulate_columns(columns, 0)
            .iter()
            .map(HyperplaneAccumulator::finalize)
            .collect()
    }

    /// Sketches a single column.
    pub fn sketch_column(&self, column: &[f64]) -> HyperplaneSketch {
        self.sketch_columns(&[column])
            .pop()
            .expect("one column in, one sketch out")
    }

    /// Starts an empty partition accumulator for one column.
    pub fn accumulator(&self) -> HyperplaneAccumulator {
        HyperplaneAccumulator::new(self.config)
    }

    /// Builds one partition accumulator per column for a shard of equal-length
    /// columns starting at global row `row_offset`, materializing each block
    /// of [`ROW_BLOCK`] rows' shared components once and applying it to every
    /// column — the batch analogue of [`HyperplaneAccumulator::update_rows`],
    /// bit-identical to calling it per column (both route through one
    /// kernel) but `|B|×` cheaper on component streaming.
    pub fn accumulate_columns(
        &self,
        columns: &[&[f64]],
        row_offset: u64,
    ) -> Vec<HyperplaneAccumulator> {
        let mut accs: Vec<HyperplaneAccumulator> = columns
            .iter()
            .map(|_| HyperplaneAccumulator::new(self.config))
            .collect();
        self.accumulate_into(columns, row_offset, &mut accs);
        accs
    }

    /// The shared accumulation kernel: absorbs `columns[c]` into `accs[c]`
    /// for every column, rows starting at global row `row_offset`.
    ///
    /// The vectorized path works in blocks of [`ROW_BLOCK`] rows: the
    /// block's `ROW_BLOCK·k` shared components are materialized once
    /// (row-major) and reused by every column, the per-block component
    /// column-sums let a fully-present block update `g_sum` once instead of
    /// per row, and the dot accumulation register-blocks four rows per sweep
    /// of the `k` accumulators — quartering the `dot[]` load/store traffic
    /// that dominates the scalar per-row axpy. Blocks containing missing
    /// values in a column fall back to a per-row pass for that column only.
    /// The scalar path ([`foresight_stats::kernel::KernelMode::Scalar`]) is
    /// the original row-at-a-time loop, kept as oracle and baseline.
    fn accumulate_into(
        &self,
        columns: &[&[f64]],
        row_offset: u64,
        accs: &mut [HyperplaneAccumulator],
    ) {
        let n = columns.first().map(|c| c.len()).unwrap_or(0);
        for c in columns {
            assert_eq!(c.len(), n, "all columns must have equal length");
        }
        assert_eq!(columns.len(), accs.len(), "one accumulator per column");
        match kernel::mode() {
            kernel::KernelMode::Scalar => self.accumulate_into_scalar(columns, row_offset, accs),
            kernel::KernelMode::Vectorized => {
                self.accumulate_into_blocked(columns, row_offset, accs)
            }
        }
    }

    fn accumulate_into_scalar(
        &self,
        columns: &[&[f64]],
        row_offset: u64,
        accs: &mut [HyperplaneAccumulator],
    ) {
        let n = columns.first().map(|c| c.len()).unwrap_or(0);
        let mut g = vec![0.0f64; self.config.k];
        for j in 0..n {
            let mut filled = false;
            for (acc, col) in accs.iter_mut().zip(columns) {
                let v = col[j];
                acc.rows += 1;
                if v.is_nan() {
                    continue;
                }
                if !filled {
                    fill_row_components(self.config, row_offset + j as u64, &mut g);
                    filled = true;
                }
                for ((d, gs), &gi) in acc.dot.iter_mut().zip(acc.g_sum.iter_mut()).zip(g.iter()) {
                    *d += v * gi;
                    *gs += gi;
                }
                acc.value_sum += v;
                acc.present += 1;
            }
        }
    }

    fn accumulate_into_blocked(
        &self,
        columns: &[&[f64]],
        row_offset: u64,
        accs: &mut [HyperplaneAccumulator],
    ) {
        let k = self.config.k;
        let n = columns.first().map(|c| c.len()).unwrap_or(0);
        let mut comps = vec![0.0f64; ROW_BLOCK * k];
        let mut gsum_block = vec![0.0f64; k];
        let mut start = 0usize;
        while start < n {
            let bl = (n - start).min(ROW_BLOCK);
            for r in 0..bl {
                fill_row_components(
                    self.config,
                    row_offset + (start + r) as u64,
                    &mut comps[r * k..(r + 1) * k],
                );
            }
            gsum_block.iter_mut().for_each(|s| *s = 0.0);
            for r in 0..bl {
                let row = &comps[r * k..(r + 1) * k];
                for (s, &gi) in gsum_block.iter_mut().zip(row) {
                    *s += gi;
                }
            }
            for (acc, col) in accs.iter_mut().zip(columns) {
                let seg = &col[start..start + bl];
                acc.rows += bl as u64;
                if seg.iter().any(|v| v.is_nan()) {
                    // mixed block: per-row fallback for this column only
                    for (r, &v) in seg.iter().enumerate() {
                        if v.is_nan() {
                            continue;
                        }
                        let row = &comps[r * k..(r + 1) * k];
                        for ((d, gs), &gi) in acc.dot.iter_mut().zip(acc.g_sum.iter_mut()).zip(row)
                        {
                            *d += v * gi;
                            *gs += gi;
                        }
                        acc.value_sum += v;
                        acc.present += 1;
                    }
                } else {
                    // fully-present block: four rows per sweep of dot[],
                    // one g_sum update for the whole block
                    let mut r = 0usize;
                    while r + 4 <= bl {
                        let (v0, v1, v2, v3) = (seg[r], seg[r + 1], seg[r + 2], seg[r + 3]);
                        let (g0, rest) = comps[r * k..].split_at(k);
                        let (g1, rest) = rest.split_at(k);
                        let (g2, rest) = rest.split_at(k);
                        let g3 = &rest[..k];
                        for (i, d) in acc.dot.iter_mut().enumerate() {
                            *d += v0 * g0[i] + v1 * g1[i] + v2 * g2[i] + v3 * g3[i];
                        }
                        r += 4;
                    }
                    while r < bl {
                        let v = seg[r];
                        let row = &comps[r * k..(r + 1) * k];
                        for (d, &gi) in acc.dot.iter_mut().zip(row) {
                            *d += v * gi;
                        }
                        r += 1;
                    }
                    for (gs, &s) in acc.g_sum.iter_mut().zip(&gsum_block) {
                        *gs += s;
                    }
                    acc.value_sum += seg.iter().sum::<f64>();
                    acc.present += bl as u64;
                }
            }
            start += bl;
        }
    }
}

/// Rows per cache block of the vectorized accumulation kernel: the block's
/// `ROW_BLOCK·k` shared components (16·4096·8 B = 512 KiB worst case, 128 KiB
/// at the common k=1024) are streamed sequentially while the `k`-element
/// `dot`/`g_sum` accumulators stay hot in L1/L2 across the whole block.
const ROW_BLOCK: usize = 16;

/// A mergeable, partitionable pre-image of a [`HyperplaneSketch`].
///
/// The bit vector of a hyperplane sketch is the *sign* of the centered dot
/// products, which cannot be merged once quantized. The accumulator keeps
/// the linear pieces — `Σxⱼ·gᵢⱼ`, `Σgᵢⱼ` over present rows, `Σxⱼ`, and the
/// row count — all of which are additive across disjoint row partitions.
/// Because component generation is row-keyed, each partition feeds its
/// global row offsets and the merged accumulator finalizes to exactly the
/// sketch a single-pass build would have produced.
///
/// # Examples
/// ```
/// use foresight_sketch::hyperplane::{HyperplaneConfig, SharedHyperplanes};
///
/// let data: Vec<f64> = (0..100).map(|i| (i % 13) as f64).collect();
/// let hp = SharedHyperplanes::new(HyperplaneConfig::default());
///
/// // whole-column sketch…
/// let whole = hp.sketch_column(&data);
///
/// // …equals the merge of two disjoint partitions
/// let mut a = hp.accumulator();
/// a.update_rows(&data[..40], 0);
/// let mut b = hp.accumulator();
/// b.update_rows(&data[40..], 40);
/// a.merge(&b).unwrap();
/// assert_eq!(a.finalize(), whole);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperplaneAccumulator {
    config: HyperplaneConfig,
    /// `Σ xⱼ·gᵢⱼ` over present rows.
    dot: Vec<f64>,
    /// `Σ gᵢⱼ` over present rows (for mean-centering at finalize time).
    g_sum: Vec<f64>,
    /// `Σ xⱼ` over present rows.
    value_sum: f64,
    /// Present rows.
    present: u64,
    /// All rows covered (incl. missing).
    rows: u64,
}

impl HyperplaneAccumulator {
    /// An empty accumulator.
    pub fn new(config: HyperplaneConfig) -> Self {
        Self {
            config,
            dot: vec![0.0; config.k],
            g_sum: vec![0.0; config.k],
            value_sum: 0.0,
            present: 0,
            rows: 0,
        }
    }

    /// Absorbs a contiguous chunk of the column starting at global row
    /// `row_offset`. Chunks across calls/partitions must not overlap.
    ///
    /// Routes through the same blocked kernel as
    /// [`SharedHyperplanes::accumulate_columns`] (block boundaries relative
    /// to this chunk's start), so single-column and batch accumulation are
    /// identical by construction.
    pub fn update_rows(&mut self, values: &[f64], row_offset: u64) {
        let hp = SharedHyperplanes::new(self.config);
        hp.accumulate_into(&[values], row_offset, std::slice::from_mut(self));
    }

    /// Merges another partition's accumulator (disjoint global rows).
    pub fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.config.k != other.config.k {
            return Err(MergeError::SizeMismatch(self.config.k, other.config.k));
        }
        if self.config.seed != other.config.seed || self.config.kind != other.config.kind {
            return Err(MergeError::SeedMismatch);
        }
        for (a, b) in self.dot.iter_mut().zip(&other.dot) {
            *a += b;
        }
        for (a, b) in self.g_sum.iter_mut().zip(&other.g_sum) {
            *a += b;
        }
        self.value_sum += other.value_sum;
        self.present += other.present;
        self.rows += other.rows;
        Ok(())
    }

    /// Quantizes to the sign-bit sketch: `bitᵢ = sign(Σxⱼgᵢⱼ − μ·Σgᵢⱼ)`.
    pub fn finalize(&self) -> HyperplaneSketch {
        let mean = if self.present == 0 {
            0.0
        } else {
            self.value_sum / self.present as f64
        };
        HyperplaneSketch {
            bits: BitVec::from_bools(
                self.dot
                    .iter()
                    .zip(&self.g_sum)
                    .map(|(&d, &gs)| d - mean * gs >= 0.0),
            ),
            config: self.config,
            rows: self.rows,
        }
    }
}

/// Fills row `row`'s shared hyperplane components.
///
/// Generation is **row-keyed** — the components of global row `j` depend
/// only on `(config.seed, j)`, never on which rows were processed before —
/// so data partitions can be sketched independently (with their global row
/// offsets) and their accumulators merged exactly (§3 composability).
fn fill_row_components(config: HyperplaneConfig, row: u64, out: &mut [f64]) {
    let row_seed = SplitMix(config.seed ^ row.wrapping_mul(0xD6E8_FEB8_6659_FD93)).next();
    match config.kind {
        HyperplaneKind::Gaussian => {
            let mut rng = StdRng::seed_from_u64(row_seed);
            fill_gaussians(&mut rng, out);
        }
        HyperplaneKind::Rademacher => {
            let mut stream = SplitMix(row_seed | 1);
            // 64 ±1 components per u64 draw
            let mut i = 0;
            while i < out.len() {
                let mut bits = stream.next();
                let end = (i + 64).min(out.len());
                while i < end {
                    out[i] = if bits & 1 == 1 { 1.0 } else { -1.0 };
                    bits >>= 1;
                    i += 1;
                }
            }
        }
    }
}

/// A tiny fast splitmix64 stream for row keys and Rademacher bits.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Two standard normals per Box–Muller transform (no rejection).
fn fill_gaussians(rng: &mut StdRng, out: &mut [f64]) {
    let mut i = 0;
    while i < out.len() {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        out[i] = r * theta.cos();
        i += 1;
        if i < out.len() {
            out[i] = r * theta.sin();
            i += 1;
        }
    }
}

/// The per-column bit-vector sketch. `|B|·k` bits for a whole table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperplaneSketch {
    bits: BitVec,
    config: HyperplaneConfig,
    rows: u64,
}

impl HyperplaneSketch {
    /// The sign bits.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Number of hyperplanes `k`.
    pub fn k(&self) -> usize {
        self.config.k
    }

    /// Rows the sketch was built over.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Memory consumed, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.size_bytes()
    }

    /// Estimates the Pearson correlation with another column's sketch:
    /// `ρ̂ = cos(π·H/k)` (Charikar 2002).
    ///
    /// # Errors
    /// The sketches must share `k`, seed, and row universe.
    pub fn correlation(&self, other: &HyperplaneSketch) -> Result<f64, MergeError> {
        if self.config.k != other.config.k {
            return Err(MergeError::SizeMismatch(self.config.k, other.config.k));
        }
        if self.config.seed != other.config.seed {
            return Err(MergeError::SeedMismatch);
        }
        if self.rows != other.rows {
            return Err(MergeError::ParameterMismatch("row universe"));
        }
        let h = self.bits.hamming(&other.bits);
        Ok((std::f64::consts::PI * h as f64 / self.config.k as f64).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::datasets::dist::std_normal;
    use foresight_stats::correlation::pearson;

    /// Two columns with exact planted correlation structure.
    fn correlated_pair(n: usize, rho: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let resid = (1.0 - rho * rho).sqrt();
        for _ in 0..n {
            let z = std_normal(&mut rng);
            x.push(z);
            y.push(rho * z + resid * std_normal(&mut rng));
        }
        (x, y)
    }

    #[test]
    fn estimates_strong_positive_correlation() {
        let (x, y) = correlated_pair(5_000, 0.9, 1);
        let hp = SharedHyperplanes::new(HyperplaneConfig {
            k: 1024,
            seed: 9,
            ..Default::default()
        });
        let sk = hp.sketch_columns(&[&x, &y]);
        let est = sk[0].correlation(&sk[1]).unwrap();
        let exact = pearson(&x, &y);
        assert!((est - exact).abs() < 0.08, "est {est} vs exact {exact}");
    }

    #[test]
    fn estimates_negative_and_zero_correlation() {
        let hp = SharedHyperplanes::new(HyperplaneConfig {
            k: 1024,
            seed: 2,
            ..Default::default()
        });
        let (x, y) = correlated_pair(5_000, -0.8, 3);
        let sk = hp.sketch_columns(&[&x, &y]);
        let est = sk[0].correlation(&sk[1]).unwrap();
        assert!((est - pearson(&x, &y)).abs() < 0.08, "est {est}");

        let (x0, y0) = correlated_pair(5_000, 0.0, 4);
        let sk0 = hp.sketch_columns(&[&x0, &y0]);
        let est0 = sk0[0].correlation(&sk0[1]).unwrap();
        assert!(est0.abs() < 0.1, "est {est0}");
    }

    #[test]
    fn self_correlation_is_one() {
        let (x, _) = correlated_pair(500, 0.5, 5);
        let hp = SharedHyperplanes::new(HyperplaneConfig::default());
        let s = hp.sketch_column(&x);
        assert_eq!(s.correlation(&s).unwrap(), 1.0);
    }

    #[test]
    fn perfectly_anticorrelated_columns() {
        let (x, _) = correlated_pair(1_000, 0.5, 6);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        let hp = SharedHyperplanes::new(HyperplaneConfig {
            k: 512,
            seed: 7,
            ..Default::default()
        });
        let sk = hp.sketch_columns(&[&x, &neg]);
        let est = sk[0].correlation(&sk[1]).unwrap();
        assert!((est + 1.0).abs() < 1e-12, "est {est}");
    }

    #[test]
    fn invariant_to_affine_transforms() {
        // correlation is shift/scale invariant; the sketch must be too
        let (x, _) = correlated_pair(1_000, 0.5, 8);
        let scaled: Vec<f64> = x.iter().map(|v| 3.5 * v + 100.0).collect();
        let hp = SharedHyperplanes::new(HyperplaneConfig {
            k: 512,
            seed: 11,
            ..Default::default()
        });
        let sk = hp.sketch_columns(&[&x, &scaled]);
        assert!((sk[0].correlation(&sk[1]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn incompatible_sketches_rejected() {
        let x = vec![1.0, 2.0, 3.0];
        let a = SharedHyperplanes::new(HyperplaneConfig {
            k: 64,
            seed: 1,
            ..Default::default()
        })
        .sketch_column(&x);
        let b = SharedHyperplanes::new(HyperplaneConfig {
            k: 128,
            seed: 1,
            ..Default::default()
        })
        .sketch_column(&x);
        let c = SharedHyperplanes::new(HyperplaneConfig {
            k: 64,
            seed: 2,
            ..Default::default()
        })
        .sketch_column(&x);
        let d = SharedHyperplanes::new(HyperplaneConfig {
            k: 64,
            seed: 1,
            ..Default::default()
        })
        .sketch_column(&[1.0, 2.0, 3.0, 4.0]);
        assert!(matches!(
            a.correlation(&b),
            Err(MergeError::SizeMismatch(64, 128))
        ));
        assert!(matches!(a.correlation(&c), Err(MergeError::SeedMismatch)));
        assert!(matches!(
            a.correlation(&d),
            Err(MergeError::ParameterMismatch(_))
        ));
    }

    #[test]
    fn missing_values_tolerated() {
        let (mut x, y) = correlated_pair(3_000, 0.85, 12);
        for i in (0..x.len()).step_by(10) {
            x[i] = f64::NAN;
        }
        let hp = SharedHyperplanes::new(HyperplaneConfig {
            k: 1024,
            seed: 13,
            ..Default::default()
        });
        let sk = hp.sketch_columns(&[&x, &y]);
        let est = sk[0].correlation(&sk[1]).unwrap();
        assert!(est > 0.6, "est {est}");
    }

    #[test]
    fn memory_is_k_bits_per_column() {
        let hp = SharedHyperplanes::new(HyperplaneConfig {
            k: 256,
            seed: 1,
            ..Default::default()
        });
        let s = hp.sketch_column(&vec![1.0; 10_000]);
        assert_eq!(s.size_bytes(), 32); // 256 bits
    }

    #[test]
    fn sizing_rule_grows_with_n() {
        let small = HyperplaneConfig::for_rows(1_000, 0);
        let big = HyperplaneConfig::for_rows(1_000_000, 0);
        assert!(small.k >= 64 && big.k > small.k && big.k <= 4096);
        assert_eq!(small.k % 64, 0);
    }

    #[test]
    fn gaussian_and_rademacher_agree_at_scale() {
        let (x, y) = correlated_pair(8_000, 0.8, 77);
        let exact = pearson(&x, &y);
        for kind in [HyperplaneKind::Gaussian, HyperplaneKind::Rademacher] {
            let hp = SharedHyperplanes::new(HyperplaneConfig {
                k: 1024,
                seed: 5,
                kind,
            });
            let sk = hp.sketch_columns(&[&x, &y]);
            let est = sk[0].correlation(&sk[1]).unwrap();
            assert!(
                (est - exact).abs() < 0.08,
                "{kind:?}: est {est} exact {exact}"
            );
        }
    }

    #[test]
    fn batch_accumulators_match_per_column() {
        let (mut x, y) = correlated_pair(600, 0.6, 19);
        for i in (0..x.len()).step_by(7) {
            x[i] = f64::NAN;
        }
        let hp = SharedHyperplanes::new(HyperplaneConfig {
            k: 256,
            seed: 21,
            ..Default::default()
        });
        let batch = hp.accumulate_columns(&[&x, &y], 100);
        let mut ax = hp.accumulator();
        ax.update_rows(&x, 100);
        let mut ay = hp.accumulator();
        ay.update_rows(&y, 100);
        assert_eq!(batch[0], ax);
        assert_eq!(batch[1], ay);
    }

    #[test]
    fn deterministic_for_seed() {
        let (x, y) = correlated_pair(200, 0.4, 20);
        let hp = SharedHyperplanes::new(HyperplaneConfig {
            k: 128,
            seed: 3,
            ..Default::default()
        });
        assert_eq!(hp.sketch_columns(&[&x, &y]), hp.sketch_columns(&[&x, &y]));
    }

    #[test]
    fn accuracy_above_ninety_percent_at_paper_k() {
        // the paper's claim: >90% accuracy with k = O(log² n)
        let n = 20_000;
        let cfg = HyperplaneConfig::for_rows(n, 99);
        let hp = SharedHyperplanes::new(cfg);
        let mut errs = Vec::new();
        for (seed, rho) in [(31u64, 0.95), (32, 0.7), (33, -0.85), (34, 0.5), (35, -0.6)] {
            let (x, y) = correlated_pair(n, rho, seed);
            let sk = hp.sketch_columns(&[&x, &y]);
            let est = sk[0].correlation(&sk[1]).unwrap();
            let exact = pearson(&x, &y);
            errs.push((est - exact).abs());
        }
        // the estimator is unbiased with sd ≈ π·sin(πp)·√(p(1−p)/k); at the
        // paper's k the *average* error stays well under the 10% band even
        // though a single pair can fluctuate close to it
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        let max_err = errs.iter().copied().fold(0.0f64, f64::max);
        assert!(mean_err < 0.06, "mean abs err {mean_err} (errors {errs:?})");
        assert!(max_err < 0.13, "max abs err {max_err} (errors {errs:?})");
    }
}
