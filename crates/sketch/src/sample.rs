//! Reservoir sampling — the "samples" in the paper's synopsis toolbox.
//!
//! A fixed-size uniform random sample maintained in one pass (Vitter's
//! Algorithm R). Used for preview scatter plots and for approximating
//! metrics with no dedicated sketch (e.g. the dip statistic at scale).

use crate::traits::Sketch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A uniform reservoir sample of capacity `m`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reservoir {
    capacity: usize,
    items: Vec<f64>,
    n: u64,
    #[serde(skip, default = "default_rng")]
    rng: StdRng,
    seed: u64,
}

fn default_rng() -> StdRng {
    StdRng::seed_from_u64(0)
}

impl PartialEq for Reservoir {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity
            && self.items == other.items
            && self.n == other.n
            && self.seed == other.seed
    }
}

impl Reservoir {
    /// Creates a reservoir of `capacity ≥ 1` items.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            items: Vec::with_capacity(capacity),
            n: 0,
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Absorbs one value (NaN ignored).
    pub fn insert(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.n += 1;
        if self.items.len() < self.capacity {
            self.items.push(v);
        } else {
            let j = self.rng.gen_range(0..self.n);
            if (j as usize) < self.capacity {
                self.items[j as usize] = v;
            }
        }
    }

    /// The current sample.
    pub fn sample(&self) -> &[f64] {
        &self.items
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Sketch<f64> for Reservoir {
    fn update(&mut self, item: &f64) {
        self.insert(*item);
    }

    fn count(&self) -> u64 {
        self.n
    }
}

/// A paired reservoir: samples row indices so that `(x, y)` pairs stay
/// aligned — needed for scatter-plot previews of two columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairReservoir {
    capacity: usize,
    pairs: Vec<[f64; 2]>,
    n: u64,
    #[serde(skip, default = "default_rng")]
    rng: StdRng,
}

impl PairReservoir {
    /// Creates a paired reservoir of `capacity ≥ 1` rows.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            pairs: Vec::with_capacity(capacity),
            n: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Absorbs one row (skipped when either coordinate is missing).
    pub fn insert(&mut self, x: f64, y: f64) {
        if x.is_nan() || y.is_nan() {
            return;
        }
        self.n += 1;
        if self.pairs.len() < self.capacity {
            self.pairs.push([x, y]);
        } else {
            let j = self.rng.gen_range(0..self.n);
            if (j as usize) < self.capacity {
                self.pairs[j as usize] = [x, y];
            }
        }
    }

    /// The sampled rows.
    pub fn sample(&self) -> &[[f64; 2]] {
        &self.pairs
    }

    /// Rows seen.
    pub fn count(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_under_capacity() {
        let mut r = Reservoir::new(100, 1);
        for i in 0..50 {
            r.insert(i as f64);
        }
        assert_eq!(r.sample().len(), 50);
        assert_eq!(r.count(), 50);
    }

    #[test]
    fn caps_at_capacity() {
        let mut r = Reservoir::new(64, 2);
        for i in 0..10_000 {
            r.insert(i as f64);
        }
        assert_eq!(r.sample().len(), 64);
        assert_eq!(r.count(), 10_000);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // mean of a uniform stream's sample should be near the stream mean
        let mut means = Vec::new();
        for seed in 0..20 {
            let mut r = Reservoir::new(200, seed);
            for i in 0..20_000 {
                r.insert(i as f64);
            }
            means.push(r.sample().iter().sum::<f64>() / 200.0);
        }
        let grand = means.iter().sum::<f64>() / means.len() as f64;
        assert!(
            (grand - 10_000.0).abs() < 500.0,
            "grand mean {grand} biased"
        );
    }

    #[test]
    fn nan_skipped() {
        let mut r = Reservoir::new(10, 3);
        r.insert(f64::NAN);
        r.insert(1.0);
        assert_eq!(r.count(), 1);
        assert_eq!(r.sample(), &[1.0]);
    }

    #[test]
    fn pair_reservoir_alignment() {
        let mut r = PairReservoir::new(50, 4);
        for i in 0..5_000 {
            r.insert(i as f64, 2.0 * i as f64 + 1.0);
        }
        assert_eq!(r.sample().len(), 50);
        for &[x, y] in r.sample() {
            assert_eq!(y, 2.0 * x + 1.0, "pair broken: ({x}, {y})");
        }
    }

    #[test]
    fn pair_reservoir_skips_incomplete_rows() {
        let mut r = PairReservoir::new(10, 5);
        r.insert(1.0, f64::NAN);
        r.insert(f64::NAN, 1.0);
        r.insert(2.0, 3.0);
        assert_eq!(r.count(), 1);
    }

    #[test]
    fn deterministic_for_seed() {
        let fill = |seed| {
            let mut r = Reservoir::new(32, seed);
            for i in 0..1_000 {
                r.insert(i as f64);
            }
            r.sample().to_vec()
        };
        assert_eq!(fill(7), fill(7));
        assert_ne!(fill(7), fill(8));
    }
}
