//! Reservoir sampling — the "samples" in the paper's synopsis toolbox.
//!
//! A fixed-size uniform random sample maintained in one pass (Vitter's
//! Algorithm R). Used for preview scatter plots and for approximating
//! metrics with no dedicated sketch (e.g. the dip statistic at scale).

use crate::traits::{MergeError, Mergeable, Sketch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A uniform reservoir sample of capacity `m`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reservoir {
    capacity: usize,
    items: Vec<f64>,
    n: u64,
    #[serde(skip, default = "default_rng")]
    rng: StdRng,
    seed: u64,
}

fn default_rng() -> StdRng {
    StdRng::seed_from_u64(0)
}

impl PartialEq for Reservoir {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity
            && self.items == other.items
            && self.n == other.n
            && self.seed == other.seed
    }
}

impl Reservoir {
    /// Creates a reservoir of `capacity ≥ 1` items.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            items: Vec::with_capacity(capacity),
            n: 0,
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Absorbs one value (NaN ignored).
    pub fn insert(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.n += 1;
        if self.items.len() < self.capacity {
            self.items.push(v);
        } else {
            let j = self.rng.gen_range(0..self.n);
            if (j as usize) < self.capacity {
                self.items[j as usize] = v;
            }
        }
    }

    /// The current sample.
    pub fn sample(&self) -> &[f64] {
        &self.items
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Sketch<f64> for Reservoir {
    fn update(&mut self, item: &f64) {
        self.insert(*item);
    }

    fn count(&self) -> u64 {
        self.n
    }
}

impl Mergeable for Reservoir {
    /// Combines two reservoirs over disjoint streams into a sample of their
    /// union. When the union fits, the merge is exact (concatenation);
    /// otherwise each survivor slot is drawn from the left sample with
    /// probability `n_left / (n_left + n_right)` and the winners are picked
    /// without replacement — the guarantee is *distributional* (the result
    /// is a uniform sample of the union), not bit-equality with a
    /// single-pass reservoir over the concatenated stream. Deterministic for
    /// a given pair of inputs: the merge RNG is keyed off both seeds and
    /// both stream lengths.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.capacity != other.capacity {
            return Err(MergeError::SizeMismatch(self.capacity, other.capacity));
        }
        if other.n == 0 {
            // an empty partition contributes nothing; resampling here would
            // reshuffle the surviving sample and break merge idempotence
            return Ok(());
        }
        let total = self.n + other.n;
        if total <= self.capacity as u64 {
            self.items.extend_from_slice(&other.items);
            self.n = total;
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ other.seed.rotate_left(17)
                ^ self.n.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ other.n.rotate_left(32),
        );
        let mut from_self = 0usize;
        for _ in 0..self.capacity {
            if rng.gen_range(0..total) < self.n {
                from_self += 1;
            }
        }
        // clamp to what each side can actually supply
        let from_self = from_self
            .max(self.capacity.saturating_sub(other.items.len()))
            .min(self.items.len());
        let pick = |src: &[f64], m: usize, rng: &mut StdRng| -> Vec<f64> {
            // partial Fisher–Yates: m distinct survivors, order randomized
            let mut idx: Vec<usize> = (0..src.len()).collect();
            for i in 0..m {
                let j = i + rng.gen_range(0..(idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx[..m].iter().map(|&i| src[i]).collect()
        };
        let mut merged = pick(&self.items, from_self, &mut rng);
        merged.extend(pick(&other.items, self.capacity - from_self, &mut rng));
        self.items = merged;
        self.n = total;
        Ok(())
    }
}

/// A paired reservoir: samples row indices so that `(x, y)` pairs stay
/// aligned — needed for scatter-plot previews of two columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairReservoir {
    capacity: usize,
    pairs: Vec<[f64; 2]>,
    n: u64,
    #[serde(skip, default = "default_rng")]
    rng: StdRng,
}

impl PairReservoir {
    /// Creates a paired reservoir of `capacity ≥ 1` rows.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            pairs: Vec::with_capacity(capacity),
            n: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Absorbs one row (skipped when either coordinate is missing).
    pub fn insert(&mut self, x: f64, y: f64) {
        if x.is_nan() || y.is_nan() {
            return;
        }
        self.n += 1;
        if self.pairs.len() < self.capacity {
            self.pairs.push([x, y]);
        } else {
            let j = self.rng.gen_range(0..self.n);
            if (j as usize) < self.capacity {
                self.pairs[j as usize] = [x, y];
            }
        }
    }

    /// The sampled rows.
    pub fn sample(&self) -> &[[f64; 2]] {
        &self.pairs
    }

    /// Rows seen.
    pub fn count(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_under_capacity() {
        let mut r = Reservoir::new(100, 1);
        for i in 0..50 {
            r.insert(i as f64);
        }
        assert_eq!(r.sample().len(), 50);
        assert_eq!(r.count(), 50);
    }

    #[test]
    fn caps_at_capacity() {
        let mut r = Reservoir::new(64, 2);
        for i in 0..10_000 {
            r.insert(i as f64);
        }
        assert_eq!(r.sample().len(), 64);
        assert_eq!(r.count(), 10_000);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // mean of a uniform stream's sample should be near the stream mean
        let mut means = Vec::new();
        for seed in 0..20 {
            let mut r = Reservoir::new(200, seed);
            for i in 0..20_000 {
                r.insert(i as f64);
            }
            means.push(r.sample().iter().sum::<f64>() / 200.0);
        }
        let grand = means.iter().sum::<f64>() / means.len() as f64;
        assert!(
            (grand - 10_000.0).abs() < 500.0,
            "grand mean {grand} biased"
        );
    }

    #[test]
    fn nan_skipped() {
        let mut r = Reservoir::new(10, 3);
        r.insert(f64::NAN);
        r.insert(1.0);
        assert_eq!(r.count(), 1);
        assert_eq!(r.sample(), &[1.0]);
    }

    #[test]
    fn pair_reservoir_alignment() {
        let mut r = PairReservoir::new(50, 4);
        for i in 0..5_000 {
            r.insert(i as f64, 2.0 * i as f64 + 1.0);
        }
        assert_eq!(r.sample().len(), 50);
        for &[x, y] in r.sample() {
            assert_eq!(y, 2.0 * x + 1.0, "pair broken: ({x}, {y})");
        }
    }

    #[test]
    fn pair_reservoir_skips_incomplete_rows() {
        let mut r = PairReservoir::new(10, 5);
        r.insert(1.0, f64::NAN);
        r.insert(f64::NAN, 1.0);
        r.insert(2.0, 3.0);
        assert_eq!(r.count(), 1);
    }

    #[test]
    fn deterministic_for_seed() {
        let fill = |seed| {
            let mut r = Reservoir::new(32, seed);
            for i in 0..1_000 {
                r.insert(i as f64);
            }
            r.sample().to_vec()
        };
        assert_eq!(fill(7), fill(7));
        assert_ne!(fill(7), fill(8));
    }

    #[test]
    fn merge_under_capacity_is_exact_concat() {
        let mut a = Reservoir::new(100, 1);
        let mut b = Reservoir::new(100, 2);
        for i in 0..30 {
            a.insert(i as f64);
            b.insert(100.0 + i as f64);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.count(), 60);
        assert_eq!(a.sample().len(), 60);
        assert!(a.sample().iter().any(|&v| v >= 100.0));
    }

    #[test]
    fn merge_capacity_mismatch_rejected() {
        let mut a = Reservoir::new(10, 1);
        let b = Reservoir::new(20, 1);
        assert!(matches!(a.merge(&b), Err(MergeError::SizeMismatch(10, 20))));
    }

    #[test]
    fn merged_sample_is_uniform_over_union() {
        // streams of very different sizes: the merged sample's share from
        // each side must track the stream-size proportions
        let mut left_share = 0.0;
        for seed in 0..20u64 {
            let mut a = Reservoir::new(200, seed);
            let mut b = Reservoir::new(200, 1_000 + seed);
            for i in 0..30_000 {
                a.insert(i as f64); // values < 30_000
            }
            for i in 0..10_000 {
                b.insert(100_000.0 + i as f64);
            }
            a.merge(&b).unwrap();
            assert_eq!(a.count(), 40_000);
            assert_eq!(a.sample().len(), 200);
            left_share += a.sample().iter().filter(|&&v| v < 30_000.0).count() as f64 / 200.0;
        }
        left_share /= 20.0;
        assert!(
            (left_share - 0.75).abs() < 0.05,
            "left share {left_share}, want ≈ 0.75"
        );
    }

    #[test]
    fn merge_with_empty_side_is_a_no_op() {
        // even past capacity: the resample path must not run, or the
        // surviving sample would be reshuffled by a zero-row partition
        let mut a = Reservoir::new(32, 9);
        for i in 0..5_000 {
            a.insert(i as f64);
        }
        let before = a.sample().to_vec();
        let empty = Reservoir::new(32, 77);
        a.merge(&empty).unwrap();
        assert_eq!(a.count(), 5_000);
        assert_eq!(a.sample(), before.as_slice());
    }

    #[test]
    fn merge_is_deterministic() {
        let build = || {
            let mut a = Reservoir::new(50, 3);
            let mut b = Reservoir::new(50, 4);
            for i in 0..1_000 {
                a.insert(i as f64);
                b.insert(-(i as f64) - 1.0);
            }
            a.merge(&b).unwrap();
            a.sample().to_vec()
        };
        assert_eq!(build(), build());
    }
}
