//! Windowed and time-decayed sketch variants for streaming ingest.
//!
//! The batch catalog (§3) summarizes *all* rows ever ingested. Streaming
//! deployments often want the opposite emphasis — "what does the tail of
//! the stream look like?" — without a second full pass. Two standard
//! constructions cover that, both built from the mergeable substrate:
//!
//! * **ring of sub-sketches** ([`SketchRing`], [`WindowedCatalog`]) — the
//!   stream is cut into bucket sub-sketches; the window estimate is the
//!   merge of the newest buckets and old buckets are dropped whole. The
//!   window boundary is approximate at bucket granularity (a classic
//!   sliding-window compromise: eviction is O(1) and no per-row timestamps
//!   are kept);
//! * **exponential decay** ([`DecayedMoments`], [`DecayedFrequency`]) —
//!   every existing observation's weight is multiplied by `λ` per arriving
//!   row, so the summary is a smoothly aging average with effective window
//!   `≈ 1/(1−λ)` rows. Merge stays well-defined for *ordered* partitions:
//!   `decay(A ++ B) = decay(A)·λ^|B| ⊕ decay(B)` — the older side is aged
//!   by the younger side's row span, then the states add.
//!
//! Decayed merges reassociate weights through `λ^span` powers, so the laws
//! hold to floating-point round-off (tested in `tests/laws.rs`), not
//! bit-exactly like the sum-structured batch sketches.

use crate::catalog::{CatalogConfig, SketchCatalog};
use crate::traits::{MergeError, Mergeable, Sketch};
use foresight_data::Table;
use std::collections::VecDeque;

/// A sliding-window sketch: a ring of mergeable sub-sketches, each
/// covering `bucket_rows` consecutive rows, keeping the newest
/// `max_buckets` buckets. The merged view therefore covers between
/// `(max_buckets−1)·bucket_rows + 1` and `max_buckets·bucket_rows` of the
/// most recent rows — "last N rows" at bucket granularity.
#[derive(Debug, Clone)]
pub struct SketchRing<S> {
    /// An empty sketch cloned whenever a new bucket opens (carries the
    /// configuration: width, seed, capacity…).
    prototype: S,
    bucket_rows: u64,
    max_buckets: usize,
    buckets: VecDeque<Bucket<S>>,
    rows_seen: u64,
}

#[derive(Debug, Clone)]
struct Bucket<S> {
    sketch: S,
    rows: u64,
}

impl<S: Mergeable + Clone> SketchRing<S> {
    /// Creates a ring whose window is `max_buckets` buckets of
    /// `bucket_rows` rows each.
    ///
    /// # Panics
    /// When `bucket_rows` is zero or `max_buckets` is zero.
    pub fn new(prototype: S, bucket_rows: u64, max_buckets: usize) -> Self {
        assert!(bucket_rows >= 1, "bucket must cover at least one row");
        assert!(max_buckets >= 1, "window needs at least one bucket");
        Self {
            prototype,
            bucket_rows,
            max_buckets,
            buckets: VecDeque::with_capacity(max_buckets + 1),
            rows_seen: 0,
        }
    }

    /// Absorbs one row, applying `f` to the current bucket's sketch.
    /// Opens a fresh bucket (and evicts the oldest) at bucket boundaries.
    pub fn observe_with(&mut self, f: impl FnOnce(&mut S)) {
        let needs_new = match self.buckets.back() {
            Some(b) => b.rows >= self.bucket_rows,
            None => true,
        };
        if needs_new {
            self.buckets.push_back(Bucket {
                sketch: self.prototype.clone(),
                rows: 0,
            });
            while self.buckets.len() > self.max_buckets {
                self.buckets.pop_front();
            }
        }
        let bucket = self.buckets.back_mut().expect("bucket just ensured");
        f(&mut bucket.sketch);
        bucket.rows += 1;
        self.rows_seen += 1;
    }

    /// The window estimate: every live bucket merged (oldest first) into a
    /// clone of the prototype.
    pub fn merged(&self) -> Result<S, MergeError> {
        let mut out = self.prototype.clone();
        for bucket in &self.buckets {
            out.merge(&bucket.sketch)?;
        }
        Ok(out)
    }

    /// Rows currently covered by the live buckets (≤ `window_capacity`).
    pub fn window_rows(&self) -> u64 {
        self.buckets.iter().map(|b| b.rows).sum()
    }

    /// The maximum rows the window can cover.
    pub fn window_capacity(&self) -> u64 {
        self.bucket_rows * self.max_buckets as u64
    }

    /// Total rows observed over the ring's lifetime.
    pub fn rows_seen(&self) -> u64 {
        self.rows_seen
    }

    /// Live bucket count.
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }
}

impl<S: Sketch<f64> + Mergeable + Clone> SketchRing<S> {
    /// Absorbs one numeric row (convenience over [`Self::observe_with`]).
    pub fn insert(&mut self, value: f64) {
        self.observe_with(|s| s.update(&value));
    }
}

/// Exponentially decayed moments: count, mean and variance where each
/// arriving row multiplies every prior observation's weight by `λ`. The
/// decayed "count" `w = Σ λ^age` approaches `1/(1−λ)` on a steady stream —
/// the effective window length.
#[derive(Debug, Clone)]
pub struct DecayedMoments {
    lambda: f64,
    /// Rows the sketch has aged over (present or missing — time passes
    /// either way). This is the span used to age the older side on merge.
    span: u64,
    /// Decayed count of *present* values.
    weight: f64,
    /// Decayed Σ λ^age · x.
    sum: f64,
    /// Decayed Σ λ^age · x².
    sum_sq: f64,
}

impl DecayedMoments {
    /// Creates a decayed-moments sketch with decay factor `0 < λ ≤ 1`
    /// per row (λ = 1 degrades to undecayed moments).
    ///
    /// # Panics
    /// When `λ` is outside `(0, 1]`.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "decay factor must be in (0, 1], got {lambda}"
        );
        Self {
            lambda,
            span: 0,
            weight: 0.0,
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// The decay factor.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Absorbs one row. `NaN` marks a missing value: the clock still
    /// advances (existing weights decay) but nothing is added.
    pub fn insert(&mut self, value: f64) {
        self.weight *= self.lambda;
        self.sum *= self.lambda;
        self.sum_sq *= self.lambda;
        self.span += 1;
        if value.is_nan() {
            return;
        }
        self.weight += 1.0;
        self.sum += value;
        self.sum_sq += value * value;
    }

    /// Ages the whole state by `rows` arrivals with nothing added — used
    /// to align the older side before a merge.
    pub fn age(&mut self, rows: u64) {
        if rows == 0 {
            return;
        }
        let factor = self.lambda.powi(rows.min(i32::MAX as u64) as i32);
        self.weight *= factor;
        self.sum *= factor;
        self.sum_sq *= factor;
        self.span += rows;
    }

    /// Rows the sketch has aged over.
    pub fn span(&self) -> u64 {
        self.span
    }

    /// The decayed count (Σ λ^age over present values).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The decayed mean, `None` while the decayed count is ~zero.
    pub fn mean(&self) -> Option<f64> {
        (self.weight > 1e-12).then(|| self.sum / self.weight)
    }

    /// The decayed population variance, `None` while the decayed count is
    /// ~zero. Clamped at zero against round-off.
    pub fn variance(&self) -> Option<f64> {
        let mean = self.mean()?;
        Some((self.sum_sq / self.weight - mean * mean).max(0.0))
    }
}

impl Sketch<f64> for DecayedMoments {
    fn update(&mut self, item: &f64) {
        self.insert(*item);
    }

    fn count(&self) -> u64 {
        self.span
    }
}

impl Mergeable for DecayedMoments {
    /// Ordered merge: `self` is the *older* partition, `other` the
    /// *newer* one. The older state is aged by the newer side's span,
    /// then the decayed sums add: `decay(A ++ B) = decay(A)·λ^|B| ⊕
    /// decay(B)`, exact up to `λ^n`-vs-repeated-multiply round-off.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.lambda != other.lambda {
            return Err(MergeError::ParameterMismatch("decay factor"));
        }
        self.age(other.span);
        self.weight += other.weight;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        Ok(())
    }
}

/// Exponentially decayed heavy hitters: SpaceSaving over decayed weights.
/// Counter values age by `λ` per arriving row, so a once-hot label fades
/// with effective window `≈ 1/(1−λ)` rows.
///
/// Internally counts are stored in "boosted" units — a row arriving at
/// time `t` weighs `λ^{−t}` — so insertion never rescales existing
/// counters; the shared scale is divided out on read and renormalized
/// before it can overflow.
#[derive(Debug, Clone)]
pub struct DecayedFrequency {
    lambda: f64,
    m: usize,
    /// Shared scale: a new arrival currently weighs `boost` stored units.
    boost: f64,
    span: u64,
    counters: Vec<(String, f64)>,
}

/// Renormalize stored counters once the shared boost passes this bound.
const BOOST_LIMIT: f64 = 1e100;

impl DecayedFrequency {
    /// Creates a decayed top-`m` sketch with decay factor `0 < λ ≤ 1`.
    ///
    /// # Panics
    /// When `λ` is outside `(0, 1]` or `m` is zero.
    pub fn new(m: usize, lambda: f64) -> Self {
        assert!(m >= 1, "need at least one counter");
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "decay factor must be in (0, 1], got {lambda}"
        );
        Self {
            lambda,
            m,
            boost: 1.0,
            span: 0,
            counters: Vec::with_capacity(m),
        }
    }

    /// The decay factor.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Counter capacity.
    pub fn capacity(&self) -> usize {
        self.m
    }

    /// Rows the sketch has aged over.
    pub fn span(&self) -> u64 {
        self.span
    }

    /// Absorbs one occurrence of `label`.
    pub fn insert(&mut self, label: &str) {
        self.boost /= self.lambda;
        self.span += 1;
        if self.boost > BOOST_LIMIT {
            self.normalize();
        }
        if let Some((_, c)) = self.counters.iter_mut().find(|(k, _)| k == label) {
            *c += self.boost;
            return;
        }
        if self.counters.len() < self.m {
            self.counters.push((label.to_owned(), self.boost));
            return;
        }
        // SpaceSaving takeover: the newcomer inherits the minimum counter
        let (min_idx, _) = self
            .counters
            .iter()
            .enumerate()
            .min_by(|(_, (ka, ca)), (_, (kb, cb))| {
                ca.partial_cmp(cb)
                    .expect("counters are finite")
                    .then_with(|| kb.cmp(ka))
            })
            .expect("counters non-empty");
        let inherited = self.counters[min_idx].1;
        self.counters[min_idx] = (label.to_owned(), inherited + self.boost);
    }

    /// Ages the whole state by `rows` arrivals with nothing added.
    pub fn age(&mut self, rows: u64) {
        // aging only moves the shared scale: stored units are unchanged
        let rows = rows.min(i32::MAX as u64) as i32;
        self.boost *= self.lambda.powi(-rows);
        self.span += rows as u64;
        if self.boost > BOOST_LIMIT {
            self.normalize();
        }
    }

    /// Rebase stored counts so the current arrival weight is 1.
    fn normalize(&mut self) {
        let scale = self.boost;
        for (_, c) in &mut self.counters {
            *c /= scale;
        }
        self.boost = 1.0;
    }

    /// The decayed weight estimate for `label` (0 when untracked).
    pub fn estimate(&self, label: &str) -> f64 {
        self.counters
            .iter()
            .find(|(k, _)| k == label)
            .map(|(_, c)| c / self.boost)
            .unwrap_or(0.0)
    }

    /// The total decayed weight of the stream, `Σ λ^age` over all rows.
    pub fn total_weight(&self) -> f64 {
        // geometric series over span rows: (1 − λ^span) / (1 − λ)
        if self.lambda == 1.0 {
            return self.span as f64;
        }
        let span = self.span.min(i32::MAX as u64) as i32;
        (1.0 - self.lambda.powi(span)) / (1.0 - self.lambda)
    }

    /// Tracked labels, heaviest decayed weight first.
    pub fn top(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .counters
            .iter()
            .map(|(k, c)| (k.clone(), c / self.boost))
            .collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("weights are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        v
    }
}

impl Sketch<str> for DecayedFrequency {
    fn update(&mut self, item: &str) {
        self.insert(item);
    }

    fn count(&self) -> u64 {
        self.span
    }
}

impl Mergeable for DecayedFrequency {
    /// Ordered merge (`self` older, `other` newer): the older side's
    /// weights decay by `λ^|other|`, then counters combine
    /// SpaceSaving-style and the heaviest `m` survive.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.m != other.m {
            return Err(MergeError::SizeMismatch(self.m, other.m));
        }
        if self.lambda != other.lambda {
            return Err(MergeError::ParameterMismatch("decay factor"));
        }
        let age = self.lambda.powi(other.span.min(i32::MAX as u64) as i32);
        let mut combined: Vec<(String, f64)> = self
            .counters
            .iter()
            .map(|(k, c)| (k.clone(), c / self.boost * age))
            .collect();
        for (k, c) in &other.counters {
            let decayed = c / other.boost;
            match combined.iter_mut().find(|(key, _)| key == k) {
                Some((_, w)) => *w += decayed,
                None => combined.push((k.clone(), decayed)),
            }
        }
        combined.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("weights are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        combined.truncate(self.m);
        self.counters = combined;
        self.boost = 1.0;
        self.span += other.span;
        Ok(())
    }
}

/// A tail-window catalog: a ring of per-batch [`SketchCatalog`]s covering
/// roughly the last `window_rows` ingested rows. Each pushed batch becomes
/// one bucket (sketched at its true global row offset, so hyperplane
/// randomness stays aligned with the full-history catalog); buckets older
/// than the window are dropped whole.
///
/// [`WindowedCatalog::merged`] yields an ordinary [`SketchCatalog`] over
/// the covered tail — it plugs into every catalog consumer (executor,
/// profiles, the insight index) unchanged.
#[derive(Debug, Clone)]
pub struct WindowedCatalog {
    config: CatalogConfig,
    window_rows: usize,
    buckets: VecDeque<(SketchCatalog, usize)>,
    head_rows: u64,
}

impl WindowedCatalog {
    /// Creates a window of approximately `window_rows ≥ 1` rows.
    ///
    /// # Panics
    /// When `window_rows` is zero.
    pub fn new(config: CatalogConfig, window_rows: usize) -> Self {
        assert!(window_rows >= 1, "window must cover at least one row");
        Self {
            config,
            window_rows,
            buckets: VecDeque::new(),
            head_rows: 0,
        }
    }

    /// Sketches one ingested batch at the stream's global row offset and
    /// pushes it as the newest bucket, evicting whole buckets that have
    /// slid past the window. Returns the batch's global row offset.
    pub fn push_batch(&mut self, batch: &Table) -> u64 {
        let offset = self.head_rows;
        if batch.n_rows() == 0 {
            return offset;
        }
        // pin shared-randomness parameters on first contact so every
        // bucket stays mergeable with the others
        let config = self.config.resolved_for_rows(self.window_rows);
        self.config = config.clone();
        let bucket = SketchCatalog::build_shard(batch, &config, offset);
        self.buckets.push_back((bucket, batch.n_rows()));
        self.head_rows += batch.n_rows() as u64;
        // evict whole buckets while the rest still covers the window
        while self.covered_rows() - self.buckets.front().map_or(0, |(_, r)| *r) >= self.window_rows
        {
            self.buckets.pop_front();
        }
        offset
    }

    /// The rows currently covered by live buckets.
    pub fn covered_rows(&self) -> usize {
        self.buckets.iter().map(|(_, r)| r).sum()
    }

    /// The configured window length.
    pub fn window_rows(&self) -> usize {
        self.window_rows
    }

    /// Total rows ever pushed (the global head offset).
    pub fn head_rows(&self) -> u64 {
        self.head_rows
    }

    /// Live bucket count.
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The tail-window catalog: live buckets merged oldest-first. `None`
    /// before the first non-empty batch.
    pub fn merged(&self) -> Result<Option<SketchCatalog>, MergeError> {
        let mut iter = self.buckets.iter();
        let Some((first, _)) = iter.next() else {
            return Ok(None);
        };
        let mut out = first.clone();
        for (bucket, _) in iter {
            out.merge(bucket)?;
        }
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::KllSketch;

    #[test]
    fn ring_covers_only_the_tail() {
        let mut ring = SketchRing::new(KllSketch::new(64), 100, 5);
        for i in 0..10_000 {
            ring.insert(i as f64);
        }
        assert_eq!(ring.rows_seen(), 10_000);
        assert_eq!(ring.buckets(), 5);
        assert_eq!(ring.window_rows(), 500);
        let merged = ring.merged().unwrap();
        assert_eq!(merged.count(), 500);
        // the window holds exactly the last 500 values
        assert_eq!(merged.quantile(0.0), Some(9_500.0));
        assert_eq!(merged.quantile(1.0), Some(9_999.0));
        let median = merged.quantile(0.5).unwrap();
        assert!((median - 9_750.0).abs() < 50.0, "median {median}");
    }

    #[test]
    fn ring_partial_last_bucket() {
        let mut ring = SketchRing::new(KllSketch::new(64), 10, 3);
        for i in 0..25 {
            ring.insert(i as f64);
        }
        assert_eq!(ring.buckets(), 3);
        assert_eq!(ring.window_rows(), 25);
        for i in 25..31 {
            ring.insert(i as f64);
        }
        // bucket 0 (rows 0..10) evicted when bucket [30..] opened
        assert_eq!(ring.window_rows(), 21);
        assert_eq!(ring.merged().unwrap().quantile(0.0), Some(10.0));
    }

    #[test]
    fn decayed_moments_tracks_level_shift() {
        let mut dm = DecayedMoments::new(0.99);
        for _ in 0..2_000 {
            dm.insert(10.0);
        }
        assert!((dm.mean().unwrap() - 10.0).abs() < 1e-9);
        // shift the level: the decayed mean follows within ~3 windows
        for _ in 0..300 {
            dm.insert(50.0);
        }
        let mean = dm.mean().unwrap();
        assert!(mean > 45.0, "decayed mean {mean} still stuck at old level");
        // an undecayed mean over the same stream would sit near 15.2
        assert!(dm.variance().unwrap() >= 0.0);
    }

    #[test]
    fn decayed_moments_nan_advances_the_clock() {
        let mut dm = DecayedMoments::new(0.5);
        dm.insert(8.0);
        let w_before = dm.weight();
        dm.insert(f64::NAN);
        assert_eq!(dm.span(), 2);
        assert!((dm.weight() - w_before * 0.5).abs() < 1e-15);
        assert!((dm.mean().unwrap() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn decayed_moments_ordered_merge_matches_direct() {
        let stream: Vec<f64> = (0..500).map(|i| (i % 37) as f64).collect();
        let mut whole = DecayedMoments::new(0.97);
        for &v in &stream {
            whole.insert(v);
        }
        let mut older = DecayedMoments::new(0.97);
        let mut newer = DecayedMoments::new(0.97);
        for &v in &stream[..300] {
            older.insert(v);
        }
        for &v in &stream[300..] {
            newer.insert(v);
        }
        older.merge(&newer).unwrap();
        assert_eq!(older.span(), whole.span());
        assert!((older.weight() - whole.weight()).abs() < 1e-9 * whole.weight());
        assert!((older.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn decayed_moments_lambda_one_is_plain_moments() {
        let mut dm = DecayedMoments::new(1.0);
        for v in [1.0, 2.0, 3.0, 4.0] {
            dm.insert(v);
        }
        assert_eq!(dm.weight(), 4.0);
        assert_eq!(dm.mean(), Some(2.5));
        assert!((dm.variance().unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn decayed_frequency_fades_old_heavy_hitters() {
        let mut df = DecayedFrequency::new(8, 0.99);
        for _ in 0..1_000 {
            df.insert("old-hot");
        }
        for _ in 0..400 {
            df.insert("new-hot");
        }
        let top = df.top();
        assert_eq!(top[0].0, "new-hot", "tail-heavy label must lead: {top:?}");
        // undecayed counts would rank old-hot (1000) over new-hot (400)
        assert!(df.estimate("new-hot") > df.estimate("old-hot"));
    }

    #[test]
    fn decayed_frequency_survives_boost_renormalization() {
        // λ = 0.5 doubles the boost per row: 1e100 is passed within ~350
        // rows, so this exercises normalize() many times
        let mut df = DecayedFrequency::new(4, 0.5);
        for i in 0..2_000 {
            df.insert(if i % 2 == 0 { "a" } else { "b" });
        }
        let est = df.estimate("b");
        // steady alternating stream: b (just inserted) ≈ Σ 0.25^k = 4/3
        assert!((est - 4.0 / 3.0).abs() < 1e-6, "estimate {est}");
        assert!(df.total_weight().is_finite());
    }

    #[test]
    fn decayed_frequency_ordered_merge_matches_direct() {
        let stream: Vec<String> = (0..400).map(|i| format!("v{}", i % 5)).collect();
        let mut whole = DecayedFrequency::new(8, 0.95);
        let mut older = DecayedFrequency::new(8, 0.95);
        let mut newer = DecayedFrequency::new(8, 0.95);
        for label in &stream {
            whole.insert(label);
        }
        for label in &stream[..250] {
            older.insert(label);
        }
        for label in &stream[250..] {
            newer.insert(label);
        }
        older.merge(&newer).unwrap();
        assert_eq!(older.span(), whole.span());
        for (label, w) in whole.top() {
            let merged = older.estimate(&label);
            assert!(
                (merged - w).abs() < 1e-6 * w.max(1.0),
                "{label}: merged {merged} vs direct {w}"
            );
        }
    }

    #[test]
    fn decayed_merge_rejects_mismatched_parameters() {
        let mut a = DecayedMoments::new(0.9);
        assert!(a.merge(&DecayedMoments::new(0.8)).is_err());
        let mut f = DecayedFrequency::new(4, 0.9);
        assert!(f.merge(&DecayedFrequency::new(5, 0.9)).is_err());
        assert!(f.merge(&DecayedFrequency::new(4, 0.5)).is_err());
    }
}
