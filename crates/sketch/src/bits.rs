//! Packed bit vectors with fast Hamming distance — the storage behind the
//! random hyperplane sketch (the paper stores `|B|·k` **bits**, not bytes).

use serde::{Deserialize, Serialize};

/// A fixed-length bit vector packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// An all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds from booleans.
    pub fn from_bools(bits: impl IntoIterator<Item = bool>) -> Self {
        let mut v = Self::zeros(0);
        for b in bits {
            v.push(b);
        }
        v
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index out of range");
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index out of range");
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Appends a bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        self.set(self.len - 1, value);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to another vector of the same length — the `H(x,y)`
    /// in the paper's correlation estimator `cos(πH/k)`. Word-parallel XOR +
    /// popcount over four independent counters, so the popcounts pipeline
    /// instead of serializing on one running sum (integer counts: the split
    /// is exact).
    pub fn hamming(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "bit vectors must have equal length");
        let mut c = [0usize; 4];
        let a4 = self.words.chunks_exact(4);
        let b4 = other.words.chunks_exact(4);
        let (ta, tb) = (a4.remainder(), b4.remainder());
        for (a, b) in a4.zip(b4) {
            c[0] += (a[0] ^ b[0]).count_ones() as usize;
            c[1] += (a[1] ^ b[1]).count_ones() as usize;
            c[2] += (a[2] ^ b[2]).count_ones() as usize;
            c[3] += (a[3] ^ b[3]).count_ones() as usize;
        }
        let mut h = c[0] + c[1] + c[2] + c[3];
        for (a, b) in ta.iter().zip(tb) {
            h += (a ^ b).count_ones() as usize;
        }
        h
    }

    /// Extracts `len ≤ 64` consecutive bits starting at `start` as a `u64`
    /// (bit `start` lands in the result's bit 0). This is the band-key read
    /// behind the LSH index: each K-bit band of a signature becomes one
    /// bucket key, so it must be cheap and branch-light.
    pub fn extract(&self, start: usize, len: usize) -> u64 {
        assert!(len <= 64, "can extract at most 64 bits");
        assert!(start + len <= self.len, "bit range out of bounds");
        if len == 0 {
            return 0;
        }
        let word = start / 64;
        let off = start % 64;
        let mut out = self.words[word] >> off;
        if off + len > 64 {
            out |= self.words[word + 1] << (64 - off);
        }
        if len < 64 {
            out &= (1u64 << len) - 1;
        }
        out
    }

    /// Memory consumed by the packed words, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(63) && !v.get(128));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn push_and_from_bools() {
        let v = BitVec::from_bools([true, false, true, true]);
        assert_eq!(v.len(), 4);
        assert!(v.get(0) && !v.get(1) && v.get(2) && v.get(3));
    }

    #[test]
    fn hamming_distance() {
        let a = BitVec::from_bools((0..100).map(|i| i % 2 == 0));
        let b = BitVec::from_bools((0..100).map(|i| i % 2 == 1));
        assert_eq!(a.hamming(&b), 100);
        assert_eq!(a.hamming(&a), 0);
        let c = BitVec::from_bools((0..100).map(|_| true));
        assert_eq!(a.hamming(&c), 50);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn hamming_length_mismatch_panics() {
        let _ = BitVec::zeros(3).hamming(&BitVec::zeros(4));
    }

    #[test]
    fn extract_reads_bands() {
        // Bits 0..128 alternate 1,0,1,0,... → every even bit set.
        let v = BitVec::from_bools((0..128).map(|i| i % 2 == 0));
        assert_eq!(v.extract(0, 16), 0x5555);
        assert_eq!(v.extract(1, 16), 0x2AAA | 0x8000); // shifted view
        assert_eq!(v.extract(0, 1), 1);
        assert_eq!(v.extract(1, 1), 0);
        assert_eq!(v.extract(0, 0), 0);
        // Straddles the word boundary at bit 64.
        assert_eq!(v.extract(56, 16), 0x5555);
        // Full-word extract.
        assert_eq!(v.extract(0, 64), 0x5555_5555_5555_5555);
        assert_eq!(v.extract(64, 64), 0x5555_5555_5555_5555);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn extract_out_of_range_panics() {
        let _ = BitVec::zeros(32).extract(20, 16);
    }

    #[test]
    fn size_is_bits_not_bytes() {
        // 256 bits = 4 words = 32 bytes (vs 2048 bytes as one byte per bit)
        assert_eq!(BitVec::zeros(256).size_bytes(), 32);
        assert_eq!(BitVec::zeros(0).size_bytes(), 0);
        assert_eq!(BitVec::zeros(1).size_bytes(), 8);
    }
}
