//! # foresight-sketch
//!
//! The paper's §3 sketching substrate: lossy, single-pass, composable
//! summaries that make insight queries interactive on large tables.
//!
//! * [`hyperplane`] — random hyperplane (SimHash) correlation sketch, the
//!   paper's worked example: `ρ̂ = cos(πH/k)` from `|B|·k` bits
//! * [`lsh`] — banded multi-table LSH index over the hyperplane signatures:
//!   K-bit band keys × L tables turn the per-column sketches into an
//!   ~O(d·L) candidate generator for pairwise insight classes
//! * [`quantile`] — Greenwald–Khanna and KLL quantile sketches
//! * [`freq`] — Misra–Gries, SpaceSaving, Count-Min frequent-items sketches
//! * [`hll`] — HyperLogLog distinct counting
//! * [`entropy`] — maximally-skewed-stable entropy sketch
//! * [`projection`] — Johnson–Lindenstrauss random projections (F₂, dots)
//! * [`sample`] — reservoir samples (plain and row-aligned pairs)
//! * [`catalog`] — the per-table catalog built in the preprocessing phase
//! * [`window`] — windowed / exponentially decayed variants for streams:
//!   ring-of-sub-sketches "last N rows" views and decayed moments and
//!   frequency sketches

#![warn(missing_docs)]

pub mod bits;
pub mod catalog;
pub mod dyadic;
pub mod entropy;
pub mod freq;
pub mod hll;
pub mod hyperplane;
pub mod lsh;
pub mod projection;
pub mod quantile;
pub mod sample;
pub mod traits;
pub mod window;

pub use bits::BitVec;
pub use catalog::{CatalogConfig, SketchCatalog};
pub use dyadic::MomentForest;
pub use entropy::EntropySketch;
pub use freq::{CountMin, MisraGries, SpaceSaving};
pub use hll::HyperLogLog;
pub use hyperplane::{HyperplaneConfig, HyperplaneSketch, SharedHyperplanes};
pub use lsh::{LshConfig, LshIndex, LshSkip};
pub use projection::{ProjectionConfig, ProjectionSketch, SharedProjections};
pub use quantile::{GkSketch, KllSketch};
pub use sample::{PairReservoir, Reservoir};
pub use traits::{MergeError, Mergeable, Sketch};
pub use window::{DecayedFrequency, DecayedMoments, SketchRing, WindowedCatalog};
