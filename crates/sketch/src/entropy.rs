//! A streaming entropy sketch via maximally skewed α-stable projections
//! (Clifford & Cosma, 2013).
//!
//! Each of `k` registers accumulates `Sᵢ = Σⱼ fⱼ·Xᵢ(j)` where `Xᵢ(j)` are
//! deterministic samples of the maximally skewed 1-stable distribution,
//! derived from the item identity. Since
//! `E[exp(Sᵢ/N)] = exp(Σ pⱼ·ln pⱼ)·(π/2)` for the raw
//! Chambers–Mallows–Stuck sampler used here, the Shannon entropy is
//! recovered as `Ĥ = ln(π/2) − ln((1/k)·Σᵢ exp(Sᵢ/N))`.
//!
//! The sketch is mergeable across data partitions (registers add) because
//! the per-item stable samples are seeded by item identity, not position.

use crate::traits::{MergeError, Mergeable, Sketch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Streaming Shannon-entropy estimator with `k` registers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropySketch {
    registers: Vec<f64>,
    seed: u64,
    n: u64,
}

impl EntropySketch {
    /// Creates a sketch with `k ≥ 8` registers (more ⇒ lower variance;
    /// 256–1024 is a practical range).
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 8, "need at least 8 registers");
        Self {
            registers: vec![0.0; k],
            seed,
            n: 0,
        }
    }

    /// Number of registers.
    pub fn k(&self) -> usize {
        self.registers.len()
    }

    /// Absorbs `weight` occurrences of `item`.
    ///
    /// Weighted insertion makes dictionary-encoded columns cheap to sketch:
    /// one call per distinct label.
    pub fn insert_weighted(&mut self, item: &str, weight: u64) {
        if weight == 0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.item_seed(item));
        let w = weight as f64;
        for r in &mut self.registers {
            *r += w * skewed_stable(&mut rng);
        }
        self.n += weight;
    }

    /// Absorbs one occurrence of `item`.
    pub fn insert(&mut self, item: &str) {
        self.insert_weighted(item, 1);
    }

    fn item_seed(&self, item: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in item.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The entropy estimate in nats (clamped to `[0, ∞)`); `NaN` when empty.
    pub fn estimate(&self) -> f64 {
        if self.n == 0 {
            return f64::NAN;
        }
        let n = self.n as f64;
        // log-mean-exp with max subtraction for numerical stability
        let max = self
            .registers
            .iter()
            .map(|&s| s / n)
            .fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = self.registers.iter().map(|&s| (s / n - max).exp()).sum();
        let log_mean = max + (sum / self.registers.len() as f64).ln();
        ((std::f64::consts::PI / 2.0).ln() - log_mean).max(0.0)
    }
}

/// One sample of the maximally skewed 1-stable distribution via the
/// Chambers–Mallows–Stuck formula with `β = −1`. The raw sample satisfies
/// `E[exp(θX)] = θ^θ·(π/2)^θ` for `θ ∈ (0, 1]` (validated in tests), which
/// is exactly what the estimator above inverts.
fn skewed_stable(rng: &mut StdRng) -> f64 {
    use std::f64::consts::FRAC_PI_2;
    let u: f64 = rng.gen_range(-FRAC_PI_2..FRAC_PI_2);
    let w: f64 = {
        let e: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -e.ln() // Exp(1)
    };
    (FRAC_PI_2 - u) * u.tan() + ((FRAC_PI_2 * w * u.cos()) / (FRAC_PI_2 - u)).ln()
}

impl Sketch<str> for EntropySketch {
    fn update(&mut self, item: &str) {
        self.insert(item);
    }

    fn count(&self) -> u64 {
        self.n
    }
}

impl Mergeable for EntropySketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.registers.len() != other.registers.len() {
            return Err(MergeError::SizeMismatch(
                self.registers.len(),
                other.registers.len(),
            ));
        }
        if self.seed != other.seed {
            return Err(MergeError::SeedMismatch);
        }
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a += b;
        }
        self.n += other.n;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_sample_laplace_transform() {
        // the property the estimator relies on: E[e^{θX}] = θ^θ (π/2)^θ
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..300_000).map(|_| skewed_stable(&mut rng)).collect();
        for theta in [0.2f64, 0.5, 1.0] {
            let mean = xs.iter().map(|&x| (theta * x).exp()).sum::<f64>() / xs.len() as f64;
            let target = theta.powf(theta) * (std::f64::consts::FRAC_PI_2).powf(theta);
            assert!(
                (mean - target).abs() / target < 0.05,
                "theta {theta}: mean {mean} target {target}"
            );
        }
    }

    #[test]
    fn uniform_distribution_entropy() {
        let m = 64;
        let mut sk = EntropySketch::new(512, 1);
        for i in 0..m {
            sk.insert_weighted(&format!("v{i}"), 100);
        }
        let est = sk.estimate();
        let truth = (m as f64).ln();
        assert!((est - truth).abs() < 0.25, "est {est} truth {truth}");
    }

    #[test]
    fn single_item_entropy_zero() {
        // the single-item case has the estimator's highest variance
        // (exp(X) has sd ≈ 2.7 per register), so use a large k
        let mut sk = EntropySketch::new(4096, 2);
        sk.insert_weighted("only", 10_000);
        assert!(sk.estimate() < 0.2, "est {}", sk.estimate());
    }

    #[test]
    fn zipf_distribution_entropy() {
        let counts: Vec<u64> = (0..50).map(|i| 1_000 / (i as u64 + 1)).collect();
        let n: u64 = counts.iter().sum();
        let truth: f64 = counts
            .iter()
            .map(|&c| {
                let p = c as f64 / n as f64;
                -p * p.ln()
            })
            .sum();
        let mut sk = EntropySketch::new(1024, 3);
        for (i, &c) in counts.iter().enumerate() {
            sk.insert_weighted(&format!("item{i}"), c);
        }
        let est = sk.estimate();
        assert!((est - truth).abs() < 0.2, "est {est} truth {truth}");
    }

    #[test]
    fn weighted_equals_repeated() {
        let mut a = EntropySketch::new(64, 9);
        let mut b = EntropySketch::new(64, 9);
        a.insert_weighted("x", 5);
        for _ in 0..5 {
            b.insert("x");
        }
        // identical item seeds make the stable samples identical per call,
        // so the registers agree exactly up to summation order
        assert_eq!(a.count(), b.count());
        for (ra, rb) in a.registers.iter().zip(&b.registers) {
            assert!((ra - rb).abs() <= ra.abs() * 1e-12 + 1e-9);
        }
    }

    #[test]
    fn merge_matches_union() {
        let mut a = EntropySketch::new(512, 5);
        let mut b = EntropySketch::new(512, 5);
        let mut whole = EntropySketch::new(512, 5);
        for i in 0..32 {
            a.insert_weighted(&format!("v{i}"), 50);
            whole.insert_weighted(&format!("v{i}"), 50);
        }
        for i in 32..64 {
            b.insert_weighted(&format!("v{i}"), 50);
            whole.insert_weighted(&format!("v{i}"), 50);
        }
        a.merge(&b).unwrap();
        // register sums differ only by float association order
        assert_eq!(a.count(), whole.count());
        for (ra, rw) in a.registers.iter().zip(&whole.registers) {
            assert!((ra - rw).abs() <= ra.abs() * 1e-9 + 1e-9, "{ra} vs {rw}");
        }
        assert!((a.estimate() - whole.estimate()).abs() < 1e-6);
    }

    #[test]
    fn merge_incompatible() {
        let mut a = EntropySketch::new(64, 1);
        assert!(a.merge(&EntropySketch::new(128, 1)).is_err());
        assert!(a.merge(&EntropySketch::new(64, 2)).is_err());
    }

    #[test]
    fn empty_is_nan() {
        assert!(EntropySketch::new(64, 0).estimate().is_nan());
    }
}
