//! Core sketch abstractions.
//!
//! The paper (§3) relies on two properties of its sketches:
//!
//! 1. **single-pass construction** — every sketch here implements
//!    [`Sketch::update`] and can be built in one scan of a column;
//! 2. **composability** — sketches of disjoint data partitions can be
//!    [`Mergeable::merge`]d into the sketch of the union, and sketches of
//!    *different columns* built with shared randomness can be *combined*
//!    (e.g. two hyperplane sketches yield a correlation estimate).

/// A streaming summary over items of type `T`.
pub trait Sketch<T: ?Sized> {
    /// Absorbs one item.
    fn update(&mut self, item: &T);

    /// Number of items absorbed so far.
    fn count(&self) -> u64;
}

/// Sketches of disjoint partitions that can be combined into the sketch of
/// the union.
pub trait Mergeable: Sized {
    /// Merges `other` into `self`.
    ///
    /// # Errors
    /// Returns `Err` when the sketches are incompatible (different widths,
    /// seeds, or error parameters).
    fn merge(&mut self, other: &Self) -> Result<(), MergeError>;
}

/// Why two sketches could not be merged.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum MergeError {
    /// Different configured sizes/widths.
    #[error("sketch size mismatch: {0} vs {1}")]
    SizeMismatch(usize, usize),
    /// Different random seeds (shared randomness is required to combine).
    #[error("sketch seed mismatch")]
    SeedMismatch,
    /// Different error parameters.
    #[error("sketch parameter mismatch: {0}")]
    ParameterMismatch(&'static str),
}
