//! Algebraic laws of the mergeable sketches, under random shard splits.
//!
//! The partition-native pipeline (§3) relies on sketches forming a
//! commutative monoid under `merge`: a table split into shards, sketched
//! per shard and merged in *any* grouping, must answer like the sketch of
//! the whole. These tests split random streams three ways and check
//!
//! * **commutativity** — `a ⊕ b` and `b ⊕ a` agree (bit-exact where the
//!   state is a sum, since IEEE addition is commutative; within the
//!   sketch's own error bound where merge compacts);
//! * **associativity** — `(a ⊕ b) ⊕ c` vs `a ⊕ (b ⊕ c)`, same criteria;
//! * **the §3 correlation error bound** — `ρ̂ = cos(πH/k)` from Gaussian
//!   hyperplane sketches stays within `π·√(ln(2/δ)/(2k))` of the exact
//!   Pearson ρ (Hoeffding on the differing-bit fraction, |cos′| ≤ 1,
//!   δ = 1e-5), on synthetic columns of known correlation.

use foresight_sketch::entropy::EntropySketch;
use foresight_sketch::freq::SpaceSaving;
use foresight_sketch::hyperplane::{
    HyperplaneAccumulator, HyperplaneConfig, HyperplaneKind, SharedHyperplanes,
};
use foresight_sketch::quantile::KllSketch;
use foresight_sketch::window::{DecayedFrequency, DecayedMoments, SketchRing};
use foresight_sketch::{Mergeable, Sketch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A random 3-way split of `0..n`: two cut points, any order, ends allowed.
fn splits(n: usize) -> impl Strategy<Value = (usize, usize)> {
    (0..=n).prop_flat_map(move |i| (Just(i), i..=n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kll_merge_is_order_insensitive(
        values in proptest::collection::vec(-1e6f64..1e6, 30..400),
        ij in splits(400),
    ) {
        let (i, j) = ij;
        let (i, j) = (i.min(values.len()), j.min(values.len()));
        let (i, j) = (i.min(j), i.max(j));
        let shard = |r: &[f64]| {
            let mut sk = KllSketch::new(64);
            for &v in r { sk.insert(v); }
            sk
        };
        let (a, b, c) = (shard(&values[..i]), shard(&values[i..j]), shard(&values[j..]));

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b).unwrap();
        left.merge(&c).unwrap();
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c).unwrap();
        let mut right = a.clone();
        right.merge(&bc).unwrap();
        // c ⊕ b ⊕ a (commuted)
        let mut rev = c;
        rev.merge(&b).unwrap();
        rev.merge(&a).unwrap();

        let mut sorted = values.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for sk in [&left, &right, &rev] {
            // counts and extremes are exact regardless of grouping
            prop_assert_eq!(sk.count(), values.len() as u64);
            prop_assert_eq!(sk.quantile(0.0), Some(sorted[0]));
            prop_assert_eq!(sk.quantile(1.0), Some(sorted[sorted.len() - 1]));
            // interior quantiles stay within the rank-error bound
            for q in [0.25, 0.5, 0.75] {
                let est = sk.quantile(q).unwrap();
                let rank = sorted.iter().filter(|&&v| v <= est).count() as f64
                    / sorted.len() as f64;
                prop_assert!((rank - q).abs() < 0.15, "q={q} rank={rank}");
            }
        }
    }

    #[test]
    fn entropy_merge_is_order_insensitive(
        stream in proptest::collection::vec(0u8..30, 3..500),
        ij in splits(500),
    ) {
        let (i, j) = ij;
        let (i, j) = (i.min(stream.len()), j.min(stream.len()));
        let (i, j) = (i.min(j), i.max(j));
        let shard = |r: &[u8]| {
            let mut sk = EntropySketch::new(64, 42);
            for item in r { sk.insert(&item.to_string()); }
            sk
        };
        let (a, b, c) = (shard(&stream[..i]), shard(&stream[i..j]), shard(&stream[j..]));

        // commutativity is bit-exact: the state is a vector sum and IEEE
        // addition commutes
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        prop_assert_eq!(&ab, &ba);

        // associativity holds up to f64 round-off in the register sums
        let mut left = ab;
        left.merge(&c).unwrap();
        let mut bc = b;
        bc.merge(&c).unwrap();
        let mut right = a;
        right.merge(&bc).unwrap();
        prop_assert_eq!(left.count(), stream.len() as u64);
        prop_assert_eq!(right.count(), stream.len() as u64);
        let (el, er) = (left.estimate(), right.estimate());
        prop_assert!(
            (el - er).abs() <= 1e-9 * el.abs().max(1.0),
            "association changed the estimate: {el} vs {er}"
        );
    }

    #[test]
    fn space_saving_merge_keeps_bounds_any_order(
        stream in proptest::collection::vec(0u8..40, 3..500),
        ij in splits(500),
    ) {
        let (i, j) = ij;
        let (i, j) = (i.min(stream.len()), j.min(stream.len()));
        let (i, j) = (i.min(j), i.max(j));
        let m = 12;
        let shard = |r: &[u8]| {
            let mut sk = SpaceSaving::new(m);
            for item in r { sk.insert(&item.to_string()); }
            sk
        };
        let (a, b, c) = (shard(&stream[..i]), shard(&stream[i..j]), shard(&stream[j..]));

        let mut left = a.clone();
        left.merge(&b).unwrap();
        left.merge(&c).unwrap();
        let mut bc = b;
        bc.merge(&c).unwrap();
        let mut right = a;
        right.merge(&bc).unwrap();

        let mut exact: HashMap<u8, u64> = HashMap::new();
        for &item in &stream {
            *exact.entry(item).or_insert(0) += 1;
        }
        // every grouping must keep the Space-Saving guarantees: tracked
        // items never undercount (and overcount at most their recorded
        // error); an untracked item's true count is at most n/m
        let heavy = stream.len() as u64 / m as u64;
        for sk in [&left, &right] {
            prop_assert_eq!(sk.count(), stream.len() as u64);
            let tracked: HashMap<String, (u64, u64)> = sk
                .top()
                .into_iter()
                .map(|(item, count, error)| (item, (count, error)))
                .collect();
            for (item, &count) in &exact {
                match tracked.get(&item.to_string()) {
                    Some(&(est, error)) => {
                        prop_assert!(est >= count, "undercount of {}: {} < {}", item, est, count);
                        prop_assert!(
                            est - count <= error,
                            "overcount of {} beyond its error bound: {} - {} > {}",
                            item, est, count, error
                        );
                    }
                    None => prop_assert!(
                        count <= heavy,
                        "heavy item {} (count {} > n/m = {}) was evicted",
                        item, count, heavy
                    ),
                }
            }
            let rf = sk.rel_freq(3);
            prop_assert!((0.0..=1.0).contains(&rf) || rf.is_nan());
        }
    }

    #[test]
    fn hyperplane_merge_is_order_insensitive(
        values in proptest::collection::vec(-1e3f64..1e3, 12..300),
        ij in splits(300),
    ) {
        let (i, j) = ij;
        let (i, j) = (i.min(values.len()), j.min(values.len()));
        let (i, j) = (i.min(j), i.max(j));
        prop_assume!(values.iter().any(|v| *v != values[0])); // non-constant
        let config = HyperplaneConfig { k: 128, seed: 7, ..Default::default() };
        let shard = |r: &[f64], offset: usize| {
            let mut acc = HyperplaneAccumulator::new(config);
            acc.update_rows(r, offset as u64);
            acc
        };
        let a = shard(&values[..i], 0);
        let b = shard(&values[i..j], i);
        let c = shard(&values[j..], j);

        // commutativity is bit-exact (the state is a vector of f64 sums)
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        let (fab, fba) = (ab.finalize(), ba.finalize());
        prop_assert_eq!(fab.bits(), fba.bits());

        // associativity: sums reassociate within f64 round-off; a sign bit
        // can only flip for a projection sitting at ~machine-epsilon of
        // zero, so the finalized sketches differ in at most a bit or two
        let mut left = ab;
        left.merge(&c).unwrap();
        let mut bc = b;
        bc.merge(&c).unwrap();
        let mut right = a;
        right.merge(&bc).unwrap();
        let (sl, sr) = (left.finalize(), right.finalize());
        let differing = sl.bits().hamming(sr.bits());
        prop_assert!(differing <= 2, "{} sign bits flipped on reassociation", differing);

        // and the whole-column sketch agrees with the fully merged one up
        // to the same knife-edge sign flips
        let whole = shard(&values, 0).finalize();
        let vs_whole = sl.bits().hamming(whole.bits());
        prop_assert!(vs_whole <= 2, "{} bits differ from the unsharded sketch", vs_whole);
    }
}

// Laws of the streaming variants (`window` module). The decayed sketches
// are *ordered* monoids: merge is defined for an (older, newer) pair of
// adjacent stream segments, and the law is
//
//     decay(A ++ B) = decay(A)·λ^|B| ⊕ decay(B)
//
// — aging the older side by the newer side's span, then adding states.
// Associativity of that ordered merge must also hold: a stream cut into
// three adjacent segments gives the same summary under either grouping.
// The ring is simpler: its window view must equal a sketch of exactly the
// rows its live buckets cover.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn decayed_moments_ordered_merge_law_any_grouping(
        values in proptest::collection::vec(-1e3f64..1e3, 3..300),
        nan_every in 2usize..9,
        ij in splits(300),
    ) {
        // sprinkle missing rows: the clock must advance through them
        let values: Vec<f64> = values
            .iter()
            .enumerate()
            .map(|(r, &v)| if r % nan_every == 0 { f64::NAN } else { v })
            .collect();
        let (i, j) = ij;
        let (i, j) = (i.min(values.len()), j.min(values.len()));
        let (i, j) = (i.min(j), i.max(j));
        let segment = |r: &[f64]| {
            let mut dm = DecayedMoments::new(0.97);
            for &v in r { dm.insert(v); }
            dm
        };
        let whole = segment(&values);
        let (a, b, c) = (segment(&values[..i]), segment(&values[i..j]), segment(&values[j..]));

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b).unwrap();
        left.merge(&c).unwrap();
        // a ⊕ (b ⊕ c)
        let mut bc = b;
        bc.merge(&c).unwrap();
        let mut right = a;
        right.merge(&bc).unwrap();

        for merged in [&mut left, &mut right] {
            prop_assert_eq!(merged.span(), whole.span());
            // λ^span powers reassociate the weights, so the law holds to
            // round-off, not bit-exactly
            prop_assert!(
                (merged.weight() - whole.weight()).abs() <= 1e-9 * whole.weight().max(1e-9),
                "weight {} vs {}", merged.weight(), whole.weight()
            );
            match (merged.mean(), whole.mean()) {
                (Some(m), Some(w)) => {
                    prop_assert!((m - w).abs() <= 1e-9 * w.abs().max(1.0), "mean {m} vs {w}");
                    let (mv, wv) = (merged.variance().unwrap(), whole.variance().unwrap());
                    prop_assert!((mv - wv).abs() <= 1e-6 * wv.max(1.0), "var {mv} vs {wv}");
                }
                (m, w) => prop_assert_eq!(m.is_some(), w.is_some()),
            }
        }
    }

    #[test]
    fn decayed_frequency_ordered_merge_law_any_grouping(
        stream in proptest::collection::vec(0u8..12, 3..400),
        ij in splits(400),
    ) {
        let (i, j) = ij;
        let (i, j) = (i.min(stream.len()), j.min(stream.len()));
        let (i, j) = (i.min(j), i.max(j));
        let segment = |r: &[u8]| {
            // capacity ≥ distinct labels: no counter eviction, so the only
            // error left is the λ-power reassociation of the merge law
            let mut df = DecayedFrequency::new(16, 0.95);
            for item in r { df.insert(&format!("v{item}")); }
            df
        };
        let whole = segment(&stream);
        let (a, b, c) = (segment(&stream[..i]), segment(&stream[i..j]), segment(&stream[j..]));

        let mut left = a.clone();
        left.merge(&b).unwrap();
        left.merge(&c).unwrap();
        let mut bc = b;
        bc.merge(&c).unwrap();
        let mut right = a;
        right.merge(&bc).unwrap();

        for merged in [&left, &right] {
            prop_assert_eq!(merged.span(), whole.span());
            prop_assert!(
                (merged.total_weight() - whole.total_weight()).abs()
                    <= 1e-9 * whole.total_weight().max(1.0)
            );
            // with ≤ 12 distinct labels and 8 counters the whole-stream
            // sketch is near-exact; every label it tracks must carry the
            // same decayed weight after either merge grouping
            for (label, w) in whole.top() {
                let est = merged.estimate(&label);
                prop_assert!(
                    (est - w).abs() <= 1e-6 * w.max(1.0),
                    "{}: merged {} vs direct {}", label, est, w
                );
            }
        }
    }

    #[test]
    fn ring_window_equals_sketch_of_covered_tail(
        values in proptest::collection::vec(-1e6f64..1e6, 1..400),
        bucket_rows in 1u64..40,
        max_buckets in 1usize..6,
    ) {
        let mut ring = SketchRing::new(KllSketch::new(64), bucket_rows, max_buckets);
        for &v in &values {
            ring.insert(v);
        }
        prop_assert_eq!(ring.rows_seen(), values.len() as u64);
        let covered = ring.window_rows();
        prop_assert!(covered <= ring.window_capacity());
        prop_assert!(covered as usize <= values.len());

        // the merged view must summarize exactly the covered tail rows
        let merged = ring.merged().unwrap();
        prop_assert_eq!(merged.count(), covered);
        let tail = &values[values.len() - covered as usize..];
        let mut sorted = tail.to_vec();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert_eq!(merged.quantile(0.0), Some(sorted[0]));
        prop_assert_eq!(merged.quantile(1.0), Some(sorted[sorted.len() - 1]));
        if sorted.len() >= 20 {
            let est = merged.quantile(0.5).unwrap();
            let rank = sorted.iter().filter(|&&v| v <= est).count() as f64 / sorted.len() as f64;
            prop_assert!((rank - 0.5).abs() < 0.15, "median rank {rank}");
        }
    }
}

/// Exact two-pass Pearson, the reference for the §3 bound.
fn exact_pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let sx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum::<f64>().sqrt();
    let sy: f64 = y.iter().map(|b| (b - my).powi(2)).sum::<f64>().sqrt();
    cov / (sx * sy)
}

/// §3 error bound: `ρ̂ = cos(πH/k)` vs the exact Pearson ρ of the sampled
/// columns. Hoeffding puts the differing-bit fraction within
/// `ε = √(ln(2/δ)/(2k))` of its mean θ/π with probability 1 − δ; since
/// `|d cos(πh)/dh| ≤ π`, the estimate is within `π·ε` of ρ. With k = 2048
/// and δ = 1e-5 that is ±0.172 — loose, but it is *the* bound, and the
/// seeds are fixed, so this is deterministic.
#[test]
fn hyperplane_correlation_within_section3_bound() {
    const K: usize = 2048;
    const N: usize = 4096;
    const DELTA: f64 = 1e-5;
    let bound = std::f64::consts::PI * ((2.0 / DELTA).ln() / (2.0 * K as f64)).sqrt();

    let hp = SharedHyperplanes::new(HyperplaneConfig {
        k: K,
        seed: 0xC0FFEE,
        kind: HyperplaneKind::Gaussian, // the paper's exact construction
    });
    for (case, rho) in [-0.9f64, -0.4, 0.0, 0.5, 0.95].into_iter().enumerate() {
        // bivariate normal columns with population correlation ρ
        // (Box–Muller from the vendored deterministic StdRng)
        let mut rng = StdRng::seed_from_u64(2017 + case as u64);
        let mut normal = || {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0f64..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let mut x = Vec::with_capacity(N);
        let mut y = Vec::with_capacity(N);
        for _ in 0..N {
            let (g1, g2) = (normal(), normal());
            x.push(g1);
            y.push(rho * g1 + (1.0 - rho * rho).sqrt() * g2);
        }

        let exact = exact_pearson(&x, &y);
        let sk = hp.sketch_columns(&[&x, &y]);
        let est = sk[0].correlation(&sk[1]).unwrap();
        let err = (est - exact).abs();
        assert!(
            err <= bound,
            "ρ={rho}: |ρ̂ − ρ_exact| = {err:.4} exceeds the §3 bound {bound:.4} \
             (ρ̂ = {est:.4}, exact = {exact:.4})"
        );
    }
}
