//! Merge laws of the LSH candidate index, under random shard splits.
//!
//! The index is a pure function of the catalog's per-column hyperplane
//! signatures, and those signatures are row-keyed (deterministic per
//! global row, independent of sharding). So a table split into shards —
//! any split, including empty shards and shards whose columns carry no
//! present value — sketched per shard and merged, must yield *exactly*
//! the same index as a single-pass build: same planned (K, L), same
//! bucket contents, same typed skips.

use foresight_data::{Table, TableBuilder};
use foresight_sketch::{CatalogConfig, LshIndex, SketchCatalog};
use proptest::prelude::*;

/// A deterministic table: `rows` rows of `cols` numeric columns, with a
/// planted near-duplicate pair (0, 1), one constant column, and one
/// all-NaN column when `cols` allows.
fn synth_table(rows: usize, cols: usize, seed: u64) -> Table {
    let noise = |r: usize, c: usize| {
        let x = (r as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(seed.wrapping_add(c as u64).wrapping_mul(97));
        (x >> 33) as f64 / u32::MAX as f64 - 0.5
    };
    let mut b = TableBuilder::new("lsh-laws");
    for c in 0..cols {
        let values: Vec<f64> = (0..rows)
            .map(|r| match c {
                // near-duplicate pair: column 1 tracks column 0
                0 => r as f64 + noise(r, 0),
                1 => r as f64 + noise(r, 0) + 0.01 * noise(r, 1),
                // a constant column (typed skip: constant_column)
                2 => 42.0,
                // an all-NaN column (typed skip: all_missing)
                3 => f64::NAN,
                _ => noise(r, c) * (c as f64 + 1.0),
            })
            .collect();
        b = b.numeric(format!("n{c}"), values);
    }
    b.build().unwrap()
}

/// Splits `table` into three row ranges at `(i, j)` (either may produce an
/// empty shard).
fn split3(table: &Table, i: usize, j: usize) -> Vec<Table> {
    let rows = table.n_rows();
    let (a, b) = (i.min(j) % (rows + 1), i.max(j) % (rows + 1));
    let (a, b) = (a.min(b), a.max(b));
    [(0, a), (a, b), (b, rows)]
        .iter()
        .map(|&(lo, hi)| {
            let mut builder = TableBuilder::new("lsh-laws");
            for c in 0..table.n_cols() {
                let values = table.numeric(c).unwrap().values()[lo..hi].to_vec();
                builder = builder.numeric(format!("n{c}"), values);
            }
            builder.build().unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random 3-way shard splits — including empty shards (split point at
    /// 0 or `rows`) and shards where the all-NaN column contributes
    /// nothing — build the same index as a single pass.
    #[test]
    fn sharded_build_equals_single_pass(
        seed in 0u64..1000,
        rows in 24usize..96,
        cols in 6usize..12,
        i in 0usize..200,
        j in 0usize..200,
    ) {
        let table = synth_table(rows, cols, seed);
        let config = CatalogConfig::default();
        let single = SketchCatalog::build(&table, &config);
        let shards = split3(&table, i, j);
        let shard_refs: Vec<&Table> = shards.iter().collect();
        let merged = SketchCatalog::build_sharded(&shard_refs, &config).unwrap();

        let from_single = LshIndex::build(&single).expect("numeric columns present");
        let from_merged = LshIndex::build(&merged).expect("numeric columns present");
        prop_assert_eq!(&from_single, &from_merged);

        // the planted near-duplicates always collide, regardless of split
        let (pairs, _) = from_merged.candidate_pairs(usize::MAX);
        prop_assert!(
            pairs.contains(&(0, 1)),
            "planted duplicate pair lost under split ({}, {}): {:?}",
            i, j, pairs
        );

        // typed skips survive the merge identically
        prop_assert!(from_merged.skips().contains_key(&2), "constant column skip");
        prop_assert!(from_merged.skips().contains_key(&3), "all-NaN column skip");
    }

    /// Merge order over the three shards is irrelevant: (A·B)·C == A·(B·C)
    /// at the index level.
    #[test]
    fn shard_merge_grouping_is_irrelevant(
        seed in 0u64..1000,
        rows in 24usize..72,
        i in 0usize..100,
        j in 0usize..100,
    ) {
        use foresight_sketch::Mergeable;
        let table = synth_table(rows, 8, seed);
        let config = CatalogConfig::default();
        let shards = split3(&table, i, j);
        let offsets = [
            0u64,
            shards[0].n_rows() as u64,
            (shards[0].n_rows() + shards[1].n_rows()) as u64,
        ];
        let built: Vec<SketchCatalog> = shards
            .iter()
            .zip(offsets)
            .map(|(s, off)| SketchCatalog::build_shard(s, &config, off))
            .collect();

        let mut left = built[0].clone();
        left.merge(&built[1]).unwrap();
        left.merge(&built[2]).unwrap();

        let mut bc = built[1].clone();
        bc.merge(&built[2]).unwrap();
        let mut right = built[0].clone();
        right.merge(&bc).unwrap();

        prop_assert_eq!(
            LshIndex::build(&left).unwrap(),
            LshIndex::build(&right).unwrap()
        );
    }
}
