//! Property-based tests for the sketch guarantees.

use foresight_sketch::freq::MisraGries;
use foresight_sketch::hyperplane::{HyperplaneConfig, SharedHyperplanes};
use foresight_sketch::quantile::{GkSketch, KllSketch};
use foresight_sketch::{CountMin, Mergeable, Sketch};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gk_rank_error_bounded(values in proptest::collection::vec(-1e6f64..1e6, 50..800)) {
        let eps = 0.05;
        let mut sk = GkSketch::new(eps);
        for &v in &values {
            sk.insert(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.5, 0.9] {
            let est = sk.quantile(q).unwrap();
            let rank = sorted.iter().filter(|&&v| v <= est).count() as f64 / sorted.len() as f64;
            prop_assert!((rank - q).abs() <= 2.0 * eps + 1.0 / sorted.len() as f64,
                "q={} est-rank={}", q, rank);
        }
    }

    #[test]
    fn kll_merge_equals_union_ranks(a in proptest::collection::vec(-1e6f64..1e6, 20..400),
                                     b in proptest::collection::vec(-1e6f64..1e6, 20..400)) {
        let mut left = KllSketch::new(100);
        for &v in &a {
            left.insert(v);
        }
        let mut right = KllSketch::new(100);
        for &v in &b {
            right.insert(v);
        }
        left.merge(&right).expect("same k");
        prop_assert_eq!(left.count(), (a.len() + b.len()) as u64);
        let mut all: Vec<f64> = a.iter().chain(&b).copied().collect();
        all.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let med = left.quantile(0.5).unwrap();
        let rank = all.iter().filter(|&&v| v <= med).count() as f64 / all.len() as f64;
        prop_assert!((rank - 0.5).abs() < 0.12, "merged median rank {}", rank);
    }

    #[test]
    fn kll_min_max_exact(values in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
        let mut sk = KllSketch::new(64);
        for &v in &values {
            sk.insert(v);
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(sk.quantile(0.0), Some(lo));
        prop_assert_eq!(sk.quantile(1.0), Some(hi));
    }

    #[test]
    fn misra_gries_undercount_bound(stream in proptest::collection::vec(0u8..40, 1..600)) {
        let m = 10;
        let mut mg = MisraGries::new(m);
        let mut exact: HashMap<u8, u64> = HashMap::new();
        for &item in &stream {
            mg.insert(&item.to_string());
            *exact.entry(item).or_insert(0) += 1;
        }
        let bound = stream.len() as u64 / (m as u64 + 1);
        for (item, &count) in &exact {
            let est = mg.estimate(&item.to_string());
            prop_assert!(est <= count, "overcount of {}", item);
            prop_assert!(count - est <= bound, "undercount {} > bound {}", count - est, bound);
        }
    }

    #[test]
    fn count_min_never_undercounts(stream in proptest::collection::vec(0u8..60, 1..500)) {
        let mut cm = CountMin::new(64, 4, 7);
        let mut exact: HashMap<u8, u64> = HashMap::new();
        for &item in &stream {
            cm.insert(&item.to_string());
            *exact.entry(item).or_insert(0) += 1;
        }
        for (item, &count) in &exact {
            prop_assert!(cm.estimate(&item.to_string()) >= count);
        }
    }

    #[test]
    fn hyperplane_self_and_negation(values in proptest::collection::vec(-1e3f64..1e3, 10..300)) {
        // degenerate constant columns are excluded by construction
        let spread = values.iter().copied().fold(f64::INFINITY, f64::min)
            != values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assume!(spread);
        let hp = SharedHyperplanes::new(HyperplaneConfig { k: 128, seed: 5, ..Default::default() });
        let neg: Vec<f64> = values.iter().map(|v| -v).collect();
        let sk = hp.sketch_columns(&[&values, &neg]);
        prop_assert_eq!(sk[0].correlation(&sk[0]).unwrap(), 1.0);
        prop_assert!((sk[0].correlation(&sk[1]).unwrap() + 1.0).abs() < 1e-12);
        // symmetry
        prop_assert_eq!(
            sk[0].correlation(&sk[1]).unwrap(),
            sk[1].correlation(&sk[0]).unwrap()
        );
    }

    #[test]
    fn hyperplane_estimate_bounded(a in proptest::collection::vec(-1e3f64..1e3, 10..200),
                                    shift in -10.0f64..10.0) {
        let b: Vec<f64> = a.iter().enumerate().map(|(i, v)| v + shift * (i as f64).sin()).collect();
        let hp = SharedHyperplanes::new(HyperplaneConfig { k: 64, seed: 11, ..Default::default() });
        let sk = hp.sketch_columns(&[&a, &b]);
        let est = sk[0].correlation(&sk[1]).unwrap();
        prop_assert!((-1.0..=1.0).contains(&est));
    }
}
