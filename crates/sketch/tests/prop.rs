//! Property-based tests for the sketch guarantees.

use foresight_sketch::freq::MisraGries;
use foresight_sketch::hyperplane::{HyperplaneConfig, SharedHyperplanes};
use foresight_sketch::quantile::{GkSketch, KllSketch};
use foresight_sketch::{CountMin, Mergeable, Sketch};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gk_rank_error_bounded(values in proptest::collection::vec(-1e6f64..1e6, 50..800)) {
        let eps = 0.05;
        let mut sk = GkSketch::new(eps);
        for &v in &values {
            sk.insert(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.5, 0.9] {
            let est = sk.quantile(q).unwrap();
            let rank = sorted.iter().filter(|&&v| v <= est).count() as f64 / sorted.len() as f64;
            prop_assert!((rank - q).abs() <= 2.0 * eps + 1.0 / sorted.len() as f64,
                "q={} est-rank={}", q, rank);
        }
    }

    #[test]
    fn kll_merge_equals_union_ranks(a in proptest::collection::vec(-1e6f64..1e6, 20..400),
                                     b in proptest::collection::vec(-1e6f64..1e6, 20..400)) {
        let mut left = KllSketch::new(100);
        for &v in &a {
            left.insert(v);
        }
        let mut right = KllSketch::new(100);
        for &v in &b {
            right.insert(v);
        }
        left.merge(&right).expect("same k");
        prop_assert_eq!(left.count(), (a.len() + b.len()) as u64);
        let mut all: Vec<f64> = a.iter().chain(&b).copied().collect();
        all.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let med = left.quantile(0.5).unwrap();
        let rank = all.iter().filter(|&&v| v <= med).count() as f64 / all.len() as f64;
        prop_assert!((rank - 0.5).abs() < 0.12, "merged median rank {}", rank);
    }

    #[test]
    fn kll_min_max_exact(values in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
        let mut sk = KllSketch::new(64);
        for &v in &values {
            sk.insert(v);
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(sk.quantile(0.0), Some(lo));
        prop_assert_eq!(sk.quantile(1.0), Some(hi));
    }

    #[test]
    fn misra_gries_undercount_bound(stream in proptest::collection::vec(0u8..40, 1..600)) {
        let m = 10;
        let mut mg = MisraGries::new(m);
        let mut exact: HashMap<u8, u64> = HashMap::new();
        for &item in &stream {
            mg.insert(&item.to_string());
            *exact.entry(item).or_insert(0) += 1;
        }
        let bound = stream.len() as u64 / (m as u64 + 1);
        for (item, &count) in &exact {
            let est = mg.estimate(&item.to_string());
            prop_assert!(est <= count, "overcount of {}", item);
            prop_assert!(count - est <= bound, "undercount {} > bound {}", count - est, bound);
        }
    }

    #[test]
    fn count_min_never_undercounts(stream in proptest::collection::vec(0u8..60, 1..500)) {
        let mut cm = CountMin::new(64, 4, 7);
        let mut exact: HashMap<u8, u64> = HashMap::new();
        for &item in &stream {
            cm.insert(&item.to_string());
            *exact.entry(item).or_insert(0) += 1;
        }
        for (item, &count) in &exact {
            prop_assert!(cm.estimate(&item.to_string()) >= count);
        }
    }

    #[test]
    fn hyperplane_self_and_negation(values in proptest::collection::vec(-1e3f64..1e3, 10..300)) {
        // degenerate constant columns are excluded by construction
        let spread = values.iter().copied().fold(f64::INFINITY, f64::min)
            != values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assume!(spread);
        let hp = SharedHyperplanes::new(HyperplaneConfig { k: 128, seed: 5, ..Default::default() });
        let neg: Vec<f64> = values.iter().map(|v| -v).collect();
        let sk = hp.sketch_columns(&[&values, &neg]);
        prop_assert_eq!(sk[0].correlation(&sk[0]).unwrap(), 1.0);
        prop_assert!((sk[0].correlation(&sk[1]).unwrap() + 1.0).abs() < 1e-12);
        // symmetry
        prop_assert_eq!(
            sk[0].correlation(&sk[1]).unwrap(),
            sk[1].correlation(&sk[0]).unwrap()
        );
    }

    #[test]
    fn hyperplane_estimate_bounded(a in proptest::collection::vec(-1e3f64..1e3, 10..200),
                                    shift in -10.0f64..10.0) {
        let b: Vec<f64> = a.iter().enumerate().map(|(i, v)| v + shift * (i as f64).sin()).collect();
        let hp = SharedHyperplanes::new(HyperplaneConfig { k: 64, seed: 11, ..Default::default() });
        let sk = hp.sketch_columns(&[&a, &b]);
        let est = sk[0].correlation(&sk[1]).unwrap();
        prop_assert!((-1.0..=1.0).contains(&est));
    }
}

// Catalog-level composability (paper §3): a catalog assembled from random
// disjoint shards — including empty shards and an all-missing column —
// answers like one built in a single pass. Moments are bit-identical
// (dyadic reduction tree); KLL / entropy / HLL agree within their
// documented error bounds.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn catalog_sharded_build_matches_single_pass(
        raw in proptest::collection::vec(-1e3f64..1e3, 40..200),
        cuts in proptest::collection::vec(0usize..256, 1..6),
        hole in 2usize..7,
    ) {
        use foresight_data::{Table, TableBuilder};
        use foresight_sketch::{CatalogConfig, SketchCatalog};

        let n = raw.len();
        // x has NaN holes, `dead` is entirely missing, `c` is categorical
        let x: Vec<f64> = raw
            .iter()
            .enumerate()
            .map(|(i, &v)| if i % hole == 0 { f64::NAN } else { v })
            .collect();
        let labels: Vec<String> = raw
            .iter()
            .map(|v| format!("c{}", (v.abs() as u64) % 6))
            .collect();
        let whole = TableBuilder::new("prop")
            .numeric("x", x)
            .numeric("y", raw.clone())
            .numeric("dead", vec![f64::NAN; n])
            .categorical("c", labels)
            .build()
            .unwrap();

        // random cut points; duplicates are kept so empty shards occur
        let mut edges: Vec<usize> = cuts.iter().map(|&c| c % (n + 1)).collect();
        edges.sort_unstable();
        edges.insert(0, 0);
        edges.push(n);
        let shards: Vec<Table> = edges
            .windows(2)
            .map(|w| whole.filter_rows(|r| r >= w[0] && r < w[1]))
            .collect();
        prop_assert_eq!(shards.iter().map(Table::n_rows).sum::<usize>(), n);

        let config = CatalogConfig {
            hyperplane_k: Some(256),
            ..Default::default()
        };
        let refs: Vec<&Table> = shards.iter().collect();
        let merged = match SketchCatalog::build_sharded(&refs, &config) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::fail(format!("merge failed: {e}"))),
        };
        let single = SketchCatalog::build(&whole, &config.resolved_for_rows(n));

        prop_assert_eq!(merged.rows(), single.rows());
        prop_assert_eq!(merged.rows(), n);

        // moments-derived statistics are bit-identical, holes and all
        for idx in [0usize, 1, 2] {
            prop_assert_eq!(
                &merged.numeric(idx).unwrap().moments,
                &single.numeric(idx).unwrap().moments,
                "moments of column {} diverged", idx
            );
        }
        prop_assert_eq!(merged.numeric(2).unwrap().moments.count(), 0);

        // hyperplane correlation estimates agree within a small ε (float
        // association across shards may flip near-zero dot products)
        let (m_rho, s_rho) = (merged.correlation(0, 1), single.correlation(0, 1));
        match (m_rho, s_rho) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() <= 0.05, "rho {} vs {}", a, b),
            (a, b) => prop_assert_eq!(a, b),
        }

        // KLL: merged median sits within rank ε of the true median of the
        // present values (compaction order differs from the single pass)
        let present: Vec<f64> = raw
            .iter()
            .enumerate()
            .filter(|(i, _)| i % hole != 0)
            .map(|(_, &v)| v)
            .collect();
        if let Some(med) = merged.numeric(0).unwrap().quantiles.quantile(0.5) {
            let rank =
                present.iter().filter(|&&v| v <= med).count() as f64 / present.len() as f64;
            prop_assert!((rank - 0.5).abs() <= 0.1, "median rank {}", rank);
        }

        let cat_idx = 3;
        let m_cat = merged.categorical(cat_idx).unwrap();
        let s_cat = single.categorical(cat_idx).unwrap();
        // HLL register-max is order-invariant: merged estimate is exact-equal
        prop_assert_eq!(m_cat.distinct.estimate(), s_cat.distinct.estimate());
        prop_assert_eq!(m_cat.total, s_cat.total);
        // entropy projections sum commutatively; only ulp drift expected
        prop_assert!(
            (m_cat.entropy.estimate() - s_cat.entropy.estimate()).abs() <= 1e-6,
            "entropy {} vs {}", m_cat.entropy.estimate(), s_cat.entropy.estimate()
        );
    }
}
