//! Concurrency invariants of the core/handle split: sessions never leak
//! into each other, and N threads hammering one shared core through the
//! shared score cache return results bit-identical to serial execution.

use foresight_data::{datasets, TableBuilder, TableSource};
use foresight_engine::{CoreBuilder, EngineCore, InsightQuery, Mode};
use foresight_insight::InsightInstance;
use foresight_sketch::CatalogConfig;
use proptest::prelude::*;
use std::sync::Arc;

const THREADS: usize = 8;

fn synth_table(cols: usize, rows: usize, seed: u64) -> foresight_data::Table {
    let mut builder = TableBuilder::new("synthetic");
    for c in 0..cols {
        let values: Vec<f64> = (0..rows)
            .map(|r| {
                let x = (r as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed + c as u64);
                (x >> 33) as f64 / 1e9 + if c % 2 == 0 { r as f64 } else { 0.0 }
            })
            .collect();
        builder = builder.numeric(format!("col{c}"), values);
    }
    builder.build().expect("valid")
}

/// One user's random workload as (class index, top-k) pairs.
fn queries_for(core: &EngineCore, workload: &[(usize, usize)]) -> Vec<InsightQuery> {
    let classes = core.registry().classes();
    workload
        .iter()
        .map(|&(class, k)| InsightQuery::class(classes[class % classes.len()].id()).top_k(k))
        .collect()
}

/// Runs every user's workload serially on fresh handles, then again on
/// `THREADS` OS threads (one handle each), and demands bit-identical
/// results *and* histories.
fn assert_parallel_matches_serial(core: &Arc<EngineCore>, workloads: &[Vec<(usize, usize)>]) {
    let serial: Vec<Vec<Vec<InsightInstance>>> = workloads
        .iter()
        .map(|w| {
            let mut handle = core.handle();
            queries_for(core, w)
                .iter()
                .map(|q| handle.query(q).expect("serial query"))
                .collect()
        })
        .collect();

    let threads: Vec<_> = workloads
        .iter()
        .map(|w| {
            let core = Arc::clone(core);
            let w = w.clone();
            std::thread::spawn(move || {
                let mut handle = core.handle();
                let out: Vec<Vec<InsightInstance>> = queries_for(&core, &w)
                    .iter()
                    .map(|q| handle.query(q).expect("threaded query"))
                    .collect();
                (out, handle.session().history.len())
            })
        })
        .collect();

    for ((thread, serial), workload) in threads.into_iter().zip(&serial).zip(workloads) {
        let (parallel, history_len) = thread.join().expect("no panics under contention");
        assert_eq!(&parallel, serial, "thread results must be bit-identical");
        assert_eq!(
            history_len,
            workload.len(),
            "history records own queries only"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Exact mode, cold-then-warm shared cache: 8 threads over one core
    /// must reproduce serial results bit for bit.
    #[test]
    fn eight_threads_match_serial_exact(
        seed in 0u64..1000,
        workloads in proptest::collection::vec(
            proptest::collection::vec((0usize..12, 1usize..6), 1..5),
            THREADS,
        ),
    ) {
        let core =
            CoreBuilder::new(TableSource::materialized(synth_table(5, 60, seed))).freeze();
        assert_parallel_matches_serial(&core, &workloads);
    }

    /// Approximate (sketch-backed) mode over a sharded source — the
    /// catalog and schema-table memo are shared too.
    #[test]
    fn eight_threads_match_serial_approximate(
        seed in 0u64..1000,
        workloads in proptest::collection::vec(
            proptest::collection::vec((0usize..12, 1usize..6), 1..4),
            THREADS,
        ),
    ) {
        let whole = synth_table(4, 90, seed);
        let shards = vec![
            whole.filter_rows(|r| r < 30),
            whole.filter_rows(|r| (30..60).contains(&r)),
            whole.filter_rows(|r| r >= 60),
        ];
        let mut builder = CoreBuilder::new(TableSource::sharded(shards).unwrap());
        builder.preprocess(&CatalogConfig::default()).unwrap();
        let core = builder.freeze();
        assert_parallel_matches_serial(&core, &workloads);
    }
}

#[test]
fn sessions_are_isolated_across_threads() {
    let core = CoreBuilder::new(TableSource::materialized(datasets::oecd())).freeze();
    let q = InsightQuery::class("linear-relationship").top_k(2);

    let mut keeper = core.handle();
    let top = keeper.query(&q).unwrap();
    keeper.focus(top[0].clone());

    let workers: Vec<_> = (0..THREADS)
        .map(|i| {
            let core = Arc::clone(&core);
            std::thread::spawn(move || {
                let mut h = core.handle();
                // each worker builds its own focus set and history
                let mine = h
                    .query(&InsightQuery::class("skew").top_k(1 + i % 3))
                    .unwrap();
                h.focus(mine[0].clone());
                h.clear_focus();
                (h.session().focus.len(), h.session().history.len())
            })
        })
        .collect();
    for worker in workers {
        let (focus, history) = worker.join().unwrap();
        assert_eq!(focus, 0, "worker cleared its own focus");
        assert_eq!(history, 3, "query + focus + clear, nothing from others");
    }
    // the long-lived session saw none of the workers' events
    assert_eq!(keeper.session().focus.len(), 1);
    assert_eq!(keeper.session().history.len(), 2);
}

#[test]
fn republish_under_concurrent_readers_never_tears() {
    // readers hold the old snapshot while a writer republishes; both
    // snapshots answer consistently throughout
    let whole = synth_table(4, 120, 7);
    let shards = [
        whole.filter_rows(|r| r < 40),
        whole.filter_rows(|r| (40..80).contains(&r)),
        whole.filter_rows(|r| r >= 80),
    ];
    let mut builder = CoreBuilder::new(TableSource::sharded(shards[..2].to_vec()).unwrap());
    builder.preprocess(&CatalogConfig::default()).unwrap();
    let old = builder.freeze();
    let q = InsightQuery::class("linear-relationship").top_k(2);
    let baseline = old.run_query(&q).unwrap();

    let readers: Vec<_> = (0..THREADS)
        .map(|_| {
            let old = Arc::clone(&old);
            let q = q.clone();
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    assert_eq!(old.run_query(&q).unwrap(), baseline);
                }
            })
        })
        .collect();

    // concurrent writer: append the third shard and republish
    let mut writer = CoreBuilder::from_arc(Arc::clone(&old));
    writer.append_shard(shards[2].clone()).unwrap();
    let new = writer.freeze();
    assert_ne!(old.epoch(), new.epoch());
    assert_eq!(new.source().n_rows(), 120);
    assert_eq!(new.mode(), Mode::Approximate);
    let grown = new.run_query(&q).unwrap();
    assert_eq!(grown.len(), 2);

    for reader in readers {
        reader
            .join()
            .expect("old-snapshot readers stayed consistent");
    }
    // the old snapshot still answers its original catalog, post-republish
    assert_eq!(old.run_query(&q).unwrap(), baseline);
}
