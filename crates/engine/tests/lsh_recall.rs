//! The recall harness for LSH-indexed candidate generation.
//!
//! Synthetic correlated Gaussians with planted high-|ρ| pairs: the LSH
//! candidate set must recover the exact top-k most-correlated pairs at or
//! above a floor pinned per (K, L) from the banding math — a band of K
//! bits collides with probability p^K where p = 1 − arccos(ρ)/π, and L
//! independent tables lift that to 1 − (1 − p^K)^L. For the planted
//! ρ ≥ 0.95 used here that analytic recall is ≥ 0.93 at (16, 8) and
//! ≥ 0.99 at (16, 16); the pinned floors leave sampling-noise headroom.
//!
//! The recall-1.0 knob is held to a stronger standard: results under
//! [`CandidateStrategy::Exhaustive`] must be *bit-identical* to a bare
//! executor running the class's own quadratic scan — the index may never
//! perturb an answer when the caller pins recall.

use foresight_data::datasets::{synth, SynthConfig};
use foresight_data::{Table, TableSource};
use foresight_engine::{
    lsh_disabled, CandidateStrategy, CoreBuilder, EngineCore, Executor, InsightQuery, Mode,
};
use foresight_sketch::CatalogConfig;
use foresight_stats::correlation::pearson_complete;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

const TOP_K: usize = 5;

/// The pinned candidate-recall floor for the exact top-[`TOP_K`] pairs,
/// per planned (K, L). Derived from the banding math at the workload's
/// weakest planted |ρ| (0.95), minus headroom for estimator noise at a
/// few hundred rows.
fn pinned_floor(band_bits: usize, tables: usize) -> f64 {
    match (band_bits, tables) {
        (16, 16) => 0.8,
        (16, 8) => 0.6,
        _ => panic!("unpinned (K, L) = ({band_bits}, {tables}): add a floor"),
    }
}

/// A wide synthetic table with strong planted pairs, preprocessed into a
/// core (catalog + LSH index).
fn wide_core(seed: u64, cols: usize, rows: usize, hyperplane_k: usize) -> Arc<EngineCore> {
    let (table, _) = synth(&SynthConfig {
        rows,
        numeric_cols: cols,
        categorical_cols: 0,
        correlated_fraction: 0.3,
        rho_range: (0.95, 0.99),
        seed,
        ..Default::default()
    });
    let mut builder = CoreBuilder::new(TableSource::materialized(table));
    builder
        .preprocess(&CatalogConfig {
            hyperplane_k: Some(hyperplane_k),
            ..Default::default()
        })
        .unwrap();
    builder.freeze()
}

/// The exact top-k column pairs by |Pearson| over the raw values.
fn exact_top_pairs(table: &Table, k: usize) -> Vec<(usize, usize)> {
    let indices = table.numeric_indices();
    let cols: Vec<&[f64]> = indices
        .iter()
        .map(|&i| table.numeric(i).unwrap().values())
        .collect();
    let mut scored: Vec<(f64, (usize, usize))> = Vec::new();
    for a in 0..cols.len() {
        for b in (a + 1)..cols.len() {
            let rho = pearson_complete(cols[a], cols[b]);
            if rho.is_finite() {
                scored.push((rho.abs(), (indices[a], indices[b])));
            }
        }
    }
    scored.sort_by(|x, y| y.0.total_cmp(&x.0));
    scored.truncate(k);
    scored.into_iter().map(|(_, pair)| pair).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// LSH candidate recall of the exact top-k meets the pinned floor for
    /// both planned table counts the default configs produce: k=256
    /// signatures → (K, L) = (16, 16), k=128 → (16, 8).
    #[test]
    fn candidate_recall_meets_pinned_floor(
        seed in 0u64..10_000,
        hyperplane_k in prop_oneof![Just(128usize), Just(256usize)],
    ) {
        if lsh_disabled() {
            return Ok(()); // CI's force-disabled pass: nothing to index
        }
        let core = wide_core(seed, 72, 384, hyperplane_k);
        let index = core.lsh_index().expect("catalog built");
        let config = index.config();
        let floor = pinned_floor(config.band_bits, config.tables);

        let (pairs, probed) = index.candidate_pairs(usize::MAX);
        prop_assert_eq!(probed, config.tables);
        let candidates: BTreeSet<(usize, usize)> = pairs.into_iter().collect();
        let top = exact_top_pairs(core.try_table().unwrap(), TOP_K);
        let hit = top.iter().filter(|p| candidates.contains(p)).count();
        let recall = hit as f64 / top.len() as f64;
        prop_assert!(
            recall >= floor,
            "recall {recall:.3} under floor {floor} at (K, L) = ({}, {}), seed {seed}",
            config.band_bits,
            config.tables
        );
    }

    /// Recall = 1.0 mode: a query under `Exhaustive` is bit-identical to a
    /// bare executor running the class's own quadratic scan over the same
    /// snapshot — same instances, same scores, same order.
    #[test]
    fn exhaustive_strategy_is_bit_identical_to_quadratic_scan(
        seed in 0u64..10_000,
        class in prop_oneof![
            Just("linear-relationship"),
            Just("monotonic-relationship"),
        ],
    ) {
        let core = wide_core(seed, 72, 256, 256);
        let query = InsightQuery::class(class).top_k(12);
        let via_strategy = core
            .run_query_strategy(&query, Mode::Approximate, false, CandidateStrategy::Exhaustive)
            .unwrap();
        // the pre-index code path: an executor with no candidate source at
        // all, generating through InsightClass::candidates
        let bare = Executor::approximate(
            core.try_table().unwrap(),
            core.registry(),
            core.catalog().unwrap(),
        )
        .parallel(false)
        .execute(&query)
        .unwrap();
        prop_assert_eq!(via_strategy, bare);
    }
}

/// The default knob on a wide table actually routes through the index
/// (Auto resolves to LSH at width ≥ threshold), and EXPLAIN says so in
/// the acceptance-pinned phrasing.
#[test]
fn explain_reports_lsh_collisions_on_wide_tables() {
    if lsh_disabled() {
        return;
    }
    let core = wide_core(7, 96, 256, 256);
    let mut handle = core.handle();
    let explained = handle
        .explain(&InsightQuery::class("linear-relationship").top_k(5))
        .unwrap();
    match explained.trace {
        Some(trace) => {
            let lsh = trace.lsh.expect("wide-table Auto query routes through LSH");
            assert_eq!(lsh.universe_columns, 96);
            assert!(lsh.collision_pairs > 0);
            assert_eq!(lsh.tables_probed, 16);
            let text = trace.to_text();
            assert!(
                text.contains(&format!(
                    "candidates from LSH bucket collisions: {} of {}\u{b2}, tables probed: {}",
                    lsh.collision_pairs, lsh.universe_columns, lsh.tables_probed
                )),
                "EXPLAIN text missing the collision line:\n{text}"
            );
        }
        None => assert!(!cfg!(feature = "trace")),
    }
}

/// Below the width threshold, Auto keeps the quadratic scan even though
/// an index exists — small tables never pay the recall loss.
#[test]
fn auto_keeps_scan_below_width_threshold() {
    let core = wide_core(11, 24, 256, 256);
    let query = InsightQuery::class("linear-relationship").top_k(8);
    let auto = core
        .run_query_strategy(&query, Mode::Approximate, false, CandidateStrategy::Auto)
        .unwrap();
    let exhaustive = core
        .run_query_strategy(
            &query,
            Mode::Approximate,
            false,
            CandidateStrategy::Exhaustive,
        )
        .unwrap();
    assert_eq!(auto, exhaustive);
}

/// The probes knob monotonically widens the candidate set: probing more
/// tables can only add collision pairs, and probing all tables matches
/// the index's full candidate list.
#[test]
fn probe_knob_is_monotone() {
    if lsh_disabled() {
        return;
    }
    let core = wide_core(13, 96, 384, 256);
    let index = core.lsh_index().expect("catalog built");
    let mut last: BTreeSet<(usize, usize)> = BTreeSet::new();
    for probes in 1..=index.config().tables {
        let (pairs, probed) = index.candidate_pairs(probes);
        assert_eq!(probed, probes);
        let set: BTreeSet<(usize, usize)> = pairs.into_iter().collect();
        assert!(
            set.is_superset(&last),
            "probing {probes} tables lost pairs present at {}",
            probes - 1
        );
        last = set;
    }
    let (all, _) = index.candidate_pairs(usize::MAX);
    assert_eq!(all.into_iter().collect::<BTreeSet<_>>(), last);
}
