//! Strict structural validation of the Prometheus text exposition
//! (format 0.0.4) produced by `MetricsSnapshot::to_prometheus`. A real
//! scraper is unforgiving: one malformed line poisons the whole scrape.
//! This test parses every line of a fully exercised snapshot and checks
//! the invariants a conformant exposition must hold:
//!
//! * every line is `# HELP`, `# TYPE`, or `name[{labels}] value`
//! * metric and label names match the Prometheus grammar
//! * each family has exactly one HELP and one TYPE, HELP first, samples
//!   after, and families are not interleaved
//! * histogram `_bucket` series are cumulative and non-decreasing in
//!   `le` order, end with `le="+Inf"`, and the `+Inf` count equals the
//!   family's `_count`
//! * label values with quotes/backslashes/newlines arrive escaped

use foresight_engine::{Endpoint, Metrics, Mode, Stage};
use std::collections::BTreeMap;

fn is_valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits `name{l1="v1",l2="v2"}` into the bare name and its label pairs,
/// asserting the label syntax (quoting, escapes, commas) is well-formed.
fn parse_series(series: &str) -> (String, Vec<(String, String)>) {
    let Some(brace) = series.find('{') else {
        assert!(is_valid_metric_name(series), "bad metric name `{series}`");
        return (series.to_owned(), Vec::new());
    };
    let name = &series[..brace];
    assert!(is_valid_metric_name(name), "bad metric name `{name}`");
    let body = series[brace + 1..]
        .strip_suffix('}')
        .unwrap_or_else(|| panic!("unclosed label set in `{series}`"));
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .unwrap_or_else(|| panic!("label without `=` in `{series}`"));
        let label = &rest[..eq];
        assert!(is_valid_label_name(label), "bad label name `{label}`");
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .unwrap_or_else(|| panic!("unquoted label value in `{series}`"));
        // scan the quoted value honoring backslash escapes
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let after = loop {
            let (i, c) = chars
                .next()
                .unwrap_or_else(|| panic!("unterminated label value in `{series}`"));
            match c {
                '"' => break i + 1,
                '\\' => {
                    let (_, escaped) = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling backslash in `{series}`"));
                    assert!(
                        matches!(escaped, '\\' | '"' | 'n'),
                        "invalid escape `\\{escaped}` in `{series}`"
                    );
                    value.push(escaped);
                }
                '\n' => panic!("raw newline inside label value in `{series}`"),
                other => value.push(other),
            }
        };
        labels.push((label.to_owned(), value));
        rest = &rest[after..];
        if let Some(more) = rest.strip_prefix(',') {
            rest = more;
            assert!(!rest.is_empty(), "trailing comma in `{series}`");
        } else {
            assert!(rest.is_empty(), "junk after label value in `{series}`");
        }
    }
    (name.to_owned(), labels)
}

struct Family {
    kind: String,
    has_help: bool,
    samples: Vec<(String, Vec<(String, String)>, f64)>,
}

/// Parses a whole exposition into families, enforcing layout invariants.
fn parse(exposition: &str) -> BTreeMap<String, Family> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    for line in exposition.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP carries text");
            assert!(is_valid_metric_name(name), "bad family name `{name}`");
            assert!(!help.trim().is_empty(), "empty HELP for `{name}`");
            let fresh = families
                .insert(
                    name.to_owned(),
                    Family {
                        kind: String::new(),
                        has_help: true,
                        samples: Vec::new(),
                    },
                )
                .is_none();
            assert!(fresh, "family `{name}` declared twice — interleaved?");
            order.push(name.to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE carries a kind");
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ),
                "unknown TYPE `{kind}` for `{name}`"
            );
            let family = families
                .get_mut(name)
                .unwrap_or_else(|| panic!("TYPE before HELP for `{name}`"));
            assert!(family.kind.is_empty(), "duplicate TYPE for `{name}`");
            family.kind = kind.to_owned();
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment: `{line}`");
        let (series, value) = line.rsplit_once(' ').expect("`name value` sample form");
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            other => other
                .parse()
                .unwrap_or_else(|_| panic!("bad value in `{line}`")),
        };
        let (name, labels) = parse_series(series);
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| families.get(*base).is_some_and(|f| f.kind == "histogram"))
            .unwrap_or(&name)
            .to_owned();
        let family = families
            .get_mut(&base)
            .unwrap_or_else(|| panic!("sample `{name}` has no HELP/TYPE family"));
        // samples must belong to the most recently declared family: a
        // conformant exposition never interleaves
        assert_eq!(
            order.last().unwrap(),
            &base,
            "sample `{name}` appears outside its family block"
        );
        family.samples.push((name, labels, value));
    }
    for (name, family) in &families {
        assert!(family.has_help, "family `{name}` missing HELP");
        assert!(!family.kind.is_empty(), "family `{name}` missing TYPE");
        assert!(!family.samples.is_empty(), "family `{name}` has no samples");
    }
    families
}

/// A registry with traffic on every surface: stages, endpoints, queries,
/// ingest, serve, cache, LSH, resources — so the exposition exercises
/// every family it can emit.
fn populated_snapshot() -> foresight_engine::MetricsSnapshot {
    let metrics = Metrics::new();
    metrics.set_enabled(true);
    for stage in Stage::ALL {
        metrics.record_ns(stage, 1_500);
        metrics.record_ns(stage, 65_000);
    }
    for endpoint in Endpoint::ALL {
        metrics.record_request(endpoint, 2_000);
    }
    metrics.record_query("linear-relationship", Mode::Exact, false);
    metrics.record_query("skew", Mode::Approximate, true);
    metrics.record_sketch_fallback();
    metrics.record_lsh_candidates(42);
    metrics.record_ingest_batch(1_000);
    metrics.record_republish_full();
    metrics.record_connection();
    metrics.record_load_shed();
    metrics.record_serve_error();
    metrics.record_session_created();
    metrics.record_session_closed();
    let mut snap = metrics.snapshot();
    snap.resources = Some(foresight_engine::ResourceSnapshot {
        catalog_bytes: 1 << 20,
        cache_bytes: 4096,
        lsh_bytes: 512,
        trace_bytes: 64,
        session_table_bytes: 1024,
        sessions_live: 1,
    });
    snap
}

#[test]
fn exposition_parses_strictly() {
    let snap = populated_snapshot();
    let families = parse(&snap.to_prometheus());

    // the headline families are all present and typed as expected
    for (name, kind) in [
        ("foresight_build_info", "gauge"),
        ("foresight_uptime_seconds", "gauge"),
        ("foresight_queries_total", "counter"),
        ("foresight_serve_requests_total", "counter"),
        ("foresight_serve_sessions_closed_total", "counter"),
        ("foresight_ingest_rows_total", "counter"),
        ("foresight_resident_bytes", "gauge"),
        ("foresight_sessions_live", "gauge"),
        ("foresight_metrics_sample_seq", "gauge"),
    ] {
        let family = families
            .get(name)
            .unwrap_or_else(|| panic!("missing family `{name}`"));
        assert_eq!(family.kind, kind, "family `{name}` kind");
    }
    // histograms only exist when the telemetry feature compiled them in
    if cfg!(feature = "telemetry") {
        assert_eq!(families["foresight_stage_duration_ns"].kind, "histogram");
        assert_eq!(families["foresight_endpoint_duration_ns"].kind, "histogram");
    }

    // build info carries the crate version, escaped and labeled
    let (_, labels, value) = &families["foresight_build_info"].samples[0];
    assert_eq!(*value, 1.0);
    assert!(labels
        .iter()
        .any(|(k, v)| k == "version" && v == foresight_engine::build_version()));

    // every histogram family: cumulative buckets per label set, +Inf
    // last, and +Inf == _count
    for (name, family) in families.iter().filter(|(_, f)| f.kind == "histogram") {
        let mut by_series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        let mut counts: BTreeMap<String, f64> = BTreeMap::new();
        let mut sums: BTreeMap<String, f64> = BTreeMap::new();
        for (sample, labels, value) in &family.samples {
            let key: String = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v},"))
                .collect();
            if sample.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| {
                        if v == "+Inf" {
                            f64::INFINITY
                        } else {
                            v.parse().expect("numeric le")
                        }
                    })
                    .unwrap_or_else(|| panic!("bucket without le in `{name}`"));
                by_series.entry(key).or_default().push((le, *value));
            } else if sample.ends_with("_count") {
                counts.insert(key, *value);
            } else if sample.ends_with("_sum") {
                sums.insert(key, *value);
            } else {
                panic!("histogram `{name}` has stray sample `{sample}`");
            }
        }
        for (key, buckets) in &by_series {
            assert!(
                buckets.windows(2).all(|w| w[0].0 < w[1].0),
                "`{name}` buckets not in increasing le order for {{{key}}}"
            );
            assert!(
                buckets.windows(2).all(|w| w[0].1 <= w[1].1),
                "`{name}` buckets not cumulative for {{{key}}}"
            );
            let (last_le, last_count) = *buckets.last().unwrap();
            assert!(last_le.is_infinite(), "`{name}` missing +Inf for {{{key}}}");
            assert_eq!(
                Some(&last_count),
                counts.get(key),
                "`{name}` +Inf bucket != _count for {{{key}}}"
            );
            assert!(
                sums.contains_key(key),
                "`{name}` missing _sum for {{{key}}}"
            );
        }
        assert_eq!(
            by_series.len(),
            counts.len(),
            "`{name}` has _count without buckets or vice versa"
        );
    }
}

/// Label values that need escaping must arrive escaped — a kernel string
/// is attacker-ish input here (it flows from an env var).
#[test]
fn exposition_escapes_label_values() {
    let mut snap = populated_snapshot();
    snap.kernel = "we\"ird\\ban\nner".to_owned();
    let exposition = snap.to_prometheus();
    let line = exposition
        .lines()
        .find(|l| l.starts_with("foresight_build_info{"))
        .expect("build info line");
    assert!(
        line.contains(r#"kernel="we\"ird\\ban\nner""#),
        "unescaped label value: {line}"
    );
    // and the strict parser still accepts the whole thing
    parse(&exposition);
}
