//! Property tests pinning the tracing layer's zero-interference contract:
//! a traced query — forced via `explain` or selected by sampling — must
//! return bit-identical results to the same query run untraced, across
//! exact and approximate modes, serial and parallel execution, cold and
//! warm caches, with and without diversification.

use foresight_data::{TableBuilder, TableSource};
use foresight_engine::{EngineCore, InsightQuery, Mode};
use foresight_sketch::CatalogConfig;
use proptest::prelude::*;

fn table(cols: usize, rows: usize, seed: u64) -> foresight_data::Table {
    let mut builder = TableBuilder::new("t");
    for c in 0..cols {
        let values: Vec<f64> = (0..rows)
            .map(|r| {
                let x = (r as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed + c as u64);
                (x >> 33) as f64 / 1e9 + if c % 2 == 0 { r as f64 } else { 0.0 }
            })
            .collect();
        builder = builder.numeric(format!("col{c}"), values);
    }
    builder.build().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn traced_and_untraced_runs_are_bit_identical(
        cols in 3usize..7,
        rows in 30usize..80,
        seed in 0u64..1000,
        k in 1usize..8,
        approx in 0u8..2,
        parallel in 0u8..2,
        lambda in 0.0f64..0.9,
    ) {
        let mut builder = EngineCore::builder(TableSource::materialized(table(cols, rows, seed)));
        let mode = if approx == 1 {
            builder.preprocess(&CatalogConfig::default()).expect("preprocess");
            Mode::Approximate
        } else {
            Mode::Exact
        };
        let core = builder.freeze();
        let mut q = InsightQuery::class("linear-relationship").top_k(k);
        if lambda > 0.05 {
            q = q.diversify(lambda);
        }
        let parallel = parallel == 1;

        // cold cache: the forced trace runs first, so the instrumented
        // scoring path itself fills the cache other runs then hit
        let (traced, trace) = core
            .run_query_traced(&q, mode, parallel, true)
            .expect("traced run");
        let untraced = core.run_query_at(&q, mode, parallel).expect("untraced run");
        prop_assert_eq!(&traced, &untraced);

        if cfg!(feature = "trace") {
            let trace = trace.expect("forced trace is captured");
            prop_assert_eq!(trace.results.len(), untraced.len());
            for (rec, inst) in trace.results.iter().zip(&untraced) {
                // scores in the trace are the served scores, bit for bit
                prop_assert_eq!(rec.score.to_bits(), inst.score.to_bits());
            }
        } else {
            prop_assert!(trace.is_none(), "no trace without the feature");
        }

        // warm cache + sampled (not forced) tracing through a session
        // handle: still identical
        let mut sampled = core.handle();
        sampled.set_trace_sampling(1.0, seed);
        prop_assert_eq!(sampled.query(&q).expect("sampled run"), untraced);
    }
}
