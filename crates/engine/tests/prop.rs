//! Property-based tests for query-execution invariants.

use foresight_data::TableBuilder;
use foresight_engine::{Executor, InsightQuery, Session};
use foresight_insight::{AttrTuple, InsightInstance, InsightRegistry};
use proptest::prelude::*;

fn table(cols: usize, rows: usize, seed: u64) -> foresight_data::Table {
    let mut builder = TableBuilder::new("t");
    for c in 0..cols {
        let values: Vec<f64> = (0..rows)
            .map(|r| {
                let x = (r as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed + c as u64);
                (x >> 33) as f64 / 1e9 + if c % 2 == 0 { r as f64 } else { 0.0 }
            })
            .collect();
        builder = builder.numeric(format!("col{c}"), values);
    }
    builder.build().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn results_respect_all_query_constraints(
        cols in 3usize..7,
        rows in 20usize..80,
        seed in 0u64..1000,
        k in 1usize..10,
        fixed in 0usize..3,
        lo in 0.0f64..0.5,
        span in 0.1f64..0.5,
    ) {
        let t = table(cols, rows, seed);
        let registry = InsightRegistry::default();
        let ex = Executor::exact(&t, &registry);
        let q = InsightQuery::class("linear-relationship")
            .top_k(k)
            .fix_attr(fixed)
            .score_range(lo, lo + span);
        let out = ex.execute(&q).expect("valid query");
        prop_assert!(out.len() <= k);
        for w in out.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for inst in &out {
            prop_assert!(inst.attrs.contains(fixed));
            prop_assert!(inst.score >= lo && inst.score <= lo + span);
        }
    }

    #[test]
    fn execution_is_deterministic(seed in 0u64..500) {
        let t = table(5, 40, seed);
        let registry = InsightRegistry::default();
        let ex = Executor::exact(&t, &registry);
        let q = InsightQuery::class("skew").top_k(5);
        prop_assert_eq!(ex.execute(&q).unwrap(), ex.execute(&q).unwrap());
    }

    #[test]
    fn session_round_trips(focus_count in 0usize..6, queries in 0usize..6) {
        let mut s = Session::new("prop");
        for i in 0..focus_count {
            s.focus(InsightInstance {
                class_id: format!("class{}", i % 3),
                attrs: AttrTuple::Two(i, i + 1),
                score: i as f64 / 10.0,
                metric: "m".into(),
                detail: format!("insight {i}"),
            });
        }
        for i in 0..queries {
            s.record_query(&InsightQuery::class("linear-relationship"), i);
        }
        let json = s.to_json().expect("serialize");
        let back = Session::from_json(&json).expect("parse");
        prop_assert_eq!(s, back);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded(
        a1 in 0usize..6, a2 in 6usize..12, b1 in 0usize..6, b2 in 6usize..12,
        s1 in 0.0f64..1.0, s2 in 0.0f64..1.0,
    ) {
        let x = InsightInstance {
            class_id: "c".into(),
            attrs: AttrTuple::Two(a1, a2),
            score: s1,
            metric: "m".into(),
            detail: String::new(),
        };
        let y = InsightInstance {
            class_id: "c".into(),
            attrs: AttrTuple::Two(b1, b2),
            score: s2,
            metric: "m".into(),
            detail: String::new(),
        };
        let sim = x.similarity(&y);
        prop_assert!((0.0..=1.0).contains(&sim));
        prop_assert!((sim - y.similarity(&x)).abs() < 1e-12);
        // identity similarity is maximal
        prop_assert!(x.similarity(&x) >= sim);
    }
}
