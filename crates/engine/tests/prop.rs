//! Property-based tests for query-execution invariants, including the
//! performance machinery: every fast path (score cache, batch scoring,
//! parallel assembly, quickselect top-k) must be observationally identical
//! to the slow path it replaces.

use foresight_data::TableBuilder;
use foresight_engine::executor::rank_top_k;
use foresight_engine::recommend::{carousels_with, CarouselConfig};
use foresight_engine::{Executor, InsightQuery, NeighborhoodWeights, ScoreCache, Session};
use foresight_insight::{AttrTuple, InsightInstance, InsightRegistry};
use proptest::prelude::*;

fn table(cols: usize, rows: usize, seed: u64) -> foresight_data::Table {
    let mut builder = TableBuilder::new("t");
    for c in 0..cols {
        let values: Vec<f64> = (0..rows)
            .map(|r| {
                let x = (r as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed + c as u64);
                (x >> 33) as f64 / 1e9 + if c % 2 == 0 { r as f64 } else { 0.0 }
            })
            .collect();
        builder = builder.numeric(format!("col{c}"), values);
    }
    builder.build().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn results_respect_all_query_constraints(
        cols in 3usize..7,
        rows in 20usize..80,
        seed in 0u64..1000,
        k in 1usize..10,
        fixed in 0usize..3,
        lo in 0.0f64..0.5,
        span in 0.1f64..0.5,
    ) {
        let t = table(cols, rows, seed);
        let registry = InsightRegistry::default();
        let ex = Executor::exact(&t, &registry);
        let q = InsightQuery::class("linear-relationship")
            .top_k(k)
            .fix_attr(fixed)
            .score_range(lo, lo + span);
        let out = ex.execute(&q).expect("valid query");
        prop_assert!(out.len() <= k);
        for w in out.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for inst in &out {
            prop_assert!(inst.attrs.contains(fixed));
            prop_assert!(inst.score >= lo && inst.score <= lo + span);
        }
    }

    #[test]
    fn execution_is_deterministic(seed in 0u64..500) {
        let t = table(5, 40, seed);
        let registry = InsightRegistry::default();
        let ex = Executor::exact(&t, &registry);
        let q = InsightQuery::class("skew").top_k(5);
        prop_assert_eq!(ex.execute(&q).unwrap(), ex.execute(&q).unwrap());
    }

    #[test]
    fn session_round_trips(focus_count in 0usize..6, queries in 0usize..6) {
        let mut s = Session::new("prop");
        for i in 0..focus_count {
            s.focus(InsightInstance {
                class_id: format!("class{}", i % 3),
                attrs: AttrTuple::Two(i, i + 1),
                score: i as f64 / 10.0,
                metric: "m".into(),
                detail: format!("insight {i}"),
            });
        }
        for i in 0..queries {
            s.record_query(&InsightQuery::class("linear-relationship"), i);
        }
        let json = s.to_json().expect("serialize");
        let back = Session::from_json(&json).expect("parse");
        prop_assert_eq!(s, back);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded(
        a1 in 0usize..6, a2 in 6usize..12, b1 in 0usize..6, b2 in 6usize..12,
        s1 in 0.0f64..1.0, s2 in 0.0f64..1.0,
    ) {
        let x = InsightInstance {
            class_id: "c".into(),
            attrs: AttrTuple::Two(a1, a2),
            score: s1,
            metric: "m".into(),
            detail: String::new(),
        };
        let y = InsightInstance {
            class_id: "c".into(),
            attrs: AttrTuple::Two(b1, b2),
            score: s2,
            metric: "m".into(),
            detail: String::new(),
        };
        let sim = x.similarity(&y);
        prop_assert!((0.0..=1.0).contains(&sim));
        prop_assert!((sim - y.similarity(&x)).abs() < 1e-12);
        // identity similarity is maximal
        prop_assert!(x.similarity(&x) >= sim);
    }
}

/// Cell values with deliberate ties (a small integer grid), occasional
/// missing values, and a continuous component — every scoring edge case the
/// fast paths must reproduce exactly.
fn cell() -> impl Strategy<Value = f64> {
    prop_oneof![
        -40.0..40.0f64,
        (0..6i32).prop_map(f64::from),
        Just(f64::NAN),
    ]
}

/// Equal-length numeric columns plus a categorical column, so all 12
/// default classes have candidates.
fn mixed_table(columns: Vec<Vec<f64>>) -> foresight_data::Table {
    let rows = columns[0].len();
    let mut builder = TableBuilder::new("prop");
    for (i, col) in columns.into_iter().enumerate() {
        builder = builder.numeric(format!("n{i}"), col);
    }
    builder = builder.categorical(
        "cat",
        (0..rows).map(|i| match i % 3 {
            0 => "a",
            1 => "b",
            _ => "c",
        }),
    );
    builder.build().expect("uniform columns")
}

fn numeric_columns() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(cell(), 36), 3..5)
}

fn assert_bit_identical(a: &[InsightInstance], b: &[InsightInstance], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: result counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{ctx}: scores differ on {:?}: {} vs {}",
            x.attrs,
            x.score,
            y.score
        );
        assert_eq!(x, y, "{ctx}: instances differ");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cached, warm-cached, and parallel (batch-scored) execution are all
    /// bit-identical to plain serial execution, for every registered class.
    #[test]
    fn all_execution_paths_bit_identical(cols in numeric_columns()) {
        let t = mixed_table(cols);
        let r = InsightRegistry::default();
        let cache = ScoreCache::new();
        for class in r.classes() {
            let q = InsightQuery::class(class.id()).top_k(6);
            let serial = Executor::exact(&t, &r).execute(&q).expect("serial");
            let parallel = Executor::exact(&t, &r)
                .parallel(true)
                .execute(&q)
                .expect("parallel");
            assert_bit_identical(&serial, &parallel, &format!("{} parallel", class.id()));
            let cold = Executor::exact(&t, &r)
                .parallel(true)
                .with_cache(&cache)
                .execute(&q)
                .expect("cold cache");
            assert_bit_identical(&serial, &cold, &format!("{} cold cache", class.id()));
            let warm = Executor::exact(&t, &r)
                .parallel(true)
                .with_cache(&cache)
                .execute(&q)
                .expect("warm cache");
            assert_bit_identical(&serial, &warm, &format!("{} warm cache", class.id()));
        }
        let stats = cache.stats();
        prop_assert!(stats.hits > 0, "warm pass never hit the cache: {:?}", stats);
    }

    /// Parallel carousel assembly returns exactly the serial output, in the
    /// same (registry) order — with and without a focus set.
    #[test]
    fn parallel_carousels_equal_serial(cols in numeric_columns(), focused in (0u32..2).prop_map(|b| b == 1)) {
        let t = mixed_table(cols);
        let r = InsightRegistry::default();
        let cache = ScoreCache::new();
        let ex = Executor::exact(&t, &r).with_cache(&cache);
        let mut session = Session::new("prop");
        if focused {
            session.focus(InsightInstance {
                class_id: "dispersion".into(),
                attrs: AttrTuple::One(1),
                score: 1.0,
                metric: "variance".into(),
                detail: String::new(),
            });
        }
        let base = CarouselConfig {
            per_class: 3,
            weights: NeighborhoodWeights::default(),
            focus_overfetch: 4,
            parallel: false,
        };
        let serial = carousels_with(&ex, &r, &session, &base).expect("serial");
        let parallel_ex = Executor::exact(&t, &r).parallel(true).with_cache(&cache);
        let parallel = carousels_with(
            &parallel_ex,
            &r,
            &session,
            &CarouselConfig { parallel: true, ..base },
        )
        .expect("parallel");
        prop_assert_eq!(serial, parallel);
    }

    /// Quickselect top-k returns exactly sort-then-truncate, including the
    /// deterministic attribute-tuple tie-break on equal scores.
    #[test]
    fn rank_top_k_equals_sort_truncate(
        entries in proptest::collection::vec((0usize..12, 0usize..12, 0i32..4), 0..60),
        k in 0usize..70,
    ) {
        let scored: Vec<(AttrTuple, f64)> = entries
            .into_iter()
            .map(|(a, b, s)| {
                let (lo, hi) = if a <= b { (a, b + 1) } else { (b, a + 1) };
                // coarse score grid forces plenty of ties
                (AttrTuple::Two(lo, hi), f64::from(s) * 0.5)
            })
            .collect();
        let mut reference = scored.clone();
        reference.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        reference.truncate(k);
        prop_assert_eq!(rank_top_k(scored, k), reference);
    }
}
