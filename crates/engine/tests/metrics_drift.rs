//! Drift guard for the `MetricsSnapshot` renderings. `to_json` is the
//! machine-readable export; `to_text` is what the explorer's `metrics`
//! command and a server operator read; `to_prometheus` is what a scraper
//! ingests. Every scalar counter the JSON exposes (queries, ingest,
//! serve, cache, resources, sketch fallbacks) must also be visible in
//! the text and Prometheus renderings — a counter added to the snapshot
//! struct but forgotten in a rendering fails here, by name.
//!
//! The check is value-based: each counter gets a globally unique 4-digit
//! value, so "visible in the rendering" is simply "that number is
//! printed".

use foresight_engine::telemetry::{
    CacheSnapshot, IngestSnapshot, LshSnapshot, MetricsSnapshot, QuerySnapshot, ResourceSnapshot,
    ServeSnapshot,
};
use serde_json::Value;
use std::collections::BTreeMap;

/// A snapshot whose every scalar counter carries a distinct 4-digit
/// value (4-digit so no value is a substring of another).
fn fully_populated() -> MetricsSnapshot {
    let mut next = 4100u64;
    let mut fresh = || {
        next += 1;
        next
    };
    let mut by_class = BTreeMap::new();
    by_class.insert("linear-relationship".to_owned(), fresh());
    MetricsSnapshot {
        telemetry_compiled: true,
        telemetry_enabled: true,
        kernel: "scalar".to_owned(),
        uptime_secs: 0.5,
        sample_seq: fresh(),
        stages: Vec::new(),
        queries: QuerySnapshot {
            total: fresh(),
            exact: fresh(),
            approximate: fresh(),
            index_served: fresh(),
            by_class,
        },
        ingest: IngestSnapshot {
            rows: fresh(),
            batches: fresh(),
            merges: fresh(),
            republishes_full: fresh(),
            republishes_incremental: fresh(),
            republishes_clean: fresh(),
            rescored_classes: fresh(),
            rescored_tuples: fresh(),
            reused_tuples: fresh(),
            cache_entries_migrated: fresh(),
        },
        serve: ServeSnapshot {
            connections: fresh(),
            connections_shed: fresh(),
            requests: fresh(),
            load_shed: fresh(),
            errors: fresh(),
            sessions_created: fresh(),
            sessions_closed: fresh(),
            sessions_expired: fresh(),
            sessions_evicted: fresh(),
            endpoints: Vec::new(),
        },
        sketch_fallbacks: fresh(),
        lsh: LshSnapshot {
            queries: fresh(),
            candidate_pairs: fresh(),
        },
        cache: Some(CacheSnapshot {
            hits: fresh(),
            misses: fresh(),
            entries: fresh(),
            purges: fresh(),
            hit_rate: 0.5,
        }),
        resources: Some(ResourceSnapshot {
            catalog_bytes: fresh(),
            cache_bytes: fresh(),
            lsh_bytes: fresh(),
            trace_bytes: fresh(),
            session_table_bytes: fresh(),
            sessions_live: fresh(),
        }),
    }
}

/// Leaves every rendering skips: latency tables (rescaled to ms/us), the
/// raw histogram, ratios and build metadata printed as words, and the
/// float uptime.
const SKIP_ALWAYS: &[&str] = &[
    "stages",      // per-stage latency table, rescaled in text
    "endpoints",   // per-endpoint latency table, rescaled in text
    "buckets",     // raw histogram, intentionally JSON-only
    "hit_rate",    // printed as a percentage
    "uptime_secs", // float seconds, formatted per rendering
    "telemetry_compiled",
    "telemetry_enabled",
    "kernel",
];

/// Additionally skipped for `to_text` only: the resident-memory gauges
/// are rescaled to KiB there (Prometheus keeps raw bytes).
const SKIP_TEXT: &[&str] = &[
    "catalog_bytes",
    "cache_bytes",
    "lsh_bytes",
    "trace_bytes",
    "session_table_bytes",
];

/// Collects `(path, value)` for every integer counter leaf in the JSON
/// rendering, minus the given skip lists.
fn counter_leaves(value: &Value, path: String, skip: &[&[&str]], out: &mut Vec<(String, u64)>) {
    match value {
        Value::Object(map) => {
            for (key, child) in map {
                if skip.iter().any(|list| list.contains(&key.as_str())) {
                    continue;
                }
                counter_leaves(child, format!("{path}.{key}"), skip, out);
            }
        }
        _ => {
            if let Some(n) = value.as_u64() {
                out.push((path, n));
            }
        }
    }
}

#[test]
fn to_text_prints_every_counter_to_json_exposes() {
    let snapshot = fully_populated();
    let text = snapshot.to_text();
    let json: Value = serde_json::from_str(&snapshot.to_json()).unwrap();
    let mut counters = Vec::new();
    counter_leaves(
        &json,
        "snapshot".to_owned(),
        &[SKIP_ALWAYS, SKIP_TEXT],
        &mut counters,
    );

    // the sweep must actually cover the sections this PR cares about
    for section in ["queries", "ingest", "serve", "cache", "sketch_fallbacks"] {
        assert!(
            counters
                .iter()
                .any(|(path, _)| path.contains(&format!(".{section}"))),
            "counter sweep no longer covers `{section}` — snapshot shape changed?"
        );
    }
    assert!(
        counters.len() >= 28,
        "expected at least 28 scalar counters, found {}: {counters:?}",
        counters.len()
    );
    for (path, value) in &counters {
        assert!(
            text.contains(&value.to_string()),
            "counter `{path}` (= {value}) is in to_json but not rendered by to_text:\n{text}"
        );
    }
}

/// The scrape-surface drift guard: every counter the JSON export carries
/// must appear in the Prometheus exposition too — including the
/// resource gauges, which Prometheus keeps in raw bytes.
#[test]
fn to_prometheus_exposes_every_counter_to_json_exposes() {
    let snapshot = fully_populated();
    let exposition = snapshot.to_prometheus();
    let json: Value = serde_json::from_str(&snapshot.to_json()).unwrap();
    let mut counters = Vec::new();
    counter_leaves(&json, "snapshot".to_owned(), &[SKIP_ALWAYS], &mut counters);

    for section in ["queries", "ingest", "serve", "cache", "resources"] {
        assert!(
            counters
                .iter()
                .any(|(path, _)| path.contains(&format!(".{section}"))),
            "counter sweep no longer covers `{section}` — snapshot shape changed?"
        );
    }
    for (path, value) in &counters {
        assert!(
            exposition.contains(&value.to_string()),
            "counter `{path}` (= {value}) is in to_json but missing from to_prometheus:\n{exposition}"
        );
    }
}

#[test]
fn snapshot_json_round_trips() {
    let snapshot = fully_populated();
    let back: MetricsSnapshot = serde_json::from_str(&snapshot.to_json()).unwrap();
    assert_eq!(snapshot, back);
}

#[test]
fn serve_endpoints_follow_the_endpoint_enum() {
    // A snapshot taken from a live registry must carry one endpoint row
    // per `Endpoint::ALL` entry, in order, regardless of features.
    let metrics = foresight_engine::Metrics::new();
    metrics.record_request(foresight_engine::Endpoint::Query, 1_000);
    let snapshot = metrics.snapshot();
    let names: Vec<&str> = snapshot
        .serve
        .endpoints
        .iter()
        .map(|e| e.stage.as_str())
        .collect();
    let expected: Vec<&str> = foresight_engine::Endpoint::ALL
        .iter()
        .map(|e| e.name())
        .collect();
    assert_eq!(names, expected);
}
