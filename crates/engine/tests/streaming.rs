//! Streaming-ingest correctness: every snapshot the incremental write
//! path publishes must be *observationally identical* to a core built
//! cold, in one batch, over exactly the rows that snapshot covers — same
//! shard boundaries, same pinned sketch configuration. The incremental
//! machinery (merged shard catalogs, refreshed-in-place index, migrated
//! cache entries) is pure optimization; it may never change an answer.

use foresight_data::{Table, TableBuilder, TableSource};
use foresight_engine::stream::{RepublishPolicy, StreamConfig, StreamWriter};
use foresight_engine::{AdoptPolicy, CoreBuilder, EngineCore, InsightQuery, Mode};
use foresight_sketch::CatalogConfig;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A deterministic batch: `rows` rows starting at global row `offset`,
/// with three numeric columns and one categorical. Columns listed in
/// `null_cols` carry no present values (all-NaN / all-null) — the case
/// column-granular invalidation must treat as clean.
fn batch(offset: usize, rows: usize, seed: u64, null_cols: &[usize]) -> Table {
    let noise = |r: usize, c: u64| {
        let x = (r as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(seed.wrapping_add(c));
        (x >> 33) as f64 / 1e9
    };
    let numeric = |c: u64, f: &dyn Fn(usize) -> f64| -> Vec<f64> {
        (offset..offset + rows)
            .map(|r| {
                if null_cols.contains(&(c as usize)) {
                    f64::NAN
                } else {
                    f(r) + noise(r, c)
                }
            })
            .collect()
    };
    let cats: Vec<&str> = (offset..offset + rows)
        .map(|r| {
            if null_cols.contains(&3) {
                ""
            } else if r % 3 == 0 {
                "low"
            } else if r % 3 == 1 {
                "mid"
            } else {
                "high"
            }
        })
        .collect();
    TableBuilder::new("stream")
        .numeric("x", numeric(0, &|r| r as f64))
        .numeric("y", numeric(1, &|r| 2.0 * r as f64 + 5.0))
        .numeric("z", numeric(2, &|r| ((r * 37) % 101) as f64))
        .categorical("c", cats)
        .build()
        .unwrap()
}

/// A cold core over exactly `shards`, with the same shard boundaries and
/// the same (already resolved) sketch config as the streaming snapshot.
fn cold_core(shards: Vec<Table>, config: &CatalogConfig, index: bool) -> Arc<EngineCore> {
    let mut builder = CoreBuilder::new(TableSource::sharded(shards).unwrap());
    builder.preprocess(config).unwrap();
    if index {
        builder.build_index().unwrap();
    }
    builder.freeze()
}

/// Every registered class, top-3, in both modes.
fn assert_same_answers(streamed: &EngineCore, cold: &EngineCore) {
    assert_eq!(
        streamed.catalog().unwrap().config(),
        cold.catalog().unwrap().config(),
        "sketch configs must stay pinned across appends"
    );
    // the incrementally refreshed LSH candidate index must be *equal* to
    // the one a cold build derives — same tables, same bucket contents,
    // same typed skips (dirty columns re-inserted, clean columns' keys
    // bit-identical because their signatures are)
    assert_eq!(
        streamed.lsh_index(),
        cold.lsh_index(),
        "refreshed LSH index diverged from a cold rebuild"
    );
    for class in streamed.registry().classes() {
        let q = InsightQuery::class(class.id()).top_k(3);
        for mode in [Mode::Approximate, Mode::Exact] {
            let a = streamed.run_query_at(&q, mode, false).unwrap();
            let b = cold.run_query_at(&q, mode, false).unwrap();
            assert_eq!(
                a,
                b,
                "class {} diverged in {mode:?} mode\nstreamed: {a:#?}\ncold: {b:#?}",
                class.id()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The writer-path loop (append → freeze → from_arc), run directly and
    /// deterministically: after every republish, the snapshot must answer
    /// exactly like a cold batch build over the same shards — including
    /// appends whose batches leave some columns entirely null (those
    /// columns' index entries and cache lines are reused, not rescored).
    #[test]
    fn incremental_snapshots_match_cold_builds(
        seed in 0u64..500,
        batch_rows in 16usize..48,
        batches in 1usize..5,
        null_pattern in proptest::collection::vec(proptest::collection::vec(0usize..4, 0..3), 1..5),
    ) {
        let seed_table = batch(0, 64, seed, &[]);
        let mut builder = CoreBuilder::new(TableSource::sharded(vec![seed_table.clone()]).unwrap());
        builder.preprocess(&CatalogConfig::default()).unwrap();
        builder.build_index().unwrap();
        let mut core = builder.freeze();
        let config = core.catalog().unwrap().config().clone();

        let mut shards = vec![seed_table];
        let mut offset = 64;
        for i in 0..batches {
            let nulls = &null_pattern[i % null_pattern.len()];
            let b = batch(offset, batch_rows, seed.wrapping_add(i as u64 + 1), nulls);
            offset += batch_rows;
            shards.push(b.clone());

            // exactly what the stream writer does per republish: take over
            // the published Arc (a reader keeps one, forcing the clone
            // path), append, freeze
            let reader = Arc::clone(&core);
            let mut writer = CoreBuilder::from_arc(core);
            writer.append_shard(b).unwrap();
            core = writer.freeze();

            // warm the cache so later republishes exercise entry migration
            core.run_query(&InsightQuery::class("skew").top_k(2)).unwrap();

            let cold = cold_core(shards.clone(), &config, true);
            assert_same_answers(&core, &cold);
            drop(reader);
        }
    }
}

/// Concurrent churn: a real `StreamWriter` republishing under reader
/// threads that query continuously through `EveryQuery` handles. Every
/// query must succeed, any snapshot a reader grabs must answer
/// self-consistently, and the final drained snapshot must match a cold
/// batch build over all ingested rows.
#[test]
fn churn_queries_stay_consistent_and_final_state_matches_batch() {
    const BATCHES: usize = 16;
    const BATCH_ROWS: usize = 50;

    let seed_table = batch(0, 100, 7, &[]);
    let mut builder = CoreBuilder::new(TableSource::sharded(vec![seed_table.clone()]).unwrap());
    builder.preprocess(&CatalogConfig::default()).unwrap();
    builder.build_index().unwrap();
    let core = builder.freeze();
    let config = core.catalog().unwrap().config().clone();

    let writer = StreamWriter::spawn(
        core,
        StreamConfig {
            policy: RepublishPolicy {
                max_rows: 100,
                ..RepublishPolicy::default()
            },
            ..StreamConfig::default()
        },
    );
    let published = writer.published();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|i| {
            let published = Arc::clone(&published);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut handle = published.latest().handle();
                handle.bind_stream(published);
                handle.set_adopt_policy(AdoptPolicy::EveryQuery);
                let classes = ["linear-relationship", "skew", "outliers", "dispersion"];
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let q = InsightQuery::class(classes[served as usize % classes.len()])
                        .top_k(2 + i % 3);
                    // a snapshot must answer the same query identically
                    // twice in a row — no torn state under republish
                    let snapshot = Arc::clone(handle.core());
                    let first = snapshot.run_query(&q).expect("query under churn");
                    let second = snapshot.run_query(&q).expect("query under churn");
                    assert_eq!(first, second, "torn read on a published snapshot");
                    handle.query(&q).expect("handle query under churn");
                    served += 1;
                }
                served
            })
        })
        .collect();

    let mut shards = vec![seed_table];
    let mut offset = 100;
    for i in 0..BATCHES {
        // column z is untouched by every batch (so each republish carries
        // its tuples over no matter how the writer coalesces the queue);
        // the categorical goes quiet every 4th batch
        let nulls: &[usize] = if i % 4 == 3 { &[2, 3] } else { &[2] };
        let b = batch(offset, BATCH_ROWS, 7 + i as u64, nulls);
        offset += BATCH_ROWS;
        shards.push(b.clone());
        writer.send(b).unwrap();
    }
    writer.flush().unwrap();
    stop.store(true, Ordering::Relaxed);
    let served: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(served > 0, "readers made progress under churn");

    let last = writer.finish().unwrap();
    assert_eq!(last.snapshot_rows() as usize, 100 + BATCHES * BATCH_ROWS);
    assert_eq!(last.rows_behind(), 0);
    let cold = cold_core(shards, &config, true);
    assert_same_answers(&last, &cold);

    if cfg!(feature = "telemetry") {
        let snap = last.metrics_snapshot();
        assert_eq!(snap.ingest.batches, BATCHES as u64);
        assert_eq!(snap.ingest.rows, (BATCHES * BATCH_ROWS) as u64);
        assert!(snap.ingest.republishes_incremental > 0);
        assert!(
            snap.ingest.reused_tuples > 0,
            "clean columns must carry over"
        );
    }
}

/// The tail-window mode end to end: stream past the window, then ask the
/// window snapshot for tail statistics — they must reflect only the last
/// `window` rows, not the whole stream.
#[test]
fn windowed_mode_tracks_the_tail_distribution() {
    // phase 1 centered near 0, phase 2 shifted by +1000: a window that
    // covers only phase 2 must profile the shifted distribution
    let mk = |offset: usize, rows: usize, shift: f64| {
        let vals: Vec<f64> = (offset..offset + rows)
            .map(|r| shift + ((r * 31) % 100) as f64 / 10.0)
            .collect();
        TableBuilder::new("win")
            .numeric("v", vals.clone())
            .numeric("w", vals.iter().map(|x| x * 0.5).collect())
            .build()
            .unwrap()
    };
    let core = CoreBuilder::new(TableSource::materialized(mk(0, 100, 0.0))).freeze();
    let writer = StreamWriter::spawn(
        core,
        StreamConfig {
            policy: RepublishPolicy {
                max_rows: 100,
                ..RepublishPolicy::default()
            },
            window_rows: Some(200),
            ..StreamConfig::default()
        },
    );
    for i in 0..4 {
        writer.send(mk(100 + i * 100, 100, 0.0)).unwrap();
    }
    for i in 0..2 {
        writer.send(mk(500 + i * 100, 100, 1000.0)).unwrap();
    }
    writer.flush().unwrap();
    let tail = writer.window().expect("window configured").latest();
    assert!(tail.source().is_sketch_only());
    assert_eq!(tail.snapshot_rows(), 200);
    let profile = tail.profile().expect("sketch-only profile");
    let median = profile
        .columns
        .iter()
        .find_map(|c| match c {
            foresight_engine::ColumnProfile::Numeric { name, summary } if name == "v" => {
                summary.as_ref().map(|s| s.median)
            }
            _ => None,
        })
        .expect("column v profiled");
    assert!(
        median >= 1000.0,
        "window median {median} must reflect the shifted tail, not the full stream"
    );
    writer.finish().unwrap();
}
