//! Session save/restore across handles bound to *different* stream
//! snapshots. A session saved early in a stream's life must restore into
//! a handle that has already adopted a much later snapshot — same
//! dataset, same schema, more rows — and keep working. A session saved
//! against a different dataset, a different schema, or with attribute
//! indices the adopting core cannot satisfy must be rejected with the
//! typed [`EngineError::SessionMismatch`], never silently accepted.

use foresight_data::{TableBuilder, TableSource};
use foresight_engine::stream::{RepublishPolicy, StreamConfig, StreamWriter};
use foresight_engine::{
    AdoptPolicy, CoreBuilder, EngineError, InsightQuery, Session, SessionEvent,
};
use foresight_insight::{AttrTuple, InsightInstance};

/// `rows` rows of three numeric columns starting at global row `offset`.
fn batch(offset: usize, rows: usize) -> foresight_data::Table {
    let col =
        |f: &dyn Fn(usize) -> f64| -> Vec<f64> { (offset..offset + rows).map(|r| f(r)).collect() };
    TableBuilder::new("stream")
        .numeric("x", col(&|r| r as f64))
        .numeric("y", col(&|r| 2.0 * r as f64 + ((r * 13) % 7) as f64))
        .numeric("z", col(&|r| ((r * 37) % 101) as f64))
        .build()
        .unwrap()
}

#[test]
fn restore_carries_state_across_stream_snapshots() {
    let core = CoreBuilder::new(TableSource::materialized(batch(0, 80))).freeze();
    let writer = StreamWriter::spawn(
        core,
        StreamConfig {
            policy: RepublishPolicy {
                max_rows: 40,
                ..RepublishPolicy::default()
            },
            ..StreamConfig::default()
        },
    );
    let published = writer.published();

    // Alice explores the stream's first snapshot and saves her state.
    let mut alice = published.latest().handle();
    alice.bind_stream(writer.published());
    alice.set_adopt_policy(AdoptPolicy::EveryQuery);
    let results = alice
        .query(&InsightQuery::class("linear-relationship").top_k(2))
        .unwrap();
    alice.focus(results[0].clone());
    let saved = alice.session().to_json().unwrap();
    let saved_version = published.version();

    // The stream moves on: several republishes later the published
    // snapshot has twice the rows Alice ever saw.
    for i in 0..4 {
        writer.send(batch(80 + i * 40, 40)).unwrap();
    }
    writer.flush().unwrap();
    assert!(
        published.version() > saved_version,
        "stream must have republished past the snapshot the session was saved on"
    );

    // A colleague binds a fresh handle to the *current* snapshot and
    // adopts Alice's state. Same dataset + schema → accepted, focus and
    // history intact, and queries answer over the newer rows.
    let mut colleague = published.latest().handle();
    colleague.bind_stream(writer.published());
    colleague.set_adopt_policy(AdoptPolicy::EveryQuery);
    colleague
        .restore_session_checked(Session::from_json(&saved).unwrap())
        .unwrap();
    assert_eq!(colleague.session().focus, alice.session().focus);
    assert!(colleague
        .session()
        .history
        .iter()
        .any(|e| matches!(e, SessionEvent::Queried { .. })));
    let after = colleague
        .query(&InsightQuery::class("linear-relationship").top_k(2))
        .unwrap();
    assert_eq!(after.len(), 2);
    assert_eq!(colleague.core().snapshot_rows(), 80 + 4 * 40);

    writer.finish().unwrap();
}

#[test]
fn restore_rejects_sessions_from_a_different_schema() {
    // Saved against a 3-column table named "stream" …
    let wide = CoreBuilder::new(TableSource::materialized(batch(0, 60))).freeze();
    let mut source_handle = wide.handle();
    source_handle
        .query(&InsightQuery::class("skew").top_k(1))
        .unwrap();
    let saved = source_handle.session().to_json().unwrap();

    // … restored into a core over a different table. Both the dataset
    // name and the column set disagree: typed mismatch, state untouched.
    let other = TableBuilder::new("other")
        .numeric("a", (0..60).map(|r| r as f64).collect())
        .numeric("b", (0..60).map(|r| (r * r) as f64).collect())
        .build()
        .unwrap();
    let narrow = CoreBuilder::new(TableSource::materialized(other)).freeze();
    let mut target = narrow.handle();
    let before = target.session().clone();
    let err = target
        .restore_session_checked(Session::from_json(&saved).unwrap())
        .unwrap_err();
    assert!(
        matches!(err, EngineError::SessionMismatch(_)),
        "expected SessionMismatch, got: {err}"
    );
    assert_eq!(
        target.session(),
        &before,
        "a rejected restore must not disturb the handle's session"
    );
}

#[test]
fn restore_rejects_out_of_bounds_focus_even_without_schema_fingerprint() {
    // An old-format session (no schema fingerprint) whose focused insight
    // points at column 9 of a 3-column table: bounds checks still catch it.
    let mut stale = Session::new("stream");
    stale.schema = None;
    stale.focus(InsightInstance {
        class_id: "skew".into(),
        attrs: AttrTuple::One(9),
        score: 1.0,
        metric: "skew".into(),
        detail: String::new(),
    });
    let core = CoreBuilder::new(TableSource::materialized(batch(0, 50))).freeze();
    let mut handle = core.handle();
    let err = handle.restore_session_checked(stale).unwrap_err();
    assert!(
        matches!(err, EngineError::SessionMismatch(_)),
        "expected SessionMismatch, got: {err}"
    );
}

#[test]
fn restore_rejects_unregistered_insight_classes() {
    let mut session = Session::new("stream");
    session.schema = Some(vec!["x".into(), "y".into(), "z".into()]);
    session.record_query(&InsightQuery::class("not-a-class").top_k(1), 0);
    let core = CoreBuilder::new(TableSource::materialized(batch(0, 50))).freeze();
    let mut handle = core.handle();
    let err = handle.restore_session_checked(session).unwrap_err();
    assert!(
        matches!(err, EngineError::SessionMismatch(_)),
        "expected SessionMismatch, got: {err}"
    );
}
