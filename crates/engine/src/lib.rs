//! # foresight-engine
//!
//! The paper's core contribution, part 2: the exploration engine.
//!
//! * [`query`] — insight queries: top-k, fixed attributes, metric-range
//!   filters, metric selection (§2.1)
//! * [`executor`] — exact or sketch-backed query execution, optionally
//!   rayon-parallel with batch scoring and quickselect top-k
//! * [`cache`] — the cross-query score cache
//! * [`candidates`] — candidate generation strategies: the quadratic
//!   class scan vs. LSH bucket collisions over the catalog's signatures
//! * [`core`] — the shared, `Send + Sync` [`EngineCore`] snapshot and its
//!   [`CoreBuilder`] writer path
//! * [`handle`] — cheap per-user [`SessionHandle`]s over one core
//! * [`neighborhood`] — insight similarity and focus-driven re-ranking
//! * [`session`] — focus set, history, save/restore
//! * [`stream`] — streaming ingest: a writer thread republishing
//!   snapshots at bounded cadence, with optional tail-window catalogs
//! * [`monitor`] — continuous self-monitoring: a sampler thread deriving
//!   rate/latency series from snapshot deltas, a threshold watchdog with
//!   hysteresis, and `Healthy`/`Degraded`/`Unready` health gating
//! * [`recommend`] — Figure-1 carousel assembly
//! * [`telemetry`] — per-stage latency histograms and query counters
//!   (compiled out without the `telemetry` cargo feature)
//! * [`trace`] — request-scoped tracing: per-query span trees, EXPLAIN,
//!   the trace ring, and the slow-query log (compiled out without the
//!   `trace` cargo feature)
//! * [`foresight`] — the [`Foresight`] facade tying everything together

#![warn(missing_docs)]

pub mod cache;
pub mod candidates;
pub mod core;
pub mod error;
pub mod executor;
pub mod foresight;
pub mod handle;
pub mod index;
pub mod monitor;
pub mod neighborhood;
pub mod profile;
pub mod query;
pub mod recommend;
pub mod session;
pub mod stream;
pub mod telemetry;
pub mod trace;

pub use crate::core::{CoreBuilder, EngineCore, Staleness};
pub use cache::{BatchLookup, CacheStats, ScoreCache, CACHE_SHARDS};
pub use candidates::{
    lsh_disabled, CandidateOrigin, CandidatePlan, CandidateSource, CandidateStrategy,
    LSH_WIDTH_THRESHOLD,
};
pub use error::{EngineError, Result};
pub use executor::{Executor, Mode};
pub use foresight::{Foresight, STATE_FORMAT_VERSION};
pub use handle::{AdoptPolicy, SessionHandle};
pub use index::InsightIndex;
pub use monitor::{
    AlertEvent, AlertKind, HealthPolicy, HealthReason, HealthState, Monitor, MonitorConfig,
    MonitorSample, MonitorTarget, StageWindow,
};
pub use neighborhood::NeighborhoodWeights;
pub use profile::{profile, profile_from_catalog, ColumnProfile, DatasetProfile};
pub use query::InsightQuery;
pub use recommend::{Carousel, CarouselConfig};
pub use session::{Session, SessionEvent};
pub use stream::{PublishedCore, RepublishPolicy, StreamConfig, StreamWriter};
pub use telemetry::{
    build_features, build_version, kernel_name, Endpoint, LshSnapshot, Metrics, MetricsSnapshot,
    ResourceSnapshot, ServeSnapshot, Stage, StageSnapshot,
};
pub use trace::{
    Explained, LshCandidates, QueryTrace, SkipSummary, SlowQuery, TraceSpan, TracedResult, Tracer,
    SLOW_LOG_CAPACITY, TRACE_RING_CAPACITY,
};
