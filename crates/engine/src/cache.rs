//! Cross-query score caching.
//!
//! Insight exploration is repetitive by nature: carousels re-run one query
//! per class on every focus change, sessions get replayed, and §4.1-style
//! drill-downs re-score the same attribute tuples under narrower filters.
//! The [`ScoreCache`] memoizes the expensive part — per-tuple metric
//! evaluation — across queries, keyed by everything that determines a score:
//! `(class, attribute tuple, execution mode, metric)`.
//!
//! Filters (score ranges, fixed attributes, exclusions, top-k) are *not*
//! part of the key: they select among scores but never change them, so a
//! tuple scored once serves every later query that touches it.
//!
//! The cache is sharded: each shard is an independent [`RwLock`]ed map, so
//! parallel candidate scoring mostly touches distinct locks. Degenerate
//! results (`None` — constant columns, too few rows) are cached too;
//! re-proving a column degenerate costs as much as scoring it.
//!
//! One cache outlives many [`EngineCore`](crate::EngineCore) snapshots:
//! every score key carries the *data-generation epoch* of the snapshot that
//! computed it, and the writer path mints a fresh epoch (via
//! [`ScoreCache::bump_epoch`]) whenever it republishes a core whose scores
//! could differ. Readers still holding an older snapshot keep looking up —
//! and storing — under their own epoch, so they can never serve a stale
//! score to (or poison the keyspace of) a newer snapshot.

use crate::executor::Mode;
use foresight_insight::AttrTuple;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independent lock shards in a [`ScoreCache`].
pub const CACHE_SHARDS: usize = 16;

const SHARDS: usize = CACHE_SHARDS;

/// A fast, non-cryptographic multiply-rotate hasher (FxHash-style). Cache
/// keys are tiny, trusted, and looked up on the hot path of every warm
/// query, where SipHash's per-lookup cost is measurable; collision-quality
/// beyond "good enough for a HashMap" buys nothing here.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    class_id: &'static str,
    attrs: AttrTuple,
    mode: Mode,
    metric: Option<String>,
    /// Data-generation counter: every [`ScoreCache::bump_epoch`] (one per
    /// republished core snapshot whose scores could differ) moves lookups to
    /// a fresh keyspace, so scores computed against a previous generation of
    /// the data are unreachable without the cache having to be fully
    /// cleared. The epoch is supplied by the caller (it is part of the
    /// engine-core snapshot), so readers of an old snapshot stay in their
    /// own keyspace even while a newer snapshot is being served.
    epoch: u64,
}

/// Key for memoized [`InsightClass::describe`] output: the description is a
/// pure function of `(class, tuple, score)` — the score enters as raw bits
/// so distinct metrics/modes (which produce distinct scores) never collide.
///
/// [`InsightClass::describe`]: foresight_insight::InsightClass::describe
type DetailKey = (&'static str, AttrTuple, u64);

/// Hit/miss/purge counters and current occupancy of a [`ScoreCache`],
/// in aggregate and per lock shard.
///
/// All counters are maintained with per-shard atomics (each shard's
/// counters live on that shard's own cache line, so concurrent sessions
/// never contend on a shared counter), and a snapshot is cheap and safe
/// to take while other threads are querying through the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to scoring.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Entries retired by epoch bumps (stale data generations purged).
    pub purges: u64,
    /// Current entry count of each of the [`CACHE_SHARDS`] lock shards —
    /// the spread shows how evenly parallel scoring distributes over the
    /// locks.
    pub shard_entries: [usize; CACHE_SHARDS],
    /// Per-shard hit counts.
    pub shard_hits: [u64; CACHE_SHARDS],
    /// Per-shard miss counts.
    pub shard_misses: [u64; CACHE_SHARDS],
    /// Per-shard purge counts (entries retired by epoch bumps).
    pub shard_purges: [u64; CACHE_SHARDS],
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// What one [`ScoreCache::lookup_batch`] call saw: the positionally
/// aligned scores plus this call's own hit/miss counts, so a traced query
/// can report *its* cache traffic rather than only moving the aggregate
/// [`CacheStats`] counters.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchLookup {
    /// Per-candidate result, aligned with the `candidates` argument.
    /// `Some(score)` is a hit (including `Some(None)`, a tuple proven
    /// degenerate); `None` means never scored under this
    /// `(mode, metric, epoch)`.
    pub scores: Vec<Option<Option<f64>>>,
    /// Candidates answered from the cache by this call.
    pub hits: u64,
    /// Candidates that fell through to scoring in this call.
    pub misses: u64,
}

/// A sharded, thread-safe memo of per-tuple insight scores.
///
/// Owned (behind an `Arc`) by the [`EngineCore`](crate::EngineCore) — and
/// shared by every snapshot the writer path republishes from it — and
/// consulted by the [`Executor`](crate::Executor); safe to share across
/// threads (interior mutability via per-shard [`RwLock`]s and atomic
/// counters).
pub struct ScoreCache {
    shards: Vec<Shard>,
    /// Memoized `describe()` strings. Only the handful of top-k winners per
    /// query ever land here (not the full candidate set), and they are
    /// written after ranking, outside the parallel scoring loop — a single
    /// unsharded map suffices.
    details: RwLock<FxMap<DetailKey, String>>,
    /// Latest minted data generation (see [`ScoreCache::bump_epoch`]).
    epoch: AtomicU64,
}

/// One lock shard with its own counters, padded to a cache line so that
/// sessions hammering different shards never false-share a counter — at
/// warm-cache throughput the hit counter is incremented hundreds of
/// thousands of times per second, and a single shared `AtomicU64` becomes
/// the scaling bottleneck before any lock does.
#[repr(align(128))]
#[derive(Default)]
struct Shard {
    map: RwLock<FxMap<CacheKey, Option<f64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    purges: AtomicU64,
}

impl Default for ScoreCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ScoreCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
            details: RwLock::new(FxMap::default()),
            epoch: AtomicU64::new(0),
        }
    }

    /// The most recently minted data-generation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Mints the next data generation and returns it — called by the writer
    /// path whenever it republishes a core snapshot whose scores could
    /// differ (shard appended, class re-registered, catalog rebuilt or
    /// restored).
    ///
    /// Score entries from earlier generations become unreachable to the new
    /// snapshot immediately (the epoch is part of the key) and are purged to
    /// bound memory — readers still on an old snapshot simply recompute what
    /// they need into their own keyspace. The `details` map is retired with
    /// them: a description is keyed by `(class, tuple, score-bits)`, but a
    /// description can depend on data the score does not pin down (a
    /// degenerate score like `0.0` stays bit-identical while the value it
    /// would describe — say, the most frequent category — moves under it),
    /// so only a tuple *proven* untouched may keep its memo, and a plain
    /// bump proves nothing. Hit/miss counters are preserved; retired score
    /// entries are counted in [`CacheStats::purges`].
    pub fn bump_epoch(&self) -> u64 {
        let current = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        for shard in &self.shards {
            let mut map = shard.map.write();
            let before = map.len();
            map.retain(|k, _| k.epoch == current);
            shard
                .purges
                .fetch_add((before - map.len()) as u64, Ordering::Relaxed);
        }
        self.details.write().clear();
        current
    }

    /// Mints the next data generation like [`bump_epoch`], but *migrates*
    /// entries the caller can prove still valid instead of purging them —
    /// the column-granular alternative to the all-or-nothing bump used by
    /// incremental ingest.
    ///
    /// `keep` is consulted once per retiring `(class, tuple)` score key;
    /// returning `true` re-keys the entry under the new epoch (its value is
    /// provably unchanged — e.g. every column the tuple touches received no
    /// data), `false` retires it like a plain bump. Memoized descriptions
    /// are filtered by the same predicate: a clean tuple's description is a
    /// function of unchanged inputs and survives, a dirty tuple's is
    /// dropped even when its score bits would collide (degenerate scores
    /// stay bit-identical while the described data moves). Soundness is
    /// entirely the caller's obligation: migrating a score whose inputs
    /// moved would serve a stale answer from the new snapshot.
    ///
    /// Returns `(new_epoch, migrated_entries)`. Retired entries count
    /// toward [`CacheStats::purges`]; migrated ones do not.
    ///
    /// [`bump_epoch`]: ScoreCache::bump_epoch
    pub fn bump_epoch_retaining(
        &self,
        keep: impl Fn(&'static str, &AttrTuple) -> bool,
    ) -> (u64, u64) {
        let current = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let prev = current - 1;
        // Phase 1: drain each shard under its own lock, setting aside the
        // entries that survive. Re-keying changes the hash, so a survivor
        // may belong to a *different* shard afterwards — inserts happen in
        // a second phase, still one lock at a time (no lock is ever nested).
        let mut migrated: Vec<(CacheKey, Option<f64>)> = Vec::new();
        for shard in &self.shards {
            let mut kept_here = 0u64;
            let mut map = shard.map.write();
            let before = map.len();
            map.retain(|k, v| {
                if k.epoch == current {
                    return true;
                }
                if k.epoch == prev && keep(k.class_id, &k.attrs) {
                    let mut key = k.clone();
                    key.epoch = current;
                    migrated.push((key, *v));
                    kept_here += 1;
                }
                false
            });
            let dropped = (before - map.len()) as u64 - kept_here;
            if dropped > 0 {
                shard.purges.fetch_add(dropped, Ordering::Relaxed);
            }
        }
        let count = migrated.len() as u64;
        let mut by_shard: [Vec<(CacheKey, Option<f64>)>; SHARDS] =
            std::array::from_fn(|_| Vec::new());
        for entry in migrated {
            by_shard[Self::shard_index(&entry.0)].push(entry);
        }
        for (shard, entries) in self.shards.iter().zip(by_shard) {
            if entries.is_empty() {
                continue;
            }
            let mut map = shard.map.write();
            for (key, value) in entries {
                map.insert(key, value);
            }
        }
        self.details
            .write()
            .retain(|(class_id, attrs, _), _| keep(class_id, attrs));
        (current, count)
    }

    fn shard_index(key: &CacheKey) -> usize {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        // multiply-based hashes concentrate entropy in the high bits
        (h.finish() >> 60) as usize % SHARDS
    }

    fn shard(&self, key: &CacheKey) -> &Shard {
        &self.shards[Self::shard_index(key)]
    }

    /// Looks up a previously stored score in the `epoch` keyspace.
    ///
    /// `Some(score)` is a hit — including `Some(None)`, a tuple already
    /// proven degenerate. `None` means the tuple was never scored under this
    /// `(mode, metric, epoch)` and the caller must compute (and [`store`])
    /// it. The epoch comes from the engine-core snapshot the caller is
    /// reading through, not from the cache, so snapshots never cross-talk.
    ///
    /// [`store`]: ScoreCache::store
    pub fn lookup(
        &self,
        class_id: &'static str,
        attrs: &AttrTuple,
        mode: Mode,
        metric: Option<&str>,
        epoch: u64,
    ) -> Option<Option<f64>> {
        let key = CacheKey {
            class_id,
            attrs: *attrs,
            mode,
            metric: metric.map(str::to_owned),
            epoch,
        };
        let shard = self.shard(&key);
        let found = shard.map.read().get(&key).copied();
        match found {
            Some(v) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a computed score (or a degenerate `None`) in the `epoch`
    /// keyspace.
    pub fn store(
        &self,
        class_id: &'static str,
        attrs: &AttrTuple,
        mode: Mode,
        metric: Option<&str>,
        score: Option<f64>,
        epoch: u64,
    ) {
        let key = CacheKey {
            class_id,
            attrs: *attrs,
            mode,
            metric: metric.map(str::to_owned),
            epoch,
        };
        let shard = self.shard(&key);
        shard.map.write().insert(key, score);
    }

    /// Looks up every candidate of one query in a single pass: keys are
    /// grouped by shard, so each touched shard is read-locked **once** and
    /// its hit/miss counters updated **once**, rather than per candidate.
    ///
    /// This is the warm-query hot path under concurrent sessions. A query
    /// enumerates hundreds of candidate tuples; taking a lock and bumping an
    /// atomic for each one puts tens of millions of contended
    /// read-modify-writes per second on the shard cache lines, which
    /// serializes otherwise-independent sessions. Batching collapses that to
    /// at most [`CACHE_SHARDS`] lock acquisitions per query. The returned
    /// [`BatchLookup`] carries the scores — positionally aligned with
    /// `candidates`, `None` meaning "never scored under this
    /// `(mode, metric, epoch)`" exactly as in [`lookup`](ScoreCache::lookup)
    /// — together with this call's own hit/miss counts for per-query
    /// attribution (tracing, EXPLAIN).
    pub fn lookup_batch(
        &self,
        class_id: &'static str,
        candidates: &[AttrTuple],
        mode: Mode,
        metric: Option<&str>,
        epoch: u64,
    ) -> BatchLookup {
        let keys: Vec<CacheKey> = candidates
            .iter()
            .map(|attrs| CacheKey {
                class_id,
                attrs: *attrs,
                mode,
                metric: metric.map(str::to_owned),
                epoch,
            })
            .collect();
        let mut by_shard: [Vec<usize>; SHARDS] = std::array::from_fn(|_| Vec::new());
        for (i, key) in keys.iter().enumerate() {
            by_shard[Self::shard_index(key)].push(i);
        }
        let mut out = vec![None; candidates.len()];
        let mut total_hits = 0u64;
        for (shard, indices) in self.shards.iter().zip(&by_shard) {
            if indices.is_empty() {
                continue;
            }
            let mut hits = 0u64;
            {
                let map = shard.map.read();
                for &i in indices {
                    if let Some(found) = map.get(&keys[i]) {
                        out[i] = Some(*found);
                        hits += 1;
                    }
                }
            }
            let misses = indices.len() as u64 - hits;
            if hits > 0 {
                shard.hits.fetch_add(hits, Ordering::Relaxed);
            }
            if misses > 0 {
                shard.misses.fetch_add(misses, Ordering::Relaxed);
            }
            total_hits += hits;
        }
        BatchLookup {
            hits: total_hits,
            misses: candidates.len() as u64 - total_hits,
            scores: out,
        }
    }

    /// Stores one query's freshly computed scores, write-locking each
    /// touched shard once — the storing counterpart of
    /// [`lookup_batch`](ScoreCache::lookup_batch). Returns the number of
    /// entries written (for per-query attribution).
    pub fn store_batch(
        &self,
        class_id: &'static str,
        entries: &[(AttrTuple, Option<f64>)],
        mode: Mode,
        metric: Option<&str>,
        epoch: u64,
    ) -> u64 {
        let keys: Vec<CacheKey> = entries
            .iter()
            .map(|(attrs, _)| CacheKey {
                class_id,
                attrs: *attrs,
                mode,
                metric: metric.map(str::to_owned),
                epoch,
            })
            .collect();
        let mut by_shard: [Vec<usize>; SHARDS] = std::array::from_fn(|_| Vec::new());
        for (i, key) in keys.iter().enumerate() {
            by_shard[Self::shard_index(key)].push(i);
        }
        let mut keys: Vec<Option<CacheKey>> = keys.into_iter().map(Some).collect();
        for (shard, indices) in self.shards.iter().zip(&by_shard) {
            if indices.is_empty() {
                continue;
            }
            let mut map = shard.map.write();
            for &i in indices {
                map.insert(keys[i].take().expect("each key stored once"), entries[i].1);
            }
        }
        entries.len() as u64
    }

    /// Returns the memoized description for `(class, attrs, score)`,
    /// computing and storing it via `describe` on first sight.
    ///
    /// Sound because `InsightClass::describe` is a pure function of the
    /// table, the tuple, and the score, and every table change retires the
    /// memos it could invalidate: wholesale swaps go through
    /// [`clear`](ScoreCache::clear), appended rows through
    /// [`bump_epoch`](ScoreCache::bump_epoch) (drops all details — the
    /// score bits alone don't pin the described data down), and incremental
    /// republishes through
    /// [`bump_epoch_retaining`](ScoreCache::bump_epoch_retaining) (keeps
    /// only tuples whose columns provably received no data). Descriptions
    /// are far cheaper than scores in most classes but not all:
    /// multimodality re-fits a KDE per call, which would otherwise dominate
    /// warm queries.
    pub fn detail(
        &self,
        class_id: &'static str,
        attrs: &AttrTuple,
        score: f64,
        describe: impl FnOnce() -> String,
    ) -> String {
        let key = (class_id, *attrs, score.to_bits());
        if let Some(found) = self.details.read().get(&key) {
            return found.clone();
        }
        let fresh = describe();
        self.details.write().entry(key).or_insert(fresh).clone()
    }

    /// Drops every entry and resets the hit/miss counters. Called whenever
    /// scores could change: a class is (re-)registered, the sketch catalog
    /// is rebuilt, or persisted state is loaded.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.map.write().clear();
            shard.hits.store(0, Ordering::Relaxed);
            shard.misses.store(0, Ordering::Relaxed);
            shard.purges.store(0, Ordering::Relaxed);
        }
        self.details.write().clear();
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.read().len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes: score entries at their key + value +
    /// hash-table-slot footprint, plus the memoized description strings.
    /// An estimate for the monitor's resource gauges, not allocator truth.
    pub fn approx_bytes(&self) -> usize {
        let per_entry = std::mem::size_of::<CacheKey>()
            + std::mem::size_of::<Option<f64>>()
            + 16 // hash-table slot overhead (control byte + slack)
            + 24; // AttrTuple spill: typical small-vec heap share
        let scores = self.len() * per_entry;
        let details: usize = self
            .details
            .read()
            .iter()
            .map(|(k, v)| std::mem::size_of_val(k) + v.len() + 16)
            .sum();
        scores + details
    }

    /// A snapshot of the aggregate and per-shard counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let mut shard_entries = [0usize; CACHE_SHARDS];
        let mut shard_hits = [0u64; CACHE_SHARDS];
        let mut shard_misses = [0u64; CACHE_SHARDS];
        let mut shard_purges = [0u64; CACHE_SHARDS];
        for (i, shard) in self.shards.iter().enumerate() {
            shard_entries[i] = shard.map.read().len();
            shard_hits[i] = shard.hits.load(Ordering::Relaxed);
            shard_misses[i] = shard.misses.load(Ordering::Relaxed);
            shard_purges[i] = shard.purges.load(Ordering::Relaxed);
        }
        CacheStats {
            hits: shard_hits.iter().sum(),
            misses: shard_misses.iter().sum(),
            entries: shard_entries.iter().sum(),
            purges: shard_purges.iter().sum(),
            shard_entries,
            shard_hits,
            shard_misses,
            shard_purges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let cache = ScoreCache::new();
        let attrs = AttrTuple::Two(0, 1);
        assert_eq!(cache.lookup("c", &attrs, Mode::Exact, None, 0), None);
        cache.store("c", &attrs, Mode::Exact, None, Some(0.75), 0);
        assert_eq!(
            cache.lookup("c", &attrs, Mode::Exact, None, 0),
            Some(Some(0.75))
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_none_is_a_hit() {
        let cache = ScoreCache::new();
        let attrs = AttrTuple::One(3);
        cache.store("c", &attrs, Mode::Exact, None, None, 0);
        assert_eq!(cache.lookup("c", &attrs, Mode::Exact, None, 0), Some(None));
    }

    #[test]
    fn key_distinguishes_mode_and_metric() {
        let cache = ScoreCache::new();
        let attrs = AttrTuple::Two(1, 2);
        cache.store("c", &attrs, Mode::Exact, None, Some(1.0), 0);
        cache.store("c", &attrs, Mode::Approximate, None, Some(2.0), 0);
        cache.store("c", &attrs, Mode::Exact, Some("|spearman|"), Some(3.0), 0);
        assert_eq!(
            cache.lookup("c", &attrs, Mode::Exact, None, 0),
            Some(Some(1.0))
        );
        assert_eq!(
            cache.lookup("c", &attrs, Mode::Approximate, None, 0),
            Some(Some(2.0))
        );
        assert_eq!(
            cache.lookup("c", &attrs, Mode::Exact, Some("|spearman|"), 0),
            Some(Some(3.0))
        );
        assert_eq!(cache.lookup("d", &attrs, Mode::Exact, None, 0), None);
    }

    #[test]
    fn detail_is_computed_once_per_key() {
        let cache = ScoreCache::new();
        let attrs = AttrTuple::One(2);
        let mut calls = 0;
        let first = cache.detail("c", &attrs, 0.5, || {
            calls += 1;
            "three modes".into()
        });
        let second = cache.detail("c", &attrs, 0.5, || {
            calls += 1;
            "never built".into()
        });
        assert_eq!(first, "three modes");
        assert_eq!(second, "three modes");
        assert_eq!(calls, 1);
        // a different score is a different description
        let other = cache.detail("c", &attrs, 0.25, || "two modes".into());
        assert_eq!(other, "two modes");
        cache.clear();
        assert_eq!(
            cache.detail("c", &attrs, 0.5, || "rebuilt".into()),
            "rebuilt"
        );
    }

    #[test]
    fn epoch_bump_retires_scores_and_details() {
        let cache = ScoreCache::new();
        let attrs = AttrTuple::Two(0, 1);
        cache.store("c", &attrs, Mode::Approximate, None, Some(0.5), 0);
        let mut calls = 0;
        cache.detail("c", &attrs, 0.5, || {
            calls += 1;
            "first description".into()
        });
        assert_eq!(
            cache.lookup("c", &attrs, Mode::Approximate, None, 0),
            Some(Some(0.5))
        );
        assert_eq!(cache.epoch(), 0);

        assert_eq!(cache.bump_epoch(), 1);
        assert_eq!(cache.epoch(), 1);
        // the pre-bump score is unreachable from the new epoch and purged
        assert_eq!(cache.lookup("c", &attrs, Mode::Approximate, None, 1), None);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().purges, 1);
        // the describe memo is retired with it: the same score bits can
        // describe different data after an append (degenerate scores don't
        // move), so a plain bump must recompute
        let d = cache.detail("c", &attrs, 0.5, || {
            calls += 1;
            "rebuilt description".into()
        });
        assert_eq!(d, "rebuilt description");
        assert_eq!(calls, 2);
        // the new generation stores and serves fresh scores normally
        cache.store("c", &attrs, Mode::Approximate, None, Some(0.7), 1);
        assert_eq!(
            cache.lookup("c", &attrs, Mode::Approximate, None, 1),
            Some(Some(0.7))
        );
        // a straggler still reading the old snapshot writes into its own
        // keyspace and never pollutes the new generation
        cache.store("c", &attrs, Mode::Approximate, None, Some(0.4), 0);
        assert_eq!(
            cache.lookup("c", &attrs, Mode::Approximate, None, 1),
            Some(Some(0.7))
        );
        // counters survived the bump (2 hits: pre-bump + post-bump)
        assert!(cache.stats().hits >= 2);
    }

    #[test]
    fn retaining_bump_migrates_clean_tuples_and_purges_dirty_ones() {
        let cache = ScoreCache::new();
        // tuples over columns {0,1} are "clean", anything touching 2 is not
        for (attrs, score) in [
            (AttrTuple::Two(0, 1), 0.9),
            (AttrTuple::One(1), 0.4),
            (AttrTuple::Two(1, 2), 0.7),
            (AttrTuple::One(2), 0.2),
        ] {
            cache.store("c", &attrs, Mode::Approximate, None, Some(score), 0);
        }
        cache.detail("c", &AttrTuple::One(1), 0.4, || "clean detail".into());
        cache.detail("c", &AttrTuple::One(2), 0.2, || "dirty detail".into());
        let dirty = 2usize;
        let (epoch, migrated) =
            cache.bump_epoch_retaining(|_, attrs| !attrs.indices().contains(&dirty));
        assert_eq!(epoch, 1);
        assert_eq!(migrated, 2);
        // details follow the same predicate: clean tuples keep their memo,
        // dirty ones recompute against the new data
        let mut calls = 0;
        let kept = cache.detail("c", &AttrTuple::One(1), 0.4, || {
            calls += 1;
            "never rebuilt".into()
        });
        assert_eq!(kept, "clean detail");
        let refreshed = cache.detail("c", &AttrTuple::One(2), 0.2, || {
            calls += 1;
            "fresh dirty detail".into()
        });
        assert_eq!(refreshed, "fresh dirty detail");
        assert_eq!(calls, 1);
        // clean tuples answer from the new epoch without recomputation…
        assert_eq!(
            cache.lookup("c", &AttrTuple::Two(0, 1), Mode::Approximate, None, 1),
            Some(Some(0.9))
        );
        assert_eq!(
            cache.lookup("c", &AttrTuple::One(1), Mode::Approximate, None, 1),
            Some(Some(0.4))
        );
        // …dirty ones were retired (and counted as purges)
        assert_eq!(
            cache.lookup("c", &AttrTuple::Two(1, 2), Mode::Approximate, None, 1),
            None
        );
        assert_eq!(
            cache.lookup("c", &AttrTuple::One(2), Mode::Approximate, None, 1),
            None
        );
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().purges, 2);
        // the retired keyspace is gone entirely
        assert_eq!(
            cache.lookup("c", &AttrTuple::Two(0, 1), Mode::Approximate, None, 0),
            None
        );
    }

    #[test]
    fn batch_lookup_reports_per_call_traffic() {
        let cache = ScoreCache::new();
        let candidates: Vec<AttrTuple> = (0..10).map(AttrTuple::One).collect();
        let cold = cache.lookup_batch("c", &candidates, Mode::Exact, None, 0);
        assert_eq!((cold.hits, cold.misses), (0, 10));
        assert!(cold.scores.iter().all(Option::is_none));

        let fresh: Vec<(AttrTuple, Option<f64>)> =
            candidates.iter().take(7).map(|&a| (a, Some(0.5))).collect();
        assert_eq!(
            cache.store_batch("c", &fresh, Mode::Exact, None, 0),
            7,
            "store_batch reports entries written"
        );

        let warm = cache.lookup_batch("c", &candidates, Mode::Exact, None, 0);
        assert_eq!((warm.hits, warm.misses), (7, 3));
        assert_eq!(warm.scores[0], Some(Some(0.5)));
        assert_eq!(warm.scores[9], None);
        // per-call counts line up with the aggregate counters' deltas
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (7, 13));
    }

    #[test]
    fn clear_resets_entries_and_counters() {
        let cache = ScoreCache::new();
        for i in 0..100 {
            cache.store(
                "c",
                &AttrTuple::One(i),
                Mode::Exact,
                None,
                Some(i as f64),
                0,
            );
        }
        assert_eq!(cache.len(), 100);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 0);
    }
}
