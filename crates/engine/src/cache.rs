//! Cross-query score caching.
//!
//! Insight exploration is repetitive by nature: carousels re-run one query
//! per class on every focus change, sessions get replayed, and §4.1-style
//! drill-downs re-score the same attribute tuples under narrower filters.
//! The [`ScoreCache`] memoizes the expensive part — per-tuple metric
//! evaluation — across queries, keyed by everything that determines a score:
//! `(class, attribute tuple, execution mode, metric)`.
//!
//! Filters (score ranges, fixed attributes, exclusions, top-k) are *not*
//! part of the key: they select among scores but never change them, so a
//! tuple scored once serves every later query that touches it.
//!
//! The cache is sharded: each shard is an independent [`RwLock`]ed map, so
//! parallel candidate scoring mostly touches distinct locks. Degenerate
//! results (`None` — constant columns, too few rows) are cached too;
//! re-proving a column degenerate costs as much as scoring it.

use crate::executor::Mode;
use foresight_insight::AttrTuple;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

const SHARDS: usize = 16;

/// A fast, non-cryptographic multiply-rotate hasher (FxHash-style). Cache
/// keys are tiny, trusted, and looked up on the hot path of every warm
/// query, where SipHash's per-lookup cost is measurable; collision-quality
/// beyond "good enough for a HashMap" buys nothing here.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    class_id: &'static str,
    attrs: AttrTuple,
    mode: Mode,
    metric: Option<String>,
    /// Data-generation counter: every [`ScoreCache::bump_epoch`] (one per
    /// appended shard) moves lookups to a fresh keyspace, so scores computed
    /// against the previous generation of the data are unreachable without
    /// the cache having to be fully cleared.
    epoch: u64,
}

/// Key for memoized [`InsightClass::describe`] output: the description is a
/// pure function of `(class, tuple, score)` — the score enters as raw bits
/// so distinct metrics/modes (which produce distinct scores) never collide.
///
/// [`InsightClass::describe`]: foresight_insight::InsightClass::describe
type DetailKey = (&'static str, AttrTuple, u64);

/// Hit/miss counters and current size of a [`ScoreCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to scoring.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, thread-safe memo of per-tuple insight scores.
///
/// Owned by [`Foresight`](crate::Foresight) and consulted by the
/// [`Executor`](crate::Executor); safe to share across threads (interior
/// mutability via per-shard [`RwLock`]s and atomic counters).
pub struct ScoreCache {
    shards: Vec<RwLock<FxMap<CacheKey, Option<f64>>>>,
    /// Memoized `describe()` strings. Only the handful of top-k winners per
    /// query ever land here (not the full candidate set), and they are
    /// written after ranking, outside the parallel scoring loop — a single
    /// unsharded map suffices.
    details: RwLock<FxMap<DetailKey, String>>,
    /// Current data generation; stamped into every score key.
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ScoreCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ScoreCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(FxMap::default())).collect(),
            details: RwLock::new(FxMap::default()),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The current data-generation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Advances the data generation — called when rows are *added* (e.g. a
    /// shard appended to the source) rather than replaced wholesale.
    ///
    /// Score entries from earlier generations become unreachable immediately
    /// (the epoch is part of the key) and are purged to bound memory. The
    /// `details` map survives: a description is keyed by `(class, tuple,
    /// score-bits)`, so a tuple whose score is unchanged by the new rows
    /// keeps its memoized description, while a shifted score misses into a
    /// fresh key naturally. Hit/miss counters are preserved.
    pub fn bump_epoch(&self) {
        let current = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        for shard in &self.shards {
            shard.write().retain(|k, _| k.epoch == current);
        }
    }

    fn shard(&self, key: &CacheKey) -> &RwLock<FxMap<CacheKey, Option<f64>>> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        // multiply-based hashes concentrate entropy in the high bits
        &self.shards[(h.finish() >> 60) as usize % SHARDS]
    }

    /// Looks up a previously stored score.
    ///
    /// `Some(score)` is a hit — including `Some(None)`, a tuple already
    /// proven degenerate. `None` means the tuple was never scored under this
    /// `(mode, metric)` and the caller must compute (and [`store`]) it.
    ///
    /// [`store`]: ScoreCache::store
    pub fn lookup(
        &self,
        class_id: &'static str,
        attrs: &AttrTuple,
        mode: Mode,
        metric: Option<&str>,
    ) -> Option<Option<f64>> {
        let key = CacheKey {
            class_id,
            attrs: *attrs,
            mode,
            metric: metric.map(str::to_owned),
            epoch: self.epoch(),
        };
        let found = self.shard(&key).read().get(&key).copied();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a computed score (or a degenerate `None`).
    pub fn store(
        &self,
        class_id: &'static str,
        attrs: &AttrTuple,
        mode: Mode,
        metric: Option<&str>,
        score: Option<f64>,
    ) {
        let key = CacheKey {
            class_id,
            attrs: *attrs,
            mode,
            metric: metric.map(str::to_owned),
            epoch: self.epoch(),
        };
        self.shard(&key).write().insert(key, score);
    }

    /// Returns the memoized description for `(class, attrs, score)`,
    /// computing and storing it via `describe` on first sight.
    ///
    /// Sound because `InsightClass::describe` is a pure function of the
    /// table, the tuple, and the score: wholesale table swaps go through
    /// [`clear`](ScoreCache::clear), and appended rows go through
    /// [`bump_epoch`](ScoreCache::bump_epoch) — a tuple whose score moved
    /// lands on a new `(…, score-bits)` key, while an unchanged score means
    /// an unchanged description. Descriptions are far cheaper than scores in
    /// most classes but not all: multimodality re-fits a KDE per call, which
    /// would otherwise dominate warm queries.
    pub fn detail(
        &self,
        class_id: &'static str,
        attrs: &AttrTuple,
        score: f64,
        describe: impl FnOnce() -> String,
    ) -> String {
        let key = (class_id, *attrs, score.to_bits());
        if let Some(found) = self.details.read().get(&key) {
            return found.clone();
        }
        let fresh = describe();
        self.details.write().entry(key).or_insert(fresh).clone()
    }

    /// Drops every entry and resets the hit/miss counters. Called whenever
    /// scores could change: a class is (re-)registered, the sketch catalog
    /// is rebuilt, or persisted state is loaded.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.details.write().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let cache = ScoreCache::new();
        let attrs = AttrTuple::Two(0, 1);
        assert_eq!(cache.lookup("c", &attrs, Mode::Exact, None), None);
        cache.store("c", &attrs, Mode::Exact, None, Some(0.75));
        assert_eq!(
            cache.lookup("c", &attrs, Mode::Exact, None),
            Some(Some(0.75))
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_none_is_a_hit() {
        let cache = ScoreCache::new();
        let attrs = AttrTuple::One(3);
        cache.store("c", &attrs, Mode::Exact, None, None);
        assert_eq!(cache.lookup("c", &attrs, Mode::Exact, None), Some(None));
    }

    #[test]
    fn key_distinguishes_mode_and_metric() {
        let cache = ScoreCache::new();
        let attrs = AttrTuple::Two(1, 2);
        cache.store("c", &attrs, Mode::Exact, None, Some(1.0));
        cache.store("c", &attrs, Mode::Approximate, None, Some(2.0));
        cache.store("c", &attrs, Mode::Exact, Some("|spearman|"), Some(3.0));
        assert_eq!(
            cache.lookup("c", &attrs, Mode::Exact, None),
            Some(Some(1.0))
        );
        assert_eq!(
            cache.lookup("c", &attrs, Mode::Approximate, None),
            Some(Some(2.0))
        );
        assert_eq!(
            cache.lookup("c", &attrs, Mode::Exact, Some("|spearman|")),
            Some(Some(3.0))
        );
        assert_eq!(cache.lookup("d", &attrs, Mode::Exact, None), None);
    }

    #[test]
    fn detail_is_computed_once_per_key() {
        let cache = ScoreCache::new();
        let attrs = AttrTuple::One(2);
        let mut calls = 0;
        let first = cache.detail("c", &attrs, 0.5, || {
            calls += 1;
            "three modes".into()
        });
        let second = cache.detail("c", &attrs, 0.5, || {
            calls += 1;
            "never built".into()
        });
        assert_eq!(first, "three modes");
        assert_eq!(second, "three modes");
        assert_eq!(calls, 1);
        // a different score is a different description
        let other = cache.detail("c", &attrs, 0.25, || "two modes".into());
        assert_eq!(other, "two modes");
        cache.clear();
        assert_eq!(
            cache.detail("c", &attrs, 0.5, || "rebuilt".into()),
            "rebuilt"
        );
    }

    #[test]
    fn epoch_bump_retires_scores_but_keeps_details() {
        let cache = ScoreCache::new();
        let attrs = AttrTuple::Two(0, 1);
        cache.store("c", &attrs, Mode::Approximate, None, Some(0.5));
        let mut calls = 0;
        cache.detail("c", &attrs, 0.5, || {
            calls += 1;
            "steady description".into()
        });
        assert_eq!(
            cache.lookup("c", &attrs, Mode::Approximate, None),
            Some(Some(0.5))
        );
        assert_eq!(cache.epoch(), 0);

        cache.bump_epoch();
        assert_eq!(cache.epoch(), 1);
        // the pre-bump score is unreachable and was purged
        assert_eq!(cache.lookup("c", &attrs, Mode::Approximate, None), None);
        assert!(cache.is_empty());
        // but the describe memoization for the unchanged (tuple, score)
        // generation is still served without recomputation
        let d = cache.detail("c", &attrs, 0.5, || {
            calls += 1;
            "never rebuilt".into()
        });
        assert_eq!(d, "steady description");
        assert_eq!(calls, 1);
        // the new generation stores and serves fresh scores normally
        cache.store("c", &attrs, Mode::Approximate, None, Some(0.7));
        assert_eq!(
            cache.lookup("c", &attrs, Mode::Approximate, None),
            Some(Some(0.7))
        );
        // counters survived the bump (2 hits: pre-bump + post-bump)
        assert!(cache.stats().hits >= 2);
    }

    #[test]
    fn clear_resets_entries_and_counters() {
        let cache = ScoreCache::new();
        for i in 0..100 {
            cache.store("c", &AttrTuple::One(i), Mode::Exact, None, Some(i as f64));
        }
        assert_eq!(cache.len(), 100);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 0);
    }
}
