//! Query execution: candidate enumeration → (exact or sketch) scoring →
//! filtering → ranking. Optionally rayon-parallel across candidates (the
//! paper's future-work "parallel search methods that speed up insight
//! queries").

use crate::error::{EngineError, Result};
use crate::query::InsightQuery;
use foresight_data::Table;
use foresight_insight::{AttrTuple, InsightClass, InsightInstance, InsightRegistry};
use foresight_sketch::SketchCatalog;
use rayon::prelude::*;

/// How scores are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Exact metrics over the raw columns.
    Exact,
    /// Sketch-backed approximations where a class supports them, exact
    /// fallback otherwise. Requires a built [`SketchCatalog`].
    Approximate,
}

/// Executes [`InsightQuery`]s against one table.
pub struct Executor<'a> {
    table: &'a Table,
    registry: &'a InsightRegistry,
    catalog: Option<&'a SketchCatalog>,
    mode: Mode,
    parallel: bool,
}

impl<'a> Executor<'a> {
    /// An exact-mode executor.
    pub fn exact(table: &'a Table, registry: &'a InsightRegistry) -> Self {
        Self {
            table,
            registry,
            catalog: None,
            mode: Mode::Exact,
            parallel: false,
        }
    }

    /// An approximate-mode executor over a prebuilt catalog.
    pub fn approximate(
        table: &'a Table,
        registry: &'a InsightRegistry,
        catalog: &'a SketchCatalog,
    ) -> Self {
        Self {
            table,
            registry,
            catalog: Some(catalog),
            mode: Mode::Approximate,
            parallel: false,
        }
    }

    /// Enables rayon-parallel candidate scoring.
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// The execution mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    fn score_one(
        &self,
        class: &dyn InsightClass,
        query: &InsightQuery,
        attrs: &AttrTuple,
    ) -> Option<f64> {
        if let Some(metric) = &query.metric {
            // alternative metrics always take the exact path
            return class.score_metric(self.table, attrs, metric);
        }
        if self.mode == Mode::Approximate {
            if let Some(catalog) = self.catalog {
                if let Some(s) = class.score_sketch(catalog, self.table, attrs) {
                    return Some(s);
                }
            }
        }
        class.score(self.table, attrs)
    }

    /// Runs a query, returning instances sorted by descending score.
    pub fn execute(&self, query: &InsightQuery) -> Result<Vec<InsightInstance>> {
        let class = self
            .registry
            .get(&query.class_id)
            .ok_or_else(|| EngineError::UnknownClass(query.class_id.clone()))?;
        if let Some(metric) = &query.metric {
            let known =
                metric == class.metric() || class.alternative_metrics().iter().any(|m| m == metric);
            if !known {
                return Err(EngineError::UnknownMetric {
                    class: query.class_id.clone(),
                    metric: metric.clone(),
                });
            }
        }

        let candidates: Vec<AttrTuple> = class
            .candidates(self.table)
            .into_iter()
            .filter(|a| {
                query.matches_fixed(a)
                    && query.matches_semantic(self.table, a)
                    && !query.exclude.contains(a)
            })
            .collect();

        let score_fn = |attrs: &AttrTuple| -> Option<(AttrTuple, f64)> {
            let score = self.score_one(class.as_ref(), query, attrs)?;
            (score.is_finite() && query.matches_range(score)).then_some((*attrs, score))
        };
        let mut scored: Vec<(AttrTuple, f64)> = if self.parallel {
            candidates.par_iter().filter_map(score_fn).collect()
        } else {
            candidates.iter().filter_map(score_fn).collect()
        };

        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("non-finite scores filtered")
                .then_with(|| a.0.cmp(&b.0))
        });
        match query.diversify {
            Some(lambda) if lambda > 0.0 => {
                scored = diversify_scored(scored, query.top_k, lambda);
            }
            _ => scored.truncate(query.top_k),
        }

        Ok(scored
            .into_iter()
            .map(|(attrs, score)| InsightInstance {
                class_id: query.class_id.clone(),
                attrs,
                score,
                metric: query
                    .metric
                    .clone()
                    .unwrap_or_else(|| class.metric().to_owned()),
                detail: class.describe(self.table, &attrs, score),
            })
            .collect())
    }
}

/// Greedy maximal-marginal-relevance selection: repeatedly picks the
/// candidate maximizing `(1−λ)·normalized_score − λ·max_attr_overlap` with
/// the already-selected set. Input must be sorted by descending score.
pub(crate) fn diversify_scored(
    scored: Vec<(AttrTuple, f64)>,
    top_k: usize,
    lambda: f64,
) -> Vec<(AttrTuple, f64)> {
    if scored.len() <= 1 {
        return scored;
    }
    let max_score = scored
        .iter()
        .map(|(_, s)| s.abs())
        .fold(f64::MIN_POSITIVE, f64::max);
    let overlap = |a: &AttrTuple, b: &AttrTuple| -> f64 {
        let shared = a.overlap(b) as f64;
        let union = (a.arity() + b.arity()) as f64 - shared;
        shared / union.max(1.0)
    };
    let mut remaining = scored;
    let mut selected: Vec<(AttrTuple, f64)> = vec![remaining.remove(0)];
    while selected.len() < top_k && !remaining.is_empty() {
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, (attrs, score))| {
                let max_sim = selected
                    .iter()
                    .map(|(sel, _)| overlap(attrs, sel))
                    .fold(0.0f64, f64::max);
                (
                    i,
                    (1.0 - lambda) * (score.abs() / max_score) - lambda * max_sim,
                )
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite mmr"))
            .expect("remaining non-empty");
        selected.push(remaining.remove(best_idx));
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::TableBuilder;
    use foresight_sketch::CatalogConfig;

    fn table() -> Table {
        let x: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let strong: Vec<f64> = x.iter().map(|v| 3.0 * v).collect();
        let medium: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| v + ((i * 37) % 120) as f64 * 2.0)
            .collect();
        let noise: Vec<f64> = (0..300).map(|i| ((i * 37) % 300) as f64).collect();
        TableBuilder::new("t")
            .numeric("x", x)
            .numeric("strong", strong)
            .numeric("medium", medium)
            .numeric("noise", noise)
            .build()
            .unwrap()
    }

    fn registry() -> InsightRegistry {
        InsightRegistry::default()
    }

    #[test]
    fn ranks_descending_and_truncates() {
        let t = table();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        let out = ex
            .execute(&InsightQuery::class("linear-relationship").top_k(2))
            .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].score >= out[1].score);
        assert_eq!(out[0].attrs, AttrTuple::Two(0, 1)); // x ~ strong, ρ = 1
        assert!(out[0].detail.contains("linear relationship"));
    }

    #[test]
    fn fixed_attrs_restrict() {
        let t = table();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        let out = ex
            .execute(
                &InsightQuery::class("linear-relationship")
                    .top_k(10)
                    .fix_attr(3),
            )
            .unwrap();
        assert!(!out.is_empty());
        assert!(out.iter().all(|i| i.attrs.contains(3)));
    }

    #[test]
    fn score_range_filters_trivial_correlations() {
        let t = table();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        let out = ex
            .execute(
                &InsightQuery::class("linear-relationship")
                    .top_k(10)
                    .score_range(0.3, 0.95),
            )
            .unwrap();
        assert!(out.iter().all(|i| i.score >= 0.3 && i.score <= 0.95));
        // the perfect pair was filtered out
        assert!(!out.iter().any(|i| i.attrs == AttrTuple::Two(0, 1)));
    }

    #[test]
    fn exclusions_respected() {
        let t = table();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        let out = ex
            .execute(
                &InsightQuery::class("linear-relationship")
                    .top_k(10)
                    .exclude(AttrTuple::Two(0, 1)),
            )
            .unwrap();
        assert!(!out.iter().any(|i| i.attrs == AttrTuple::Two(0, 1)));
    }

    #[test]
    fn semantic_constraint_restricts_candidates() {
        let t = TableBuilder::new("t")
            .numeric("revenue", (0..60).map(|i| i as f64).collect())
            .semantic("currency")
            .numeric("cost", (0..60).map(|i| (2 * i) as f64).collect())
            .semantic("currency")
            .numeric("temperature", (0..60).map(|i| (3 * i) as f64).collect())
            .build()
            .unwrap();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        let out = ex
            .execute(
                &InsightQuery::class("linear-relationship")
                    .top_k(10)
                    .require_semantic("currency"),
            )
            .unwrap();
        assert!(!out.is_empty());
        for inst in &out {
            assert!(
                inst.attrs
                    .indices()
                    .iter()
                    .any(|&i| t.semantic(i) == Some("currency")),
                "{:?} has no currency attribute",
                inst.attrs
            );
        }
        // an unknown tag yields an empty result, not an error
        let none = ex
            .execute(&InsightQuery::class("linear-relationship").require_semantic("nope"))
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn unknown_class_and_metric_rejected() {
        let t = table();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        assert!(matches!(
            ex.execute(&InsightQuery::class("nope")),
            Err(EngineError::UnknownClass(_))
        ));
        assert!(matches!(
            ex.execute(&InsightQuery::class("skew").metric("nope")),
            Err(EngineError::UnknownMetric { .. })
        ));
    }

    #[test]
    fn alternative_metric_path() {
        let t = table();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        let out = ex
            .execute(&InsightQuery::class("linear-relationship").metric("|spearman|"))
            .unwrap();
        assert_eq!(out[0].metric, "|spearman|");
        assert!((out[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn approximate_mode_agrees_on_top_pair() {
        let t = table();
        let r = registry();
        let catalog = SketchCatalog::build(
            &t,
            &CatalogConfig {
                hyperplane_k: Some(1024),
                ..Default::default()
            },
        );
        let approx = Executor::approximate(&t, &r, &catalog);
        let out = approx
            .execute(&InsightQuery::class("linear-relationship").top_k(1))
            .unwrap();
        assert_eq!(out[0].attrs, AttrTuple::Two(0, 1));
        assert!(out[0].score > 0.9);
    }

    #[test]
    fn parallel_equals_sequential() {
        let t = table();
        let r = registry();
        let q = InsightQuery::class("linear-relationship").top_k(6);
        let seq = Executor::exact(&t, &r).execute(&q).unwrap();
        let par = Executor::exact(&t, &r).parallel(true).execute(&q).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn diversification_spreads_attributes() {
        // hub column 0 correlates perfectly with 1, 2, 3; 4~5 is an
        // independent strong pair that plain top-3 would miss
        let base: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let indep: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let t = TableBuilder::new("t")
            .numeric("hub", base.clone())
            .numeric("a", base.iter().map(|v| 2.0 * v).collect())
            .numeric("b", base.iter().map(|v| 3.0 * v + 1.0).collect())
            .numeric("c", base.iter().map(|v| 0.5 * v - 9.0).collect())
            .numeric("x", indep.clone())
            .numeric("y", indep.iter().map(|v| v + 0.5).collect())
            .build()
            .unwrap();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        let plain = ex
            .execute(&InsightQuery::class("linear-relationship").top_k(3))
            .unwrap();
        // plain top-3 is all perfect pairs among {hub,a,b,c}
        assert!(plain.iter().all(|i| !i.attrs.contains(4)));
        let diverse = ex
            .execute(
                &InsightQuery::class("linear-relationship")
                    .top_k(3)
                    .diversify(0.6),
            )
            .unwrap();
        assert!(
            diverse.iter().any(|i| i.attrs == AttrTuple::Two(4, 5)),
            "diversified top-3 still misses the independent pair: {:?}",
            diverse.iter().map(|i| i.attrs).collect::<Vec<_>>()
        );
        // the overall strongest insight is always kept
        assert_eq!(diverse[0].attrs, plain[0].attrs);
    }

    #[test]
    fn deterministic_tie_break() {
        // two pairs with identical scores must order deterministically
        let t = TableBuilder::new("t")
            .numeric("a", (0..50).map(|i| i as f64).collect())
            .numeric("b", (0..50).map(|i| i as f64 * 2.0).collect())
            .numeric("c", (0..50).map(|i| i as f64 * 3.0).collect())
            .build()
            .unwrap();
        let r = registry();
        let out = Executor::exact(&t, &r)
            .execute(&InsightQuery::class("linear-relationship").top_k(3))
            .unwrap();
        assert_eq!(out[0].attrs, AttrTuple::Two(0, 1));
        assert_eq!(out[1].attrs, AttrTuple::Two(0, 2));
        assert_eq!(out[2].attrs, AttrTuple::Two(1, 2));
    }
}
