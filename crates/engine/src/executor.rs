//! Query execution: candidate enumeration → (exact or sketch) scoring →
//! filtering → ranking. Optionally rayon-parallel across candidates (the
//! paper's future-work "parallel search methods that speed up insight
//! queries").

use crate::cache::ScoreCache;
use crate::candidates::{CandidateOrigin, CandidateSource};
use crate::error::{EngineError, Result};
use crate::query::InsightQuery;
use crate::telemetry::{Lap, Metrics, Stage};
use crate::trace::{LshCandidates, ScorePath, TraceBuilder};
use foresight_data::Table;
use foresight_insight::{AttrTuple, InsightClass, InsightInstance, InsightRegistry};
use foresight_sketch::SketchCatalog;
use rayon::prelude::*;
use std::cmp::Ordering;

/// How scores are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Exact metrics over the raw columns.
    Exact,
    /// Sketch-backed approximations where a class supports them, exact
    /// fallback otherwise. Requires a built [`SketchCatalog`].
    Approximate,
}

impl Mode {
    /// The stable lowercase name (`exact` / `approximate`) used in traces,
    /// the slow-query log, and renderings.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Exact => "exact",
            Mode::Approximate => "approximate",
        }
    }
}

/// Executes [`InsightQuery`]s against one table.
pub struct Executor<'a> {
    table: &'a Table,
    registry: &'a InsightRegistry,
    catalog: Option<&'a SketchCatalog>,
    /// The shared score cache plus the data-generation epoch of the core
    /// snapshot this executor reads through (0 for a standalone cache).
    cache: Option<(&'a ScoreCache, u64)>,
    /// The core's telemetry registry, when attached (standalone executors
    /// run unobserved).
    metrics: Option<&'a Metrics>,
    mode: Mode,
    parallel: bool,
    sketch_only: bool,
    /// How candidate tuples are generated. `None` = the class's own scan
    /// (standalone executors); a core snapshot passes its [`CandidateSource`]
    /// so wide-table queries can draw candidates from LSH collisions.
    candidates: Option<CandidateSource<'a>>,
}

impl<'a> Executor<'a> {
    /// An exact-mode executor.
    pub fn exact(table: &'a Table, registry: &'a InsightRegistry) -> Self {
        Self {
            table,
            registry,
            catalog: None,
            cache: None,
            metrics: None,
            mode: Mode::Exact,
            parallel: false,
            sketch_only: false,
            candidates: None,
        }
    }

    /// An approximate-mode executor over a prebuilt catalog.
    pub fn approximate(
        table: &'a Table,
        registry: &'a InsightRegistry,
        catalog: &'a SketchCatalog,
    ) -> Self {
        Self {
            table,
            registry,
            catalog: Some(catalog),
            cache: None,
            metrics: None,
            mode: Mode::Approximate,
            parallel: false,
            sketch_only: false,
            candidates: None,
        }
    }

    /// Marks the table as schema-only: candidate enumeration and semantic
    /// filters still consult it, but its raw rows are absent (a sharded or
    /// sketch-only [`TableSource`](foresight_data::TableSource)). Exact
    /// fallback scoring is disabled — classes without a sketch path simply
    /// produce no instances — alternative-metric queries become a typed
    /// error, and details are rendered from the sketch score alone.
    pub fn sketch_only(mut self, on: bool) -> Self {
        self.sketch_only = on;
        self
    }

    /// Enables rayon-parallel candidate scoring. The parallel path also
    /// scores exact primary-metric queries through
    /// [`InsightClass::score_batch`], which lets classes share per-column
    /// work across candidates (bit-identical to per-candidate scoring).
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Attaches a cross-query [`ScoreCache`]. Scores are looked up before
    /// computing and stored after, always in the cache's current epoch
    /// keyspace; the caller owns invalidation (clear the cache — or
    /// republish a new core snapshot, which mints a fresh epoch — whenever
    /// the registry or catalog changes).
    pub fn with_cache(self, cache: &'a ScoreCache) -> Self {
        let epoch = cache.epoch();
        self.with_cache_at(cache, epoch)
    }

    /// Attaches a cross-query [`ScoreCache`] pinned to an explicit
    /// data-generation epoch — the form used by [`EngineCore`] snapshots,
    /// whose epoch is fixed at publish time so concurrent readers of
    /// different snapshots never exchange scores.
    ///
    /// [`EngineCore`]: crate::EngineCore
    pub fn with_cache_at(mut self, cache: &'a ScoreCache, epoch: u64) -> Self {
        self.cache = Some((cache, epoch));
        self
    }

    /// Attaches a [`CandidateSource`]: pairwise classes that declare a
    /// prunable candidate shape draw their tuples from LSH bucket
    /// collisions when the source's strategy resolves to the index, with
    /// the class's own scan as the fallback. Absent (the default), every
    /// query uses the class scan — bit-identical to an engine without the
    /// index.
    pub fn with_candidates(mut self, source: CandidateSource<'a>) -> Self {
        self.candidates = Some(source);
        self
    }

    /// Attaches a [`Metrics`] registry: stage spans (score, rank,
    /// diversify, describe, carousel) and sketch-fallback counts are
    /// recorded into it. A no-op build (no `telemetry` feature) records
    /// nothing either way.
    pub fn with_metrics(mut self, metrics: &'a Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The attached telemetry registry, if any (used by carousel assembly
    /// to time per-class work against the same registry).
    pub fn metrics(&self) -> Option<&'a Metrics> {
        self.metrics
    }

    /// The execution mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    fn score_uncached(
        &self,
        class: &dyn InsightClass,
        query: &InsightQuery,
        attrs: &AttrTuple,
    ) -> Option<f64> {
        self.score_uncached_tagged(class, query, attrs).0
    }

    /// The single scoring implementation, returning which path produced the
    /// score alongside it — [`score_uncached`](Self::score_uncached) is the
    /// thin untraced view of this.
    fn score_uncached_tagged(
        &self,
        class: &dyn InsightClass,
        query: &InsightQuery,
        attrs: &AttrTuple,
    ) -> (Option<f64>, ScorePath) {
        if let Some(metric) = &query.metric {
            // alternative metrics always take the exact path
            return (
                class.score_metric(self.table, attrs, metric),
                ScorePath::Exact,
            );
        }
        if self.mode == Mode::Approximate {
            if let Some(catalog) = self.catalog {
                if let Some(s) = class.score_sketch(catalog, self.table, attrs) {
                    return (Some(s), ScorePath::Sketch);
                }
            }
            if self.sketch_only {
                // no raw rows to fall back to; the candidate is dropped
                return (None, ScorePath::NoSketch);
            }
            if let Some(metrics) = self.metrics {
                metrics.record_sketch_fallback();
            }
            return (
                class.score(self.table, attrs),
                ScorePath::SketchFallbackExact,
            );
        }
        (class.score(self.table, attrs), ScorePath::Exact)
    }

    /// Is this query eligible for [`InsightClass::score_batch`]? Only
    /// exact-mode primary-metric queries are — the one configuration where
    /// `score_batch` is contractually bit-identical to `score` — and the
    /// parallel flag opts into it (it exists to share per-column work).
    fn batchable(&self, query: &InsightQuery) -> bool {
        self.parallel && query.metric.is_none() && self.mode == Mode::Exact
    }

    /// Scores every candidate through the shared cache: one batched lookup
    /// pass (a single lock acquisition per touched shard), then only the
    /// misses are computed — via [`InsightClass::score_batch`] when
    /// [`batchable`](Self::batchable), rayon-parallel or serial otherwise —
    /// and written back with one batched store. Results align positionally
    /// with `candidates` and are bit-identical to the uncached paths.
    fn score_all_cached(
        &self,
        class: &dyn InsightClass,
        query: &InsightQuery,
        candidates: &[AttrTuple],
        cache: &ScoreCache,
        epoch: u64,
    ) -> Vec<Option<f64>> {
        let metric = query.metric.as_deref();
        let mut out = cache
            .lookup_batch(class.id(), candidates, self.mode, metric, epoch)
            .scores;
        let pending: Vec<usize> = out
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.is_none().then_some(i))
            .collect();
        if !pending.is_empty() {
            let fresh: Vec<(AttrTuple, Option<f64>)> = if self.batchable(query) {
                let missing: Vec<AttrTuple> = pending.iter().map(|&i| candidates[i]).collect();
                let scores = class.score_batch(self.table, &missing);
                debug_assert_eq!(scores.len(), missing.len());
                missing.into_iter().zip(scores).collect()
            } else {
                let compute = |&i: &usize| {
                    (
                        candidates[i],
                        self.score_uncached(class, query, &candidates[i]),
                    )
                };
                if self.parallel {
                    pending.par_iter().map(compute).collect()
                } else {
                    pending.iter().map(compute).collect()
                }
            };
            cache.store_batch(class.id(), &fresh, self.mode, metric, epoch);
            for (&i, (_, score)) in pending.iter().zip(&fresh) {
                out[i] = Some(*score);
            }
        }
        out.into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect()
    }

    /// Traced scoring: sequential, positionally aligned with `candidates`,
    /// returning per-candidate `(cache-hit, path)` provenance alongside the
    /// scores and recording this query's cache traffic on the trace.
    ///
    /// Bit-identical to the untraced paths — `score_batch` and parallel
    /// scoring are contractually identical to serial per-candidate scoring
    /// (the engine's property tests pin both) — so tracing a query never
    /// changes its results.
    fn score_aligned_traced(
        &self,
        class: &dyn InsightClass,
        query: &InsightQuery,
        candidates: &[AttrTuple],
        trace: &mut TraceBuilder,
    ) -> (Vec<Option<f64>>, Vec<(bool, ScorePath)>) {
        let metric = query.metric.as_deref();
        let Some((cache, epoch)) = self.cache else {
            return if self.batchable(query) {
                let scores = class.score_batch(self.table, candidates);
                (scores, vec![(false, ScorePath::Exact); candidates.len()])
            } else {
                let mut provenance = Vec::with_capacity(candidates.len());
                let scores = candidates
                    .iter()
                    .map(|attrs| {
                        let (score, path) = self.score_uncached_tagged(class, query, attrs);
                        provenance.push((false, path));
                        score
                    })
                    .collect();
                (scores, provenance)
            };
        };
        let looked = cache.lookup_batch(class.id(), candidates, self.mode, metric, epoch);
        let mut scores = looked.scores;
        let mut provenance = vec![(true, ScorePath::Cache); candidates.len()];
        let pending: Vec<usize> = scores
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.is_none().then_some(i))
            .collect();
        let mut stored = 0;
        if !pending.is_empty() {
            let fresh: Vec<(AttrTuple, Option<f64>)> = if self.batchable(query) {
                let missing: Vec<AttrTuple> = pending.iter().map(|&i| candidates[i]).collect();
                let batch = class.score_batch(self.table, &missing);
                debug_assert_eq!(batch.len(), missing.len());
                for &i in &pending {
                    provenance[i] = (false, ScorePath::Exact);
                }
                missing.into_iter().zip(batch).collect()
            } else {
                pending
                    .iter()
                    .map(|&i| {
                        let (score, path) =
                            self.score_uncached_tagged(class, query, &candidates[i]);
                        provenance[i] = (false, path);
                        (candidates[i], score)
                    })
                    .collect()
            };
            stored = cache.store_batch(class.id(), &fresh, self.mode, metric, epoch);
            for (&i, (_, score)) in pending.iter().zip(&fresh) {
                scores[i] = Some(*score);
            }
        }
        trace.set_cache_traffic(looked.hits, looked.misses, stored);
        trace.attr("cache_hits", || looked.hits.to_string());
        trace.attr("cache_misses", || looked.misses.to_string());
        trace.attr("stored", || stored.to_string());
        (
            scores
                .into_iter()
                .map(|s| s.expect("all slots filled"))
                .collect(),
            provenance,
        )
    }

    /// Runs a query, returning instances sorted by descending score.
    pub fn execute(&self, query: &InsightQuery) -> Result<Vec<InsightInstance>> {
        self.execute_traced(query, &mut TraceBuilder::disabled())
    }

    /// [`execute`](Self::execute) with a request-scoped trace collector.
    /// With an inert builder (the untraced path, and every build without
    /// the `trace` feature) each trace call is an empty inlined no-op.
    pub(crate) fn execute_traced(
        &self,
        query: &InsightQuery,
        trace: &mut TraceBuilder,
    ) -> Result<Vec<InsightInstance>> {
        let class = self
            .registry
            .get(&query.class_id)
            .ok_or_else(|| EngineError::UnknownClass(query.class_id.clone()))?;
        if let Some(metric) = &query.metric {
            let known =
                metric == class.metric() || class.alternative_metrics().iter().any(|m| m == metric);
            if !known {
                return Err(EngineError::UnknownMetric {
                    class: query.class_id.clone(),
                    metric: metric.clone(),
                });
            }
            if self.sketch_only {
                return Err(EngineError::ExactUnavailable(
                    "alternative metrics are scored over raw rows, which a \
                     sharded source does not expose in approximate mode",
                ));
            }
        }

        trace.set_metric(query.metric.as_deref().unwrap_or_else(|| class.metric()));
        trace.begin("candidates");
        let plan = match &self.candidates {
            Some(source) => source.generate(class.as_ref(), self.table),
            None => crate::candidates::CandidatePlan {
                tuples: class.candidates(self.table),
                origin: CandidateOrigin::ClassScan,
            },
        };
        let raw = plan.tuples;
        let generated = raw.len();
        let candidates: Vec<AttrTuple> = raw
            .into_iter()
            .filter(|a| {
                query.matches_fixed(a)
                    && query.matches_semantic(self.table, a)
                    && !query.exclude.contains(a)
            })
            .collect();
        trace.set_candidates(generated, candidates.len());
        trace.attr("generated", || generated.to_string());
        trace.attr("eligible", || candidates.len().to_string());
        if let CandidateOrigin::Lsh {
            collision_pairs,
            universe_columns,
            tables_probed,
        } = plan.origin
        {
            trace.set_lsh(LshCandidates {
                collision_pairs,
                universe_columns,
                tables_probed,
            });
            trace.attr("lsh_collisions", || {
                format!("{collision_pairs} of {universe_columns}²")
            });
            trace.attr("lsh_tables_probed", || tables_probed.to_string());
            if let Some(metrics) = self.metrics {
                metrics.record_lsh_candidates(collision_pairs as u64);
            }
        }
        trace.end();

        let keep = |attrs: &AttrTuple, score: Option<f64>| -> Option<(AttrTuple, f64)> {
            let score = score?;
            (score.is_finite() && query.matches_range(score)).then_some((*attrs, score))
        };
        let score_fn =
            |attrs: &AttrTuple| keep(attrs, self.score_uncached(class.as_ref(), query, attrs));
        // one lap timer across score → rank/diversify → describe: each
        // boundary is a single clock read shared by the adjacent stages
        let mut lap = Lap::start(self.metrics);
        trace.begin("score");
        // which stats kernel served this query's scoring pass — lets EXPLAIN
        // distinguish vectorized from scalar-forced (FORESIGHT_KERNEL) runs
        trace.attr("kernel", || {
            foresight_stats::kernel::mode().name().to_owned()
        });
        let mut scored: Vec<(AttrTuple, f64)> = if trace.is_active() {
            let (scores, provenance) =
                self.score_aligned_traced(class.as_ref(), query, &candidates, trace);
            trace.record_scoring(self.table, query, &candidates, &scores, &provenance);
            scores
                .into_iter()
                .zip(&candidates)
                .filter_map(|(score, attrs)| keep(attrs, score))
                .collect()
        } else {
            match self.cache {
                Some((cache, epoch)) => self
                    .score_all_cached(class.as_ref(), query, &candidates, cache, epoch)
                    .into_iter()
                    .zip(&candidates)
                    .filter_map(|(score, attrs)| keep(attrs, score))
                    .collect(),
                None if self.batchable(query) => {
                    // batch path: classes share per-column work across candidates
                    class
                        .score_batch(self.table, &candidates)
                        .into_iter()
                        .zip(&candidates)
                        .filter_map(|(score, attrs)| keep(attrs, score))
                        .collect()
                }
                None if self.parallel => candidates.par_iter().filter_map(score_fn).collect(),
                None => candidates.iter().filter_map(score_fn).collect(),
            }
        };
        trace.attr("survivors", || scored.len().to_string());
        trace.end();
        lap.mark(Stage::Score);

        match query.diversify {
            Some(lambda) if lambda > 0.0 => {
                trace.begin("diversify");
                // MMR needs the full descending-score ordering as input
                scored.sort_by(rank_order);
                if trace.is_active() {
                    // snapshot the plain ranking so final ranks get deltas
                    trace.set_undiversified(scored.iter().map(|(a, _)| *a).collect());
                }
                trace.attr("lambda", || lambda.to_string());
                trace.attr("pool", || scored.len().to_string());
                trace.attr("k", || query.top_k.to_string());
                scored = diversify_scored(scored, query.top_k, lambda);
                trace.end();
                lap.mark(Stage::Diversify);
            }
            _ => {
                trace.begin("rank");
                trace.attr("pool", || scored.len().to_string());
                trace.attr("k", || query.top_k.to_string());
                scored = rank_top_k(scored, query.top_k);
                trace.end();
                lap.mark(Stage::Rank);
            }
        }

        trace.begin("describe");
        let out: Vec<InsightInstance> = scored
            .into_iter()
            .map(|(attrs, score)| InsightInstance {
                class_id: query.class_id.clone(),
                attrs,
                score,
                metric: query
                    .metric
                    .clone()
                    .unwrap_or_else(|| class.metric().to_owned()),
                detail: if self.sketch_only {
                    // `describe` reads raw columns the source doesn't have
                    format!(
                        "{} ≈ {score:.3} (estimated from merged shard sketches)",
                        class.metric()
                    )
                } else {
                    match self.cache {
                        // `describe` is pure in (table, attrs, score);
                        // memoizing it spares per-result model refits
                        // (multimodality's KDE) on every warm carousel
                        // refresh.
                        Some((cache, _)) => cache.detail(class.id(), &attrs, score, || {
                            class.describe(self.table, &attrs, score)
                        }),
                        None => class.describe(self.table, &attrs, score),
                    }
                },
            })
            .collect();
        trace.attr("results", || out.len().to_string());
        trace.end();
        lap.mark(Stage::Describe);
        trace.record_results(self.table, &out);
        Ok(out)
    }
}

/// The ranking order: descending score, ties broken by ascending attribute
/// tuple (deterministic across runs, threads, and scoring paths).
fn rank_order(a: &(AttrTuple, f64), b: &(AttrTuple, f64)) -> Ordering {
    b.1.partial_cmp(&a.1)
        .expect("non-finite scores filtered")
        .then_with(|| a.0.cmp(&b.0))
}

/// Selects and sorts the top `k` of `scored` under the ranking order
/// (descending score, ascending attribute tuple on ties).
///
/// Uses quickselect to partition the top `k` before sorting only that
/// prefix — `O(n + k log k)` instead of the `O(n log n)` full sort, which
/// matters when a query enumerates thousands of candidate tuples to return
/// a carousel of five. Output is identical to sort-then-truncate (the
/// engine's property tests assert as much).
pub fn rank_top_k(mut scored: Vec<(AttrTuple, f64)>, k: usize) -> Vec<(AttrTuple, f64)> {
    if k == 0 {
        scored.clear();
        return scored;
    }
    if scored.len() > k {
        scored.select_nth_unstable_by(k - 1, rank_order);
        scored.truncate(k);
    }
    scored.sort_by(rank_order);
    scored
}

/// Greedy maximal-marginal-relevance selection: repeatedly picks the
/// candidate maximizing `(1−λ)·normalized_score − λ·max_attr_overlap` with
/// the already-selected set. Input must be sorted by descending score.
///
/// Candidates are tombstoned in place and the per-candidate similarity to
/// the selected set is maintained incrementally (only the most recently
/// selected tuple can raise it), so selection is `O(k·n)` rather than the
/// `O(k·n²)` of rescanning the selected set and `Vec::remove`-compacting
/// the remainder on every round.
pub(crate) fn diversify_scored(
    scored: Vec<(AttrTuple, f64)>,
    top_k: usize,
    lambda: f64,
) -> Vec<(AttrTuple, f64)> {
    if scored.len() <= 1 {
        return scored;
    }
    let max_score = scored
        .iter()
        .map(|(_, s)| s.abs())
        .fold(f64::MIN_POSITIVE, f64::max);
    let overlap = |a: &AttrTuple, b: &AttrTuple| -> f64 {
        let shared = a.overlap(b) as f64;
        let union = (a.arity() + b.arity()) as f64 - shared;
        shared / union.max(1.0)
    };
    let n = scored.len();
    let mut alive = vec![true; n];
    let mut selected: Vec<(AttrTuple, f64)> = Vec::with_capacity(top_k.min(n));
    alive[0] = false;
    selected.push(scored[0]);
    // best_sim[i] = max overlap between candidate i and the selected set
    let mut best_sim: Vec<f64> = scored
        .iter()
        .map(|(attrs, _)| overlap(attrs, &scored[0].0))
        .collect();
    while selected.len() < top_k && selected.len() < n {
        let mut best: Option<(usize, f64)> = None;
        for (i, (_, score)) in scored.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            let mmr = (1.0 - lambda) * (score.abs() / max_score) - lambda * best_sim[i];
            // `>=` keeps the last maximum, matching `Iterator::max_by`
            if best.is_none() || mmr >= best.expect("just checked").1 {
                best = Some((i, mmr));
            }
        }
        let (chosen, _) = best.expect("alive candidates remain");
        alive[chosen] = false;
        selected.push(scored[chosen]);
        for (i, (attrs, _)) in scored.iter().enumerate() {
            if alive[i] {
                best_sim[i] = best_sim[i].max(overlap(attrs, &scored[chosen].0));
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::TableBuilder;
    use foresight_sketch::CatalogConfig;

    fn table() -> Table {
        let x: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let strong: Vec<f64> = x.iter().map(|v| 3.0 * v).collect();
        let medium: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| v + ((i * 37) % 120) as f64 * 2.0)
            .collect();
        let noise: Vec<f64> = (0..300).map(|i| ((i * 37) % 300) as f64).collect();
        TableBuilder::new("t")
            .numeric("x", x)
            .numeric("strong", strong)
            .numeric("medium", medium)
            .numeric("noise", noise)
            .build()
            .unwrap()
    }

    fn registry() -> InsightRegistry {
        InsightRegistry::default()
    }

    #[test]
    fn ranks_descending_and_truncates() {
        let t = table();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        let out = ex
            .execute(&InsightQuery::class("linear-relationship").top_k(2))
            .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].score >= out[1].score);
        assert_eq!(out[0].attrs, AttrTuple::Two(0, 1)); // x ~ strong, ρ = 1
        assert!(out[0].detail.contains("linear relationship"));
    }

    #[test]
    fn fixed_attrs_restrict() {
        let t = table();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        let out = ex
            .execute(
                &InsightQuery::class("linear-relationship")
                    .top_k(10)
                    .fix_attr(3),
            )
            .unwrap();
        assert!(!out.is_empty());
        assert!(out.iter().all(|i| i.attrs.contains(3)));
    }

    #[test]
    fn score_range_filters_trivial_correlations() {
        let t = table();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        let out = ex
            .execute(
                &InsightQuery::class("linear-relationship")
                    .top_k(10)
                    .score_range(0.3, 0.95),
            )
            .unwrap();
        assert!(out.iter().all(|i| i.score >= 0.3 && i.score <= 0.95));
        // the perfect pair was filtered out
        assert!(!out.iter().any(|i| i.attrs == AttrTuple::Two(0, 1)));
    }

    #[test]
    fn exclusions_respected() {
        let t = table();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        let out = ex
            .execute(
                &InsightQuery::class("linear-relationship")
                    .top_k(10)
                    .exclude(AttrTuple::Two(0, 1)),
            )
            .unwrap();
        assert!(!out.iter().any(|i| i.attrs == AttrTuple::Two(0, 1)));
    }

    #[test]
    fn semantic_constraint_restricts_candidates() {
        let t = TableBuilder::new("t")
            .numeric("revenue", (0..60).map(|i| i as f64).collect())
            .semantic("currency")
            .numeric("cost", (0..60).map(|i| (2 * i) as f64).collect())
            .semantic("currency")
            .numeric("temperature", (0..60).map(|i| (3 * i) as f64).collect())
            .build()
            .unwrap();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        let out = ex
            .execute(
                &InsightQuery::class("linear-relationship")
                    .top_k(10)
                    .require_semantic("currency"),
            )
            .unwrap();
        assert!(!out.is_empty());
        for inst in &out {
            assert!(
                inst.attrs
                    .indices()
                    .iter()
                    .any(|&i| t.semantic(i) == Some("currency")),
                "{:?} has no currency attribute",
                inst.attrs
            );
        }
        // an unknown tag yields an empty result, not an error
        let none = ex
            .execute(&InsightQuery::class("linear-relationship").require_semantic("nope"))
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn unknown_class_and_metric_rejected() {
        let t = table();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        assert!(matches!(
            ex.execute(&InsightQuery::class("nope")),
            Err(EngineError::UnknownClass(_))
        ));
        assert!(matches!(
            ex.execute(&InsightQuery::class("skew").metric("nope")),
            Err(EngineError::UnknownMetric { .. })
        ));
    }

    #[test]
    fn alternative_metric_path() {
        let t = table();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        let out = ex
            .execute(&InsightQuery::class("linear-relationship").metric("|spearman|"))
            .unwrap();
        assert_eq!(out[0].metric, "|spearman|");
        assert!((out[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn approximate_mode_agrees_on_top_pair() {
        let t = table();
        let r = registry();
        let catalog = SketchCatalog::build(
            &t,
            &CatalogConfig {
                hyperplane_k: Some(1024),
                ..Default::default()
            },
        );
        let approx = Executor::approximate(&t, &r, &catalog);
        let out = approx
            .execute(&InsightQuery::class("linear-relationship").top_k(1))
            .unwrap();
        assert_eq!(out[0].attrs, AttrTuple::Two(0, 1));
        assert!(out[0].score > 0.9);
    }

    #[test]
    fn sketch_only_scores_without_raw_rows() {
        let x: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let t = TableBuilder::new("t")
            .numeric("x", x.clone())
            .numeric("strong", x.iter().map(|v| 3.0 * v).collect())
            .categorical("grp", (0..300).map(|i| if i % 3 == 0 { "a" } else { "b" }))
            .build()
            .unwrap();
        let r = registry();
        let catalog = SketchCatalog::build(
            &t,
            &CatalogConfig {
                hyperplane_k: Some(1024),
                ..Default::default()
            },
        );
        // the executor sees only the schema — zero rows of data
        let schema_only = foresight_data::TableSource::materialized(t).schema_table();
        assert_eq!(schema_only.n_rows(), 0);
        let ex = Executor::approximate(&schema_only, &r, &catalog).sketch_only(true);
        let out = ex
            .execute(&InsightQuery::class("linear-relationship").top_k(1))
            .unwrap();
        assert_eq!(out[0].attrs, AttrTuple::Two(0, 1));
        assert!(out[0].score > 0.9);
        assert!(out[0].detail.contains("sketch"));
        // alternative metrics need raw rows → typed error
        assert!(matches!(
            ex.execute(&InsightQuery::class("linear-relationship").metric("|spearman|")),
            Err(crate::error::EngineError::ExactUnavailable(_))
        ));
        // a class with no sketch path yields no instances, not a panic
        let none = ex
            .execute(&InsightQuery::class("statistical-dependence").top_k(3))
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn parallel_equals_sequential() {
        let t = table();
        let r = registry();
        let q = InsightQuery::class("linear-relationship").top_k(6);
        let seq = Executor::exact(&t, &r).execute(&q).unwrap();
        let par = Executor::exact(&t, &r).parallel(true).execute(&q).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn cached_executor_matches_uncached_and_hits_on_rerun() {
        let t = table();
        let r = registry();
        let cache = ScoreCache::new();
        let q = InsightQuery::class("linear-relationship").top_k(4);
        let plain = Executor::exact(&t, &r).execute(&q).unwrap();
        let cold = Executor::exact(&t, &r)
            .with_cache(&cache)
            .execute(&q)
            .unwrap();
        assert_eq!(plain, cold);
        assert!(cache.stats().entries > 0);
        let warm = Executor::exact(&t, &r)
            .with_cache(&cache)
            .execute(&q)
            .unwrap();
        assert_eq!(plain, warm);
        let stats = cache.stats();
        assert!(stats.hits >= 6, "expected warm hits, got {stats:?}");
    }

    #[test]
    fn cache_serves_narrower_followup_queries() {
        let t = table();
        let r = registry();
        let cache = ScoreCache::new();
        let ex = Executor::exact(&t, &r).with_cache(&cache);
        ex.execute(&InsightQuery::class("linear-relationship").top_k(10))
            .unwrap();
        let misses_after_broad = cache.stats().misses;
        // drill-down with filters re-uses every score
        ex.execute(
            &InsightQuery::class("linear-relationship")
                .top_k(3)
                .fix_attr(0)
                .score_range(0.0, 0.9),
        )
        .unwrap();
        assert_eq!(cache.stats().misses, misses_after_broad);
    }

    #[test]
    fn parallel_batch_path_matches_serial_with_cache() {
        let t = table();
        let r = registry();
        let cache = ScoreCache::new();
        let q = InsightQuery::class("monotonic-relationship").top_k(6);
        let serial = Executor::exact(&t, &r).execute(&q).unwrap();
        let batch = Executor::exact(&t, &r)
            .parallel(true)
            .with_cache(&cache)
            .execute(&q)
            .unwrap();
        assert_eq!(serial, batch);
        // second run is served from the cache, still identical
        let warm = Executor::exact(&t, &r)
            .parallel(true)
            .with_cache(&cache)
            .execute(&q)
            .unwrap();
        assert_eq!(serial, warm);
    }

    #[test]
    fn rank_top_k_matches_sort_truncate() {
        let scored: Vec<(AttrTuple, f64)> = (0..40)
            .map(|i| (AttrTuple::Two(i, i + 1), ((i * 7) % 5) as f64))
            .collect();
        for k in [0, 1, 3, 39, 40, 100] {
            let mut reference = scored.clone();
            reference.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
            reference.truncate(k);
            assert_eq!(rank_top_k(scored.clone(), k), reference, "k = {k}");
        }
    }

    #[test]
    fn diversification_spreads_attributes() {
        // hub column 0 correlates perfectly with 1, 2, 3; 4~5 is an
        // independent strong pair that plain top-3 would miss
        let base: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let indep: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let t = TableBuilder::new("t")
            .numeric("hub", base.clone())
            .numeric("a", base.iter().map(|v| 2.0 * v).collect())
            .numeric("b", base.iter().map(|v| 3.0 * v + 1.0).collect())
            .numeric("c", base.iter().map(|v| 0.5 * v - 9.0).collect())
            .numeric("x", indep.clone())
            .numeric("y", indep.iter().map(|v| v + 0.5).collect())
            .build()
            .unwrap();
        let r = registry();
        let ex = Executor::exact(&t, &r);
        let plain = ex
            .execute(&InsightQuery::class("linear-relationship").top_k(3))
            .unwrap();
        // plain top-3 is all perfect pairs among {hub,a,b,c}
        assert!(plain.iter().all(|i| !i.attrs.contains(4)));
        let diverse = ex
            .execute(
                &InsightQuery::class("linear-relationship")
                    .top_k(3)
                    .diversify(0.6),
            )
            .unwrap();
        assert!(
            diverse.iter().any(|i| i.attrs == AttrTuple::Two(4, 5)),
            "diversified top-3 still misses the independent pair: {:?}",
            diverse.iter().map(|i| i.attrs).collect::<Vec<_>>()
        );
        // the overall strongest insight is always kept
        assert_eq!(diverse[0].attrs, plain[0].attrs);
    }

    #[test]
    fn deterministic_tie_break() {
        // two pairs with identical scores must order deterministically
        let t = TableBuilder::new("t")
            .numeric("a", (0..50).map(|i| i as f64).collect())
            .numeric("b", (0..50).map(|i| i as f64 * 2.0).collect())
            .numeric("c", (0..50).map(|i| i as f64 * 3.0).collect())
            .build()
            .unwrap();
        let r = registry();
        let out = Executor::exact(&t, &r)
            .execute(&InsightQuery::class("linear-relationship").top_k(3))
            .unwrap();
        assert_eq!(out[0].attrs, AttrTuple::Two(0, 1));
        assert_eq!(out[1].attrs, AttrTuple::Two(0, 2));
        assert_eq!(out[2].attrs, AttrTuple::Two(1, 2));
    }
}
