//! Insight neighborhoods (paper §2.1 / §4.1): when the user focuses an
//! insight, recommendations are re-ranked toward "nearby" insights — those
//! sharing attributes or having similar metric scores.

use foresight_insight::InsightInstance;

/// Weighting between raw strength and focus similarity when re-ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborhoodWeights {
    /// Weight of similarity to the focus set (0 = ignore focus, 1 = only
    /// similarity). The remainder weights the instance's own score.
    pub similarity: f64,
}

impl Default for NeighborhoodWeights {
    fn default() -> Self {
        Self { similarity: 0.5 }
    }
}

/// Similarity of `candidate` to the closest member of the focus set
/// (0 when the focus set is empty).
pub fn focus_similarity(candidate: &InsightInstance, focus: &[InsightInstance]) -> f64 {
    focus
        .iter()
        .map(|f| candidate.similarity(f))
        .fold(0.0, f64::max)
}

/// Blended relevance: `(1−w)·normalized_score + w·focus_similarity`.
///
/// Scores are normalized within the candidate list so classes with
/// unbounded metrics (variance, kurtosis) blend on equal footing.
pub fn rerank(
    candidates: &mut [InsightInstance],
    focus: &[InsightInstance],
    weights: NeighborhoodWeights,
) {
    if focus.is_empty() || candidates.is_empty() {
        return;
    }
    let max_score = candidates
        .iter()
        .map(|c| c.score.abs())
        .fold(f64::MIN_POSITIVE, f64::max);
    let w = weights.similarity.clamp(0.0, 1.0);
    let relevance = |c: &InsightInstance| -> f64 {
        (1.0 - w) * (c.score.abs() / max_score) + w * focus_similarity(c, focus)
    };
    candidates.sort_by(|a, b| {
        relevance(b)
            .partial_cmp(&relevance(a))
            .expect("finite relevance")
            .then_with(|| a.attrs.cmp(&b.attrs))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_insight::AttrTuple;

    fn inst(class: &str, attrs: AttrTuple, score: f64) -> InsightInstance {
        InsightInstance {
            class_id: class.into(),
            attrs,
            score,
            metric: "m".into(),
            detail: String::new(),
        }
    }

    #[test]
    fn focus_similarity_is_max_over_focus() {
        let focus = vec![
            inst("c", AttrTuple::Two(1, 2), 0.9),
            inst("c", AttrTuple::Two(5, 6), 0.9),
        ];
        let near = inst("c", AttrTuple::Two(2, 3), 0.9);
        let far = inst("c", AttrTuple::Two(8, 9), 0.9);
        assert!(focus_similarity(&near, &focus) > focus_similarity(&far, &focus));
        assert_eq!(focus_similarity(&near, &[]), 0.0);
    }

    #[test]
    fn rerank_promotes_neighbors_of_focus() {
        let focus = vec![inst("c", AttrTuple::Two(1, 2), 0.9)];
        // "related" shares attribute 1; "stronger" has a higher score but no overlap
        let related = inst("c", AttrTuple::Two(1, 7), 0.7);
        let stronger = inst("c", AttrTuple::Two(8, 9), 0.8);
        let mut list = vec![stronger.clone(), related.clone()];
        rerank(&mut list, &focus, NeighborhoodWeights { similarity: 0.8 });
        assert_eq!(list[0].attrs, related.attrs);
        // with similarity turned off, raw score order returns
        rerank(&mut list, &focus, NeighborhoodWeights { similarity: 0.0 });
        assert_eq!(list[0].attrs, stronger.attrs);
    }

    #[test]
    fn empty_focus_is_noop() {
        let a = inst("c", AttrTuple::One(0), 0.3);
        let b = inst("c", AttrTuple::One(1), 0.9);
        let mut list = vec![a.clone(), b.clone()];
        rerank(&mut list, &[], NeighborhoodWeights::default());
        assert_eq!(list[0].attrs, a.attrs); // untouched
    }
}
