//! One-call dataset profiling: per-column descriptive summaries plus the
//! strongest instance of every insight class — the "jump-start" overview a
//! new user sees before issuing any query.

use crate::error::Result;
use crate::executor::Executor;
use crate::query::InsightQuery;
use foresight_data::{ColumnType, Table, TableSource};
use foresight_insight::{InsightInstance, InsightRegistry};
use foresight_sketch::SketchCatalog;
use foresight_stats::{describe, Description, FrequencyTable};
use serde::{Deserialize, Serialize};

/// Summary of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnProfile {
    /// A numeric column's descriptive statistics.
    Numeric {
        /// Column name.
        name: String,
        /// The summary (`None` when the column is all-missing).
        summary: Option<Description>,
    },
    /// A categorical column's frequency profile.
    Categorical {
        /// Column name.
        name: String,
        /// Distinct values.
        cardinality: usize,
        /// Present count.
        total: u64,
        /// The most frequent value and its count.
        top: Option<(String, u64)>,
        /// Normalized entropy in [0, 1].
        normalized_entropy: f64,
    },
}

/// A whole-table profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Dataset name.
    pub name: String,
    /// Rows.
    pub rows: usize,
    /// Per-column summaries, in schema order.
    pub columns: Vec<ColumnProfile>,
    /// The strongest instance of each insight class that produced one,
    /// in registry order.
    pub headline_insights: Vec<InsightInstance>,
}

/// Profiles a table: summaries for every column and the top instance of
/// every class in `registry`.
pub fn profile(table: &Table, registry: &InsightRegistry) -> Result<DatasetProfile> {
    let mut columns = Vec::with_capacity(table.n_cols());
    for (idx, field) in table.schema().fields().iter().enumerate() {
        match field.ty {
            ColumnType::Numeric => {
                let col = table.numeric(idx)?;
                columns.push(ColumnProfile::Numeric {
                    name: field.name.clone(),
                    summary: describe(col.values()),
                });
            }
            ColumnType::Categorical => {
                let col = table.categorical(idx)?;
                let ft = FrequencyTable::from_column(col);
                columns.push(ColumnProfile::Categorical {
                    name: field.name.clone(),
                    cardinality: ft.cardinality(),
                    total: ft.total,
                    top: ft.top_k(1).first().cloned(),
                    normalized_entropy: ft.normalized_entropy(),
                });
            }
        }
    }

    let executor = Executor::exact(table, registry);
    let mut headline_insights = Vec::new();
    for class in registry.classes() {
        if let Ok(mut top) = executor.execute(&InsightQuery::class(class.id()).top_k(1)) {
            headline_insights.append(&mut top);
        }
    }

    Ok(DatasetProfile {
        name: table.name().to_owned(),
        rows: table.n_rows(),
        columns,
        headline_insights,
    })
}

/// Profiles a partitioned source entirely from its merged sketch catalog —
/// moments for the numeric summaries, KLL for the quartiles, SpaceSaving /
/// entropy-sketch / HLL for the categorical profiles, and a sketch-only
/// executor for the headline insights. No shard is ever read back or
/// concatenated; `schema_table` is the zero-row table the executor
/// enumerates candidates against.
///
/// Numeric summaries differ from the exact [`profile`] only in the
/// quartiles (KLL rank error); count/mean/std/min/max/skewness/kurtosis are
/// moments-derived and match a single-pass build bit-for-bit.
pub fn profile_from_catalog(
    source: &TableSource,
    catalog: &SketchCatalog,
    registry: &InsightRegistry,
    schema_table: &Table,
) -> Result<DatasetProfile> {
    let rows = source.n_rows();
    let mut columns = Vec::with_capacity(source.n_cols());
    for (idx, field) in source.schema().fields().iter().enumerate() {
        match field.ty {
            ColumnType::Numeric => {
                let summary = catalog.numeric(idx).and_then(|s| {
                    let m = &s.moments;
                    if m.count() == 0 {
                        return None;
                    }
                    Some(Description {
                        count: m.count(),
                        missing: rows as u64 - m.count(),
                        mean: m.mean(),
                        std: m.population_std(),
                        min: m.min(),
                        q1: s.quantiles.quantile(0.25).unwrap_or(m.min()),
                        median: s.quantiles.quantile(0.5).unwrap_or(m.mean()),
                        q3: s.quantiles.quantile(0.75).unwrap_or(m.max()),
                        max: m.max(),
                        skewness: m.skewness(),
                        kurtosis: m.kurtosis(),
                    })
                });
                columns.push(ColumnProfile::Numeric {
                    name: field.name.clone(),
                    summary,
                });
            }
            ColumnType::Categorical => {
                let profile = match catalog.categorical(idx) {
                    Some(s) => {
                        let top = s
                            .heavy_hitters
                            .top()
                            .first()
                            .map(|(label, count, _)| (label.clone(), *count));
                        let normalized_entropy = if s.cardinality > 1 {
                            (s.entropy.estimate() / (s.cardinality as f64).ln()).clamp(0.0, 1.0)
                        } else if s.cardinality == 1 {
                            0.0
                        } else {
                            f64::NAN
                        };
                        ColumnProfile::Categorical {
                            name: field.name.clone(),
                            cardinality: s.cardinality,
                            total: s.total,
                            top,
                            normalized_entropy,
                        }
                    }
                    None => ColumnProfile::Categorical {
                        name: field.name.clone(),
                        cardinality: 0,
                        total: 0,
                        top: None,
                        normalized_entropy: f64::NAN,
                    },
                };
                columns.push(profile);
            }
        }
    }

    let executor = Executor::approximate(schema_table, registry, catalog).sketch_only(true);
    let mut headline_insights = Vec::new();
    for class in registry.classes() {
        if let Ok(mut top) = executor.execute(&InsightQuery::class(class.id()).top_k(1)) {
            headline_insights.append(&mut top);
        }
    }

    Ok(DatasetProfile {
        name: source.name().to_owned(),
        rows,
        columns,
        headline_insights,
    })
}

impl DatasetProfile {
    /// A human-readable multi-line rendering.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "dataset `{}`: {} rows × {} columns\n\ncolumns:\n",
            self.name,
            self.rows,
            self.columns.len()
        );
        for c in &self.columns {
            match c {
                ColumnProfile::Numeric { name, summary } => match summary {
                    Some(d) => out.push_str(&format!(
                        "  {name:<40} numeric  mean {:>10.3}  sd {:>10.3}  [{:.3}, {:.3}]  {} missing\n",
                        d.mean, d.std, d.min, d.max, d.missing
                    )),
                    None => out.push_str(&format!("  {name:<40} numeric  (all missing)\n")),
                },
                ColumnProfile::Categorical {
                    name,
                    cardinality,
                    total,
                    top,
                    normalized_entropy,
                } => {
                    let top_str = top
                        .as_ref()
                        .map(|(l, c)| format!("top `{l}` ×{c}"))
                        .unwrap_or_else(|| "empty".to_owned());
                    out.push_str(&format!(
                        "  {name:<40} categorical  {cardinality} distinct / {total}  {top_str}  H̃ = {normalized_entropy:.2}\n"
                    ));
                }
            }
        }
        out.push_str("\nheadline insights:\n");
        for i in &self.headline_insights {
            out.push_str(&format!(
                "  [{:<26}] {:.3}  {}\n",
                i.class_id, i.score, i.detail
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::TableBuilder;

    fn table() -> Table {
        TableBuilder::new("demo")
            .numeric("x", (0..50).map(|i| i as f64).collect())
            .numeric("y", (0..50).map(|i| (2 * i) as f64).collect())
            .categorical("c", (0..50).map(|i| if i % 3 == 0 { "a" } else { "b" }))
            .build()
            .unwrap()
    }

    #[test]
    fn profile_covers_all_columns_and_classes() {
        let t = table();
        let r = InsightRegistry::default();
        let p = profile(&t, &r).unwrap();
        assert_eq!(p.rows, 50);
        assert_eq!(p.columns.len(), 3);
        match &p.columns[0] {
            ColumnProfile::Numeric { name, summary } => {
                assert_eq!(name, "x");
                assert_eq!(summary.as_ref().unwrap().count, 50);
            }
            _ => panic!("wrong kind"),
        }
        match &p.columns[2] {
            ColumnProfile::Categorical {
                cardinality, top, ..
            } => {
                assert_eq!(*cardinality, 2);
                assert_eq!(top.as_ref().unwrap().0, "b");
            }
            _ => panic!("wrong kind"),
        }
        // at least the correlation/skew/dispersion classes produce headlines
        assert!(p.headline_insights.len() >= 5);
        let linear = p
            .headline_insights
            .iter()
            .find(|i| i.class_id == "linear-relationship")
            .unwrap();
        assert!((linear.score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn text_rendering_mentions_everything() {
        let t = table();
        let r = InsightRegistry::default();
        let text = profile(&t, &r).unwrap().to_text();
        assert!(text.contains("demo"));
        assert!(text.contains("numeric"));
        assert!(text.contains("categorical"));
        assert!(text.contains("linear-relationship"));
    }

    #[test]
    fn catalog_profile_tracks_exact_profile() {
        let n = 500;
        let t = TableBuilder::new("demo")
            .numeric("x", (0..n).map(|i| i as f64).collect())
            .numeric("y", (0..n).map(|i| (2 * i) as f64).collect())
            .categorical("c", (0..n).map(|i| if i % 3 == 0 { "a" } else { "b" }))
            .build()
            .unwrap();
        let r = InsightRegistry::default();
        let exact = profile(&t, &r).unwrap();

        let source = foresight_data::TableSource::materialized(t.clone());
        let config = foresight_sketch::CatalogConfig {
            hyperplane_k: Some(1024),
            ..Default::default()
        };
        let catalog = SketchCatalog::build(&t, &config);
        let schema_table = source.schema_table();
        let approx = profile_from_catalog(&source, &catalog, &r, &schema_table).unwrap();

        assert_eq!(approx.rows, exact.rows);
        assert_eq!(approx.columns.len(), exact.columns.len());
        match (&approx.columns[0], &exact.columns[0]) {
            (
                ColumnProfile::Numeric {
                    summary: Some(a), ..
                },
                ColumnProfile::Numeric {
                    summary: Some(e), ..
                },
            ) => {
                // moments-derived fields are exact; quartiles within KLL error
                assert_eq!(a.count, e.count);
                assert_eq!(a.min, e.min);
                assert_eq!(a.max, e.max);
                assert!((a.mean - e.mean).abs() < 1e-9);
                assert!((a.median - e.median).abs() < 0.05 * (e.max - e.min));
            }
            _ => panic!("wrong kinds"),
        }
        match (&approx.columns[2], &exact.columns[2]) {
            (
                ColumnProfile::Categorical {
                    cardinality: ac,
                    total: at,
                    top: atop,
                    normalized_entropy: ah,
                    ..
                },
                ColumnProfile::Categorical {
                    cardinality: ec,
                    total: et,
                    top: etop,
                    normalized_entropy: eh,
                    ..
                },
            ) => {
                assert_eq!(ac, ec);
                assert_eq!(at, et);
                assert_eq!(
                    atop.as_ref().map(|(l, _)| l.clone()),
                    etop.as_ref().map(|(l, _)| l.clone())
                );
                // the entropy sketch carries O(1/√k) noise — this is a
                // sanity band, not an accuracy claim (those live in the
                // sketch crate's own tests)
                assert!((ah - eh).abs() < 0.35, "entropy {ah} vs {eh}");
                assert!((0.0..=1.0).contains(ah));
            }
            _ => panic!("wrong kinds"),
        }
        // headline classes with sketch paths show up with finite scores
        assert!(!approx.headline_insights.is_empty());
        let linear = approx
            .headline_insights
            .iter()
            .find(|i| i.class_id == "linear-relationship")
            .unwrap();
        assert!(linear.score > 0.9);
    }

    #[test]
    fn serde_round_trip() {
        let t = table();
        let r = InsightRegistry::default();
        let p = profile(&t, &r).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: DatasetProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
