//! Insight queries (paper §2.1): top-k ranked instances of a class, with
//! optional fixed attributes, metric-range filters, metric selection, and
//! exclusions of already-seen tuples.

use foresight_insight::AttrTuple;
use serde::{Deserialize, Serialize};

/// A declarative query against insight space.
///
/// # Examples
/// ```
/// use foresight_engine::query::InsightQuery;
///
/// // "the 5 attribute pairs most correlated with column 3, but not the
/// //  trivially-perfect ones": fix x̄ = 3 and filter ρ ∈ [0.5, 0.8]
/// let q = InsightQuery::class("linear-relationship")
///     .top_k(5)
///     .fix_attr(3)
///     .score_range(0.5, 0.8);
/// assert_eq!(q.fixed_attrs, vec![3]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsightQuery {
    /// Which insight class to query.
    pub class_id: String,
    /// How many instances to return.
    pub top_k: usize,
    /// Attributes every returned tuple must contain (the paper's
    /// "fix x = x̄ and rank only pairs (x̄, y)").
    pub fixed_attrs: Vec<usize>,
    /// Ranking metric: `None` = the class's primary metric.
    pub metric: Option<String>,
    /// Inclusive score filter, e.g. `[0.5, 0.8]` "to filter out trivially
    /// very high correlations".
    pub score_range: Option<(f64, f64)>,
    /// Tuples to exclude (already shown / already focused).
    pub exclude: Vec<AttrTuple>,
    /// Require every returned tuple to include at least one attribute with
    /// this semantic tag (the paper's §2.1 metadata constraint: "search for
    /// attributes that represent currency or dates").
    #[serde(default)]
    pub semantic: Option<String>,
    /// Attribute-diversification strength λ ∈ [0, 1]. The paper notes that
    /// when "many attribute tuples have similarly high insight-metric
    /// scores … the particular set visualized for the user is somewhat
    /// arbitrary" (§2.1); diversification replaces plain top-k with a
    /// greedy maximal-marginal-relevance selection that penalizes attribute
    /// overlap with already-selected results. `None`/0 = plain top-k.
    #[serde(default)]
    pub diversify: Option<f64>,
}

impl InsightQuery {
    /// Starts a query for `class_id` with defaults (top 5, no filters).
    pub fn class(class_id: impl Into<String>) -> Self {
        Self {
            class_id: class_id.into(),
            top_k: 5,
            fixed_attrs: Vec::new(),
            metric: None,
            score_range: None,
            exclude: Vec::new(),
            semantic: None,
            diversify: None,
        }
    }

    /// Sets the number of instances to return.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Requires every returned tuple to contain column `attr`.
    pub fn fix_attr(mut self, attr: usize) -> Self {
        self.fixed_attrs.push(attr);
        self
    }

    /// Ranks by an alternative metric instead of the class default.
    pub fn metric(mut self, name: impl Into<String>) -> Self {
        self.metric = Some(name.into());
        self
    }

    /// Keeps only instances with score in `[lo, hi]`.
    pub fn score_range(mut self, lo: f64, hi: f64) -> Self {
        self.score_range = Some((lo, hi));
        self
    }

    /// Excludes a tuple from the results.
    pub fn exclude(mut self, attrs: AttrTuple) -> Self {
        self.exclude.push(attrs);
        self
    }

    /// Diversifies the result set with MMR strength `lambda` (0 = none).
    pub fn diversify(mut self, lambda: f64) -> Self {
        self.diversify = Some(lambda.clamp(0.0, 1.0));
        self
    }

    /// Requires at least one attribute in every returned tuple to carry the
    /// given semantic tag.
    pub fn require_semantic(mut self, tag: impl Into<String>) -> Self {
        self.semantic = Some(tag.into());
        self
    }

    /// Does `attrs` satisfy the semantic constraint against `table`?
    pub fn matches_semantic(&self, table: &foresight_data::Table, attrs: &AttrTuple) -> bool {
        match &self.semantic {
            None => true,
            Some(tag) => attrs
                .indices()
                .iter()
                .any(|&i| table.semantic(i) == Some(tag.as_str())),
        }
    }

    /// Does `attrs` satisfy the fixed-attribute constraint?
    pub fn matches_fixed(&self, attrs: &AttrTuple) -> bool {
        self.fixed_attrs.iter().all(|&f| attrs.contains(f))
    }

    /// Does `score` pass the range filter?
    pub fn matches_range(&self, score: f64) -> bool {
        match self.score_range {
            Some((lo, hi)) => score >= lo && score <= hi,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let q = InsightQuery::class("skew")
            .top_k(7)
            .fix_attr(1)
            .fix_attr(2)
            .metric("bimodality-coefficient")
            .score_range(0.1, 0.9)
            .exclude(AttrTuple::One(4));
        assert_eq!(q.top_k, 7);
        assert_eq!(q.fixed_attrs, vec![1, 2]);
        assert_eq!(q.metric.as_deref(), Some("bimodality-coefficient"));
        assert_eq!(q.score_range, Some((0.1, 0.9)));
        assert_eq!(q.exclude, vec![AttrTuple::One(4)]);
    }

    #[test]
    fn fixed_attr_matching() {
        let q = InsightQuery::class("linear-relationship").fix_attr(3);
        assert!(q.matches_fixed(&AttrTuple::Two(3, 9)));
        assert!(q.matches_fixed(&AttrTuple::Two(1, 3)));
        assert!(!q.matches_fixed(&AttrTuple::Two(1, 2)));
        let q2 = q.fix_attr(9);
        assert!(q2.matches_fixed(&AttrTuple::Two(3, 9)));
        assert!(!q2.matches_fixed(&AttrTuple::Two(3, 4)));
    }

    #[test]
    fn range_matching() {
        let q = InsightQuery::class("x").score_range(0.5, 0.8);
        assert!(q.matches_range(0.5) && q.matches_range(0.8));
        assert!(!q.matches_range(0.49) && !q.matches_range(0.81));
        assert!(InsightQuery::class("x").matches_range(f64::MAX));
    }

    #[test]
    fn semantic_matching() {
        let table = foresight_data::TableBuilder::new("t")
            .numeric("price", vec![1.0])
            .semantic("currency")
            .numeric("qty", vec![2.0])
            .build()
            .unwrap();
        let q = InsightQuery::class("linear-relationship").require_semantic("currency");
        assert!(q.matches_semantic(&table, &AttrTuple::Two(0, 1)));
        assert!(!q.matches_semantic(&table, &AttrTuple::One(1)));
        let open = InsightQuery::class("linear-relationship");
        assert!(open.matches_semantic(&table, &AttrTuple::One(1)));
    }

    #[test]
    fn serde_round_trip() {
        let q = InsightQuery::class("outliers").top_k(3).fix_attr(1);
        let json = serde_json::to_string(&q).unwrap();
        assert_eq!(serde_json::from_str::<InsightQuery>(&json).unwrap(), q);
    }
}
