//! Continuous self-monitoring over the point-in-time telemetry layer.
//!
//! [`telemetry`](crate::telemetry) answers "what is happening right now";
//! this module grows the time axis and the judgment on top of it:
//!
//! * a background **sampler** thread captures [`MetricsSnapshot`] deltas at
//!   a configurable cadence into a fixed-capacity ring of timestamped
//!   [`MonitorSample`]s — request/shed/query *rates*, windowed cache hit
//!   ratio, per-stage p50/p99 from histogram-bucket deltas, and stream
//!   rows-behind. Sampling reads the same relaxed atomics a snapshot does,
//!   so the hot path is never perturbed;
//! * a **watchdog** evaluates threshold rules against each sample with
//!   hysteresis (fire above the bound, resolve only below
//!   `bound × resolve_fraction`) and appends typed [`AlertEvent`]s to a
//!   bounded log;
//! * a [`HealthState`] — `Healthy` / `Degraded(reasons)` /
//!   `Unready(reasons)` — derived from typed, configurable
//!   [`HealthPolicy`] conditions, for load-balancer gating (`/healthz`).
//!
//! A counter **discontinuity** (a wire `ResetMetrics`, or any counter
//! shrinking under a still-advancing `sample_seq`) is detected and marked
//! on the next sample instead of producing negative rates.
//!
//! The `FORESIGHT_DISABLE_MONITOR=1` environment kill-switch (mirroring
//! `FORESIGHT_DISABLE_LSH`) forces the disabled mode: no thread, an empty
//! ring, and health computed on demand from the instantaneous conditions.

use crate::core::EngineCore;
use crate::stream::PublishedCore;
use crate::telemetry::{quantile_from_buckets, HistogramBucket, MetricsSnapshot, StageSnapshot};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the monitor watches: a fixed core, or a stream's published slot so
/// the sampler always reads the *latest* snapshot after republishes. (The
/// metrics registry and score cache are shared across republishes either
/// way; the slot matters for `rows_behind`, which is per-snapshot.)
#[derive(Clone)]
pub enum MonitorTarget {
    /// A single immutable snapshot (batch-built core).
    Static(Arc<EngineCore>),
    /// A stream's published slot — follows republishes.
    Stream(Arc<PublishedCore>),
}

impl MonitorTarget {
    /// The snapshot to sample right now.
    pub fn latest(&self) -> Arc<EngineCore> {
        match self {
            MonitorTarget::Static(core) => Arc::clone(core),
            MonitorTarget::Stream(published) => published.latest(),
        }
    }
}

/// Thresholds for health judgment and the watchdog rules. A bound of 0
/// (or 0.0) disables its condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthPolicy {
    /// Degraded when the published snapshot trails the ingest head by more
    /// than this many rows.
    pub max_rows_behind: u64,
    /// Degraded when requests are load-shed faster than this rate (per
    /// second, over the sampling window).
    pub max_shed_per_sec: f64,
    /// Degraded when the windowed cache hit rate falls below this floor
    /// (0.0 disables — cold caches are not an incident by default).
    pub min_hit_rate: f64,
    /// Hysteresis: a fired alert resolves only once the value drops below
    /// `bound × resolve_fraction` (for the inverted hit-rate rule: rises
    /// above `floor / resolve_fraction`, capped at 1.0).
    pub resolve_fraction: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            max_rows_behind: 50_000,
            max_shed_per_sec: 10.0,
            min_hit_rate: 0.0,
            resolve_fraction: 0.5,
        }
    }
}

/// Sampler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Time between samples, milliseconds.
    pub cadence_ms: u64,
    /// Ring capacity in samples (default 600 — ten minutes at 1 s).
    pub capacity: usize,
    /// Retained alert events (fired + resolved).
    pub alert_capacity: usize,
    /// Health thresholds and watchdog bounds.
    pub policy: HealthPolicy,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            cadence_ms: 1_000,
            capacity: 600,
            alert_capacity: 256,
            policy: HealthPolicy::default(),
        }
    }
}

/// A typed reason a replica is not plainly healthy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HealthReason {
    /// The monitor has not completed its first sample yet.
    NotYetSampled,
    /// The core has no sketch catalog — preprocessing has not run, so
    /// insight queries cannot be answered.
    CoreNotReady,
    /// The published snapshot trails the ingest head past the bound.
    StreamLagging {
        /// Rows the snapshot has not yet seen.
        rows_behind: u64,
        /// The configured bound.
        bound: u64,
    },
    /// Worker queues are saturated: requests are being shed faster than
    /// the bound.
    ShedStorm {
        /// Sheds per second over the sampling window.
        per_sec: f64,
        /// The configured bound.
        bound: f64,
    },
    /// The windowed cache hit rate fell below the configured floor.
    LowCacheHitRate {
        /// Observed hit rate.
        hit_rate: f64,
        /// The configured floor.
        floor: f64,
    },
}

impl HealthReason {
    /// A one-line human rendering.
    pub fn describe(&self) -> String {
        match self {
            HealthReason::NotYetSampled => "monitor has not sampled yet".to_owned(),
            HealthReason::CoreNotReady => "core not preprocessed (no sketch catalog)".to_owned(),
            HealthReason::StreamLagging { rows_behind, bound } => {
                format!("stream lagging: {rows_behind} rows behind (bound {bound})")
            }
            HealthReason::ShedStorm { per_sec, bound } => {
                format!("shed storm: {per_sec:.1} sheds/s (bound {bound:.1})")
            }
            HealthReason::LowCacheHitRate { hit_rate, floor } => {
                format!("low cache hit rate: {hit_rate:.2} (floor {floor:.2})")
            }
        }
    }
}

/// The replica's overall health, for load-balancer gating: `Unready` means
/// "take me out of rotation", `Degraded` means "serving, but watch me".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HealthState {
    /// Everything within bounds.
    Healthy,
    /// Serving, but at least one condition is over its bound.
    Degraded(Vec<HealthReason>),
    /// Not fit to take traffic.
    Unready(Vec<HealthReason>),
}

impl HealthState {
    /// The stable lowercase name (`healthy` / `degraded` / `unready`).
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded(_) => "degraded",
            HealthState::Unready(_) => "unready",
        }
    }

    /// The attached reasons (empty for `Healthy`).
    pub fn reasons(&self) -> &[HealthReason] {
        match self {
            HealthState::Healthy => &[],
            HealthState::Degraded(r) | HealthState::Unready(r) => r,
        }
    }

    /// Whether a load balancer should route traffic here (healthy or
    /// degraded — a degraded replica still serves).
    pub fn is_ready(&self) -> bool {
        !matches!(self, HealthState::Unready(_))
    }
}

/// Which watchdog rule an [`AlertEvent`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertKind {
    /// Load-shed rate over `max_shed_per_sec`.
    ShedStorm,
    /// Rows-behind over `max_rows_behind`.
    StreamLag,
    /// Cache hit rate under `min_hit_rate`.
    LowCacheHitRate,
}

impl AlertKind {
    /// The stable snake-case name.
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::ShedStorm => "shed_storm",
            AlertKind::StreamLag => "stream_lag",
            AlertKind::LowCacheHitRate => "low_cache_hit_rate",
        }
    }
}

/// One watchdog transition: a rule firing (value crossed its bound) or
/// resolving (value fell back through the hysteresis band).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// The monitor sample that triggered the transition.
    pub seq: u64,
    /// Registry uptime at the transition, seconds.
    pub uptime_secs: f64,
    /// Which rule.
    pub kind: AlertKind,
    /// `true` = fired, `false` = resolved.
    pub fired: bool,
    /// The offending (or recovered) value.
    pub value: f64,
    /// The rule's configured bound.
    pub bound: f64,
}

/// One stage's latency summary over a single sampling window, estimated
/// from the histogram-bucket deltas between consecutive snapshots. Only
/// stages with samples in the window appear.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageWindow {
    /// The stage's stable name.
    pub stage: String,
    /// Samples recorded in the window.
    pub count: u64,
    /// Windowed median estimate, ns.
    pub p50_ns: u64,
    /// Windowed 99th-percentile estimate, ns.
    pub p99_ns: u64,
}

/// One entry in the monitor ring: derived series over the interval since
/// the previous sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorSample {
    /// The underlying snapshot's monotonic sequence number.
    pub seq: u64,
    /// Registry uptime at capture, seconds.
    pub uptime_secs: f64,
    /// Width of the window this sample's rates cover, seconds (0 for the
    /// first sample after a start or discontinuity).
    pub interval_secs: f64,
    /// Served requests per second over the window.
    pub request_rate: f64,
    /// Load-shed requests per second over the window.
    pub shed_rate: f64,
    /// Engine queries per second over the window.
    pub query_rate: f64,
    /// Cache hit rate over the window's lookups (cumulative rate when the
    /// window had none).
    pub cache_hit_rate: f64,
    /// Rows the sampled snapshot trails the ingest head by.
    pub rows_behind: u64,
    /// Cumulative served requests at capture.
    pub requests_total: u64,
    /// Cumulative load-shed requests at capture.
    pub load_shed_total: u64,
    /// Cumulative engine queries at capture.
    pub queries_total: u64,
    /// Per-stage windowed latency, non-empty stages only.
    pub stages: Vec<StageWindow>,
    /// `true` when rates are undefined for this window (first sample,
    /// counter reset, or an explicit [`Monitor::mark_discontinuity`]) and
    /// were reported as 0.
    pub discontinuity: bool,
}

/// What the previous tick saw — the minuend state rates are computed from.
struct PrevState {
    uptime_secs: f64,
    requests: u64,
    load_shed: u64,
    queries: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// Raw cumulative bucket counts per stage, `(floor_ns, count)`.
    stage_buckets: Vec<Vec<(u64, u64)>>,
}

/// Per-rule watchdog latch.
#[derive(Default)]
struct WatchdogState {
    shed_fired: bool,
    lag_fired: bool,
    hit_fired: bool,
}

struct MonitorShared {
    target: MonitorTarget,
    config: MonitorConfig,
    ring: Mutex<VecDeque<MonitorSample>>,
    alerts: Mutex<VecDeque<AlertEvent>>,
    health: RwLock<HealthState>,
    discontinuity: AtomicBool,
    stop: AtomicBool,
}

/// The background monitor: sampler thread + ring + watchdog + health.
/// Dropping it stops the thread.
pub struct Monitor {
    shared: Arc<MonitorShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Monitor {
    /// Starts the sampler thread over `target`. Honors the
    /// `FORESIGHT_DISABLE_MONITOR=1` kill-switch by returning a disabled
    /// monitor instead (no thread; health is computed on demand).
    pub fn spawn(target: MonitorTarget, config: MonitorConfig) -> Self {
        if std::env::var("FORESIGHT_DISABLE_MONITOR").is_ok_and(|v| v == "1") {
            return Self::disabled(target, config);
        }
        let shared = Arc::new(MonitorShared {
            target,
            config,
            ring: Mutex::new(VecDeque::new()),
            alerts: Mutex::new(VecDeque::new()),
            health: RwLock::new(HealthState::Unready(vec![HealthReason::NotYetSampled])),
            discontinuity: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });
        let worker = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("foresight-monitor".into())
            .spawn(move || sampler_loop(&worker))
            .expect("spawn monitor thread");
        Self {
            shared,
            thread: Some(thread),
        }
    }

    /// A monitor with no sampler thread: the ring and alert log stay
    /// empty, and [`Monitor::health`] falls back to the instantaneous
    /// conditions on every call.
    pub fn disabled(target: MonitorTarget, config: MonitorConfig) -> Self {
        let shared = Arc::new(MonitorShared {
            target,
            config,
            ring: Mutex::new(VecDeque::new()),
            alerts: Mutex::new(VecDeque::new()),
            health: RwLock::new(HealthState::Unready(vec![HealthReason::NotYetSampled])),
            discontinuity: AtomicBool::new(false),
            stop: AtomicBool::new(true),
        });
        Self {
            shared,
            thread: None,
        }
    }

    /// Whether a sampler thread is live.
    pub fn is_running(&self) -> bool {
        self.thread.is_some()
    }

    /// The sampler configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.shared.config
    }

    /// The most recent `n` samples, oldest first (all retained samples
    /// when `n` is 0 or past the ring size).
    pub fn history(&self, n: usize) -> Vec<MonitorSample> {
        let ring = self.shared.ring.lock();
        let take = if n == 0 {
            ring.len()
        } else {
            n.min(ring.len())
        };
        ring.iter().skip(ring.len() - take).cloned().collect()
    }

    /// The newest sample, if any.
    pub fn latest_sample(&self) -> Option<MonitorSample> {
        self.shared.ring.lock().back().cloned()
    }

    /// Every retained alert transition, oldest first.
    pub fn alerts(&self) -> Vec<AlertEvent> {
        self.shared.alerts.lock().iter().cloned().collect()
    }

    /// The current health. With a live sampler this is the last tick's
    /// verdict (a cheap lock read — answerable even when every worker is
    /// wedged); disabled monitors compute the instantaneous conditions.
    pub fn health(&self) -> HealthState {
        if self.thread.is_none() {
            return self
                .shared
                .target
                .latest()
                .health(&self.shared.config.policy);
        }
        self.shared.health.read().clone()
    }

    /// Marks the next sample as a discontinuity so rates are not computed
    /// across a counter reset. Call together with
    /// [`Metrics::reset`](crate::telemetry::Metrics::reset).
    pub fn mark_discontinuity(&self) {
        self.shared.discontinuity.store(true, Ordering::Relaxed);
    }

    /// Stops the sampler thread (idempotent; also runs on drop).
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            thread.thread().unpark();
            let _ = thread.join();
        }
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.stop();
    }
}

fn sampler_loop(shared: &MonitorShared) {
    let cadence = Duration::from_millis(shared.config.cadence_ms.max(1));
    let mut prev: Option<PrevState> = None;
    let mut watchdog = WatchdogState::default();
    while !shared.stop.load(Ordering::Relaxed) {
        tick(shared, &mut prev, &mut watchdog);
        std::thread::park_timeout(cadence);
    }
}

/// Raw cumulative `(floor_ns, count)` pairs for every stage cell, in
/// snapshot order.
fn raw_buckets(stages: &[StageSnapshot]) -> Vec<Vec<(u64, u64)>> {
    stages
        .iter()
        .map(|s| s.buckets.iter().map(|b| (b.floor_ns, b.count)).collect())
        .collect()
}

/// The positive per-bucket deltas `now − prev` for one stage, as synthetic
/// histogram buckets (a reset shows up as a shrink and yields nothing —
/// the caller marks the discontinuity from the top-level counters).
fn bucket_deltas(now: &[(u64, u64)], prev: &[(u64, u64)]) -> Vec<HistogramBucket> {
    now.iter()
        .map(|&(floor_ns, count)| {
            let before = prev
                .iter()
                .find(|&&(f, _)| f == floor_ns)
                .map_or(0, |&(_, c)| c);
            HistogramBucket {
                floor_ns,
                count: count.saturating_sub(before),
            }
        })
        .filter(|b| b.count > 0)
        .collect()
}

/// One sampler tick: snapshot, delta, ring push, watchdog, health.
fn tick(shared: &MonitorShared, prev: &mut Option<PrevState>, watchdog: &mut WatchdogState) {
    let core = shared.target.latest();
    let snap = core.metrics_snapshot();
    let rows_behind = core.rows_behind();
    let sample = derive_sample(
        &snap,
        rows_behind,
        prev,
        shared.discontinuity.swap(false, Ordering::Relaxed),
    );

    let policy = &shared.config.policy;
    let mut reasons: Vec<HealthReason> = Vec::new();
    let mut events: Vec<AlertEvent> = Vec::new();
    // watchdog rules, each with fire/resolve hysteresis
    let shed_active = evaluate_rule(
        &mut watchdog.shed_fired,
        sample.shed_rate,
        policy.max_shed_per_sec,
        policy.resolve_fraction,
        false,
        AlertKind::ShedStorm,
        &sample,
        &mut events,
    );
    if shed_active {
        reasons.push(HealthReason::ShedStorm {
            per_sec: sample.shed_rate,
            bound: policy.max_shed_per_sec,
        });
    }
    let lag_active = evaluate_rule(
        &mut watchdog.lag_fired,
        sample.rows_behind as f64,
        policy.max_rows_behind as f64,
        policy.resolve_fraction,
        false,
        AlertKind::StreamLag,
        &sample,
        &mut events,
    );
    if lag_active {
        reasons.push(HealthReason::StreamLagging {
            rows_behind: sample.rows_behind,
            bound: policy.max_rows_behind,
        });
    }
    let hit_active = evaluate_rule(
        &mut watchdog.hit_fired,
        sample.cache_hit_rate,
        policy.min_hit_rate,
        policy.resolve_fraction,
        true,
        AlertKind::LowCacheHitRate,
        &sample,
        &mut events,
    );
    if hit_active {
        reasons.push(HealthReason::LowCacheHitRate {
            hit_rate: sample.cache_hit_rate,
            floor: policy.min_hit_rate,
        });
    }

    let health = if core.catalog().is_none() {
        HealthState::Unready(vec![HealthReason::CoreNotReady])
    } else if reasons.is_empty() {
        HealthState::Healthy
    } else {
        HealthState::Degraded(reasons)
    };

    *prev = Some(PrevState {
        uptime_secs: snap.uptime_secs,
        requests: snap.serve.requests,
        load_shed: snap.serve.load_shed,
        queries: snap.queries.total,
        cache_hits: snap.cache.as_ref().map_or(0, |c| c.hits),
        cache_misses: snap.cache.as_ref().map_or(0, |c| c.misses),
        stage_buckets: raw_buckets(&snap.stages),
    });

    {
        let mut ring = shared.ring.lock();
        ring.push_back(sample);
        while ring.len() > shared.config.capacity.max(1) {
            ring.pop_front();
        }
    }
    if !events.is_empty() {
        let mut alerts = shared.alerts.lock();
        for event in events {
            alerts.push_back(event);
        }
        while alerts.len() > shared.config.alert_capacity.max(1) {
            alerts.pop_front();
        }
    }
    *shared.health.write() = health;
}

/// Builds the derived sample for one window. `forced_discontinuity` comes
/// from [`Monitor::mark_discontinuity`]; counter shrinks (a reset racing
/// the flag) force it too.
fn derive_sample(
    snap: &MetricsSnapshot,
    rows_behind: u64,
    prev: &Option<PrevState>,
    forced_discontinuity: bool,
) -> MonitorSample {
    let hits = snap.cache.as_ref().map_or(0, |c| c.hits);
    let misses = snap.cache.as_ref().map_or(0, |c| c.misses);
    let cumulative_hit_rate = snap.cache.as_ref().map_or(0.0, |c| c.hit_rate);
    let (discontinuity, interval_secs) = match prev {
        None => (true, 0.0),
        Some(p) => {
            let shrank = snap.serve.requests < p.requests
                || snap.serve.load_shed < p.load_shed
                || snap.queries.total < p.queries
                || hits < p.cache_hits;
            (
                forced_discontinuity || shrank,
                (snap.uptime_secs - p.uptime_secs).max(0.0),
            )
        }
    };
    let mut sample = MonitorSample {
        seq: snap.sample_seq,
        uptime_secs: snap.uptime_secs,
        interval_secs: if discontinuity { 0.0 } else { interval_secs },
        request_rate: 0.0,
        shed_rate: 0.0,
        query_rate: 0.0,
        cache_hit_rate: cumulative_hit_rate,
        rows_behind,
        requests_total: snap.serve.requests,
        load_shed_total: snap.serve.load_shed,
        queries_total: snap.queries.total,
        stages: Vec::new(),
        discontinuity,
    };
    if discontinuity {
        return sample;
    }
    let p = prev.as_ref().expect("non-discontinuity implies prev");
    if interval_secs > 0.0 {
        sample.request_rate = (snap.serve.requests - p.requests) as f64 / interval_secs;
        sample.shed_rate = (snap.serve.load_shed - p.load_shed) as f64 / interval_secs;
        sample.query_rate = (snap.queries.total - p.queries) as f64 / interval_secs;
    }
    let window_lookups = (hits - p.cache_hits) + (misses - p.cache_misses);
    if window_lookups > 0 {
        sample.cache_hit_rate = (hits - p.cache_hits) as f64 / window_lookups as f64;
    }
    for (i, stage) in snap.stages.iter().enumerate() {
        let empty = Vec::new();
        let before = p.stage_buckets.get(i).unwrap_or(&empty);
        let now: Vec<(u64, u64)> = stage
            .buckets
            .iter()
            .map(|b| (b.floor_ns, b.count))
            .collect();
        let deltas = bucket_deltas(&now, before);
        let count: u64 = deltas.iter().map(|b| b.count).sum();
        if count > 0 {
            sample.stages.push(StageWindow {
                stage: stage.stage.clone(),
                count,
                p50_ns: quantile_from_buckets(&deltas, count, 0.50),
                p99_ns: quantile_from_buckets(&deltas, count, 0.99),
            });
        }
    }
    sample
}

/// One hysteresis rule evaluation. Returns whether the rule is active
/// after this sample, pushing a fired/resolved [`AlertEvent`] on each
/// transition. `inverted` flips the comparison for floor-type rules (fire
/// *below* the bound). A bound of 0 (or 0.0) disables the rule entirely.
#[allow(clippy::too_many_arguments)]
fn evaluate_rule(
    fired: &mut bool,
    value: f64,
    bound: f64,
    resolve_fraction: f64,
    inverted: bool,
    kind: AlertKind,
    sample: &MonitorSample,
    events: &mut Vec<AlertEvent>,
) -> bool {
    if bound <= 0.0 {
        *fired = false;
        return false;
    }
    let fraction = resolve_fraction.clamp(0.0, 1.0);
    let (trip, clear) = if inverted {
        let resolve_at = if fraction > 0.0 {
            (bound / fraction).min(1.0)
        } else {
            bound
        };
        (value < bound, value >= resolve_at)
    } else {
        (value > bound, value <= bound * fraction)
    };
    // rates are undefined across a discontinuity — hold the latch steady
    if sample.discontinuity {
        return *fired;
    }
    if !*fired && trip {
        *fired = true;
        events.push(AlertEvent {
            seq: sample.seq,
            uptime_secs: sample.uptime_secs,
            kind,
            fired: true,
            value,
            bound,
        });
    } else if *fired && clear {
        *fired = false;
        events.push(AlertEvent {
            seq: sample.seq,
            uptime_secs: sample.uptime_secs,
            kind,
            fired: false,
            value,
            bound,
        });
    }
    *fired
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Metrics;
    use crate::CoreBuilder;
    use foresight_data::{TableBuilder, TableSource};

    fn tiny_core() -> Arc<EngineCore> {
        let table = TableBuilder::new("tiny")
            .numeric("x", (0..64).map(|i| i as f64).collect())
            .numeric("y", (0..64).map(|i| (i * 2) as f64).collect())
            .build()
            .expect("table");
        let mut builder = CoreBuilder::new(TableSource::materialized(table));
        builder
            .preprocess(&foresight_sketch::CatalogConfig::default())
            .expect("preprocess");
        builder.freeze()
    }

    fn sample_with(shed_rate: f64, discontinuity: bool) -> MonitorSample {
        MonitorSample {
            seq: 1,
            uptime_secs: 1.0,
            interval_secs: 1.0,
            request_rate: 0.0,
            shed_rate,
            query_rate: 0.0,
            cache_hit_rate: 1.0,
            rows_behind: 0,
            requests_total: 0,
            load_shed_total: 0,
            queries_total: 0,
            stages: Vec::new(),
            discontinuity,
        }
    }

    #[test]
    fn watchdog_fires_and_resolves_with_hysteresis() {
        let mut fired = false;
        let mut events = Vec::new();
        // under the bound: nothing
        let active = evaluate_rule(
            &mut fired,
            5.0,
            10.0,
            0.5,
            false,
            AlertKind::ShedStorm,
            &sample_with(5.0, false),
            &mut events,
        );
        assert!(!active && events.is_empty());
        // over the bound: fires once
        for _ in 0..2 {
            evaluate_rule(
                &mut fired,
                20.0,
                10.0,
                0.5,
                false,
                AlertKind::ShedStorm,
                &sample_with(20.0, false),
                &mut events,
            );
        }
        assert_eq!(events.len(), 1);
        assert!(events[0].fired);
        // inside the hysteresis band (10·0.5 < 8 ≤ 10): still active
        let active = evaluate_rule(
            &mut fired,
            8.0,
            10.0,
            0.5,
            false,
            AlertKind::ShedStorm,
            &sample_with(8.0, false),
            &mut events,
        );
        assert!(active && events.len() == 1);
        // below bound × fraction: resolves
        let active = evaluate_rule(
            &mut fired,
            2.0,
            10.0,
            0.5,
            false,
            AlertKind::ShedStorm,
            &sample_with(2.0, false),
            &mut events,
        );
        assert!(!active);
        assert_eq!(events.len(), 2);
        assert!(!events[1].fired);
        assert_eq!(events[1].kind, AlertKind::ShedStorm);
    }

    #[test]
    fn watchdog_holds_steady_across_discontinuities() {
        let mut fired = true;
        let mut events = Vec::new();
        let active = evaluate_rule(
            &mut fired,
            0.0,
            10.0,
            0.5,
            false,
            AlertKind::ShedStorm,
            &sample_with(0.0, true),
            &mut events,
        );
        assert!(active, "a reset window neither fires nor resolves");
        assert!(events.is_empty());
    }

    #[test]
    fn zero_bound_disables_a_rule() {
        let mut fired = true;
        let mut events = Vec::new();
        let active = evaluate_rule(
            &mut fired,
            1e9,
            0.0,
            0.5,
            false,
            AlertKind::StreamLag,
            &sample_with(0.0, false),
            &mut events,
        );
        assert!(!active && events.is_empty());
    }

    #[test]
    fn derive_sample_rates_counter_deltas() {
        let m = Metrics::new();
        for _ in 0..10 {
            m.record_request(crate::telemetry::Endpoint::Query, 1_000);
        }
        let mut snap_a = m.snapshot();
        snap_a.uptime_secs = 10.0;
        let prev = Some(PrevState {
            uptime_secs: snap_a.uptime_secs,
            requests: snap_a.serve.requests,
            load_shed: snap_a.serve.load_shed,
            queries: snap_a.queries.total,
            cache_hits: 0,
            cache_misses: 0,
            stage_buckets: raw_buckets(&snap_a.stages),
        });
        for _ in 0..30 {
            m.record_request(crate::telemetry::Endpoint::Query, 1_000);
        }
        m.record_load_shed();
        let mut snap_b = m.snapshot();
        snap_b.uptime_secs = 12.0; // a 2-second window
        let sample = derive_sample(&snap_b, 7, &prev, false);
        assert!(!sample.discontinuity);
        assert_eq!(sample.interval_secs, 2.0);
        assert_eq!(sample.request_rate, 15.0);
        assert_eq!(sample.shed_rate, 0.5);
        assert_eq!(sample.rows_behind, 7);
        assert_eq!(sample.requests_total, 40);
    }

    #[test]
    fn derive_sample_marks_resets_instead_of_negative_rates() {
        let m = Metrics::new();
        for _ in 0..5 {
            m.record_request(crate::telemetry::Endpoint::Query, 1_000);
        }
        let snap_a = m.snapshot();
        let prev = Some(PrevState {
            uptime_secs: snap_a.uptime_secs,
            requests: snap_a.serve.requests,
            load_shed: snap_a.serve.load_shed,
            queries: snap_a.queries.total,
            cache_hits: 0,
            cache_misses: 0,
            stage_buckets: raw_buckets(&snap_a.stages),
        });
        m.reset();
        m.record_request(crate::telemetry::Endpoint::Query, 1_000);
        let snap_b = m.snapshot();
        assert!(snap_b.sample_seq > snap_a.sample_seq, "seq survives reset");
        let sample = derive_sample(&snap_b, 0, &prev, false);
        assert!(sample.discontinuity, "counter shrink is a discontinuity");
        assert_eq!(sample.request_rate, 0.0);
        assert_eq!(sample.shed_rate, 0.0);
    }

    #[test]
    fn stage_windows_come_from_bucket_deltas() {
        let m = Metrics::new();
        m.record_ns(crate::telemetry::Stage::Score, 1_000);
        let snap_a = m.snapshot();
        let prev = Some(PrevState {
            uptime_secs: 0.0,
            requests: 0,
            load_shed: 0,
            queries: 0,
            cache_hits: 0,
            cache_misses: 0,
            stage_buckets: raw_buckets(&snap_a.stages),
        });
        for _ in 0..8 {
            m.record_ns(crate::telemetry::Stage::Score, 100_000);
        }
        let mut snap_b = m.snapshot();
        snap_b.uptime_secs = 1.0;
        let sample = derive_sample(&snap_b, 0, &prev, false);
        if cfg!(feature = "telemetry") {
            let score = sample
                .stages
                .iter()
                .find(|s| s.stage == "score")
                .expect("score stage sampled");
            // only the 8 new 100 µs samples are in the window — the old
            // 1 µs sample must not drag the windowed median down
            assert_eq!(score.count, 8);
            assert!(score.p50_ns > 10_000);
        } else {
            assert!(sample.stages.is_empty());
        }
    }

    #[test]
    fn monitor_over_a_static_core_reaches_healthy() {
        let core = tiny_core();
        let mut monitor = Monitor::spawn(
            MonitorTarget::Static(core),
            MonitorConfig {
                cadence_ms: 5,
                ..MonitorConfig::default()
            },
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if monitor.health() == HealthState::Healthy {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "monitor never became healthy: {:?}",
                monitor.health()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        while monitor.latest_sample().is_none() {
            std::thread::sleep(Duration::from_millis(5));
        }
        let history = monitor.history(0);
        assert!(!history.is_empty());
        assert!(history[0].discontinuity, "first sample is a discontinuity");
        monitor.stop();
        let frozen = monitor.history(0).len();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(monitor.history(0).len(), frozen, "stop() halts sampling");
    }

    #[test]
    fn ring_capacity_is_bounded() {
        let core = tiny_core();
        let mut monitor = Monitor::spawn(
            MonitorTarget::Static(core),
            MonitorConfig {
                cadence_ms: 1,
                capacity: 4,
                ..MonitorConfig::default()
            },
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while monitor.history(0).len() < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(20));
        let history = monitor.history(0);
        assert!(history.len() <= 4, "ring exceeded capacity");
        assert_eq!(history.len(), 4);
        // seqs strictly increase through the ring
        for pair in history.windows(2) {
            assert!(pair[1].seq > pair[0].seq);
        }
        monitor.stop();
    }

    #[test]
    fn disabled_monitor_answers_health_on_demand() {
        let core = tiny_core();
        let monitor = Monitor::disabled(MonitorTarget::Static(core), MonitorConfig::default());
        assert!(!monitor.is_running());
        assert_eq!(monitor.health(), HealthState::Healthy);
        assert!(monitor.history(0).is_empty());
        assert!(monitor.alerts().is_empty());
    }

    #[test]
    fn mark_discontinuity_zeroes_the_next_window() {
        let core = tiny_core();
        let mut monitor = Monitor::spawn(
            MonitorTarget::Static(Arc::clone(&core)),
            MonitorConfig {
                cadence_ms: 5,
                ..MonitorConfig::default()
            },
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while monitor.history(0).len() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        core.metrics().reset();
        monitor.mark_discontinuity();
        let before = monitor.history(0).len();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while monitor.history(0).len() < before + 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let history = monitor.history(0);
        assert!(
            history.iter().skip(1).any(|s| s.discontinuity),
            "the marked window must be flagged"
        );
        assert!(
            history
                .iter()
                .all(|s| s.request_rate >= 0.0 && s.shed_rate >= 0.0 && s.query_rate >= 0.0),
            "no negative rates across the reset"
        );
        monitor.stop();
    }

    #[test]
    fn health_json_round_trips() {
        let state = HealthState::Degraded(vec![
            HealthReason::ShedStorm {
                per_sec: 42.5,
                bound: 10.0,
            },
            HealthReason::StreamLagging {
                rows_behind: 99_000,
                bound: 50_000,
            },
        ]);
        let json = serde_json::to_string(&state).unwrap();
        let back: HealthState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        assert_eq!(state.name(), "degraded");
        assert!(state.is_ready());
        assert_eq!(state.reasons().len(), 2);
        assert!(state.reasons()[0].describe().contains("shed storm"));
        let unready = HealthState::Unready(vec![HealthReason::NotYetSampled]);
        assert!(!unready.is_ready());
    }
}
