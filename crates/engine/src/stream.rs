//! Streaming ingest: a writer thread over the [`CoreBuilder`] that absorbs
//! row batches continuously and republishes immutable [`EngineCore`]
//! snapshots at a bounded cadence.
//!
//! The paper's serving story is a frozen preprocessing triad (sketches,
//! samples, indexes) answering interactive queries. This module keeps that
//! story under *live* data: readers always hold a consistent published
//! snapshot while the single writer stages appends on the side, and a
//! [`RepublishPolicy`] bounds how much staged data (rows, bytes, or wall
//! time) may accumulate before the writer freezes and swaps in a new
//! snapshot. Each freeze is *incremental* — per-shard sketches are merged
//! (never rebuilt), the insight index rescores only tuples touching dirty
//! columns, and clean score-cache entries migrate into the new epoch (see
//! [`CoreBuilder::append_shard`] and [`CoreBuilder::freeze`]).
//!
//! Optionally the writer also maintains a [`WindowedCatalog`] over the
//! tail of the stream and publishes a second, sketch-only snapshot per
//! republish — "insights over the last N rows" without retaining N raw
//! rows anywhere.
//!
//! ```
//! use foresight_engine::{CoreBuilder, InsightQuery, StreamConfig, StreamWriter};
//! use foresight_data::{datasets, TableSource};
//!
//! let seed = datasets::oecd();
//! let core = CoreBuilder::new(TableSource::materialized(seed.clone())).freeze();
//! let writer = StreamWriter::spawn(core, StreamConfig::default());
//! writer.send(seed).unwrap();
//! writer.flush().unwrap();
//! let snapshot = writer.published().latest();
//! snapshot.run_query(&InsightQuery::class("skew").top_k(2)).unwrap();
//! writer.finish().unwrap();
//! ```

use crate::core::{CoreBuilder, EngineCore};
use crate::error::{EngineError, Result};
use foresight_data::{Table, TableSource};
use foresight_sketch::{CatalogConfig, WindowedCatalog};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How much staged (appended but not yet republished) data the writer may
/// accumulate before it must freeze and publish a new snapshot. Whichever
/// bound trips first wins; the interval clock starts at the first staged
/// batch after a publish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepublishPolicy {
    /// Republish once this many rows are staged.
    pub max_rows: u64,
    /// Republish once roughly this many bytes of row data are staged.
    pub max_bytes: u64,
    /// Republish once staged data has waited this long.
    pub max_interval: Duration,
}

impl Default for RepublishPolicy {
    fn default() -> Self {
        Self {
            max_rows: 10_000,
            max_bytes: 8 << 20,
            max_interval: Duration::from_millis(200),
        }
    }
}

/// Configuration for [`StreamWriter::spawn`].
#[derive(Debug, Clone, Default)]
pub struct StreamConfig {
    /// The republish cadence bounds.
    pub policy: RepublishPolicy,
    /// Maintain a windowed catalog over the last `window_rows` ingested
    /// rows and publish a sketch-only tail snapshot alongside the full one.
    pub window_rows: Option<usize>,
    /// Sketch configuration for the windowed catalog (the live core's
    /// catalog config when `None`).
    pub window_config: Option<CatalogConfig>,
    /// Queue depth, in batches, before [`StreamWriter::send`] blocks
    /// (backpressure). 0 means the default of 64.
    pub queue_depth: usize,
}

/// The single-writer/many-reader publication point: readers grab the
/// latest `Arc<EngineCore>` with one `RwLock` read, the stream writer
/// swaps in new snapshots as it republishes. Snapshots already handed out
/// stay fully consistent — a swap never mutates them.
pub struct PublishedCore {
    slot: RwLock<Arc<EngineCore>>,
    /// Bumped on every publish; lets sessions detect "something newer
    /// exists" without comparing `Arc` pointers.
    version: AtomicU64,
    /// Rows accepted into the stream (queued + staged + published) — what
    /// snapshot staleness is measured against.
    head_rows: Arc<AtomicU64>,
}

impl PublishedCore {
    fn new(core: Arc<EngineCore>, head_rows: Arc<AtomicU64>) -> Self {
        Self {
            slot: RwLock::new(core),
            version: AtomicU64::new(0),
            head_rows,
        }
    }

    /// The latest published snapshot.
    pub fn latest(&self) -> Arc<EngineCore> {
        Arc::clone(&self.slot.read())
    }

    /// The latest snapshot together with its publish version.
    pub fn latest_versioned(&self) -> (Arc<EngineCore>, u64) {
        let slot = self.slot.read();
        (Arc::clone(&slot), self.version.load(Ordering::Acquire))
    }

    /// Monotone publish counter (0 = the seed snapshot).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Rows accepted into the stream so far.
    pub fn head_rows(&self) -> u64 {
        self.head_rows.load(Ordering::Acquire)
    }

    fn publish(&self, core: Arc<EngineCore>) {
        *self.slot.write() = core;
        self.version.fetch_add(1, Ordering::AcqRel);
    }
}

enum Msg {
    Batch(Arc<Table>),
    /// Republish staged rows now and ack when done.
    Flush(SyncSender<()>),
}

/// A streaming ingest pipeline: one background writer thread appending
/// batches to a private [`CoreBuilder`] and republishing snapshots per the
/// [`RepublishPolicy`], while any number of readers serve from
/// [`PublishedCore::latest`].
///
/// Batches are accepted by [`send`](Self::send) (blocking once the queue
/// is full — backpressure, not unbounded buffering), [`flush`](Self::flush)
/// forces a republish of whatever is staged, and [`finish`](Self::finish)
/// drains, republishes, and joins the writer. Dropping the writer without
/// `finish` also drains and publishes (errors are then lost).
pub struct StreamWriter {
    tx: Option<SyncSender<Msg>>,
    published: Arc<PublishedCore>,
    window: Option<Arc<PublishedCore>>,
    head_rows: Arc<AtomicU64>,
    thread: Option<JoinHandle<Result<()>>>,
}

impl StreamWriter {
    /// Takes over `core` as the stream's seed snapshot and starts the
    /// writer thread.
    pub fn spawn(core: Arc<EngineCore>, config: StreamConfig) -> Self {
        let head_rows = Arc::new(AtomicU64::new(core.snapshot_rows()));
        let window_catalog = config.window_rows.map(|rows| {
            let catalog_config = config.window_config.clone().unwrap_or_else(|| {
                core.catalog()
                    .map(|c| c.config().clone())
                    .unwrap_or_default()
            });
            WindowedCatalog::new(catalog_config, rows)
        });
        // re-freeze the seed so it carries the ingest head (readers of the
        // original Arc are untouched)
        let mut seed = CoreBuilder::from_arc(core);
        seed.set_ingest_head(Some(Arc::clone(&head_rows)));
        let core = seed.freeze();
        let published = Arc::new(PublishedCore::new(
            Arc::clone(&core),
            Arc::clone(&head_rows),
        ));
        let window = window_catalog.is_some().then(|| {
            Arc::new(PublishedCore::new(
                Arc::clone(&core),
                Arc::clone(&head_rows),
            ))
        });
        let depth = if config.queue_depth == 0 {
            64
        } else {
            config.queue_depth
        };
        let (tx, rx) = sync_channel(depth);
        let worker = Worker {
            rx,
            builder: Some(CoreBuilder::from_arc(core)),
            published: Arc::clone(&published),
            window_published: window.clone(),
            window: window_catalog,
            policy: config.policy,
            staged_rows: 0,
            staged_bytes: 0,
        };
        let thread = std::thread::Builder::new()
            .name("foresight-stream-writer".into())
            .spawn(move || worker.run())
            .expect("spawn stream writer thread");
        Self {
            tx: Some(tx),
            published,
            window,
            head_rows,
            thread: Some(thread),
        }
    }

    /// The publication point full snapshots appear at. Clone the `Arc` and
    /// hand it to as many reader threads as needed.
    pub fn published(&self) -> Arc<PublishedCore> {
        Arc::clone(&self.published)
    }

    /// The publication point for sketch-only tail-window snapshots, when
    /// [`StreamConfig::window_rows`] is set.
    pub fn window(&self) -> Option<Arc<PublishedCore>> {
        self.window.clone()
    }

    /// Rows accepted into the stream so far.
    pub fn head_rows(&self) -> u64 {
        self.head_rows.load(Ordering::Acquire)
    }

    /// Queues one row batch for ingestion. Blocks once the queue is full
    /// (backpressure). The batch counts toward the ingest head immediately;
    /// it becomes queryable at the next republish.
    ///
    /// # Errors
    /// [`EngineError::StreamClosed`] when the writer thread has exited
    /// (a prior batch failed — [`finish`](Self::finish) reports why).
    pub fn send(&self, batch: Table) -> Result<()> {
        let rows = batch.n_rows() as u64;
        let tx = self.tx.as_ref().expect("sender alive until finish/drop");
        tx.send(Msg::Batch(Arc::new(batch)))
            .map_err(|_| EngineError::StreamClosed)?;
        self.head_rows.fetch_add(rows, Ordering::AcqRel);
        Ok(())
    }

    /// Forces a republish of everything staged and blocks until the writer
    /// has processed every batch queued before this call.
    ///
    /// # Errors
    /// [`EngineError::StreamClosed`] when the writer thread has exited.
    pub fn flush(&self) -> Result<()> {
        let (ack_tx, ack_rx) = sync_channel(1);
        let tx = self.tx.as_ref().expect("sender alive until finish/drop");
        tx.send(Msg::Flush(ack_tx))
            .map_err(|_| EngineError::StreamClosed)?;
        ack_rx.recv().map_err(|_| EngineError::StreamClosed)
    }

    /// Drains the queue, republishes anything staged, joins the writer
    /// thread, and returns the final published snapshot — or the error
    /// that stopped ingestion.
    pub fn finish(mut self) -> Result<Arc<EngineCore>> {
        self.tx = None; // hang up; the writer drains and exits
        let thread = self.thread.take().expect("finish runs once");
        match thread.join() {
            Ok(Ok(())) => Ok(self.published.latest()),
            Ok(Err(e)) => Err(e),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl Drop for StreamWriter {
    fn drop(&mut self) {
        self.tx = None;
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Rough resident size of a batch, for the byte-cadence bound.
fn approx_bytes(table: &Table) -> u64 {
    let numeric = table.numeric_indices().len() as u64 * 8;
    let categorical = table.categorical_indices().len() as u64 * 4;
    table.n_rows() as u64 * (numeric + categorical)
}

struct Worker {
    rx: Receiver<Msg>,
    /// `Option` only so republish can move the builder out for `freeze`.
    builder: Option<CoreBuilder>,
    published: Arc<PublishedCore>,
    window_published: Option<Arc<PublishedCore>>,
    window: Option<WindowedCatalog>,
    policy: RepublishPolicy,
    staged_rows: u64,
    staged_bytes: u64,
}

impl Worker {
    fn run(mut self) -> Result<()> {
        // deadline is armed while data is staged: the interval bound
        let mut deadline: Option<Instant> = None;
        loop {
            let msg = match deadline {
                Some(d) => match self
                    .rx
                    .recv_timeout(d.saturating_duration_since(Instant::now()))
                {
                    Ok(msg) => msg,
                    Err(RecvTimeoutError::Timeout) => {
                        self.republish()?;
                        deadline = None;
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                },
                None => match self.rx.recv() {
                    Ok(msg) => msg,
                    Err(_) => break,
                },
            };
            match msg {
                Msg::Batch(batch) => {
                    self.ingest(batch)?;
                    if self.staged_rows >= self.policy.max_rows
                        || self.staged_bytes >= self.policy.max_bytes
                    {
                        self.republish()?;
                        deadline = None;
                    } else if deadline.is_none() && self.staged_rows > 0 {
                        deadline = Some(Instant::now() + self.policy.max_interval);
                    }
                }
                Msg::Flush(ack) => {
                    if self.staged_rows > 0 {
                        self.republish()?;
                        deadline = None;
                    }
                    let _ = ack.send(());
                }
            }
        }
        // hangup: publish whatever is still staged, then exit
        if self.staged_rows > 0 {
            self.republish()?;
        }
        Ok(())
    }

    fn ingest(&mut self, batch: Arc<Table>) -> Result<()> {
        let rows = batch.n_rows() as u64;
        let bytes = approx_bytes(&batch);
        if let Some(window) = self.window.as_mut() {
            window.push_batch(&batch);
        }
        self.builder
            .as_mut()
            .expect("builder present between publishes")
            .append_shard_arc(batch)?;
        self.staged_rows += rows;
        self.staged_bytes += bytes;
        Ok(())
    }

    fn republish(&mut self) -> Result<()> {
        let builder = self.builder.take().expect("builder present");
        let core = builder.freeze();
        self.published.publish(Arc::clone(&core));
        // the published slot keeps one Arc, so this take-over clones — but
        // shards are Arc-shared and sketches are small: O(catalog), not
        // O(rows)
        self.builder = Some(CoreBuilder::from_arc(core));
        self.staged_rows = 0;
        self.staged_bytes = 0;
        if let (Some(window), Some(slot)) = (self.window.as_ref(), self.window_published.as_ref()) {
            if window.covered_rows() > 0 {
                if let Some(catalog) = window.merged()? {
                    let source = TableSource::sketch_only(
                        format!("{}:window", self.published.latest().source().name()),
                        self.published.latest().source().schema().clone(),
                        window.covered_rows(),
                    );
                    let mut builder = CoreBuilder::new(source);
                    builder.restore_catalog(Some(catalog));
                    slot.publish(builder.freeze());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::InsightQuery;
    use foresight_data::TableBuilder;

    fn batch(offset: usize, rows: usize) -> Table {
        let x: Vec<f64> = (offset..offset + rows).map(|i| i as f64).collect();
        TableBuilder::new("stream")
            .numeric("x", x.clone())
            .numeric("y", x.iter().map(|v| 2.0 * v + 1.0).collect())
            .categorical(
                "c",
                (offset..offset + rows).map(|i| if i % 2 == 0 { "a" } else { "b" }),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn writer_republishes_and_snapshots_stay_consistent() {
        let core = CoreBuilder::new(TableSource::materialized(batch(0, 100))).freeze();
        let writer = StreamWriter::spawn(
            core,
            StreamConfig {
                policy: RepublishPolicy {
                    max_rows: 50,
                    ..RepublishPolicy::default()
                },
                ..StreamConfig::default()
            },
        );
        let published = writer.published();
        let old = published.latest();
        for i in 0..4 {
            writer.send(batch(100 + i * 50, 50)).unwrap();
        }
        writer.flush().unwrap();
        let new = published.latest();
        assert!(new.snapshot_rows() > old.snapshot_rows());
        assert_eq!(new.snapshot_rows(), 300);
        assert_eq!(new.rows_behind(), 0, "flush drains the stream");
        // the old snapshot still answers (from its own, retired keyspace)
        let q = InsightQuery::class("linear-relationship").top_k(1);
        assert_eq!(old.run_query(&q).unwrap().len(), 1);
        let last = writer.finish().unwrap();
        assert_eq!(last.snapshot_rows(), 300);
    }

    #[test]
    fn staleness_tracks_the_ingest_head() {
        let core = CoreBuilder::new(TableSource::materialized(batch(0, 100))).freeze();
        let writer = StreamWriter::spawn(
            core,
            StreamConfig {
                policy: RepublishPolicy {
                    // out of reach: nothing republishes until flush
                    max_rows: u64::MAX,
                    max_bytes: u64::MAX,
                    max_interval: Duration::from_secs(3600),
                },
                ..StreamConfig::default()
            },
        );
        let snapshot = writer.published().latest();
        writer.send(batch(100, 40)).unwrap();
        assert_eq!(writer.head_rows(), 140);
        // the seed snapshot now trails the head by the queued batch
        let stale = snapshot.staleness();
        assert_eq!(stale.snapshot_rows, 100);
        assert_eq!(stale.head_rows, 140);
        assert_eq!(stale.rows_behind, 40);
        writer.flush().unwrap();
        assert_eq!(writer.published().latest().rows_behind(), 0);
        writer.finish().unwrap();
    }

    #[test]
    fn schema_mismatch_surfaces_at_finish() {
        let core = CoreBuilder::new(TableSource::materialized(batch(0, 10))).freeze();
        let writer = StreamWriter::spawn(core, StreamConfig::default());
        let bad = TableBuilder::new("bad")
            .numeric("unrelated", vec![1.0])
            .build()
            .unwrap();
        writer.send(bad).unwrap();
        // the writer thread dies on the schema error; finish reports it
        assert!(writer.finish().is_err());
    }

    #[test]
    fn window_snapshot_covers_only_the_tail() {
        let core = CoreBuilder::new(TableSource::materialized(batch(0, 100))).freeze();
        let writer = StreamWriter::spawn(
            core,
            StreamConfig {
                policy: RepublishPolicy {
                    max_rows: 100,
                    ..RepublishPolicy::default()
                },
                window_rows: Some(200),
                ..StreamConfig::default()
            },
        );
        let window = writer.window().expect("window configured");
        for i in 0..6 {
            writer.send(batch(100 + i * 100, 100)).unwrap();
        }
        writer.flush().unwrap();
        let tail = window.latest();
        assert!(tail.source().is_sketch_only());
        assert_eq!(tail.snapshot_rows(), 200, "window covers the last 200 rows");
        // tail snapshot answers sketch-only queries
        let q = InsightQuery::class("skew").top_k(1);
        assert_eq!(tail.run_query(&q).unwrap().len(), 1);
        writer.finish().unwrap();
    }
}
