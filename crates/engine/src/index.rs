//! Insight indexes — the third leg of the paper's preprocessing triad
//! ("sketches, samples, and **indexes** that will support fast approximate
//! insight querying", §1/§3).
//!
//! An [`InsightIndex`] materializes every class's scored candidate list
//! once (using sketch scores when a catalog is available), sorted by
//! descending score. Basic insight queries then reduce to a filtered scan
//! of a precomputed list — no metric evaluation at query time at all.

use crate::query::InsightQuery;
use foresight_data::Table;
use foresight_insight::{AttrTuple, InsightInstance, InsightRegistry};
use foresight_sketch::SketchCatalog;
use std::collections::HashMap;

/// Precomputed, descending-sorted candidate scores for every class.
#[derive(Debug, Clone, Default)]
pub struct InsightIndex {
    entries: HashMap<String, Vec<(AttrTuple, f64)>>,
    /// Built against a schema-only table: no exact fallback was available
    /// at build time and `describe` cannot run at query time.
    sketch_only: bool,
}

/// What an [`InsightIndex::refresh`] did: how much of the index survived
/// untouched versus had to be rescored.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Classes with at least one rescored tuple.
    pub classes_rescored: usize,
    /// Tuples rescored because they touch a dirty column.
    pub tuples_rescored: usize,
    /// Tuples whose previous score was carried over unchanged.
    pub tuples_reused: usize,
}

impl InsightIndex {
    /// Scores every candidate of every registered class (sketch-backed
    /// when `catalog` is given, exact otherwise) and sorts each list.
    pub fn build(
        table: &Table,
        registry: &InsightRegistry,
        catalog: Option<&SketchCatalog>,
    ) -> Self {
        Self::build_inner(table, registry, catalog, false)
    }

    /// Builds the index for a sharded/sketch-only source: `table` carries
    /// only the schema, every score comes from the merged `catalog`, and
    /// classes without a sketch path index no candidates.
    pub fn build_sketch_only(
        table: &Table,
        registry: &InsightRegistry,
        catalog: &SketchCatalog,
    ) -> Self {
        Self::build_inner(table, registry, Some(catalog), true)
    }

    fn build_inner(
        table: &Table,
        registry: &InsightRegistry,
        catalog: Option<&SketchCatalog>,
        sketch_only: bool,
    ) -> Self {
        let mut entries = HashMap::with_capacity(registry.len());
        for class in registry.classes() {
            let mut scored: Vec<(AttrTuple, f64)> = class
                .candidates(table)
                .into_iter()
                .filter_map(|attrs| {
                    let sketched = catalog.and_then(|c| class.score_sketch(c, table, &attrs));
                    let score = if sketch_only {
                        sketched?
                    } else {
                        sketched.or_else(|| class.score(table, &attrs))?
                    };
                    score.is_finite().then_some((attrs, score))
                })
                .collect();
            scored.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("non-finite filtered")
                    .then_with(|| a.0.cmp(&b.0))
            });
            entries.insert(class.id().to_owned(), scored);
        }
        Self {
            entries,
            sketch_only,
        }
    }

    /// Incrementally maintains the index after an append that only touched
    /// `dirty_columns`: tuples whose attributes avoid every dirty column keep
    /// their previous score (appending rows with no present value in a column
    /// leaves that column's sketches and exact statistics bit-identical),
    /// while tuples touching a dirty column are rescored from scratch.
    ///
    /// Candidate enumeration is schema-pure, so the candidate set itself
    /// cannot change on append; a tuple absent from the previous list (its
    /// score was non-finite or had no sketch path) stays absent unless it
    /// touches a dirty column and now scores finitely.
    pub fn refresh(
        &mut self,
        table: &Table,
        registry: &InsightRegistry,
        catalog: Option<&SketchCatalog>,
        dirty_columns: &[usize],
    ) -> RefreshStats {
        let mut stats = RefreshStats::default();
        for class in registry.classes() {
            let previous: HashMap<AttrTuple, f64> = self
                .entries
                .get(class.id())
                .map(|list| list.iter().copied().collect())
                .unwrap_or_default();
            let mut class_rescored = 0usize;
            let mut scored: Vec<(AttrTuple, f64)> = class
                .candidates(table)
                .into_iter()
                .filter_map(|attrs| {
                    let is_dirty = attrs.indices().iter().any(|i| dirty_columns.contains(i));
                    if !is_dirty {
                        return previous.get(&attrs).map(|&score| {
                            stats.tuples_reused += 1;
                            (attrs, score)
                        });
                    }
                    class_rescored += 1;
                    let sketched = catalog.and_then(|c| class.score_sketch(c, table, &attrs));
                    let score = if self.sketch_only {
                        sketched?
                    } else {
                        sketched.or_else(|| class.score(table, &attrs))?
                    };
                    score.is_finite().then_some((attrs, score))
                })
                .collect();
            scored.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("non-finite filtered")
                    .then_with(|| a.0.cmp(&b.0))
            });
            if class_rescored > 0 {
                stats.classes_rescored += 1;
                stats.tuples_rescored += class_rescored;
            }
            self.entries.insert(class.id().to_owned(), scored);
        }
        stats
    }

    /// Number of indexed classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total indexed `(class, tuple)` entries.
    pub fn total_entries(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Answers a query from the index alone.
    ///
    /// Returns `None` when the query cannot be served from the index: the
    /// class is not indexed, or the query overrides the ranking metric
    /// (alternative metrics are not precomputed).
    pub fn query(
        &self,
        table: &Table,
        registry: &InsightRegistry,
        query: &InsightQuery,
    ) -> Option<Vec<InsightInstance>> {
        if query.metric.is_some() {
            return None;
        }
        let list = self.entries.get(&query.class_id)?;
        let class = registry.get(&query.class_id)?;
        let mut filtered: Vec<(AttrTuple, f64)> = Vec::with_capacity(query.top_k);
        for &(attrs, score) in list {
            if !query.matches_fixed(&attrs)
                || !query.matches_semantic(table, &attrs)
                || query.exclude.contains(&attrs)
                || !query.matches_range(score)
            {
                continue;
            }
            filtered.push((attrs, score));
            // without diversification the list is already rank-ordered, so
            // the scan can stop as soon as top-k entries are collected
            if query.diversify.unwrap_or(0.0) == 0.0 && filtered.len() == query.top_k {
                break;
            }
        }
        let selected = match query.diversify {
            Some(lambda) if lambda > 0.0 => {
                crate::executor::diversify_scored(filtered, query.top_k, lambda)
            }
            _ => filtered,
        };
        Some(
            selected
                .into_iter()
                .map(|(attrs, score)| InsightInstance {
                    class_id: query.class_id.clone(),
                    attrs,
                    score,
                    metric: class.metric().to_owned(),
                    detail: if self.sketch_only {
                        format!(
                            "{} ≈ {score:.3} (estimated from merged shard sketches)",
                            class.metric()
                        )
                    } else {
                        class.describe(table, &attrs, score)
                    },
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use foresight_data::TableBuilder;
    use foresight_sketch::CatalogConfig;

    fn table() -> Table {
        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        TableBuilder::new("t")
            .numeric("x", x.clone())
            .numeric("y", x.iter().map(|v| 2.0 * v).collect())
            .numeric("z", (0..200).map(|i| ((i * 37) % 200) as f64).collect())
            .categorical("c", (0..200).map(|i| if i % 2 == 0 { "a" } else { "b" }))
            .build()
            .unwrap()
    }

    #[test]
    fn index_agrees_with_executor() {
        let t = table();
        let r = InsightRegistry::default();
        let index = InsightIndex::build(&t, &r, None);
        let ex = Executor::exact(&t, &r);
        for q in [
            InsightQuery::class("linear-relationship").top_k(3),
            InsightQuery::class("skew").top_k(2),
            InsightQuery::class("linear-relationship")
                .top_k(5)
                .fix_attr(2)
                .score_range(0.0, 0.5),
            InsightQuery::class("linear-relationship")
                .top_k(2)
                .exclude(foresight_insight::AttrTuple::Two(0, 1)),
        ] {
            let from_index = index.query(&t, &r, &q).expect("indexed");
            let from_executor = ex.execute(&q).expect("valid");
            assert_eq!(from_index, from_executor, "query {q:?} disagrees");
        }
    }

    #[test]
    fn metric_override_falls_through() {
        let t = table();
        let r = InsightRegistry::default();
        let index = InsightIndex::build(&t, &r, None);
        let q = InsightQuery::class("linear-relationship").metric("|spearman|");
        assert!(index.query(&t, &r, &q).is_none());
        assert!(index
            .query(&t, &r, &InsightQuery::class("not-a-class"))
            .is_none());
    }

    #[test]
    fn refresh_of_dirty_columns_matches_full_rebuild() {
        let t1 = table();
        // the appended 50 rows carry present values in x, y, and c only;
        // z gains nothing but NaN padding, so it is clean
        let x: Vec<f64> = (0..250).map(|i| i as f64).collect();
        let mut z: Vec<f64> = (0..200).map(|i| ((i * 37) % 200) as f64).collect();
        z.extend(std::iter::repeat(f64::NAN).take(50));
        let t2 = TableBuilder::new("t")
            .numeric("x", x.clone())
            .numeric("y", x.iter().map(|v| 2.0 * v).collect())
            .numeric("z", z)
            .categorical("c", (0..250).map(|i| if i % 2 == 0 { "a" } else { "b" }))
            .build()
            .unwrap();
        let r = InsightRegistry::default();
        let mut index = InsightIndex::build(&t1, &r, None);
        let stats = index.refresh(&t2, &r, None, &[0, 1, 3]);
        assert!(stats.classes_rescored > 0);
        assert!(stats.tuples_rescored > 0);
        assert!(stats.tuples_reused > 0, "pure-z tuples should carry over");
        let rebuilt = InsightIndex::build(&t2, &r, None);
        for class in r.classes() {
            assert_eq!(
                index.entries[class.id()],
                rebuilt.entries[class.id()],
                "class {} diverged after refresh",
                class.id()
            );
        }
    }

    #[test]
    fn sketch_built_index_uses_sketch_scores() {
        let t = table();
        let r = InsightRegistry::default();
        let catalog = SketchCatalog::build(&t, &CatalogConfig::default());
        let index = InsightIndex::build(&t, &r, Some(&catalog));
        let approx = Executor::approximate(&t, &r, &catalog);
        let q = InsightQuery::class("linear-relationship").top_k(3);
        assert_eq!(
            index.query(&t, &r, &q).unwrap(),
            approx.execute(&q).unwrap()
        );
        assert_eq!(index.len(), 12);
        assert!(index.total_entries() > 12);
    }
}
