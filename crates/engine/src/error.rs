//! Engine error types.

use thiserror::Error;

/// Errors from the exploration engine.
#[derive(Debug, Error)]
pub enum EngineError {
    /// The query named an insight class that is not registered.
    #[error("unknown insight class `{0}`")]
    UnknownClass(String),

    /// The query named a metric the class does not offer.
    #[error("class `{class}` has no metric `{metric}`")]
    UnknownMetric {
        /// The class id.
        class: String,
        /// The requested metric.
        metric: String,
    },

    /// Approximate mode was requested without a sketch catalog.
    #[error("approximate mode requires preprocess() to build the sketch catalog first")]
    NoCatalog,

    /// Raw rows were needed (exact scoring, alternative metrics, charts)
    /// but the source cannot provide them.
    #[error("exact data unavailable: {0}")]
    ExactUnavailable(&'static str),

    /// Per-shard sketch catalogs could not be combined (mismatched seeds,
    /// hyperplane widths, or sketch parameters).
    #[error("catalog merge: {0}")]
    Merge(#[from] foresight_sketch::MergeError),

    /// A column reference in the query does not exist.
    #[error(transparent)]
    Data(#[from] foresight_data::DataError),

    /// A persisted-state payload declared a format version this build
    /// does not understand (written by a newer release).
    #[error("persisted state format version {found} is unsupported (this build reads up to {supported})")]
    StateVersion {
        /// The version declared by the payload.
        found: u32,
        /// The newest version this build reads.
        supported: u32,
    },

    /// The streaming writer thread has exited (a prior batch failed, or
    /// the stream was finished); [`StreamWriter::finish`] reports why.
    ///
    /// [`StreamWriter::finish`]: crate::StreamWriter::finish
    #[error("the stream writer has shut down; no more batches can be ingested")]
    StreamClosed,

    /// A restored session does not fit the core adopting it: the dataset
    /// name, column schema, attribute indices, or class ids disagree with
    /// the snapshot the handle is bound to (e.g. a save taken against an
    /// older stream snapshot whose schema has since changed).
    #[error("session does not match the adopting core: {0}")]
    SessionMismatch(String),

    /// Session (de)serialization failure.
    #[error("session serialization: {0}")]
    Session(#[from] serde_json::Error),

    /// An I/O failure while persisting a session.
    #[error("i/o error: {0}")]
    Io(#[from] std::io::Error),
}

/// Convenient alias used throughout the engine crate.
pub type Result<T> = std::result::Result<T, EngineError>;
