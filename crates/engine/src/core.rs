//! The shared service core and its writer path.
//!
//! [`EngineCore`] is the immutable heart of the engine: the table source,
//! the merged sketch catalog, the optional insight index, the frozen class
//! registry, and the (internally synchronized) score cache. Every read
//! path — queries, carousels, profiles, charts — takes `&self`, so one
//! `Arc<EngineCore>` serves any number of concurrent sessions without a
//! lock around the engine itself.
//!
//! Mutations go through [`CoreBuilder`]: take (or clone out of) a
//! published core, apply `register_class` / `preprocess` / `append_shard` /
//! catalog restores, and [`CoreBuilder::freeze`] a *new* snapshot. Readers
//! holding the old `Arc` keep answering from a consistent catalog; the
//! freeze mints a fresh score-cache epoch whenever scores could have
//! changed, so snapshots never exchange stale scores (see
//! [`crate::cache`]).

use crate::cache::{CacheStats, ScoreCache};
use crate::candidates::{CandidateSource, CandidateStrategy};
use crate::error::{EngineError, Result};
use crate::executor::{Executor, Mode};
use crate::profile::DatasetProfile;
use crate::query::InsightQuery;
use crate::recommend::{carousels_with, Carousel, CarouselConfig};
use crate::session::Session;
use crate::telemetry::{clock, Metrics, MetricsSnapshot, Stage};
use crate::trace::{QueryTrace, TraceBuilder, Tracer};
use foresight_data::{Table, TableSource};
use foresight_insight::{InsightClass, InsightInstance, InsightRegistry};
use foresight_sketch::lsh::LshIndex;
use foresight_sketch::{CatalogConfig, Mergeable, SketchCatalog};
use foresight_viz::ChartSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// An insight index together with the mode whose scores it memoizes. The
/// index only serves queries executed under that same mode; a session that
/// overrides its mode falls back to the executor.
#[derive(Clone)]
struct IndexedAt {
    index: crate::index::InsightIndex,
    mode: Mode,
}

/// The immutable, `Arc`-shareable engine core: everything about a dataset
/// that is *not* per-user exploration state.
///
/// All query paths take `&self`; the only interior mutability is the
/// sharded [`ScoreCache`] and two `OnceLock` memos (lazy shard
/// concatenation and the zero-row schema table), each of which is
/// synchronized and write-once. The type is `Send + Sync` by
/// construction — share it across threads with [`Arc`] and hand each user
/// a [`crate::SessionHandle`].
pub struct EngineCore {
    source: TableSource,
    /// Lazy vstack of a sharded source, built on first exact-mode use.
    materialized: OnceLock<Table>,
    /// Lazy zero-row table carrying the schema (and semantic tags) — what
    /// the executor enumerates candidates against when the raw rows stay
    /// sharded.
    schema_table: OnceLock<Table>,
    registry: Arc<InsightRegistry>,
    catalog: Option<SketchCatalog>,
    index: Option<IndexedAt>,
    /// The LSH candidate index over the catalog's hyperplane signatures,
    /// maintained by the freeze path whenever a catalog exists. Arc'd so a
    /// clean republish shares it with the previous snapshot.
    lsh: Option<Arc<LshIndex>>,
    cache: Arc<ScoreCache>,
    /// The score-cache data generation this snapshot reads and writes.
    /// Fixed at freeze time: readers of an older snapshot keep their own
    /// keyspace even while a newer snapshot is live.
    epoch: u64,
    /// The published default mode (sessions may override per-handle).
    mode: Mode,
    /// The published default for rayon-parallel execution.
    parallel: bool,
    /// Shared telemetry registry — like the cache, one registry outlives
    /// many republished snapshots, so stage histograms accumulate across
    /// the core's whole service life.
    metrics: Arc<Metrics>,
    /// Shared request-tracing registry: the query-id counter, the ring of
    /// recently finished traces, and the slow-query log. Shared across
    /// republished snapshots like `metrics`.
    tracer: Arc<Tracer>,
    /// Live ingest-head row counter shared with a streaming writer, when
    /// one feeds this core. Lets any snapshot report how many rows behind
    /// the ingest head it is without talking to the writer.
    ingest_head: Option<Arc<AtomicU64>>,
    /// `clock::now_ns()` at freeze time — the birth instant snapshot age
    /// is measured from.
    published_at_ns: u64,
    /// Per-mode memo of the dataset profile ([`Mode::Exact`],
    /// [`Mode::Approximate`]). A profile is a pure function of this
    /// immutable snapshot, but an expensive one (per-column dip/modality
    /// scans) — serving fronts hit the `profile` endpoint per session, so
    /// it is computed once per snapshot per mode. Errors are not cached.
    profile_memo: [OnceLock<DatasetProfile>; 2],
}

/// How far a published snapshot lags a live ingest stream — the staleness
/// readings surfaced in session telemetry, `EXPLAIN` output, and the wire
/// protocol's `Staleness` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Staleness {
    /// The snapshot's score-cache epoch.
    pub epoch: u64,
    /// Rows the snapshot covers.
    pub snapshot_rows: u64,
    /// Rows the ingest head has absorbed (equals `snapshot_rows` when no
    /// stream writer is attached).
    pub head_rows: u64,
    /// `head_rows - snapshot_rows`.
    pub rows_behind: u64,
    /// Nanoseconds since the snapshot was frozen.
    pub age_ns: u64,
}

// The whole point of the core: one snapshot, many threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineCore>();
};

impl EngineCore {
    /// Starts a [`CoreBuilder`] over a source — the writer path.
    pub fn builder(source: TableSource) -> CoreBuilder {
        CoreBuilder::new(source)
    }

    /// A fresh per-user [`crate::SessionHandle`] borrowing this core.
    pub fn handle(self: &Arc<Self>) -> crate::SessionHandle {
        crate::SessionHandle::new(Arc::clone(self))
    }

    /// The underlying source (materialized table or row shards).
    pub fn source(&self) -> &TableSource {
        &self.source
    }

    /// The frozen class registry.
    pub fn registry(&self) -> &InsightRegistry {
        &self.registry
    }

    /// The sketch catalog, if preprocessing ran.
    pub fn catalog(&self) -> Option<&SketchCatalog> {
        self.catalog.as_ref()
    }

    /// The insight index, if one was built.
    pub fn insight_index(&self) -> Option<&crate::index::InsightIndex> {
        self.index.as_ref().map(|ix| &ix.index)
    }

    /// The LSH candidate index, if a catalog exists to build it over.
    pub fn lsh_index(&self) -> Option<&LshIndex> {
        self.lsh.as_deref()
    }

    /// A [`CandidateSource`] over this snapshot's LSH index under
    /// `strategy` — what the executor uses to generate pairwise candidates.
    pub fn candidate_source(&self, strategy: CandidateStrategy) -> CandidateSource<'_> {
        CandidateSource::new(self.lsh.as_deref(), strategy)
    }

    /// The published default mode (snapshots built after
    /// [`CoreBuilder::preprocess`] default to approximate).
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Whether rayon-parallel execution is the published default.
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// The score-cache data generation this snapshot reads through.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Rows this snapshot covers.
    pub fn snapshot_rows(&self) -> u64 {
        self.source.n_rows() as u64
    }

    /// Rows absorbed by the ingest head feeding this core, when a stream
    /// writer is attached.
    pub fn ingest_head_rows(&self) -> Option<u64> {
        self.ingest_head
            .as_ref()
            .map(|head| head.load(Ordering::Acquire))
    }

    /// How many ingested rows this snapshot has not yet seen (0 without a
    /// stream writer).
    pub fn rows_behind(&self) -> u64 {
        self.ingest_head_rows()
            .map_or(0, |head| head.saturating_sub(self.snapshot_rows()))
    }

    /// The full staleness reading: epoch, row coverage versus the ingest
    /// head, and snapshot age.
    pub fn staleness(&self) -> Staleness {
        let snapshot_rows = self.snapshot_rows();
        let head_rows = self.ingest_head_rows().unwrap_or(snapshot_rows);
        Staleness {
            epoch: self.epoch,
            snapshot_rows,
            head_rows,
            rows_behind: head_rows.saturating_sub(snapshot_rows),
            age_ns: clock::now_ns().saturating_sub(self.published_at_ns),
        }
    }

    /// The shared cross-query score cache.
    pub fn cache(&self) -> &ScoreCache {
        &self.cache
    }

    /// Hit/miss/occupancy/purge counters of the shared score cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The shared telemetry registry (live counters; see
    /// [`EngineCore::metrics_snapshot`] for the plain-data view).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// A deterministic point-in-time snapshot of the telemetry registry,
    /// with score-cache traffic and resource gauges folded in.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot_with_cache(Some(&self.cache.stats()));
        snap.resources = Some(self.resource_snapshot(snap.serve.sessions_live()));
        snap
    }

    /// Approximate resident-memory gauges for the core's long-lived
    /// structures. `sessions_live` comes from the serve counters (0 when
    /// no front end is attached) and prices the server's session table.
    pub fn resource_snapshot(&self, sessions_live: u64) -> crate::telemetry::ResourceSnapshot {
        // a server-side session entry: SessionHandle (core Arc + session
        // state + focus set) plus the table's key/last-touch bookkeeping
        const SESSION_ENTRY_BYTES: u64 = 512;
        crate::telemetry::ResourceSnapshot {
            catalog_bytes: self.catalog.as_ref().map_or(0, |c| c.approx_bytes()) as u64,
            cache_bytes: self.cache.approx_bytes() as u64,
            lsh_bytes: self.lsh.as_deref().map_or(0, |l| l.size_bytes()) as u64,
            trace_bytes: self.tracer.approx_bytes() as u64,
            session_table_bytes: sessions_live * SESSION_ENTRY_BYTES,
            sessions_live,
        }
    }

    /// The instantaneous health of this snapshot under `policy` — the
    /// conditions that need no sampling window (catalog presence, stream
    /// lag, cumulative cache hit rate). A running [`Monitor`] layers the
    /// windowed conditions (shed rate) and hysteresis on top of these.
    ///
    /// [`Monitor`]: crate::monitor::Monitor
    pub fn health(&self, policy: &crate::monitor::HealthPolicy) -> crate::monitor::HealthState {
        use crate::monitor::{HealthReason, HealthState};
        if self.catalog.is_none() {
            return HealthState::Unready(vec![HealthReason::CoreNotReady]);
        }
        let mut reasons = Vec::new();
        let rows_behind = self.rows_behind();
        if policy.max_rows_behind > 0 && rows_behind > policy.max_rows_behind {
            reasons.push(HealthReason::StreamLagging {
                rows_behind,
                bound: policy.max_rows_behind,
            });
        }
        if policy.min_hit_rate > 0.0 {
            let stats = self.cache.stats();
            if stats.hits + stats.misses > 0 && stats.hit_rate() < policy.min_hit_rate {
                reasons.push(HealthReason::LowCacheHitRate {
                    hit_rate: stats.hit_rate(),
                    floor: policy.min_hit_rate,
                });
            }
        }
        if reasons.is_empty() {
            HealthState::Healthy
        } else {
            HealthState::Degraded(reasons)
        }
    }

    /// The shared request-tracing registry: recent traces, the slow-query
    /// log, and their runtime switches.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The underlying table, materializing a sharded source on first call.
    ///
    /// # Panics
    /// When the source is sketch-only (raw rows dropped); use
    /// [`EngineCore::try_table`] to handle that case as an error.
    pub fn table(&self) -> &Table {
        self.try_table()
            .expect("raw rows unavailable (sketch-only source); use try_table()")
    }

    /// The underlying table, concatenating a sharded source lazily (the
    /// vstack happens once, on first need; approximate-mode work never
    /// triggers it).
    pub fn try_table(&self) -> Result<&Table> {
        if let Some(t) = self.source.as_materialized() {
            return Ok(t);
        }
        if let Some(t) = self.materialized.get() {
            return Ok(t);
        }
        let t = self.source.materialize()?;
        Ok(self.materialized.get_or_init(|| t))
    }

    fn schema_table(&self) -> &Table {
        self.schema_table.get_or_init(|| self.source.schema_table())
    }

    /// Whether `mode` runs off the merged catalog with no raw-row fallback.
    fn sketch_backed_at(&self, mode: Mode) -> bool {
        self.source.as_materialized().is_none() && mode == Mode::Approximate
    }

    /// The table the executor (and insight index) runs against under
    /// `mode`: the real rows when available and needed, a zero-row schema
    /// table when a sharded source answers from sketches alone.
    fn exec_table_at(&self, mode: Mode) -> Result<&Table> {
        if self.sketch_backed_at(mode) {
            Ok(self.schema_table())
        } else {
            self.try_table()
        }
    }

    /// An executor over this snapshot under an explicit mode/parallelism —
    /// the building block sessions use. Scores read and write the shared
    /// cache in this snapshot's epoch keyspace. Candidates follow the
    /// default [`CandidateStrategy::Auto`].
    pub fn executor_at(&self, mode: Mode, parallel: bool) -> Result<Executor<'_>> {
        self.executor_strategy(mode, parallel, CandidateStrategy::Auto)
    }

    /// [`executor_at`](Self::executor_at) with an explicit candidate
    /// strategy — the recall-vs-speed knob sessions thread through.
    pub fn executor_strategy(
        &self,
        mode: Mode,
        parallel: bool,
        strategy: CandidateStrategy,
    ) -> Result<Executor<'_>> {
        let ex = match (mode, self.catalog.as_ref()) {
            (Mode::Approximate, Some(catalog)) => {
                Executor::approximate(self.exec_table_at(mode)?, &self.registry, catalog)
                    .sketch_only(self.sketch_backed_at(mode))
            }
            (Mode::Approximate, None) => return Err(EngineError::NoCatalog),
            _ => Executor::exact(self.try_table()?, &self.registry),
        };
        Ok(ex
            .parallel(parallel)
            .with_cache_at(&self.cache, self.epoch)
            .with_candidates(self.candidate_source(strategy))
            .with_metrics(&self.metrics))
    }

    /// An executor under the published defaults.
    pub fn executor(&self) -> Result<Executor<'_>> {
        self.executor_at(self.mode, self.parallel)
    }

    /// Runs an insight query under the published defaults. Stateless —
    /// nothing is recorded; sessions record their own history.
    pub fn run_query(&self, query: &InsightQuery) -> Result<Vec<InsightInstance>> {
        self.run_query_at(query, self.mode, self.parallel)
    }

    /// Runs an insight query under an explicit mode/parallelism.
    ///
    /// Served from the insight index when one is built for the same mode
    /// and covers the query; otherwise scored by the executor.
    pub fn run_query_at(
        &self,
        query: &InsightQuery,
        mode: Mode,
        parallel: bool,
    ) -> Result<Vec<InsightInstance>> {
        self.run_query_strategy(query, mode, parallel, CandidateStrategy::Auto)
    }

    /// [`run_query_at`](Self::run_query_at) with an explicit candidate
    /// strategy. A strategy that resolves to LSH for the queried class
    /// bypasses the prebuilt (exhaustively generated) insight index so the
    /// collision-generated candidate list is actually what gets scored.
    pub fn run_query_strategy(
        &self,
        query: &InsightQuery,
        mode: Mode,
        parallel: bool,
        strategy: CandidateStrategy,
    ) -> Result<Vec<InsightInstance>> {
        // the entire cost of the dormant trace layer on the untraced path:
        // one relaxed load of the slow-query threshold
        if cfg!(feature = "trace") && self.tracer.slow_threshold_ns() > 0 {
            let start = clock::now_ns();
            let out = self.run_query_with(
                query,
                mode,
                parallel,
                strategy,
                &mut TraceBuilder::disabled(),
            )?;
            self.tracer.maybe_record_slow(
                query,
                mode,
                clock::now_ns().saturating_sub(start),
                out.len(),
                None,
            );
            return Ok(out);
        }
        self.run_query_with(
            query,
            mode,
            parallel,
            strategy,
            &mut TraceBuilder::disabled(),
        )
    }

    /// Runs an insight query and captures a [`QueryTrace`] for it — the
    /// path behind [`explain`](crate::SessionHandle::explain) (`forced`)
    /// and per-session trace sampling. The trace is `None` when the `trace`
    /// cargo feature is compiled out, or when the trace was not forced and
    /// the tracer's runtime switch is off; the results are bit-identical to
    /// [`run_query_at`](Self::run_query_at) either way.
    pub fn run_query_traced(
        &self,
        query: &InsightQuery,
        mode: Mode,
        parallel: bool,
        forced: bool,
    ) -> Result<(Vec<InsightInstance>, Option<Arc<QueryTrace>>)> {
        self.run_query_traced_strategy(query, mode, parallel, CandidateStrategy::Auto, forced)
    }

    /// [`run_query_traced`](Self::run_query_traced) with an explicit
    /// candidate strategy — EXPLAIN under the session's knob.
    pub fn run_query_traced_strategy(
        &self,
        query: &InsightQuery,
        mode: Mode,
        parallel: bool,
        strategy: CandidateStrategy,
        forced: bool,
    ) -> Result<(Vec<InsightInstance>, Option<Arc<QueryTrace>>)> {
        let mut trace = self.tracer.begin_trace(query, mode, forced);
        if !trace.is_active() {
            return Ok((
                self.run_query_strategy(query, mode, parallel, strategy)?,
                None,
            ));
        }
        let start = clock::now_ns();
        let out = self.run_query_with(query, mode, parallel, strategy, &mut trace)?;
        let trace = self.tracer.finish(trace);
        self.tracer.maybe_record_slow(
            query,
            mode,
            clock::now_ns().saturating_sub(start),
            out.len(),
            trace.clone(),
        );
        Ok((out, trace))
    }

    fn run_query_with(
        &self,
        query: &InsightQuery,
        mode: Mode,
        parallel: bool,
        strategy: CandidateStrategy,
        trace: &mut TraceBuilder,
    ) -> Result<Vec<InsightInstance>> {
        if trace.is_active() {
            // staleness lands on the root span: which snapshot served this
            // query, and how far behind the ingest head it was
            trace.attr("snapshot_epoch", || self.epoch.to_string());
            if self.ingest_head.is_some() {
                trace.attr("rows_behind", || self.rows_behind().to_string());
            }
        }
        // When the strategy resolves to LSH for this class, the prebuilt
        // index (whose entries came from the exhaustive scan) must not
        // answer: the caller asked for collision-generated candidates.
        let lsh_preferred = match self.registry.get(&query.class_id) {
            Some(class) => self
                .candidate_source(strategy)
                .would_use_lsh(class.as_ref(), self.exec_table_at(mode)?),
            None => false,
        };
        if let Some(ix) = self
            .index
            .as_ref()
            .filter(|ix| ix.mode == mode && !lsh_preferred)
        {
            let span = self.metrics.span(Stage::IndexServe);
            trace.begin("index_serve");
            if let Some(out) = ix
                .index
                .query(self.exec_table_at(mode)?, &self.registry, query)
            {
                drop(span);
                self.metrics.record_query(&query.class_id, mode, true);
                trace.set_index_served();
                trace.attr("results", || out.len().to_string());
                trace.end();
                if trace.is_active() {
                    if let Some(first) = out.first() {
                        trace.set_metric(&first.metric);
                    }
                    trace.set_candidates(out.len(), out.len());
                    trace.record_results(self.exec_table_at(mode)?, &out);
                }
                return Ok(out);
            }
            // the index didn't cover the query; don't count a serve
            trace.attr("covered", || "false".to_owned());
            trace.end();
            span.cancel();
        }
        let out = self
            .executor_strategy(mode, parallel, strategy)?
            .execute_traced(query, trace)?;
        self.metrics.record_query(&query.class_id, mode, false);
        Ok(out)
    }

    /// Builds all carousels (one per class) for a session's focus set,
    /// under an explicit mode. Assembled in parallel (one task per class)
    /// when `config.parallel` is set.
    pub fn carousels_for(
        &self,
        session: &Session,
        config: &CarouselConfig,
        mode: Mode,
    ) -> Result<Vec<Carousel>> {
        self.carousels_strategy(session, config, mode, CandidateStrategy::Auto)
    }

    /// [`carousels_for`](Self::carousels_for) with an explicit candidate
    /// strategy: every pairwise class's carousel draws candidates through
    /// it.
    pub fn carousels_strategy(
        &self,
        session: &Session,
        config: &CarouselConfig,
        mode: Mode,
        strategy: CandidateStrategy,
    ) -> Result<Vec<Carousel>> {
        let executor = self.executor_strategy(mode, config.parallel, strategy)?;
        carousels_with(&executor, &self.registry, session, config)
    }

    /// Profiles the dataset under an explicit mode: per-column summaries
    /// plus the strongest instance of every registered class. A sharded
    /// source in approximate mode is profiled entirely from the merged
    /// catalog — no shard concatenation.
    /// Memoized per snapshot and mode — the first call pays the scan,
    /// every later one clones the cached profile.
    pub fn profile_at(&self, mode: Mode) -> Result<DatasetProfile> {
        let memo = &self.profile_memo[match mode {
            Mode::Exact => 0,
            Mode::Approximate => 1,
        }];
        if let Some(profile) = memo.get() {
            return Ok(profile.clone());
        }
        let _span = self.metrics.span(Stage::Profile);
        let profile = if self.sketch_backed_at(mode) {
            let catalog = self.catalog.as_ref().ok_or(EngineError::NoCatalog)?;
            crate::profile::profile_from_catalog(
                &self.source,
                catalog,
                &self.registry,
                self.schema_table(),
            )?
        } else {
            crate::profile::profile(self.try_table()?, &self.registry)?
        };
        Ok(memo.get_or_init(|| profile).clone())
    }

    /// Profiles the dataset under the published default mode.
    pub fn profile(&self) -> Result<DatasetProfile> {
        self.profile_at(self.mode)
    }

    /// The chart for one insight instance (reads raw rows — errors on a
    /// sketch-only source).
    pub fn chart(&self, instance: &InsightInstance) -> Result<Option<ChartSpec>> {
        let class = self
            .registry
            .get(&instance.class_id)
            .ok_or_else(|| EngineError::UnknownClass(instance.class_id.clone()))?;
        Ok(class.chart(self.try_table()?, &instance.attrs))
    }

    /// The class-level overview chart (§2.1's third level of exploration).
    /// Reads raw rows.
    pub fn overview(&self, class_id: &str) -> Result<Option<ChartSpec>> {
        let class = self
            .registry
            .get(class_id)
            .ok_or_else(|| EngineError::UnknownClass(class_id.to_owned()))?;
        Ok(class.overview(self.try_table()?))
    }
}

/// The writer path: stages mutations against a (new or taken-over) core
/// and [`freeze`](CoreBuilder::freeze)s them into a fresh immutable
/// snapshot.
///
/// A builder made with [`CoreBuilder::from_arc`] inherits the published
/// core's source, catalog, registry, *and score cache*; when any staged
/// mutation could change scores, the freeze bumps the shared cache's epoch
/// so the new snapshot starts from a clean keyspace while readers of the
/// old snapshot continue unharmed (their stores land in the retired
/// epoch, never the new one).
pub struct CoreBuilder {
    source: TableSource,
    materialized: OnceLock<Table>,
    schema_table: OnceLock<Table>,
    registry: Arc<InsightRegistry>,
    catalog: Option<SketchCatalog>,
    index: Option<IndexedAt>,
    lsh: Option<Arc<LshIndex>>,
    cache: Arc<ScoreCache>,
    epoch: u64,
    mode: Mode,
    parallel: bool,
    metrics: Arc<Metrics>,
    tracer: Arc<Tracer>,
    ingest_head: Option<Arc<AtomicU64>>,
    /// Whether a staged mutation could have changed *any* score (freeze
    /// then mints a wholly fresh cache epoch).
    dirty: bool,
    /// Columns perturbed by staged appends: the columns in which some
    /// appended batch carried at least one present value. A freeze with
    /// only column-level dirt keeps the index (rescoring just the tuples
    /// that touch these columns) and migrates clean cache entries into the
    /// new epoch instead of purging everything.
    dirty_columns: BTreeSet<usize>,
    /// Whether any batch (even a zero-row one) was appended — gates the
    /// ingest republish counters so batch-built cores report all zeros.
    appended: bool,
}

impl CoreBuilder {
    /// A builder over a fresh source with the 12 default insight classes,
    /// in exact mode, with a new score cache.
    pub fn new(source: TableSource) -> Self {
        let cache = Arc::new(ScoreCache::new());
        let epoch = cache.epoch();
        Self {
            source,
            materialized: OnceLock::new(),
            schema_table: OnceLock::new(),
            registry: InsightRegistry::default().freeze(),
            catalog: None,
            index: None,
            lsh: None,
            cache,
            epoch,
            mode: Mode::Exact,
            parallel: rayon::current_num_threads() > 1,
            metrics: Arc::new(Metrics::new()),
            tracer: Arc::new(Tracer::new()),
            ingest_head: None,
            dirty: false,
            dirty_columns: BTreeSet::new(),
            appended: false,
        }
    }

    /// Takes over a published core for editing. When the `Arc` is uniquely
    /// held the core is moved (no copies); otherwise the shared pieces are
    /// cloned (the lazy materialization memo is dropped rather than copied
    /// — it rebuilds on demand) and readers of the original are untouched.
    pub fn from_arc(core: Arc<EngineCore>) -> Self {
        match Arc::try_unwrap(core) {
            Ok(core) => Self {
                source: core.source,
                materialized: core.materialized,
                schema_table: core.schema_table,
                registry: core.registry,
                catalog: core.catalog,
                index: core.index,
                lsh: core.lsh,
                cache: core.cache,
                epoch: core.epoch,
                mode: core.mode,
                parallel: core.parallel,
                metrics: core.metrics,
                tracer: core.tracer,
                ingest_head: core.ingest_head,
                dirty: false,
                dirty_columns: BTreeSet::new(),
                appended: false,
            },
            Err(shared) => Self {
                source: shared.source.clone(),
                materialized: OnceLock::new(),
                schema_table: OnceLock::new(),
                registry: Arc::clone(&shared.registry),
                catalog: shared.catalog.clone(),
                index: shared.index.clone(),
                lsh: shared.lsh.clone(),
                cache: Arc::clone(&shared.cache),
                epoch: shared.epoch,
                mode: shared.mode,
                parallel: shared.parallel,
                metrics: Arc::clone(&shared.metrics),
                tracer: Arc::clone(&shared.tracer),
                ingest_head: shared.ingest_head.clone(),
                dirty: false,
                dirty_columns: BTreeSet::new(),
                appended: false,
            },
        }
    }

    /// Replaces the class roster wholesale (drops any staged index and
    /// marks scores dirty).
    pub fn with_registry(mut self, registry: InsightRegistry) -> Self {
        self.registry = registry.freeze();
        self.index = None;
        self.dirty = true;
        self
    }

    /// Plugs in an insight class (§2.2 extensibility). Drops any staged
    /// index; a re-registered id may score differently, so the freeze will
    /// mint a fresh cache epoch.
    pub fn register_class(&mut self, class: Arc<dyn InsightClass>) {
        Arc::make_mut(&mut self.registry).register(class);
        self.index = None;
        self.dirty = true;
    }

    fn try_table(&self) -> Result<&Table> {
        if let Some(t) = self.source.as_materialized() {
            return Ok(t);
        }
        if let Some(t) = self.materialized.get() {
            return Ok(t);
        }
        let t = self.source.materialize()?;
        Ok(self.materialized.get_or_init(|| t))
    }

    fn schema_table(&self) -> &Table {
        self.schema_table.get_or_init(|| self.source.schema_table())
    }

    fn sketch_backed(&self) -> bool {
        self.source.as_materialized().is_none() && self.mode == Mode::Approximate
    }

    /// Runs the paper's preprocessing phase: builds the sketch catalog and
    /// switches the published mode to approximate (interactive). For a
    /// sharded source the per-shard catalogs are built independently
    /// (fanned out with rayon when `config.parallel` is set) and merged —
    /// the shards themselves are never concatenated. Any staged insight
    /// index is dropped (its scores were computed in the old mode).
    ///
    /// # Errors
    /// [`EngineError::ExactUnavailable`] when the raw shards were dropped
    /// (a sketch-only source cannot be re-sketched);
    /// [`EngineError::Merge`] if per-shard catalogs fail to combine.
    pub fn preprocess(&mut self, config: &CatalogConfig) -> Result<()> {
        let _span = self.metrics.span(Stage::Preprocess);
        let catalog = match self.source.as_materialized() {
            Some(t) => {
                let _build = self.metrics.span(Stage::SketchBuild);
                SketchCatalog::build(t, config)
            }
            None => {
                if self.source.is_sketch_only() {
                    return Err(EngineError::ExactUnavailable(
                        "cannot rebuild the catalog: the raw shards were dropped",
                    ));
                }
                // per-shard builds + the sequential merge fold both happen
                // inside build_sharded; the whole fan-out is one build span
                let _build = self.metrics.span(Stage::SketchBuild);
                let shards: Vec<&Table> = self.source.shards().collect();
                SketchCatalog::build_sharded(&shards, config)?
            }
        };
        self.catalog = Some(catalog);
        self.mode = Mode::Approximate;
        self.index = None;
        // approximate-mode entries would reflect the old catalog
        self.dirty = true;
        Ok(())
    }

    /// Ingests one more disjoint row partition.
    ///
    /// The shard is appended to the source (a materialized table is
    /// promoted to a sharded source in place) and, when a catalog exists,
    /// sketched at its global row offset and merged in — no rebuild, no
    /// concatenation.
    ///
    /// Invalidation is *column-granular*: only the columns in which the
    /// batch carries at least one present value are marked dirty. The
    /// freeze then keeps any staged index (rescoring just the tuples that
    /// touch a dirty column) and migrates clean cache entries into the new
    /// epoch — a column whose appended rows are all null keeps bit-identical
    /// sketches and NaN-masked exact statistics, so its scores stand.
    /// A zero-row batch short-circuits entirely: the schema is still
    /// validated, but nothing is invalidated, sketched, or merged.
    ///
    /// Returns the appended shard's global row offset.
    ///
    /// # Errors
    /// Schema mismatches surface as [`EngineError::Data`]; catalog merge
    /// failures as [`EngineError::Merge`].
    pub fn append_shard(&mut self, shard: Table) -> Result<usize> {
        self.append_shard_arc(Arc::new(shard))
    }

    /// [`CoreBuilder::append_shard`] for a batch already behind an `Arc` —
    /// the stream writer's path, where the same batch also feeds a windowed
    /// catalog without copying rows.
    pub fn append_shard_arc(&mut self, shard: Arc<Table>) -> Result<usize> {
        if shard.n_rows() == 0 {
            // zero-row short-circuit: validate the schema, change nothing
            return Ok(self.source.append_shard_arc(shard)?);
        }
        let rows = shard.n_rows() as u64;
        let touched = present_columns(&shard);
        let offset = self.source.append_shard_arc(Arc::clone(&shard))?;
        self.appended = true;
        self.materialized = OnceLock::new();
        self.dirty_columns.extend(touched);
        self.metrics.record_ingest_batch(rows);
        if let Some(catalog) = self.catalog.as_mut() {
            let config = catalog.config().clone();
            let build = self.metrics.span(Stage::SketchBuild);
            let shard_catalog = SketchCatalog::build_shard(&shard, &config, offset as u64);
            drop(build);
            let _merge = self.metrics.span(Stage::SketchMerge);
            catalog.merge(&shard_catalog)?;
            self.metrics.record_ingest_merge();
        }
        Ok(offset)
    }

    /// Attaches (or detaches) the live ingest-head row counter snapshots
    /// frozen from this builder report staleness against. Set by
    /// [`crate::StreamWriter`]; inherited across
    /// [`CoreBuilder::from_arc`] takeovers.
    pub fn set_ingest_head(&mut self, head: Option<Arc<AtomicU64>>) {
        self.ingest_head = head;
    }

    /// Replaces the shared tracer with one sized to `ring` retained traces
    /// and `slow` slow-log entries (each clamped to at least 1) — capture
    /// depth is a per-core construction choice, not a hardcoded constant,
    /// so server operators can deepen it for debugging or shrink it to
    /// bound memory. Any traces and slow-log entries captured so far (by
    /// this builder or by cores sharing the previous tracer) are dropped;
    /// the threshold and runtime switch reset to their defaults. Snapshots
    /// frozen later inherit the new tracer.
    pub fn set_trace_capacities(&mut self, ring: usize, slow: usize) {
        self.tracer = Arc::new(Tracer::with_capacities(ring, slow));
    }

    /// Sets the published default between exact and approximate scoring.
    /// Cached scores stay valid — the mode is part of every cache key.
    ///
    /// # Errors
    /// Approximate mode requires a prior [`CoreBuilder::preprocess`];
    /// exact mode requires raw rows the source can still provide.
    pub fn set_mode(&mut self, mode: Mode) -> Result<()> {
        match mode {
            Mode::Approximate if self.catalog.is_none() => Err(EngineError::NoCatalog),
            Mode::Exact if self.source.is_sketch_only() => Err(EngineError::ExactUnavailable(
                "exact mode needs raw rows, but this source kept only sketches",
            )),
            _ => {
                self.mode = mode;
                Ok(())
            }
        }
    }

    /// Sets the published default for rayon-parallel execution.
    pub fn set_parallel(&mut self, on: bool) {
        self.parallel = on;
    }

    /// Stages the insight index — the "indexes" of the paper's
    /// preprocessing triad, built eagerly against the current source,
    /// catalog, and mode. Basic top-k queries on the frozen core are then
    /// answered from a precomputed sorted list without re-scoring.
    ///
    /// # Errors
    /// [`EngineError::ExactUnavailable`] when the index would need raw
    /// rows a sketch-only source cannot provide; [`EngineError::NoCatalog`]
    /// for a sketch-only source with no catalog restored.
    pub fn build_index(&mut self) -> Result<()> {
        let _span = self.metrics.span(Stage::IndexBuild);
        let index = if self.sketch_backed() {
            let catalog = self.catalog.as_ref().ok_or(EngineError::NoCatalog)?;
            crate::index::InsightIndex::build_sketch_only(
                self.schema_table(),
                &self.registry,
                catalog,
            )
        } else {
            let catalog = if self.mode == Mode::Approximate {
                self.catalog.as_ref()
            } else {
                None
            };
            crate::index::InsightIndex::build(self.try_table()?, &self.registry, catalog)
        };
        self.index = Some(IndexedAt {
            index,
            mode: self.mode,
        });
        Ok(())
    }

    /// Restores a previously persisted catalog (or lack of one) as part of
    /// [`crate::Foresight::load_state`]. A restored catalog switches the
    /// published mode to approximate. The restored catalog is not the one
    /// cached scores came from, so the freeze mints a fresh epoch.
    pub fn restore_catalog(&mut self, catalog: Option<SketchCatalog>) {
        if catalog.is_some() {
            self.catalog = catalog;
            self.mode = Mode::Approximate;
        }
        self.index = None;
        self.dirty = true;
    }

    /// Refreshes a staged index in place after appends: tuples touching a
    /// dirty column are rescored, everything else carries over. Drops the
    /// index instead when it needs raw rows the source can no longer
    /// provide.
    fn refresh_index(&mut self) -> Option<crate::index::RefreshStats> {
        let mut ix = self.index.take()?;
        let dirty: Vec<usize> = self.dirty_columns.iter().copied().collect();
        let _span = self.metrics.span(Stage::IndexRefresh);
        let sketch_backed = self.source.as_materialized().is_none() && ix.mode == Mode::Approximate;
        let table = if sketch_backed {
            self.schema_table()
        } else {
            match self.try_table() {
                Ok(t) => t,
                Err(_) => return None,
            }
        };
        let catalog = if ix.mode == Mode::Approximate {
            self.catalog.as_ref()
        } else {
            None
        };
        let stats = ix.index.refresh(table, &self.registry, catalog, &dirty);
        self.index = Some(ix);
        Some(stats)
    }

    /// Publishes the staged state as a new immutable snapshot.
    ///
    /// Invalidation is proportional to what actually changed:
    ///
    /// * a score-global mutation (registry change, preprocess, catalog
    ///   restore) bumps the shared cache's epoch outright — the new
    ///   snapshot starts from a clean keyspace;
    /// * appends that dirtied only some columns keep the staged index
    ///   (rescoring just the tuples that touch a dirty column) and
    ///   *migrate* clean cache entries into the new epoch instead of
    ///   purging them;
    /// * a no-op republish (nothing staged, or only zero-row batches)
    ///   keeps the epoch — warm cache and index survive untouched.
    ///
    /// Readers of older snapshots keep their own (now-retired) keyspace
    /// either way.
    pub fn freeze(mut self) -> Arc<EngineCore> {
        // keep the registry alive past the field-by-field move below
        let metrics = Arc::clone(&self.metrics);
        let _span = metrics.span(Stage::Freeze);
        let refresh = if self.index.is_some() && !self.dirty_columns.is_empty() {
            self.refresh_index()
        } else {
            None
        };
        // Maintain the LSH candidate index alongside the catalog: rebuilt
        // on score-global mutations (or when absent), refreshed column-wise
        // after appends — clean columns keep bit-identical signatures, so
        // the refresh is provably identical to a cold rebuild — and shared
        // untouched on a clean republish.
        self.lsh = match self.catalog.as_ref() {
            _ if crate::candidates::lsh_disabled() => None,
            None => None,
            Some(catalog) => match self.lsh.take().filter(|_| !self.dirty) {
                None => {
                    let _span = metrics.span(Stage::LshBuild);
                    LshIndex::build(catalog).map(Arc::new)
                }
                Some(prev) if !self.dirty_columns.is_empty() => {
                    let dirty: Vec<usize> = self.dirty_columns.iter().copied().collect();
                    let mut ix = Arc::try_unwrap(prev).unwrap_or_else(|a| (*a).clone());
                    let _span = metrics.span(Stage::LshBuild);
                    ix.refresh(catalog, &dirty);
                    Some(Arc::new(ix))
                }
                Some(prev) => Some(prev),
            },
        };
        let epoch = if self.dirty {
            if self.appended {
                metrics.record_republish_full();
            }
            self.cache.bump_epoch()
        } else if !self.dirty_columns.is_empty() {
            let dirty = std::mem::take(&mut self.dirty_columns);
            let (epoch, migrated) = self.cache.bump_epoch_retaining(|_, attrs| {
                attrs.indices().iter().all(|i| !dirty.contains(i))
            });
            let stats = refresh.unwrap_or_default();
            metrics.record_republish_incremental(
                stats.classes_rescored as u64,
                stats.tuples_rescored as u64,
                stats.tuples_reused as u64,
                migrated,
            );
            epoch
        } else {
            if self.appended {
                metrics.record_republish_clean();
            }
            self.epoch
        };
        Arc::new(EngineCore {
            source: self.source,
            materialized: self.materialized,
            schema_table: self.schema_table,
            registry: self.registry,
            catalog: self.catalog,
            index: self.index,
            lsh: self.lsh,
            cache: self.cache,
            epoch,
            mode: self.mode,
            parallel: self.parallel,
            metrics: self.metrics,
            tracer: self.tracer,
            ingest_head: self.ingest_head,
            published_at_ns: clock::now_ns(),
            profile_memo: [OnceLock::new(), OnceLock::new()],
        })
    }
}

/// Columns of `shard` carrying at least one present value — the only
/// columns an append can perturb. A column whose appended rows are all
/// null keeps bit-identical sketches (every sketch family skips or
/// zero-weights nulls, and merging an empty contribution is a no-op) and
/// NaN-masked exact statistics, so its cached scores and index entries
/// remain exactly valid.
fn present_columns(shard: &Table) -> Vec<usize> {
    let mut touched = Vec::new();
    for idx in shard.numeric_indices() {
        let present = shard
            .numeric(idx)
            .map(|c| c.null_count() < c.values().len())
            .unwrap_or(true);
        if present {
            touched.push(idx);
        }
    }
    for idx in shard.categorical_indices() {
        let present = shard
            .categorical(idx)
            .map(|c| c.present_codes().next().is_some())
            .unwrap_or(true);
        if present {
            touched.push(idx);
        }
    }
    touched.sort_unstable();
    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::datasets;

    #[test]
    fn core_is_send_sync_and_shareable() {
        let core = CoreBuilder::new(TableSource::materialized(datasets::oecd())).freeze();
        let q = InsightQuery::class("linear-relationship").top_k(2);
        let a = core.run_query(&q).unwrap();
        let other = Arc::clone(&core);
        let b = std::thread::spawn(move || other.run_query(&q).unwrap())
            .join()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn republish_keeps_old_snapshot_consistent() {
        let mut builder = CoreBuilder::new(TableSource::materialized(datasets::oecd()));
        builder.preprocess(&CatalogConfig::default()).unwrap();
        let old = builder.freeze();
        let q = InsightQuery::class("skew").top_k(3);
        let before = old.run_query(&q).unwrap();

        // writer republishes with a different roster; the old Arc is live
        let mut writer = CoreBuilder::from_arc(Arc::clone(&old));
        writer.register_class(InsightRegistry::default().classes()[0].clone());
        let new = writer.freeze();

        assert_ne!(old.epoch(), new.epoch(), "republish mints a new epoch");
        // the old snapshot still answers, bit-identically
        assert_eq!(old.run_query(&q).unwrap(), before);
        assert_eq!(new.run_query(&q).unwrap(), before);
    }

    #[test]
    fn clean_republish_keeps_epoch_and_cache() {
        let core = CoreBuilder::new(TableSource::materialized(datasets::oecd())).freeze();
        core.run_query(&InsightQuery::class("skew").top_k(2))
            .unwrap();
        let entries = core.cache_stats().entries;
        assert!(entries > 0);
        let mut writer = CoreBuilder::from_arc(Arc::clone(&core));
        writer.set_parallel(false);
        let new = writer.freeze();
        assert_eq!(core.epoch(), new.epoch());
        assert_eq!(new.cache_stats().entries, entries, "warm cache survives");
    }

    #[test]
    fn mode_tagged_index_only_serves_matching_mode() {
        let mut builder = CoreBuilder::new(TableSource::materialized(datasets::oecd()));
        builder.build_index().unwrap();
        builder.preprocess(&CatalogConfig::default()).unwrap();
        // preprocess dropped the exact-mode index
        let core = builder.freeze();
        assert!(core.insight_index().is_none());

        let mut builder = CoreBuilder::from_arc(core);
        builder.build_index().unwrap();
        let core = builder.freeze();
        assert!(core.insight_index().is_some());
        let q = InsightQuery::class("linear-relationship").top_k(2);
        // approximate (the index's mode) and exact both answer; exact must
        // come from the executor, not the approximate index
        let approx = core.run_query_at(&q, Mode::Approximate, false).unwrap();
        let exact = core.run_query_at(&q, Mode::Exact, false).unwrap();
        assert_eq!(approx.len(), 2);
        assert_eq!(exact.len(), 2);
        assert!(exact[0].detail != approx[0].detail || exact[0].score != approx[0].score);
    }
}
