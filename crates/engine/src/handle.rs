//! Per-user session handles over a shared [`EngineCore`].
//!
//! A [`SessionHandle`] owns only the §4.1 exploration state — the focus
//! set, the event log, and per-user knobs (mode override, focus
//! over-fetch, re-ranking weights) — and borrows everything heavy from an
//! `Arc<EngineCore>`. Handles are cheap to create, independent of each
//! other, and `Send`: spawn one per user (or per thread) over a single
//! core snapshot.

use crate::candidates::CandidateStrategy;
use crate::core::{EngineCore, Staleness};
use crate::error::{EngineError, Result};
use crate::executor::Mode;
use crate::neighborhood::NeighborhoodWeights;
use crate::query::InsightQuery;
use crate::recommend::{Carousel, CarouselConfig, DEFAULT_FOCUS_OVERFETCH};
use crate::session::Session;
use crate::stream::PublishedCore;
use crate::trace::Explained;
use foresight_insight::{AttrTuple, InsightInstance};
use std::sync::Arc;

/// When a handle bound to a [`PublishedCore`] adopts newer snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdoptPolicy {
    /// Only on an explicit [`SessionHandle::refresh`] — queries keep the
    /// adopted snapshot no matter how far it falls behind.
    #[default]
    Manual,
    /// Check for (and adopt) a newer snapshot before every query.
    EveryQuery,
    /// Adopt before a query only once the held snapshot trails the ingest
    /// head by more than this many rows — bounded staleness with minimal
    /// publication-slot traffic.
    MaxRowsBehind(u64),
}

/// One user's view of a shared engine core: exploration state plus
/// per-user execution knobs. All heavy state lives in the
/// [`EngineCore`]; queries on a handle never block other handles.
pub struct SessionHandle {
    core: Arc<EngineCore>,
    session: Session,
    /// This user's scoring mode (seeded from the core's published default).
    mode: Mode,
    /// This user's parallel-execution preference.
    parallel: bool,
    /// This user's candidate-generation strategy — the recall-vs-speed
    /// knob for pairwise classes over wide tables.
    candidates: CandidateStrategy,
    focus_overfetch: usize,
    weights: NeighborhoodWeights,
    /// Trace one query in every `trace_every` (0 = sampling off). Plain
    /// fields, not atomics: the handle is per-user `&mut` state, so a
    /// sampled-out query costs no synchronized operation at all.
    trace_every: u64,
    /// Which residue of the counter is traced — derived from the sampling
    /// seed, so distinct seeds trace distinct (but each reproducible)
    /// query subsets.
    trace_phase: u64,
    /// Queries issued since sampling was configured.
    trace_counter: u64,
    /// The stream publication point this handle follows, when bound.
    published: Option<Arc<PublishedCore>>,
    /// When to adopt newer published snapshots.
    adopt: AdoptPolicy,
    /// The publish version last adopted, to skip no-op slot reads.
    adopted_version: u64,
}

const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SessionHandle>();
};

impl SessionHandle {
    /// A fresh session over `core`, inheriting the core's published mode
    /// and parallelism defaults.
    pub fn new(core: Arc<EngineCore>) -> Self {
        let mut session = Session::new(core.source().name());
        // stamp the schema fingerprint so saves from this handle can be
        // validated by `restore_session_checked` on any other core
        session.schema = Some(core.source().schema().names().map(str::to_owned).collect());
        let mode = core.mode();
        let parallel = core.parallel();
        Self {
            core,
            session,
            mode,
            parallel,
            candidates: CandidateStrategy::Auto,
            focus_overfetch: DEFAULT_FOCUS_OVERFETCH,
            weights: NeighborhoodWeights::default(),
            trace_every: 0,
            trace_phase: 0,
            trace_counter: 0,
            published: None,
            adopt: AdoptPolicy::Manual,
            adopted_version: 0,
        }
    }

    /// Binds this handle to a stream's publication point: the handle keeps
    /// serving its current snapshot until [`refresh`](Self::refresh) — or
    /// the [`AdoptPolicy`] set via
    /// [`set_adopt_policy`](Self::set_adopt_policy) — swaps in a newer one.
    /// Session state (focus, history, knobs) survives every swap.
    pub fn bind_stream(&mut self, published: Arc<PublishedCore>) {
        self.adopted_version = published.version();
        self.core = published.latest();
        self.published = Some(published);
    }

    /// Sets when this handle adopts newer published snapshots (no effect
    /// until [`bind_stream`](Self::bind_stream)).
    pub fn set_adopt_policy(&mut self, policy: AdoptPolicy) {
        self.adopt = policy;
    }

    /// Adopts the latest published snapshot. Returns `true` when the
    /// handle actually moved to a newer snapshot, `false` when it was
    /// already current or is not bound to a stream.
    pub fn refresh(&mut self) -> bool {
        let Some(published) = self.published.as_ref() else {
            return false;
        };
        let (latest, version) = published.latest_versioned();
        self.adopted_version = version;
        if Arc::ptr_eq(&latest, &self.core) {
            return false;
        }
        self.core = latest;
        true
    }

    /// How stale this handle's snapshot is relative to the ingest head
    /// (all-zero lag for a core with no stream writer attached).
    pub fn staleness(&self) -> Staleness {
        self.core.staleness()
    }

    /// Applies the adopt policy before a query.
    fn maybe_adopt(&mut self) {
        let Some(published) = self.published.as_ref() else {
            return;
        };
        let wants = match self.adopt {
            AdoptPolicy::Manual => false,
            AdoptPolicy::EveryQuery => published.version() != self.adopted_version,
            AdoptPolicy::MaxRowsBehind(limit) => self.core.rows_behind() > limit,
        };
        if wants {
            self.refresh();
        }
    }

    /// The shared core this handle reads through.
    pub fn core(&self) -> &Arc<EngineCore> {
        &self.core
    }

    /// This user's exploration state.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Replaces the session (e.g. one restored via [`Session::load`] from
    /// a colleague's save). No validation — see
    /// [`restore_session_checked`](Self::restore_session_checked) for the
    /// form remote servers use.
    pub fn restore_session(&mut self, session: Session) {
        self.session = session;
    }

    /// Replaces the session after validating it against the core this
    /// handle serves — for a stream-bound handle, the snapshot it would
    /// actually query next (the adopt policy is applied first, so a save
    /// is validated against the *adopting* core, not a snapshot the handle
    /// is about to abandon).
    ///
    /// # Errors
    /// [`EngineError::SessionMismatch`] when the session's dataset name or
    /// recorded column schema disagree with this core, when a focused or
    /// replayed attribute index is out of bounds, or when a recorded class
    /// id is not registered here — any of which would let stale-keyed
    /// state (cached scores, focus tuples from a different table shape)
    /// leak into this core's answers. The handle's current session is kept
    /// on error.
    pub fn restore_session_checked(&mut self, session: Session) -> Result<()> {
        self.maybe_adopt();
        self.validate_session(&session)?;
        self.session = session;
        Ok(())
    }

    /// The `restore_session_checked` validation: dataset name, schema
    /// fingerprint, attribute bounds, class registration.
    fn validate_session(&self, session: &Session) -> Result<()> {
        let source = self.core.source();
        if session.dataset != source.name() {
            return Err(EngineError::SessionMismatch(format!(
                "session belongs to dataset `{}`, this core serves `{}`",
                session.dataset,
                source.name()
            )));
        }
        let names: Vec<&str> = source.schema().names().collect();
        if let Some(schema) = &session.schema {
            if schema.len() != names.len() || schema.iter().zip(names.iter()).any(|(a, b)| a != b) {
                return Err(EngineError::SessionMismatch(format!(
                    "schema mismatch: session recorded {} columns, core has {} \
                     (the dataset changed shape since the save)",
                    schema.len(),
                    names.len()
                )));
            }
        }
        let n_cols = names.len();
        let check_attrs = |attrs: &AttrTuple| -> Result<()> {
            for idx in attrs.indices() {
                if idx >= n_cols {
                    return Err(EngineError::SessionMismatch(format!(
                        "attribute index {idx} is out of bounds for a {n_cols}-column core"
                    )));
                }
            }
            Ok(())
        };
        let check_class = |class_id: &str| -> Result<()> {
            if self.core.registry().get(class_id).is_none() {
                return Err(EngineError::SessionMismatch(format!(
                    "class `{class_id}` is not registered on this core"
                )));
            }
            Ok(())
        };
        for inst in &session.focus {
            check_class(&inst.class_id)?;
            check_attrs(&inst.attrs)?;
        }
        for query in session.queries() {
            check_class(&query.class_id)?;
            for &idx in &query.fixed_attrs {
                if idx >= n_cols {
                    return Err(EngineError::SessionMismatch(format!(
                        "fixed attribute {idx} is out of bounds for a {n_cols}-column core"
                    )));
                }
            }
            for excluded in &query.exclude {
                check_attrs(excluded)?;
            }
        }
        Ok(())
    }

    /// This user's scoring mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Overrides the scoring mode for this session only.
    ///
    /// # Errors
    /// Approximate mode requires the core to carry a sketch catalog; exact
    /// mode requires raw rows the source can still provide.
    pub fn set_mode(&mut self, mode: Mode) -> Result<()> {
        match mode {
            Mode::Approximate if self.core.catalog().is_none() => Err(EngineError::NoCatalog),
            Mode::Exact if self.core.source().is_sketch_only() => {
                Err(EngineError::ExactUnavailable(
                    "exact mode needs raw rows, but this source kept only sketches",
                ))
            }
            _ => {
                self.mode = mode;
                Ok(())
            }
        }
    }

    /// Enables rayon-parallel execution for this session's queries.
    pub fn set_parallel(&mut self, on: bool) {
        self.parallel = on;
    }

    /// This user's candidate-generation strategy.
    pub fn candidate_strategy(&self) -> CandidateStrategy {
        self.candidates
    }

    /// Sets how this session's pairwise queries generate candidates — the
    /// recall-vs-speed knob. [`CandidateStrategy::Auto`] (the default)
    /// switches to LSH bucket collisions only on wide tables with an index;
    /// [`CandidateStrategy::Exhaustive`] pins recall to 1.0;
    /// [`CandidateStrategy::Lsh`] forces collisions with a chosen number of
    /// probe tables. Per-session state — other handles over the same core
    /// are unaffected.
    pub fn set_candidate_strategy(&mut self, strategy: CandidateStrategy) {
        self.candidates = strategy;
    }

    /// Sets this session's neighborhood re-ranking weights.
    pub fn set_weights(&mut self, weights: NeighborhoodWeights) {
        self.weights = weights;
    }

    /// Sets this session's focus over-fetch factor used by carousel
    /// assembly (see [`DEFAULT_FOCUS_OVERFETCH`]); values below 1 are
    /// treated as 1.
    pub fn set_focus_overfetch(&mut self, factor: usize) {
        self.focus_overfetch = factor.max(1);
    }

    /// Configures deterministic trace sampling for this session: roughly
    /// one query in `1/rate` is captured as a full [`QueryTrace`] into the
    /// core's trace ring (`rate` = 0 turns sampling off; ≥ 1 traces every
    /// query). The sampled subset is a fixed residue of a per-handle query
    /// counter — seeded by `seed`, free of RNG on the query path — so the
    /// same (rate, seed, query sequence) always traces the same queries.
    ///
    /// Requires the `trace` cargo feature to have any effect; see also
    /// [`explain`](Self::explain) for forcing a single query's trace.
    ///
    /// [`QueryTrace`]: crate::trace::QueryTrace
    pub fn set_trace_sampling(&mut self, rate: f64, seed: u64) {
        if rate.is_nan() || rate <= 0.0 {
            self.trace_every = 0;
            self.trace_phase = 0;
            self.trace_counter = 0;
            return;
        }
        let every = (1.0 / rate.min(1.0)).round().max(1.0) as u64;
        self.trace_every = every;
        self.trace_phase = seed % every;
        self.trace_counter = 0;
    }

    /// Does the sampling schedule select the next query? Advances the
    /// per-handle counter; zero atomics when sampled out.
    fn sample_this_query(&mut self) -> bool {
        if !cfg!(feature = "trace") || self.trace_every == 0 {
            return false;
        }
        let n = self.trace_counter;
        self.trace_counter += 1;
        n % self.trace_every == self.trace_phase
    }

    /// Runs an insight query against the shared core and records it in
    /// this session's history. `&mut self` guards only the history append
    /// — the core is read-only throughout. When the sampling schedule set
    /// by [`set_trace_sampling`](Self::set_trace_sampling) selects this
    /// query, its trace is captured into the core's ring as a side effect.
    pub fn query(&mut self, query: &InsightQuery) -> Result<Vec<InsightInstance>> {
        self.maybe_adopt();
        let out = if self.sample_this_query() {
            self.core
                .run_query_traced_strategy(query, self.mode, self.parallel, self.candidates, false)?
                .0
        } else {
            self.core
                .run_query_strategy(query, self.mode, self.parallel, self.candidates)?
        };
        self.session.record_query(query, out.len());
        Ok(out)
    }

    /// EXPLAIN: runs the query with a forced trace — regardless of the
    /// sampling schedule or the tracer's runtime switch — and returns the
    /// results together with the captured [`QueryTrace`]. Results are
    /// bit-identical to [`query`](Self::query); the trace is `None` only
    /// when the `trace` cargo feature is compiled out. The query is
    /// recorded in this session's history like any other.
    ///
    /// [`QueryTrace`]: crate::trace::QueryTrace
    pub fn explain(&mut self, query: &InsightQuery) -> Result<Explained> {
        self.maybe_adopt();
        let (results, trace) = self.core.run_query_traced_strategy(
            query,
            self.mode,
            self.parallel,
            self.candidates,
            true,
        )?;
        self.session.record_query(query, results.len());
        Ok(Explained { results, trace })
    }

    /// Re-executes every query recorded in this session's history (e.g.
    /// one restored from a colleague's saved session) and returns the
    /// per-query results. The replay itself is appended to the history.
    pub fn replay_session(&mut self) -> Result<Vec<Vec<InsightInstance>>> {
        let queries: Vec<InsightQuery> = self.session.queries().into_iter().cloned().collect();
        queries.iter().map(|q| self.query(q)).collect()
    }

    /// Builds all carousels (one per class), re-ranked toward this
    /// session's focus set.
    pub fn carousels(&self, per_class: usize) -> Result<Vec<Carousel>> {
        self.core.carousels_strategy(
            &self.session,
            &CarouselConfig {
                per_class,
                weights: self.weights,
                focus_overfetch: self.focus_overfetch,
                parallel: self.parallel,
            },
            self.mode,
            self.candidates,
        )
    }

    /// Focuses an insight, steering this session's future recommendations
    /// toward its neighborhood.
    pub fn focus(&mut self, instance: InsightInstance) {
        self.session.focus(instance);
    }

    /// Removes a focused insight from this session.
    pub fn unfocus(&mut self, attrs: &AttrTuple) -> bool {
        self.session.unfocus(attrs)
    }

    /// Clears this session's focus set.
    pub fn clear_focus(&mut self) {
        self.session.clear_focus();
    }

    /// Profiles the dataset under this session's mode.
    pub fn profile(&self) -> Result<crate::profile::DatasetProfile> {
        self.core.profile_at(self.mode)
    }

    /// A deterministic snapshot of the shared core's telemetry — per-stage
    /// latency histograms, query counters, and score-cache traffic. All
    /// sessions over one core see the same registry.
    pub fn metrics(&self) -> crate::telemetry::MetricsSnapshot {
        self.core.metrics_snapshot()
    }

    /// The instantaneous health of this session's core under `policy` —
    /// see [`EngineCore::health`].
    pub fn health(&self, policy: &crate::monitor::HealthPolicy) -> crate::monitor::HealthState {
        self.core.health(policy)
    }

    /// Writes this session's state (focus set + history) to any writer.
    pub fn save_session(&self, writer: impl std::io::Write) -> Result<()> {
        self.session.save(writer)
    }

    /// Restores session state written by [`SessionHandle::save_session`].
    pub fn load_session(&mut self, reader: impl std::io::Read) -> Result<()> {
        self.session = Session::load(reader)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreBuilder;
    use foresight_data::{datasets, TableSource};

    fn shared_core() -> Arc<EngineCore> {
        CoreBuilder::new(TableSource::materialized(datasets::oecd())).freeze()
    }

    #[test]
    fn handles_share_one_core_without_interference() {
        let core = shared_core();
        let mut alice = core.handle();
        let mut bob = core.handle();
        let q = InsightQuery::class("linear-relationship").top_k(2);
        let a = alice.query(&q).unwrap();
        alice.focus(a[0].clone());
        assert_eq!(alice.session().focus.len(), 1);
        assert!(bob.session().focus.is_empty());
        assert!(bob.session().history.is_empty());
        assert_eq!(bob.query(&q).unwrap(), a);
        assert_eq!(alice.session().history.len(), 2); // query + focus
        assert_eq!(bob.session().history.len(), 1);
    }

    #[test]
    fn session_round_trips_between_handles() {
        let core = shared_core();
        let mut alice = core.handle();
        let q = InsightQuery::class("skew").top_k(1);
        let top = alice.query(&q).unwrap();
        alice.focus(top[0].clone());
        let mut buf = Vec::new();
        alice.save_session(&mut buf).unwrap();

        let mut colleague = core.handle();
        colleague.load_session(buf.as_slice()).unwrap();
        assert_eq!(colleague.session(), alice.session());
        let replayed = colleague.replay_session().unwrap();
        assert_eq!(replayed, vec![top]);
    }

    #[test]
    fn metrics_cover_every_query_stage() {
        let mut builder = CoreBuilder::new(TableSource::materialized(datasets::oecd()));
        builder
            .preprocess(&foresight_sketch::CatalogConfig::default())
            .unwrap();
        let core = builder.freeze();
        let mut h = core.handle();
        h.query(&InsightQuery::class("linear-relationship").top_k(3))
            .unwrap();
        h.query(&InsightQuery::class("skew").top_k(3).diversify(0.5))
            .unwrap();
        h.carousels(2).unwrap();
        h.profile().unwrap();
        let snap = h.metrics();
        if cfg!(feature = "telemetry") {
            for stage in [
                "preprocess",
                "sketch_build",
                "score",
                "rank",
                "diversify",
                "describe",
                "carousel",
                "profile",
                "freeze",
            ] {
                assert!(
                    snap.stage(stage).unwrap().count > 0,
                    "stage {stage} has no samples:\n{}",
                    snap.to_text()
                );
            }
            assert_eq!(snap.queries.total, 2);
            assert_eq!(snap.queries.approximate, 2);
            assert_eq!(snap.queries.by_class["skew"], 1);
        } else {
            assert_eq!(snap.queries.total, 0);
            assert!(snap.stages.iter().all(|s| s.count == 0));
        }
        // cache counters flow regardless of the telemetry feature
        let cache = snap.cache.expect("core snapshots carry cache traffic");
        assert!(cache.hits + cache.misses > 0);
    }

    #[test]
    fn metrics_registry_survives_republish() {
        let core = shared_core();
        core.handle()
            .query(&InsightQuery::class("skew").top_k(1))
            .unwrap();
        let before = core.metrics_snapshot().queries.total;
        let mut writer = CoreBuilder::from_arc(Arc::clone(&core));
        writer.set_parallel(false);
        let republished = writer.freeze();
        assert_eq!(republished.metrics_snapshot().queries.total, before);
        if cfg!(feature = "telemetry") {
            assert!(
                republished
                    .metrics_snapshot()
                    .stage("freeze")
                    .unwrap()
                    .count
                    >= 2
            );
        }
    }

    #[test]
    fn kernel_mode_shows_in_metrics_and_explain() {
        let core = shared_core();
        let mut h = core.handle();
        let expected = foresight_stats::kernel::mode().name();
        assert_eq!(h.metrics().kernel, expected);
        let ex = h
            .explain(&InsightQuery::class("linear-relationship").top_k(2))
            .unwrap();
        match ex.trace {
            Some(trace) => {
                let score = trace.root.child("score").expect("score span");
                assert_eq!(score.attr("kernel"), Some(expected));
            }
            None => assert!(!cfg!(feature = "trace")),
        }
    }

    #[test]
    fn bound_handle_adopts_per_policy() {
        use crate::stream::{RepublishPolicy, StreamConfig, StreamWriter};
        use foresight_data::TableBuilder;
        let base: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let table = |offset: usize| {
            TableBuilder::new("t")
                .numeric("x", base.iter().map(|v| v + offset as f64).collect())
                .numeric(
                    "y",
                    base.iter().map(|v| 2.0 * (v + offset as f64)).collect(),
                )
                .build()
                .unwrap()
        };
        let core = CoreBuilder::new(TableSource::materialized(table(0))).freeze();
        let writer = StreamWriter::spawn(
            core,
            StreamConfig {
                policy: RepublishPolicy {
                    max_rows: 100,
                    ..RepublishPolicy::default()
                },
                ..StreamConfig::default()
            },
        );
        let mut manual = writer.published().latest().handle();
        manual.bind_stream(writer.published());
        let mut eager = writer.published().latest().handle();
        eager.bind_stream(writer.published());
        eager.set_adopt_policy(AdoptPolicy::EveryQuery);

        writer.send(table(100)).unwrap();
        writer.flush().unwrap();

        let q = InsightQuery::class("linear-relationship").top_k(1);
        manual.query(&q).unwrap();
        assert_eq!(
            manual.staleness().snapshot_rows,
            100,
            "manual handle keeps its snapshot"
        );
        eager.query(&q).unwrap();
        assert_eq!(
            eager.staleness().snapshot_rows,
            200,
            "every-query handle adopted the republish"
        );
        assert!(manual.refresh(), "manual refresh adopts");
        assert_eq!(manual.staleness().snapshot_rows, 200);
        assert!(!manual.refresh(), "already current");
        writer.finish().unwrap();
    }

    #[test]
    fn mode_override_is_per_handle() {
        let mut builder = CoreBuilder::new(TableSource::materialized(datasets::oecd()));
        builder
            .preprocess(&foresight_sketch::CatalogConfig::default())
            .unwrap();
        let core = builder.freeze();
        let mut approx = core.handle();
        let mut exact = core.handle();
        assert_eq!(approx.mode(), Mode::Approximate);
        exact.set_mode(Mode::Exact).unwrap();
        let q = InsightQuery::class("linear-relationship").top_k(1);
        let a = approx.query(&q).unwrap();
        let e = exact.query(&q).unwrap();
        assert_eq!(approx.mode(), Mode::Approximate, "unchanged by neighbor");
        assert_eq!(a.len(), 1);
        assert_eq!(e.len(), 1);
    }
}
