//! Candidate generation strategies: the quadratic class scan vs. LSH bucket
//! collisions.
//!
//! Every pairwise insight class historically enumerated all O(d²) column
//! pairs and let scoring sort them out. [`CandidateSource`] is the engine's
//! seam between that scan and the [`LshIndex`] built alongside the catalog:
//! classes that declare a pairwise candidate shape
//! ([`CandidatePruning::NumericPairs`] / [`CandidatePruning::AllPairs`])
//! can draw candidates from bucket collisions in ~O(d·L), with the
//! existing exact/sketch scorer as the verify step. Everything else — and
//! every run below the width threshold, or with recall pinned to 1.0 —
//! falls back to the class's own `candidates()` scan.

use foresight_data::Table;
use foresight_insight::{AttrTuple, CandidatePruning, InsightClass};
use foresight_sketch::lsh::LshIndex;
use serde::{Deserialize, Serialize};

/// Whether the `FORESIGHT_DISABLE_LSH=1` environment variable
/// force-disables the index. The freeze path consults this before building
/// or refreshing; CI runs the whole test suite under it to prove every
/// query path falls back to the exhaustive scan when no index exists.
pub fn lsh_disabled() -> bool {
    std::env::var("FORESIGHT_DISABLE_LSH").is_ok_and(|v| v == "1")
}

/// Minimum numeric width before [`CandidateStrategy::Auto`] switches from
/// the quadratic scan to LSH collisions. Below this the d² scan is already
/// microseconds and the index's recall loss buys nothing.
pub const LSH_WIDTH_THRESHOLD: usize = 64;

/// How a query's candidate tuples are generated — the recall-vs-speed knob
/// surfaced on `SessionHandle` and over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CandidateStrategy {
    /// Use LSH collisions when an index exists and the table is at least
    /// [`LSH_WIDTH_THRESHOLD`] numeric columns wide; quadratic scan
    /// otherwise. The default.
    #[default]
    Auto,
    /// Force LSH collisions whenever an index exists, probing `probes`
    /// tables (`None` = all L tables). Fewer probes = faster, lower recall.
    Lsh {
        /// Number of tables to probe; `None` probes all of them.
        probes: Option<usize>,
    },
    /// Recall = 1.0: always the class's own quadratic scan, bit-identical
    /// to an engine without the index.
    Exhaustive,
}

impl CandidateStrategy {
    /// Parses the wire/REPL spelling: `auto`, `exhaustive` (alias `exact`),
    /// `lsh`, or `lsh:<probes>`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "auto" => Some(CandidateStrategy::Auto),
            "exhaustive" | "exact" => Some(CandidateStrategy::Exhaustive),
            "lsh" => Some(CandidateStrategy::Lsh { probes: None }),
            other => {
                let probes = other.strip_prefix("lsh:")?.parse().ok()?;
                Some(CandidateStrategy::Lsh {
                    probes: Some(probes),
                })
            }
        }
    }

    /// The stable spelling accepted back by [`CandidateStrategy::parse`].
    pub fn name(&self) -> String {
        match self {
            CandidateStrategy::Auto => "auto".to_owned(),
            CandidateStrategy::Exhaustive => "exhaustive".to_owned(),
            CandidateStrategy::Lsh { probes: None } => "lsh".to_owned(),
            CandidateStrategy::Lsh { probes: Some(p) } => format!("lsh:{p}"),
        }
    }
}

/// Where a query's candidates came from, with the collision accounting that
/// EXPLAIN and telemetry report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateOrigin {
    /// The class's own `candidates()` scan (quadratic for pairwise classes).
    ClassScan,
    /// LSH bucket collisions (plus, for [`CandidatePruning::AllPairs`]
    /// classes, the exhaustively-enumerated pairs outside the index).
    Lsh {
        /// Unordered numeric pairs produced by bucket collisions — the `N`
        /// in "candidates from LSH bucket collisions: N of d²".
        collision_pairs: usize,
        /// Numeric columns the index has seen (indexed + skipped) — the `d`.
        universe_columns: usize,
        /// Tables actually probed — the `L` reported by EXPLAIN.
        tables_probed: usize,
    },
}

/// A generated candidate list plus its provenance.
#[derive(Debug, Clone)]
pub struct CandidatePlan {
    /// The candidate tuples, ready for the filter → score → rank pipeline.
    pub tuples: Vec<AttrTuple>,
    /// How they were generated.
    pub origin: CandidateOrigin,
}

/// Resolves a [`CandidateStrategy`] against the (optional) LSH index and a
/// class's declared pruning shape. Copyable view — borrows the index from
/// the core snapshot that owns it.
#[derive(Debug, Clone, Copy)]
pub struct CandidateSource<'a> {
    lsh: Option<&'a LshIndex>,
    strategy: CandidateStrategy,
}

impl<'a> CandidateSource<'a> {
    /// A source over `lsh` (if built) under `strategy`.
    pub fn new(lsh: Option<&'a LshIndex>, strategy: CandidateStrategy) -> Self {
        Self { lsh, strategy }
    }

    /// The recall-1.0 source: always the class scan. This is what a plain
    /// [`Executor`](crate::Executor) uses unless told otherwise.
    pub fn exhaustive() -> Self {
        Self {
            lsh: None,
            strategy: CandidateStrategy::Exhaustive,
        }
    }

    /// The strategy in effect.
    pub fn strategy(&self) -> CandidateStrategy {
        self.strategy
    }

    /// Would `class` on `table` draw candidates from LSH collisions under
    /// this source? (Used by the core to decide whether the prebuilt
    /// exhaustive index may serve the query instead of the executor.)
    pub fn would_use_lsh(&self, class: &dyn InsightClass, table: &Table) -> bool {
        self.resolves_to_lsh(class.pruning(), table)
    }

    fn resolves_to_lsh(&self, pruning: CandidatePruning, table: &Table) -> bool {
        if pruning == CandidatePruning::None || self.lsh.is_none() {
            return false;
        }
        match self.strategy {
            CandidateStrategy::Exhaustive => false,
            CandidateStrategy::Lsh { .. } => true,
            CandidateStrategy::Auto => table.numeric_indices().len() >= LSH_WIDTH_THRESHOLD,
        }
    }

    /// Generates candidates for `class` on `table`.
    pub fn generate(&self, class: &dyn InsightClass, table: &Table) -> CandidatePlan {
        let pruning = class.pruning();
        if !self.resolves_to_lsh(pruning, table) {
            return CandidatePlan {
                tuples: class.candidates(table),
                origin: CandidateOrigin::ClassScan,
            };
        }
        let index = self.lsh.expect("resolves_to_lsh checked");
        let probes = match self.strategy {
            CandidateStrategy::Lsh { probes: Some(p) } => p,
            _ => usize::MAX, // all tables
        };
        let (pairs, tables_probed) = index.candidate_pairs(probes);
        let collision_pairs = pairs.len();
        let mut tuples: Vec<AttrTuple> = pairs
            .into_iter()
            .map(|(a, b)| AttrTuple::Two(a, b))
            .collect();
        if pruning == CandidatePruning::AllPairs {
            // The index covers only numeric×numeric; pairs touching a
            // non-numeric column keep the exhaustive enumeration.
            let mut numeric = vec![false; table.n_cols()];
            for i in table.numeric_indices() {
                numeric[i] = true;
            }
            for a in 0..table.n_cols() {
                for b in (a + 1)..table.n_cols() {
                    if !(numeric[a] && numeric[b]) {
                        tuples.push(AttrTuple::Two(a, b));
                    }
                }
            }
        }
        CandidatePlan {
            tuples,
            origin: CandidateOrigin::Lsh {
                collision_pairs,
                universe_columns: index.universe_columns(),
                tables_probed,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_parse_roundtrip() {
        for s in ["auto", "exhaustive", "lsh", "lsh:3"] {
            let parsed = CandidateStrategy::parse(s).unwrap();
            assert_eq!(parsed.name(), s);
            assert_eq!(CandidateStrategy::parse(&parsed.name()), Some(parsed));
        }
        assert_eq!(
            CandidateStrategy::parse("exact"),
            Some(CandidateStrategy::Exhaustive)
        );
        assert_eq!(CandidateStrategy::parse("lsh:"), None);
        assert_eq!(CandidateStrategy::parse("lsh:x"), None);
        assert_eq!(CandidateStrategy::parse("nope"), None);
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(CandidateStrategy::default(), CandidateStrategy::Auto);
    }
}
