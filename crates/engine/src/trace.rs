//! Request-scoped tracing: the "why was *this* query slow, why did *this*
//! insight rank third" half of observability.
//!
//! [`crate::telemetry`] aggregates — per-stage histograms over the core's
//! whole life. This module captures *one query at a time*: a [`QueryTrace`]
//! is a span tree with a stable query id plus per-stage attributes
//! (candidates generated, this query's score-cache hits and misses, the
//! sketch-vs-exact path each candidate took, typed skip reasons, diversify
//! counts) and the final top-k annotated with per-candidate provenance and
//! rank deltas against the undiversified ordering.
//!
//! Capture routes:
//!
//! * **Sampling** — [`crate::SessionHandle::set_trace_sampling`] traces a
//!   deterministic 1-in-N subset of a session's queries (seeded phase, no
//!   RNG on the query path).
//! * **EXPLAIN** — [`crate::SessionHandle::explain`] /
//!   [`crate::Foresight::explain`] force a trace for one query regardless
//!   of sampling.
//! * **Slow-query log** — a threshold on the [`Tracer`] records every
//!   query that overruns it, traced or not.
//!
//! Finished traces land in a fixed-capacity ring on the core's [`Tracer`]
//! (claim by atomic `fetch_add`, per-slot swap — pushes never serialize
//! behind one lock) and render three ways: a text tree, deterministic
//! pretty JSON, and Chrome trace-event JSON loadable in Perfetto or
//! `chrome://tracing`.
//!
//! # The `trace` cargo feature
//!
//! Everything here compiles out without `--features trace`: the
//! [`TraceBuilder`] threaded through the executor is permanently inert
//! (every method an empty no-op the optimizer removes), `explain` still
//! returns results but no trace, and the only residual cost on the
//! untraced query path is one relaxed atomic load for the slow-query
//! threshold — `exp_trace` gates the 1%-sampled overhead at ≤3%.

use crate::executor::Mode;
use crate::query::InsightQuery;
use crate::telemetry::clock;
use foresight_data::Table;
use foresight_insight::{AttrTuple, InsightInstance};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default capacity of the finished-trace ring on a [`Tracer`]: the last N
/// traces are retrievable, older ones are overwritten in arrival order.
/// Tune per core with [`Tracer::with_capacities`] (or
/// [`CoreBuilder::set_trace_capacities`](crate::CoreBuilder::set_trace_capacities)).
pub const TRACE_RING_CAPACITY: usize = 64;

/// Default maximum retained slow-query entries; older entries are dropped
/// first. Tune per core with [`Tracer::with_capacities`].
pub const SLOW_LOG_CAPACITY: usize = 128;

/// How many example attribute tuples each skip reason keeps (the per-reason
/// *count* stays exact past the cap).
const MAX_SKIP_SAMPLES: usize = 8;

/// Why a candidate tuple was dropped between enumeration and ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SkipReason {
    /// The class scored the tuple `None` (constant column, too few rows).
    Degenerate,
    /// Sketch-only execution and the class has no sketch estimator for the
    /// tuple — there are no raw rows to fall back to.
    NoSketchEstimator,
    /// The score came back non-finite (NaN/∞) and never enters ranking.
    NonFinite,
    /// The score fell outside the query's `score_range`.
    OutOfRange,
}

impl SkipReason {
    /// The stable kebab-case name used in renderings and JSON.
    pub fn name(self) -> &'static str {
        match self {
            SkipReason::Degenerate => "degenerate",
            SkipReason::NoSketchEstimator => "no-sketch-estimator",
            SkipReason::NonFinite => "non-finite",
            SkipReason::OutOfRange => "out-of-range",
        }
    }
}

/// Which code path produced one candidate's score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScorePath {
    /// Exact metric over the raw columns.
    Exact,
    /// Sketch estimator over the catalog.
    Sketch,
    /// Approximate mode, but the class had no sketch estimator — fell back
    /// to the exact path.
    SketchFallbackExact,
    /// Sketch-only execution with no estimator: the candidate was dropped.
    NoSketch,
    /// Served from the cross-query score cache (provenance of the original
    /// computation is not retained by the cache).
    Cache,
}

impl ScorePath {
    pub(crate) fn name(self) -> &'static str {
        match self {
            ScorePath::Exact => "exact",
            ScorePath::Sketch => "sketch",
            ScorePath::SketchFallbackExact => "exact-fallback",
            ScorePath::NoSketch => "no-sketch",
            ScorePath::Cache => "cache",
        }
    }
}

/// One node of a finished trace's span tree. `start_ns` is relative to the
/// trace start, so identical executions produce structurally identical
/// trees (only the timing values vary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Stage name (`query`, `candidates`, `score`, `rank`, `diversify`,
    /// `describe`, `index_serve`).
    pub name: String,
    /// Offset from the trace start, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
    /// Stage attributes, in insertion order.
    pub attrs: Vec<(String, String)>,
    /// Child spans, in start order.
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    /// Looks up a direct child by name.
    pub fn child(&self, name: &str) -> Option<&TraceSpan> {
        self.children.iter().find(|c| c.name == name)
    }

    /// One attribute's value, by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One ranked result inside a [`QueryTrace`], annotated with provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracedResult {
    /// Final rank, 1-based.
    pub rank: usize,
    /// Column names of the attribute tuple, `" × "`-joined.
    pub attrs: String,
    /// The ranking score.
    pub score: f64,
    /// The metric behind the score.
    pub metric: String,
    /// Whether this query got the score from the cross-query cache.
    pub cache_hit: bool,
    /// The scoring path ([`ScorePath::name`]: `exact`, `sketch`,
    /// `exact-fallback`, `cache`, or `index`).
    pub path: String,
    /// `undiversified_rank − final_rank`: positive means diversification
    /// promoted the insight, 0 means it held (always 0 without MMR).
    pub rank_delta: i64,
}

/// Dropped candidates grouped by [`SkipReason`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkipSummary {
    /// The reason's stable name.
    pub reason: String,
    /// How many candidates it claimed (exact).
    pub count: u64,
    /// Up to [`MAX_SKIP_SAMPLES`] example tuples, by column name.
    pub samples: Vec<String>,
}

/// Candidate accounting for a query that drew its pairs from LSH bucket
/// collisions instead of the quadratic scan — the numbers behind EXPLAIN's
/// "candidates from LSH bucket collisions: N of d², tables probed: L".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LshCandidates {
    /// Unordered numeric pairs produced by bucket collisions (the `N`).
    pub collision_pairs: usize,
    /// Numeric columns the index covers, indexed + skipped (the `d`).
    pub universe_columns: usize,
    /// Tables actually probed (the `L` — the recall-vs-speed knob).
    pub tables_probed: usize,
}

/// A finished, immutable record of one traced query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTrace {
    /// Process-stable id from the core's [`Tracer`] counter.
    pub query_id: u64,
    /// The queried insight class.
    pub class_id: String,
    /// The metric that ranked the results.
    pub metric: String,
    /// Execution mode (`exact` / `approximate`).
    pub mode: String,
    /// Whether the trace was forced by `explain` (vs. sampled).
    pub forced: bool,
    /// Whether the prebuilt insight index answered the query.
    pub index_served: bool,
    /// End-to-end wall time, ns.
    pub total_ns: u64,
    /// Candidates the class enumerated before query filters.
    pub candidates_generated: usize,
    /// Candidates surviving fixed/semantic/exclusion filters.
    pub candidates_eligible: usize,
    /// LSH collision accounting when the index generated the candidates
    /// (`None` = quadratic class scan). Defaults on deserialize so traces
    /// from older peers still round-trip.
    #[serde(default)]
    pub lsh: Option<LshCandidates>,
    /// Score-cache hits for *this* query.
    pub cache_hits: u64,
    /// Score-cache misses for *this* query.
    pub cache_misses: u64,
    /// Scores this query wrote back to the cache.
    pub cache_stored: u64,
    /// Dropped candidates, grouped by reason (sorted by reason name).
    pub skips: Vec<SkipSummary>,
    /// The final top-k with provenance, in rank order.
    pub results: Vec<TracedResult>,
    /// The span tree, rooted at `query`.
    pub root: TraceSpan,
}

impl QueryTrace {
    /// Text tree rendering (the explorer's `explain` / `trace last` view).
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "query #{} {} (mode={}, metric={}{}{}) — {:.1} µs",
            self.query_id,
            self.class_id,
            self.mode,
            self.metric,
            if self.forced { ", explained" } else { "" },
            if self.index_served {
                ", index-served"
            } else {
                ""
            },
            self.total_ns as f64 / 1e3,
        );
        if let Some(epoch) = self.root.attr("snapshot_epoch") {
            let _ = match self.root.attr("rows_behind") {
                Some(k) => writeln!(
                    out,
                    "  served from snapshot @epoch {epoch}, {k} rows behind ingest head"
                ),
                None => writeln!(out, "  served from snapshot @epoch {epoch}"),
            };
        }
        let _ = writeln!(
            out,
            "  candidates: {} generated, {} eligible after filters",
            self.candidates_generated, self.candidates_eligible
        );
        if let Some(lsh) = &self.lsh {
            let _ = writeln!(
                out,
                "  candidates from LSH bucket collisions: {} of {}², tables probed: {}",
                lsh.collision_pairs, lsh.universe_columns, lsh.tables_probed
            );
        }
        let _ = writeln!(
            out,
            "  cache: {} hits / {} misses ({} stored)",
            self.cache_hits, self.cache_misses, self.cache_stored
        );
        for skip in &self.skips {
            let _ = writeln!(
                out,
                "  skipped {} × {} ({})",
                skip.count,
                skip.reason,
                skip.samples.join(", ")
            );
        }
        let _ = writeln!(out, "  spans:");
        render_span(&mut out, &self.root, 0);
        if !self.results.is_empty() {
            let _ = writeln!(out, "  top-k:");
            for r in &self.results {
                let _ = writeln!(
                    out,
                    "    #{:<2} {:>9.4}  {:<32} {:<18} cache={:<4} path={:<14} Δrank={:+}",
                    r.rank,
                    r.score,
                    r.attrs,
                    r.metric,
                    if r.cache_hit { "hit" } else { "miss" },
                    r.path,
                    r.rank_delta,
                );
            }
        }
        out
    }

    /// Deterministic pretty-printed JSON (structure is identical for
    /// identical executions; only timing values vary).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serializes")
    }

    /// Chrome trace-event JSON: an array of complete (`"ph": "X"`) events,
    /// one per span, `ts`/`dur` in microseconds, `pid` 1, `tid` = the query
    /// id. Loadable in Perfetto / `chrome://tracing`; events are emitted in
    /// pre-order so `ts` is monotonically non-decreasing.
    pub fn to_chrome_json(&self) -> String {
        let mut events = Vec::new();
        chrome_events(&self.root, self.query_id, &mut events);
        serde_json::to_string_pretty(&Value::Array(events)).expect("chrome events serialize")
    }
}

fn render_span(out: &mut String, span: &TraceSpan, depth: usize) {
    use std::fmt::Write;
    let attrs = span
        .attrs
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ");
    let _ = writeln!(
        out,
        "    {:indent$}{:<width$} {:>10.1} µs  {}",
        "",
        span.name,
        span.dur_ns as f64 / 1e3,
        attrs,
        indent = depth * 2,
        width = 14usize.saturating_sub(depth * 2).max(4),
    );
    for child in &span.children {
        render_span(out, child, depth + 1);
    }
}

fn chrome_events(span: &TraceSpan, tid: u64, out: &mut Vec<Value>) {
    let args: serde_json::Map<String, Value> = span
        .attrs
        .iter()
        .map(|(k, v)| (k.clone(), Value::String(v.clone())))
        .collect();
    out.push(json!({
        "name": span.name,
        "cat": "foresight",
        "ph": "X",
        "ts": span.start_ns as f64 / 1e3,
        "dur": span.dur_ns as f64 / 1e3,
        "pid": 1u64,
        "tid": tid,
        "args": Value::Object(args),
    }));
    for child in &span.children {
        chrome_events(child, tid, out);
    }
}

/// One slow-query log entry. Recorded for *every* query that overruns the
/// [`Tracer`] threshold — when the query also happened to be traced, the
/// full trace rides along.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The trace's query id, when the slow query was traced.
    pub query_id: Option<u64>,
    /// The queried class.
    pub class_id: String,
    /// Execution mode name.
    pub mode: String,
    /// End-to-end wall time, ns.
    pub total_ns: u64,
    /// Results returned.
    pub results: usize,
    /// The full trace, when one was being captured anyway.
    pub trace: Option<Arc<QueryTrace>>,
}

impl SlowQuery {
    /// One-line text rendering (the explorer's `slowlog` view).
    pub fn to_line(&self) -> String {
        format!(
            "{}  {:<28} {:<12} {:>10.2} ms  {} results{}",
            match self.query_id {
                Some(id) => format!("#{id:<5}"),
                None => "#-    ".to_owned(),
            },
            self.class_id,
            self.mode,
            self.total_ns as f64 / 1e6,
            self.results,
            if self.trace.is_some() {
                "  [traced]"
            } else {
                ""
            },
        )
    }
}

/// In-flight trace state. Lives only while its query executes.
struct ActiveTrace {
    query_id: u64,
    class_id: String,
    metric: String,
    mode: Mode,
    forced: bool,
    start_ns: u64,
    /// Span arena: parent links instead of nesting so `begin`/`end` are
    /// O(1) pushes; the tree is assembled once at finish.
    spans: Vec<SpanRec>,
    /// Indices into `spans` of the currently open nesting path.
    stack: Vec<usize>,
    candidates_generated: usize,
    candidates_eligible: usize,
    lsh: Option<LshCandidates>,
    cache_hits: u64,
    cache_misses: u64,
    cache_stored: u64,
    index_served: bool,
    /// Survivor provenance, for annotating the final top-k.
    survivors: Vec<(AttrTuple, bool, ScorePath)>,
    /// `(reason, count, samples)` sorted by reason name at finish.
    skips: Vec<(SkipReason, u64, Vec<String>)>,
    /// Full descending-score order before MMR, when diversification ran.
    undiversified: Option<Vec<AttrTuple>>,
    results: Vec<TracedResult>,
}

struct SpanRec {
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
    parent: Option<usize>,
    attrs: Vec<(String, String)>,
}

/// The request-scoped collector threaded through the executor. Inert (all
/// methods empty, no allocation) when the query is not being traced —
/// which is always the case without the `trace` cargo feature.
pub struct TraceBuilder {
    inner: Option<Box<ActiveTrace>>,
}

impl TraceBuilder {
    /// A permanently inert builder — the untraced query path.
    pub(crate) fn disabled() -> Self {
        Self { inner: None }
    }

    fn active(query_id: u64, query: &InsightQuery, mode: Mode, forced: bool) -> Self {
        let start_ns = clock::now_ns();
        Self {
            inner: Some(Box::new(ActiveTrace {
                query_id,
                class_id: query.class_id.clone(),
                metric: query.metric.clone().unwrap_or_default(),
                mode,
                forced,
                start_ns,
                spans: vec![SpanRec {
                    name: "query",
                    start_ns,
                    end_ns: start_ns,
                    parent: None,
                    attrs: Vec::new(),
                }],
                stack: vec![0],
                candidates_generated: 0,
                candidates_eligible: 0,
                lsh: None,
                cache_hits: 0,
                cache_misses: 0,
                cache_stored: 0,
                index_served: false,
                survivors: Vec::new(),
                skips: Vec::new(),
                undiversified: None,
                results: Vec::new(),
            })),
        }
    }

    /// Whether this query is being traced. Callers gate any work done
    /// purely to feed the trace (formatting, cloning) behind this.
    #[inline]
    pub(crate) fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a child span under the current one.
    #[inline]
    pub(crate) fn begin(&mut self, name: &'static str) {
        if let Some(t) = self.inner.as_deref_mut() {
            let now = clock::now_ns();
            let parent = t.stack.last().copied();
            t.spans.push(SpanRec {
                name,
                start_ns: now,
                end_ns: now,
                parent,
                attrs: Vec::new(),
            });
            t.stack.push(t.spans.len() - 1);
        }
    }

    /// Closes the current span.
    #[inline]
    pub(crate) fn end(&mut self) {
        if let Some(t) = self.inner.as_deref_mut() {
            if t.stack.len() > 1 {
                let idx = t.stack.pop().expect("non-root span open");
                t.spans[idx].end_ns = clock::now_ns();
            }
        }
    }

    /// Attaches `key=value` to the current span. The value closure only
    /// runs when tracing — callers pass `|| format!(...)` freely.
    #[inline]
    pub(crate) fn attr(&mut self, key: &'static str, value: impl FnOnce() -> String) {
        if let Some(t) = self.inner.as_deref_mut() {
            let idx = *t.stack.last().expect("root span always open");
            t.spans[idx].attrs.push((key.to_owned(), value()));
        }
    }

    pub(crate) fn set_metric(&mut self, metric: &str) {
        if let Some(t) = self.inner.as_deref_mut() {
            if t.metric.is_empty() {
                t.metric = metric.to_owned();
            }
        }
    }

    pub(crate) fn set_candidates(&mut self, generated: usize, eligible: usize) {
        if let Some(t) = self.inner.as_deref_mut() {
            t.candidates_generated = generated;
            t.candidates_eligible = eligible;
        }
    }

    /// Records that this query's candidates came from LSH bucket collisions.
    pub(crate) fn set_lsh(&mut self, info: LshCandidates) {
        if let Some(t) = self.inner.as_deref_mut() {
            t.lsh = Some(info);
        }
    }

    /// Records this query's own cache traffic, plumbed back from
    /// `lookup_batch`/`store_batch`.
    pub(crate) fn set_cache_traffic(&mut self, hits: u64, misses: u64, stored: u64) {
        if let Some(t) = self.inner.as_deref_mut() {
            t.cache_hits = hits;
            t.cache_misses = misses;
            t.cache_stored = stored;
        }
    }

    pub(crate) fn set_index_served(&mut self) {
        if let Some(t) = self.inner.as_deref_mut() {
            t.index_served = true;
        }
    }

    /// Classifies every scored candidate: survivors keep their provenance
    /// for top-k annotation, drops are grouped into typed skip reasons.
    /// `scores` and `provenance` align positionally with `candidates`.
    pub(crate) fn record_scoring(
        &mut self,
        table: &Table,
        query: &InsightQuery,
        candidates: &[AttrTuple],
        scores: &[Option<f64>],
        provenance: &[(bool, ScorePath)],
    ) {
        let Some(t) = self.inner.as_deref_mut() else {
            return;
        };
        for ((attrs, score), &(cached, path)) in candidates.iter().zip(scores).zip(provenance) {
            let reason = match score {
                None if path == ScorePath::NoSketch => SkipReason::NoSketchEstimator,
                None => SkipReason::Degenerate,
                Some(s) if !s.is_finite() => SkipReason::NonFinite,
                Some(s) if !query.matches_range(*s) => SkipReason::OutOfRange,
                Some(_) => {
                    t.survivors.push((*attrs, cached, path));
                    continue;
                }
            };
            match t.skips.iter_mut().find(|(r, _, _)| *r == reason) {
                Some((_, count, samples)) => {
                    *count += 1;
                    if samples.len() < MAX_SKIP_SAMPLES {
                        samples.push(attr_names(table, attrs));
                    }
                }
                None => t.skips.push((reason, 1, vec![attr_names(table, attrs)])),
            }
        }
    }

    /// Snapshots the full pre-MMR ordering so final ranks get deltas.
    pub(crate) fn set_undiversified(&mut self, order: Vec<AttrTuple>) {
        if let Some(t) = self.inner.as_deref_mut() {
            t.undiversified = Some(order);
        }
    }

    /// Annotates the final top-k with provenance and rank deltas.
    pub(crate) fn record_results(&mut self, table: &Table, out: &[InsightInstance]) {
        let Some(t) = self.inner.as_deref_mut() else {
            return;
        };
        t.results = out
            .iter()
            .enumerate()
            .map(|(i, inst)| {
                let rank = i + 1;
                let (cache_hit, path) = if t.index_served {
                    (false, "index")
                } else {
                    t.survivors
                        .iter()
                        .find(|(a, _, _)| *a == inst.attrs)
                        .map(|&(_, cached, path)| (cached, path.name()))
                        .unwrap_or((false, "unknown"))
                };
                let rank_delta = t
                    .undiversified
                    .as_ref()
                    .and_then(|pre| pre.iter().position(|a| *a == inst.attrs))
                    .map(|pre_rank| (pre_rank + 1) as i64 - rank as i64)
                    .unwrap_or(0);
                TracedResult {
                    rank,
                    attrs: attr_names(table, &inst.attrs),
                    score: inst.score,
                    metric: inst.metric.clone(),
                    cache_hit,
                    path: path.to_owned(),
                    rank_delta,
                }
            })
            .collect();
    }

    /// Seals the builder into an immutable [`QueryTrace`]; `None` when the
    /// builder was inert.
    fn finish(self) -> Option<QueryTrace> {
        let mut t = *self.inner?;
        let end_ns = clock::now_ns();
        // close anything left open (error paths), then the root
        for &idx in t.stack.iter().skip(1) {
            t.spans[idx].end_ns = end_ns;
        }
        t.spans[0].end_ns = end_ns;
        let root = assemble_span(&t.spans, 0, t.start_ns);
        t.skips.sort_by_key(|(r, _, _)| r.name());
        Some(QueryTrace {
            query_id: t.query_id,
            class_id: t.class_id,
            metric: t.metric,
            mode: t.mode.name().to_owned(),
            forced: t.forced,
            index_served: t.index_served,
            total_ns: end_ns.saturating_sub(t.start_ns),
            candidates_generated: t.candidates_generated,
            candidates_eligible: t.candidates_eligible,
            lsh: t.lsh,
            cache_hits: t.cache_hits,
            cache_misses: t.cache_misses,
            cache_stored: t.cache_stored,
            skips: t
                .skips
                .into_iter()
                .map(|(reason, count, samples)| SkipSummary {
                    reason: reason.name().to_owned(),
                    count,
                    samples,
                })
                .collect(),
            results: t.results,
            root,
        })
    }
}

/// Column names of a tuple, `" × "`-joined (falls back to `#i` when the
/// schema is shorter than the index — never happens for real tables).
fn attr_names(table: &Table, attrs: &AttrTuple) -> String {
    attrs
        .indices()
        .iter()
        .map(|&i| {
            table
                .schema()
                .field(i)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| format!("#{i}"))
        })
        .collect::<Vec<_>>()
        .join(" × ")
}

fn assemble_span(spans: &[SpanRec], idx: usize, base_ns: u64) -> TraceSpan {
    let rec = &spans[idx];
    TraceSpan {
        name: rec.name.to_owned(),
        start_ns: rec.start_ns.saturating_sub(base_ns),
        dur_ns: rec.end_ns.saturating_sub(rec.start_ns),
        attrs: rec.attrs.clone(),
        children: spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent == Some(idx))
            .map(|(i, _)| assemble_span(spans, i, base_ns))
            .collect(),
    }
}

/// Fixed-capacity ring of the last N finished traces. Writers claim a slot
/// with one atomic `fetch_add` and swap the trace in under that slot's own
/// micro-lock — concurrent pushes to different slots never serialize.
struct TraceRing {
    slots: Box<[Mutex<Option<Arc<QueryTrace>>>]>,
    head: AtomicU64,
}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    fn push(&self, trace: Arc<QueryTrace>) {
        let n = self.head.fetch_add(1, Ordering::Relaxed);
        *self.slots[(n % self.slots.len() as u64) as usize].lock() = Some(trace);
    }

    /// The most recent traces, newest first, at most `n`.
    fn recent(&self, n: usize) -> Vec<Arc<QueryTrace>> {
        let head = self.head.load(Ordering::Relaxed);
        let len = self.slots.len() as u64;
        let oldest = head.saturating_sub(len);
        (oldest..head)
            .rev()
            .take(n)
            .filter_map(|i| self.slots[(i % len) as usize].lock().clone())
            .collect()
    }

    fn clear(&self) {
        for slot in self.slots.iter() {
            *slot.lock() = None;
        }
    }
}

/// The core's request-tracing registry: the query-id counter, the ring of
/// finished traces, and the slow-query log. Shared — like [`Metrics`] and
/// the score cache — by every snapshot the writer path republishes.
///
/// [`Metrics`]: crate::telemetry::Metrics
pub struct Tracer {
    /// Runtime master switch for *sampled* traces (forced `explain` traces
    /// bypass it; a build without the `trace` feature ignores both).
    enabled: AtomicBool,
    next_id: AtomicU64,
    ring: TraceRing,
    /// Slow-query threshold, ns; 0 disables the log. One relaxed load per
    /// untraced query is the entire cost of the armed-but-quiet state.
    slow_threshold_ns: AtomicU64,
    slow: Mutex<VecDeque<SlowQuery>>,
    /// Maximum retained slow-log entries (fixed at construction).
    slow_capacity: usize,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A fresh tracer with the default capacities: sampling enabled
    /// (feature permitting), slow log off.
    pub fn new() -> Self {
        Self::with_capacities(TRACE_RING_CAPACITY, SLOW_LOG_CAPACITY)
    }

    /// A fresh tracer with explicit capture depths: `ring` retained
    /// finished traces and `slow` retained slow-log entries (each clamped
    /// to at least 1). Server operators size these for load — a deep ring
    /// for post-hoc debugging, a shallow one to bound memory.
    pub fn with_capacities(ring: usize, slow: usize) -> Self {
        Self {
            enabled: AtomicBool::new(true),
            next_id: AtomicU64::new(0),
            ring: TraceRing::new(ring),
            slow_threshold_ns: AtomicU64::new(0),
            slow: Mutex::new(VecDeque::new()),
            slow_capacity: slow.max(1),
        }
    }

    /// How many finished traces the ring retains.
    pub fn ring_capacity(&self) -> usize {
        self.ring.slots.len()
    }

    /// How many slow-query entries the log retains.
    pub fn slow_log_capacity(&self) -> usize {
        self.slow_capacity
    }

    /// Approximate resident bytes of the trace ring and slow-query log:
    /// occupied ring slots at a nominal per-trace span-tree estimate, plus
    /// the retained slow entries. A monitor resource gauge, not allocator
    /// truth.
    pub fn approx_bytes(&self) -> usize {
        // a retained trace is a span tree of a dozen-odd labelled spans
        const PER_TRACE: usize = 2048;
        let occupied = self
            .ring
            .slots
            .iter()
            .filter(|slot| slot.lock().is_some())
            .count();
        let slow = self.slow.lock();
        let slow_bytes: usize = slow
            .iter()
            .map(|q| std::mem::size_of::<SlowQuery>() + q.class_id.len() + q.mode.len())
            .sum();
        self.ring.slots.len() * std::mem::size_of::<Mutex<Option<Arc<QueryTrace>>>>()
            + occupied * PER_TRACE
            + slow_bytes
    }

    /// Whether sampled tracing is live: requires the `trace` cargo feature
    /// and the runtime switch.
    pub fn enabled(&self) -> bool {
        cfg!(feature = "trace") && self.enabled.load(Ordering::Relaxed)
    }

    /// Flips the runtime switch for sampled traces (`explain` is always
    /// captured when the feature is compiled in).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The slow-query threshold in nanoseconds (0 = off).
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// Arms (or, with 0, disarms) the slow-query log: every query whose
    /// end-to-end time meets the threshold is logged, traced or not.
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Starts a trace for one query. Returns an inert builder when the
    /// `trace` feature is off, or when the runtime switch is off and the
    /// trace is not forced.
    pub(crate) fn begin_trace(
        &self,
        query: &InsightQuery,
        mode: Mode,
        forced: bool,
    ) -> TraceBuilder {
        if !cfg!(feature = "trace") || (!forced && !self.enabled.load(Ordering::Relaxed)) {
            return TraceBuilder::disabled();
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        TraceBuilder::active(id, query, mode, forced)
    }

    /// Seals a builder, publishes the finished trace to the ring, and
    /// returns it (`None` for inert builders).
    pub(crate) fn finish(&self, builder: TraceBuilder) -> Option<Arc<QueryTrace>> {
        let trace = Arc::new(builder.finish()?);
        self.ring.push(Arc::clone(&trace));
        Some(trace)
    }

    /// Logs the query when the armed threshold is met; inert otherwise.
    pub(crate) fn maybe_record_slow(
        &self,
        query: &InsightQuery,
        mode: Mode,
        total_ns: u64,
        results: usize,
        trace: Option<Arc<QueryTrace>>,
    ) {
        let threshold = self.slow_threshold_ns();
        if threshold == 0 || total_ns < threshold {
            return;
        }
        let entry = SlowQuery {
            query_id: trace.as_ref().map(|t| t.query_id),
            class_id: query.class_id.clone(),
            mode: mode.name().to_owned(),
            total_ns,
            results,
            trace,
        };
        let mut slow = self.slow.lock();
        if slow.len() >= self.slow_capacity {
            slow.pop_front();
        }
        slow.push_back(entry);
    }

    /// The most recent finished traces, newest first, at most `n`.
    pub fn recent(&self, n: usize) -> Vec<Arc<QueryTrace>> {
        self.ring.recent(n)
    }

    /// The most recently finished trace.
    pub fn last(&self) -> Option<Arc<QueryTrace>> {
        self.ring.recent(1).into_iter().next()
    }

    /// The slow-query log, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow.lock().iter().cloned().collect()
    }

    /// Drops every retained trace and slow-log entry (ids keep counting).
    pub fn clear(&self) {
        self.ring.clear();
        self.slow.lock().clear();
    }
}

/// What [`explain`](crate::SessionHandle::explain) returns: the query's
/// results (bit-identical to an untraced run) plus the captured trace —
/// `None` only when the `trace` cargo feature is compiled out.
#[derive(Debug, Clone)]
pub struct Explained {
    /// The ranked insight instances, exactly as `query()` would return.
    pub results: Vec<InsightInstance>,
    /// The captured trace (absent without the `trace` feature).
    pub trace: Option<Arc<QueryTrace>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace(id: u64) -> Arc<QueryTrace> {
        Arc::new(QueryTrace {
            query_id: id,
            class_id: "skew".into(),
            metric: "|skewness|".into(),
            mode: "exact".into(),
            forced: false,
            index_served: false,
            total_ns: 1000,
            candidates_generated: 10,
            candidates_eligible: 8,
            lsh: None,
            cache_hits: 3,
            cache_misses: 5,
            cache_stored: 5,
            skips: vec![],
            results: vec![],
            root: TraceSpan {
                name: "query".into(),
                start_ns: 0,
                dur_ns: 1000,
                attrs: vec![("k".into(), "5".into())],
                children: vec![TraceSpan {
                    name: "score".into(),
                    start_ns: 100,
                    dur_ns: 700,
                    attrs: vec![],
                    children: vec![],
                }],
            },
        })
    }

    #[test]
    fn ring_keeps_newest_and_evicts_in_order() {
        let ring = TraceRing::new(4);
        for id in 1..=7 {
            ring.push(sample_trace(id));
        }
        let ids: Vec<u64> = ring.recent(10).iter().map(|t| t.query_id).collect();
        assert_eq!(ids, vec![7, 6, 5, 4], "newest first, oldest evicted");
        assert_eq!(ring.recent(2).len(), 2);
        ring.clear();
        assert!(ring.recent(10).is_empty());
    }

    #[test]
    fn slow_log_respects_threshold_and_capacity() {
        let tracer = Tracer::new();
        let q = InsightQuery::class("skew");
        tracer.maybe_record_slow(&q, Mode::Exact, 10_000, 1, None);
        assert!(
            tracer.slow_queries().is_empty(),
            "disarmed log records nothing"
        );
        tracer.set_slow_threshold_ns(5_000);
        tracer.maybe_record_slow(&q, Mode::Exact, 4_999, 1, None);
        tracer.maybe_record_slow(&q, Mode::Exact, 5_000, 2, None);
        let slow = tracer.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].results, 2);
        assert!(slow[0].to_line().contains("skew"));
        for _ in 0..(SLOW_LOG_CAPACITY + 10) {
            tracer.maybe_record_slow(&q, Mode::Exact, 9_000, 0, None);
        }
        assert_eq!(tracer.slow_queries().len(), SLOW_LOG_CAPACITY);
        tracer.clear();
        assert!(tracer.slow_queries().is_empty());
    }

    #[test]
    fn capacities_are_configurable_per_tracer() {
        let tracer = Tracer::with_capacities(4, 2);
        assert_eq!(tracer.ring_capacity(), 4);
        assert_eq!(tracer.slow_log_capacity(), 2);
        tracer.set_slow_threshold_ns(1);
        let q = InsightQuery::class("skew");
        for results in 0..5 {
            tracer.maybe_record_slow(&q, Mode::Exact, 1_000, results, None);
        }
        let slow = tracer.slow_queries();
        assert_eq!(slow.len(), 2, "custom slow-log capacity bounds retention");
        assert_eq!(slow[0].results, 3, "oldest entries dropped first");
        // defaults still match the published constants, and degenerate
        // requests clamp to one retained entry
        let default = Tracer::new();
        assert_eq!(default.ring_capacity(), TRACE_RING_CAPACITY);
        assert_eq!(default.slow_log_capacity(), SLOW_LOG_CAPACITY);
        assert_eq!(Tracer::with_capacities(0, 0).slow_log_capacity(), 1);
        assert_eq!(Tracer::with_capacities(0, 0).ring_capacity(), 1);
    }

    #[test]
    fn chrome_export_is_valid_and_preordered() {
        let trace = sample_trace(42);
        let parsed: Value = serde_json::from_str(&trace.to_chrome_json()).unwrap();
        let events = parsed.as_array().expect("top-level array");
        assert_eq!(events.len(), 2);
        let mut last_ts = f64::MIN;
        for ev in events {
            assert_eq!(ev.get("ph").and_then(Value::as_str), Some("X"));
            assert_eq!(ev.get("pid").and_then(Value::as_u64), Some(1));
            assert_eq!(ev.get("tid").and_then(Value::as_u64), Some(42));
            let ts = ev.get("ts").and_then(Value::as_f64).expect("ts");
            assert!(ev.get("dur").and_then(Value::as_f64).expect("dur") >= 0.0);
            assert!(ts >= last_ts, "pre-order emission keeps ts monotonic");
            last_ts = ts;
        }
    }

    #[test]
    fn json_round_trips_and_text_renders() {
        let trace = sample_trace(7);
        let back: QueryTrace = serde_json::from_str(&trace.to_json()).unwrap();
        assert_eq!(&back, trace.as_ref());
        let text = trace.to_text();
        assert!(text.contains("query #7 skew"));
        assert!(text.contains("3 hits / 5 misses"));
        assert!(text.contains("score"));
    }

    #[test]
    fn builder_is_inert_when_disabled() {
        let mut b = TraceBuilder::disabled();
        assert!(!b.is_active());
        b.begin("score");
        b.attr("k", || unreachable!("attr closures never run when inert"));
        b.end();
        assert!(b.finish().is_none());
    }
}
