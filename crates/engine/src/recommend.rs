//! Carousel assembly — the Figure-1 experience: one ranked row of insights
//! per class, re-ranked toward the session's focused insights.

use crate::error::Result;
use crate::executor::Executor;
use crate::neighborhood::{rerank, NeighborhoodWeights};
use crate::query::InsightQuery;
use crate::session::Session;
use crate::telemetry::{maybe_span, Stage};
use foresight_insight::{InsightClass, InsightInstance, InsightRegistry};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Default focus over-fetch factor: with a non-empty focus set, each
/// carousel query fetches `per_class ×` this many instances before the
/// neighborhood re-rank (§4.1) trims back to `per_class`. The re-rank can
/// only promote insights the query returned, so the factor bounds how far
/// outside the raw top-k the focus neighborhood can reach; 4 keeps the
/// over-fetch cheap while giving the re-rank a candidate pool several
/// times the strip width.
pub const DEFAULT_FOCUS_OVERFETCH: usize = 4;

/// One carousel: a ranked strip of insights from a single class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Carousel {
    /// The class id.
    pub class_id: String,
    /// Display name.
    pub class_name: String,
    /// The ranking metric used.
    pub metric: String,
    /// Ranked instances, strongest (or most focus-relevant) first.
    pub instances: Vec<InsightInstance>,
}

/// How carousels are assembled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarouselConfig {
    /// Instances per carousel.
    pub per_class: usize,
    /// Neighborhood re-ranking weights.
    pub weights: NeighborhoodWeights,
    /// Focus over-fetch factor (see [`DEFAULT_FOCUS_OVERFETCH`]).
    pub focus_overfetch: usize,
    /// Assemble carousels in parallel — one task per class, output order
    /// preserved. Results are identical to serial assembly.
    pub parallel: bool,
}

impl Default for CarouselConfig {
    fn default() -> Self {
        Self {
            per_class: 5,
            weights: NeighborhoodWeights::default(),
            focus_overfetch: DEFAULT_FOCUS_OVERFETCH,
            parallel: false,
        }
    }
}

/// Builds one carousel per registered class.
///
/// Without a focus set this shows each class's strongest instances — the
/// first, open-ended stage of exploration. With focused insights, each
/// carousel is re-ranked toward the focus neighborhood (§4.1: "Foresight
/// updates its recommendations by choosing a subset of insights within the
/// neighborhood of the focused insight").
pub fn carousels(
    executor: &Executor<'_>,
    registry: &InsightRegistry,
    session: &Session,
    per_class: usize,
    weights: NeighborhoodWeights,
) -> Result<Vec<Carousel>> {
    carousels_with(
        executor,
        registry,
        session,
        &CarouselConfig {
            per_class,
            weights,
            ..CarouselConfig::default()
        },
    )
}

/// Builds one carousel per registered class under an explicit
/// [`CarouselConfig`] — the configurable form of [`carousels`].
pub fn carousels_with(
    executor: &Executor<'_>,
    registry: &InsightRegistry,
    session: &Session,
    config: &CarouselConfig,
) -> Result<Vec<Carousel>> {
    let one = |class: &Arc<dyn InsightClass>| -> Result<Carousel> {
        // one span per class: parallel assembly records one sample per
        // carousel either way
        let _span = maybe_span(executor.metrics(), Stage::Carousel);
        // over-fetch so the neighborhood re-rank has material to promote
        let fetch = if session.focus.is_empty() {
            config.per_class
        } else {
            config.per_class * config.focus_overfetch.max(1)
        };
        let query = InsightQuery::class(class.id()).top_k(fetch);
        let mut instances = executor.execute(&query)?;
        rerank(&mut instances, &session.focus, config.weights);
        instances.truncate(config.per_class);
        Ok(Carousel {
            class_id: class.id().to_owned(),
            class_name: class.name().to_owned(),
            metric: class.metric().to_owned(),
            instances,
        })
    };
    if config.parallel {
        // one task per class; collect preserves registry order
        registry.classes().par_iter().map(one).collect()
    } else {
        registry.classes().iter().map(one).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::TableBuilder;
    use foresight_insight::AttrTuple;

    fn setup() -> (foresight_data::Table, InsightRegistry) {
        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        let z: Vec<f64> = (0..200).map(|i| ((i * 37) % 200) as f64).collect();
        let t = TableBuilder::new("t")
            .numeric("x", x)
            .numeric("y", y)
            .numeric("z", z)
            .categorical("c", (0..200).map(|i| if i % 2 == 0 { "a" } else { "b" }))
            .build()
            .unwrap();
        (t, InsightRegistry::default())
    }

    #[test]
    fn one_carousel_per_class() {
        let (t, r) = setup();
        let ex = Executor::exact(&t, &r);
        let session = Session::new("t");
        let cs = carousels(&ex, &r, &session, 3, NeighborhoodWeights::default()).unwrap();
        assert_eq!(cs.len(), 12);
        for c in &cs {
            assert!(c.instances.len() <= 3);
            for w in c.instances.windows(2) {
                // without focus, carousels are strongest-first
                assert!(w[0].score >= w[1].score, "{} not sorted", c.class_id);
            }
        }
    }

    #[test]
    fn focus_changes_ranking() {
        let (t, r) = setup();
        let ex = Executor::exact(&t, &r);
        let mut session = Session::new("t");
        let unfocused = carousels(&ex, &r, &session, 3, NeighborhoodWeights::default()).unwrap();
        // focus an insight about column z (index 2)
        session.focus(InsightInstance {
            class_id: "dispersion".into(),
            attrs: AttrTuple::One(2),
            score: 1.0,
            metric: "variance".into(),
            detail: String::new(),
        });
        let focused = carousels(
            &ex,
            &r,
            &session,
            3,
            NeighborhoodWeights { similarity: 0.9 },
        )
        .unwrap();
        // the linear carousel should now lead with pairs touching column 2
        let linear = focused
            .iter()
            .find(|c| c.class_id == "linear-relationship")
            .unwrap();
        assert!(
            linear.instances[0].attrs.contains(2),
            "focus did not pull neighborhood forward: {:?}",
            linear.instances[0].attrs
        );
        // and the unfocused ranking led with the perfect (0,1) pair
        let linear_before = unfocused
            .iter()
            .find(|c| c.class_id == "linear-relationship")
            .unwrap();
        assert_eq!(linear_before.instances[0].attrs, AttrTuple::Two(0, 1));
    }
}
