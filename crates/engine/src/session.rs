//! Exploration sessions: the focus set, the event history, and
//! save/restore — the §4.1 scenario ends with the analyst saving "the
//! current Foresight state to revisit later and to share with her
//! colleagues".

use crate::error::Result;
use crate::query::InsightQuery;
use foresight_insight::{AttrTuple, InsightInstance};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// One step of the exploration history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// A query was executed.
    Queried {
        /// The full query, replayable via
        /// [`crate::foresight::Foresight::replay_session`].
        query: InsightQuery,
        /// Number of results returned.
        results: usize,
    },
    /// An insight was brought into focus.
    Focused(InsightInstance),
    /// An insight was removed from focus.
    Unfocused(AttrTuple),
    /// The focus set was cleared.
    Cleared,
}

/// A user's exploration state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// Dataset name the session belongs to.
    pub dataset: String,
    /// Column names of the dataset the session was created against, in
    /// schema order — the fingerprint
    /// [`SessionHandle::restore_session_checked`] validates before letting
    /// a restored session's attribute indices touch a different core.
    /// `None` for sessions saved by older releases (validation then falls
    /// back to bounds checks alone).
    ///
    /// [`SessionHandle::restore_session_checked`]: crate::SessionHandle::restore_session_checked
    #[serde(default)]
    pub schema: Option<Vec<String>>,
    /// Currently focused insights (drive neighborhood re-ranking).
    pub focus: Vec<InsightInstance>,
    /// Append-only event log.
    pub history: Vec<SessionEvent>,
}

impl Session {
    /// A fresh session for `dataset`.
    pub fn new(dataset: impl Into<String>) -> Self {
        Self {
            dataset: dataset.into(),
            ..Default::default()
        }
    }

    /// Adds an insight to the focus set (§4.1: "she brings this insight
    /// into focus by clicking on it"). Duplicate tuples of the same class
    /// are ignored.
    pub fn focus(&mut self, instance: InsightInstance) {
        if self
            .focus
            .iter()
            .any(|f| f.class_id == instance.class_id && f.attrs == instance.attrs)
        {
            return;
        }
        self.history.push(SessionEvent::Focused(instance.clone()));
        self.focus.push(instance);
    }

    /// Removes any focused insight with the given tuple; returns whether
    /// something was removed.
    pub fn unfocus(&mut self, attrs: &AttrTuple) -> bool {
        let before = self.focus.len();
        self.focus.retain(|f| f.attrs != *attrs);
        if self.focus.len() != before {
            self.history.push(SessionEvent::Unfocused(*attrs));
            true
        } else {
            false
        }
    }

    /// Clears the focus set.
    pub fn clear_focus(&mut self) {
        if !self.focus.is_empty() {
            self.focus.clear();
            self.history.push(SessionEvent::Cleared);
        }
    }

    /// Records a query in the history.
    pub fn record_query(&mut self, query: &InsightQuery, results: usize) {
        self.history.push(SessionEvent::Queried {
            query: query.clone(),
            results,
        });
    }

    /// The queries recorded in the history, in execution order.
    pub fn queries(&self) -> Vec<&InsightQuery> {
        self.history
            .iter()
            .filter_map(|e| match e {
                SessionEvent::Queried { query, .. } => Some(query),
                _ => None,
            })
            .collect()
    }

    /// Serializes the session to pretty JSON.
    pub fn to_json(&self) -> Result<String> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Restores a session from JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        Ok(serde_json::from_str(json)?)
    }

    /// Writes the session to any writer.
    pub fn save(&self, mut writer: impl Write) -> Result<()> {
        writer.write_all(self.to_json()?.as_bytes())?;
        Ok(())
    }

    /// Reads a session from any reader.
    pub fn load(mut reader: impl Read) -> Result<Self> {
        let mut buf = String::new();
        reader.read_to_string(&mut buf)?;
        Self::from_json(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(attrs: AttrTuple) -> InsightInstance {
        InsightInstance {
            class_id: "linear-relationship".into(),
            attrs,
            score: 0.9,
            metric: "|pearson|".into(),
            detail: "test".into(),
        }
    }

    #[test]
    fn focus_unfocus_lifecycle() {
        let mut s = Session::new("oecd");
        s.focus(inst(AttrTuple::Two(1, 2)));
        s.focus(inst(AttrTuple::Two(1, 2))); // duplicate ignored
        assert_eq!(s.focus.len(), 1);
        s.focus(inst(AttrTuple::Two(3, 4)));
        assert_eq!(s.focus.len(), 2);
        assert!(s.unfocus(&AttrTuple::Two(1, 2)));
        assert!(!s.unfocus(&AttrTuple::Two(1, 2)));
        assert_eq!(s.focus.len(), 1);
        s.clear_focus();
        assert!(s.focus.is_empty());
        // history recorded everything except the duplicate
        assert_eq!(s.history.len(), 4);
    }

    #[test]
    fn json_round_trip() {
        let mut s = Session::new("imdb");
        s.focus(inst(AttrTuple::Two(0, 5)));
        s.record_query(&InsightQuery::class("skew"), 5);
        let json = s.to_json().unwrap();
        let back = Session::from_json(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn queries_extractable_from_history() {
        let mut s = Session::new("q");
        s.record_query(&InsightQuery::class("skew").top_k(2), 2);
        s.focus(inst(AttrTuple::One(1)));
        s.record_query(&InsightQuery::class("outliers"), 5);
        let qs = s.queries();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0].class_id, "skew");
        assert_eq!(qs[1].class_id, "outliers");
    }

    #[test]
    fn save_load_via_io() {
        let mut s = Session::new("parkinson");
        s.focus(inst(AttrTuple::One(7)));
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let back = Session::load(buf.as_slice()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(Session::from_json("{not json").is_err());
    }
}
