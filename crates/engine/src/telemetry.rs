//! Lightweight, hand-rolled observability for the serving core.
//!
//! The paper's pitch is *interactive-latency* insight queries backed by
//! *bounded-error* sketches, which makes latency a first-class correctness
//! property — yet a shared [`EngineCore`](crate::EngineCore) serving many
//! sessions had no way to answer "where does a slow query spend its time".
//! This module is the measurement substrate: a [`Metrics`] registry owned
//! by the core (and shared across republished snapshots, like the score
//! cache), recording
//!
//! * per-stage latency histograms — one cacheline-padded [`StageCell`] of
//!   atomic counters per [`Stage`], with log₂-bucketed sample counts, so a
//!   recording is a handful of relaxed atomic adds and never a lock;
//! * query counters by class and by mode, index-served counts, and
//!   sketch-fallback-to-exact events;
//! * cache traffic, folded in from the [`ScoreCache`](crate::ScoreCache)'s
//!   own counters at snapshot time.
//!
//! Timings are captured with span-style scoped guards:
//!
//! ```
//! use foresight_engine::telemetry::{Metrics, Stage};
//! let metrics = Metrics::new();
//! {
//!     let _span = metrics.span(Stage::Score);
//!     // ... the instrumented stage ...
//! } // recorded on drop
//! let snap = metrics.snapshot();
//! assert!(!cfg!(feature = "telemetry") || snap.stage("score").unwrap().count == 1);
//! ```
//!
//! # The `telemetry` cargo feature
//!
//! Recording is compiled out unless the crate is built with
//! `--features telemetry`: every record path is behind a
//! `cfg!(feature = "telemetry")` constant, so without the feature a span is
//! a no-op that never reads the clock and the optimizer removes the guard
//! entirely. With the feature on, a runtime [`Metrics::set_enabled`] switch
//! remains (one relaxed atomic load per span) so a single binary can
//! measure its own instrumentation overhead — `exp_telemetry` asserts the
//! enabled/disabled gap stays within 3% on warm queries.
//!
//! Snapshots ([`MetricsSnapshot`]) are plain data with *deterministic*
//! JSON and text renderings: fixed stage order, sorted class maps, stable
//! field order — diffable across runs even though the timing values
//! themselves naturally vary.

use crate::cache::CacheStats;
use crate::executor::Mode;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The span clock. `Instant::now` costs tens of nanoseconds when
/// `clock_gettime` leaves the vDSO (typical under VM hypervisors), which
/// alone would blow the ≤3% overhead budget on a ~10 µs warm query that
/// crosses several span boundaries. On x86_64 we read the invariant TSC
/// instead (a few ns) and convert to nanoseconds with a once-per-process
/// calibration against the OS clock; elsewhere we fall back to `Instant`.
pub(crate) mod clock {
    use std::sync::OnceLock;
    use std::time::Instant;

    #[cfg(target_arch = "x86_64")]
    struct Calibration {
        base_ticks: u64,
        ns_per_tick: f64,
    }

    #[cfg(target_arch = "x86_64")]
    fn calibration() -> &'static Calibration {
        static CAL: OnceLock<Calibration> = OnceLock::new();
        CAL.get_or_init(|| {
            // spin ~200 µs against the OS clock; invariant TSC drift over
            // that window is far below histogram (log₂ bucket) resolution
            let t0 = Instant::now();
            let ticks0 = unsafe { core::arch::x86_64::_rdtsc() };
            let mut elapsed = t0.elapsed();
            while elapsed.as_micros() < 200 {
                std::hint::spin_loop();
                elapsed = t0.elapsed();
            }
            let ticks1 = unsafe { core::arch::x86_64::_rdtsc() };
            Calibration {
                base_ticks: ticks0,
                ns_per_tick: elapsed.as_nanos() as f64 / (ticks1 - ticks0).max(1) as f64,
            }
        })
    }

    /// Monotonic nanoseconds from an arbitrary process-local epoch.
    #[cfg(target_arch = "x86_64")]
    #[inline]
    pub fn now_ns() -> u64 {
        let cal = calibration();
        let ticks = unsafe { core::arch::x86_64::_rdtsc() };
        (ticks.wrapping_sub(cal.base_ticks) as f64 * cal.ns_per_tick) as u64
    }

    /// Monotonic nanoseconds from an arbitrary process-local epoch.
    #[cfg(not(target_arch = "x86_64"))]
    #[inline]
    pub fn now_ns() -> u64 {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Number of log₂ latency buckets per stage: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 is `[0, 2)`), so 40 buckets span
/// sub-microsecond spans up to ~18 minutes — far beyond any query stage.
pub const LATENCY_BUCKETS: usize = 40;

/// The instrumented stages of the query path, in the fixed order every
/// snapshot reports them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// [`CoreBuilder::preprocess`](crate::CoreBuilder::preprocess) — the
    /// paper's preprocessing phase end to end.
    Preprocess,
    /// Building a sketch catalog (whole-table or one shard).
    SketchBuild,
    /// Merging a shard catalog into the global one.
    SketchMerge,
    /// Building the insight index.
    IndexBuild,
    /// Incrementally refreshing the insight index after an append
    /// (rescoring only tuples that touch dirty columns).
    IndexRefresh,
    /// Serving a query from the prebuilt insight index.
    IndexServe,
    /// Building or incrementally refreshing the LSH candidate index.
    LshBuild,
    /// Candidate scoring (cache lookups + exact/sketch metric evaluation).
    Score,
    /// Top-k selection (quickselect + prefix sort).
    Rank,
    /// Maximal-marginal-relevance diversification.
    Diversify,
    /// Rendering winning instances (describe memo + instance assembly).
    Describe,
    /// Assembling one class's carousel.
    Carousel,
    /// Dataset profiling.
    Profile,
    /// [`CoreBuilder::freeze`](crate::CoreBuilder::freeze) — publishing a
    /// snapshot.
    Freeze,
}

impl Stage {
    /// Every stage, in reporting order.
    pub const ALL: [Stage; 14] = [
        Stage::Preprocess,
        Stage::SketchBuild,
        Stage::SketchMerge,
        Stage::IndexBuild,
        Stage::IndexRefresh,
        Stage::IndexServe,
        Stage::LshBuild,
        Stage::Score,
        Stage::Rank,
        Stage::Diversify,
        Stage::Describe,
        Stage::Carousel,
        Stage::Profile,
        Stage::Freeze,
    ];

    /// The stable snake-case name used in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Preprocess => "preprocess",
            Stage::SketchBuild => "sketch_build",
            Stage::SketchMerge => "sketch_merge",
            Stage::IndexBuild => "index_build",
            Stage::IndexRefresh => "index_refresh",
            Stage::IndexServe => "index_serve",
            Stage::LshBuild => "lsh_build",
            Stage::Score => "score",
            Stage::Rank => "rank",
            Stage::Diversify => "diversify",
            Stage::Describe => "describe",
            Stage::Carousel => "carousel",
            Stage::Profile => "profile",
            Stage::Freeze => "freeze",
        }
    }
}

/// The network-serving endpoints instrumented by `foresight-serve`, in the
/// fixed order every snapshot reports them. Wire commands are bucketed
/// into a handful of endpoint families so the per-endpoint histograms stay
/// small and the report readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// `hello` — the connection handshake (server/dataset info).
    Hello,
    /// Session lifecycle: open, close, save, checked restore, set-mode.
    Session,
    /// `query` — an insight query against the session's snapshot.
    Query,
    /// `explain` — a query with a forced trace.
    Explain,
    /// `carousels` — full carousel assembly.
    Carousels,
    /// Focus-set edits: focus, unfocus, clear.
    Focus,
    /// `profile` — dataset profiling.
    Profile,
    /// Introspection: metrics and the slow-query log.
    Metrics,
    /// Stream position: refresh and staleness readings.
    Stream,
}

impl Endpoint {
    /// Every endpoint, in reporting order.
    pub const ALL: [Endpoint; 9] = [
        Endpoint::Hello,
        Endpoint::Session,
        Endpoint::Query,
        Endpoint::Explain,
        Endpoint::Carousels,
        Endpoint::Focus,
        Endpoint::Profile,
        Endpoint::Metrics,
        Endpoint::Stream,
    ];

    /// The stable snake-case name used in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Hello => "hello",
            Endpoint::Session => "session",
            Endpoint::Query => "query",
            Endpoint::Explain => "explain",
            Endpoint::Carousels => "carousels",
            Endpoint::Focus => "focus",
            Endpoint::Profile => "profile",
            Endpoint::Metrics => "metrics",
            Endpoint::Stream => "stream",
        }
    }
}

/// The bucket a sample of `ns` nanoseconds lands in: `floor(log2(ns))`,
/// clamped to the bucket range (0 and 1 ns share bucket 0).
#[inline]
fn bucket_index(ns: u64) -> usize {
    ((63 - (ns | 1).leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

/// The inclusive lower bound (in ns) of bucket `i`.
#[inline]
fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// The inclusive upper bound (in ns) of bucket `i`.
#[inline]
fn bucket_ceil(i: usize) -> u64 {
    (1u64 << (i + 1)) - 1
}

/// One stage's latency accumulator: total time plus the log₂ histogram.
/// Padded to a cache line — mirroring the score cache's `Shard` — so
/// threads hammering different stages never false-share.
///
/// Deliberately minimal: no `count` (it's the sum of the buckets) and no
/// min/max atomics (`fetch_min`/`fetch_max` compile to compare-exchange
/// loops on x86; the snapshot bounds min/max from the occupied buckets
/// instead). A recording is exactly two relaxed adds.
#[repr(align(128))]
struct StageCell {
    total_ns: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl StageCell {
    fn new() -> Self {
        Self {
            total_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    fn record(&self, ns: u64) {
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.total_ns.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// The engine's metrics registry: per-stage latency histograms plus query
/// and approximation counters. Owned (behind an `Arc`) by the
/// [`EngineCore`](crate::EngineCore) and shared — like the score cache —
/// by every snapshot the writer path republishes, so a core's history
/// survives `preprocess`/`append_shard`/`freeze` cycles.
///
/// All recording is wait-free (relaxed atomics; the by-class map takes a
/// read lock on the warm path) and compiled out entirely without the
/// `telemetry` cargo feature.
pub struct Metrics {
    stages: [StageCell; Stage::ALL.len()],
    queries_exact: AtomicU64,
    queries_approximate: AtomicU64,
    queries_index_served: AtomicU64,
    /// Approximate-mode scorings that fell back to the exact path because
    /// the class has no sketch estimator (one event per candidate tuple).
    sketch_fallbacks: AtomicU64,
    /// Queries whose candidate lists came from LSH bucket collisions, and
    /// the total collision pairs those queries generated.
    lsh_queries: AtomicU64,
    lsh_candidate_pairs: AtomicU64,
    /// Per-class query counts. First query of a class takes the write
    /// lock once to insert; every later count is a read lock + relaxed add.
    queries_by_class: RwLock<BTreeMap<String, AtomicU64>>,
    /// Streaming-ingest counters (see [`IngestSnapshot`] for meanings).
    ingest_rows: AtomicU64,
    ingest_batches: AtomicU64,
    ingest_merges: AtomicU64,
    republishes_full: AtomicU64,
    republishes_incremental: AtomicU64,
    republishes_clean: AtomicU64,
    rescored_classes: AtomicU64,
    rescored_tuples: AtomicU64,
    reused_tuples: AtomicU64,
    cache_entries_migrated: AtomicU64,
    /// Per-endpoint latency histograms for the network front end, gated by
    /// [`Metrics::enabled`] like the stage cells.
    endpoints: [StageCell; Endpoint::ALL.len()],
    /// Network-serving counters (see [`ServeSnapshot`] for meanings).
    /// Always-on, like score-cache traffic: admission-control accounting
    /// (connections accepted or shed, requests load-shed) is service
    /// bookkeeping, not instrumentation, so operators see shed counts even
    /// in a build without the `telemetry` feature.
    serve_connections: AtomicU64,
    serve_connections_shed: AtomicU64,
    serve_requests: AtomicU64,
    serve_load_shed: AtomicU64,
    serve_errors: AtomicU64,
    serve_sessions_created: AtomicU64,
    serve_sessions_expired: AtomicU64,
    serve_sessions_evicted: AtomicU64,
    serve_sessions_closed: AtomicU64,
    /// Registry birth time — snapshots report their age against it so two
    /// snapshots can be ordered and rated. The registry is created with the
    /// first core and shared across republishes, so this is effectively
    /// process uptime. Deliberately not reset by [`Metrics::reset`].
    started: std::time::Instant,
    /// Monotonic snapshot sequence number (also survives `reset`, so a
    /// reset shows up as counters shrinking under a still-advancing seq).
    sample_seq: AtomicU64,
    /// Runtime switch (only meaningful when the `telemetry` feature is
    /// compiled in) — lets one binary compare instrumented vs.
    /// uninstrumented latency.
    enabled: AtomicBool,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A fresh registry. Recording starts enabled (when the `telemetry`
    /// feature is compiled in at all).
    pub fn new() -> Self {
        Self {
            stages: std::array::from_fn(|_| StageCell::new()),
            queries_exact: AtomicU64::new(0),
            queries_approximate: AtomicU64::new(0),
            queries_index_served: AtomicU64::new(0),
            sketch_fallbacks: AtomicU64::new(0),
            lsh_queries: AtomicU64::new(0),
            lsh_candidate_pairs: AtomicU64::new(0),
            queries_by_class: RwLock::new(BTreeMap::new()),
            ingest_rows: AtomicU64::new(0),
            ingest_batches: AtomicU64::new(0),
            ingest_merges: AtomicU64::new(0),
            republishes_full: AtomicU64::new(0),
            republishes_incremental: AtomicU64::new(0),
            republishes_clean: AtomicU64::new(0),
            rescored_classes: AtomicU64::new(0),
            rescored_tuples: AtomicU64::new(0),
            reused_tuples: AtomicU64::new(0),
            cache_entries_migrated: AtomicU64::new(0),
            endpoints: std::array::from_fn(|_| StageCell::new()),
            serve_connections: AtomicU64::new(0),
            serve_connections_shed: AtomicU64::new(0),
            serve_requests: AtomicU64::new(0),
            serve_load_shed: AtomicU64::new(0),
            serve_errors: AtomicU64::new(0),
            serve_sessions_created: AtomicU64::new(0),
            serve_sessions_expired: AtomicU64::new(0),
            serve_sessions_evicted: AtomicU64::new(0),
            serve_sessions_closed: AtomicU64::new(0),
            started: std::time::Instant::now(),
            sample_seq: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Whether recording is active: requires the `telemetry` cargo feature
    /// (a compile-time constant the optimizer folds) *and* the runtime
    /// switch. One relaxed load on the hot path.
    #[inline]
    pub fn enabled(&self) -> bool {
        cfg!(feature = "telemetry") && self.enabled.load(Ordering::Relaxed)
    }

    /// Flips the runtime recording switch. A no-op build (feature off)
    /// stays off regardless.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Opens a scoped timer for `stage`; the elapsed time is recorded when
    /// the returned guard drops. When recording is off (feature or runtime
    /// switch) the guard is inert and the clock is never read.
    #[inline]
    pub fn span(&self, stage: Stage) -> Span<'_> {
        Span {
            active: self.enabled().then(|| (self, stage, clock::now_ns())),
        }
    }

    /// Records one `ns`-nanosecond sample against `stage` directly (the
    /// non-guard form, for callers that already measured).
    #[inline]
    pub fn record_ns(&self, stage: Stage, ns: u64) {
        if self.enabled() {
            self.stages[stage as usize].record(ns);
        }
    }

    /// Counts one executed query: per-mode (the total is the sum of the
    /// mode counters), per-class, and whether the prebuilt index served it.
    pub fn record_query(&self, class_id: &str, mode: Mode, index_served: bool) {
        if !self.enabled() {
            return;
        }
        match mode {
            Mode::Exact => &self.queries_exact,
            Mode::Approximate => &self.queries_approximate,
        }
        .fetch_add(1, Ordering::Relaxed);
        if index_served {
            self.queries_index_served.fetch_add(1, Ordering::Relaxed);
        }
        {
            let by_class = self.queries_by_class.read();
            if let Some(n) = by_class.get(class_id) {
                n.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.queries_by_class
            .write()
            .entry(class_id.to_owned())
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one approximate-mode scoring that fell back to the exact
    /// path (the class had no sketch estimator for the tuple).
    #[inline]
    pub fn record_sketch_fallback(&self) {
        if self.enabled() {
            self.sketch_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one query whose candidates came from LSH bucket collisions,
    /// with the number of collision pairs the index produced for it.
    #[inline]
    pub fn record_lsh_candidates(&self, pairs: u64) {
        if self.enabled() {
            self.lsh_queries.fetch_add(1, Ordering::Relaxed);
            self.lsh_candidate_pairs.fetch_add(pairs, Ordering::Relaxed);
        }
    }

    /// Counts one ingested row batch of `rows` rows.
    #[inline]
    pub fn record_ingest_batch(&self, rows: u64) {
        if self.enabled() {
            self.ingest_batches.fetch_add(1, Ordering::Relaxed);
            self.ingest_rows.fetch_add(rows, Ordering::Relaxed);
        }
    }

    /// Counts one shard-catalog merge into the global catalog.
    #[inline]
    pub fn record_ingest_merge(&self) {
        if self.enabled() {
            self.ingest_merges.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one full (rebuild-everything) snapshot republish.
    #[inline]
    pub fn record_republish_full(&self) {
        if self.enabled() {
            self.republishes_full.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one republish that changed nothing observable (no dirty
    /// columns) and therefore kept the cache epoch.
    #[inline]
    pub fn record_republish_clean(&self) {
        if self.enabled() {
            self.republishes_clean.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one incremental republish: `classes`/`rescored` index work
    /// actually redone, `reused` index entries carried over, and `migrated`
    /// clean score-cache entries moved into the new epoch.
    pub fn record_republish_incremental(
        &self,
        classes: u64,
        rescored: u64,
        reused: u64,
        migrated: u64,
    ) {
        if self.enabled() {
            self.republishes_incremental.fetch_add(1, Ordering::Relaxed);
            self.rescored_classes.fetch_add(classes, Ordering::Relaxed);
            self.rescored_tuples.fetch_add(rescored, Ordering::Relaxed);
            self.reused_tuples.fetch_add(reused, Ordering::Relaxed);
            self.cache_entries_migrated
                .fetch_add(migrated, Ordering::Relaxed);
        }
    }

    /// Counts one accepted network connection.
    #[inline]
    pub fn record_connection(&self) {
        self.serve_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection refused by the connection budget.
    #[inline]
    pub fn record_connection_shed(&self) {
        self.serve_connections_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one served request and records its end-to-end latency
    /// against `endpoint`. The request count is always-on; the histogram
    /// sample lands only while recording is enabled.
    #[inline]
    pub fn record_request(&self, endpoint: Endpoint, ns: u64) {
        self.serve_requests.fetch_add(1, Ordering::Relaxed);
        if self.enabled() {
            self.endpoints[endpoint as usize].record(ns);
        }
    }

    /// Counts one request shed because a worker queue was full.
    #[inline]
    pub fn record_load_shed(&self) {
        self.serve_load_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request answered with a typed protocol error (bad
    /// request, unknown session, engine error — sheds are counted
    /// separately).
    #[inline]
    pub fn record_serve_error(&self) {
        self.serve_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one server-side session created.
    #[inline]
    pub fn record_session_created(&self) {
        self.serve_sessions_created.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one server-side session expired by its idle TTL.
    #[inline]
    pub fn record_session_expired(&self) {
        self.serve_sessions_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one server-side session evicted by the LRU capacity bound.
    #[inline]
    pub fn record_session_evicted(&self) {
        self.serve_sessions_evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one server-side session closed explicitly by its client.
    #[inline]
    pub fn record_session_closed(&self) {
        self.serve_sessions_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Zeroes every histogram and counter (the runtime switch is left as
    /// is). Handy between benchmark phases.
    pub fn reset(&self) {
        for cell in &self.stages {
            cell.reset();
        }
        self.queries_exact.store(0, Ordering::Relaxed);
        self.queries_approximate.store(0, Ordering::Relaxed);
        self.queries_index_served.store(0, Ordering::Relaxed);
        self.sketch_fallbacks.store(0, Ordering::Relaxed);
        self.lsh_queries.store(0, Ordering::Relaxed);
        self.lsh_candidate_pairs.store(0, Ordering::Relaxed);
        self.queries_by_class.write().clear();
        self.ingest_rows.store(0, Ordering::Relaxed);
        self.ingest_batches.store(0, Ordering::Relaxed);
        self.ingest_merges.store(0, Ordering::Relaxed);
        self.republishes_full.store(0, Ordering::Relaxed);
        self.republishes_incremental.store(0, Ordering::Relaxed);
        self.republishes_clean.store(0, Ordering::Relaxed);
        self.rescored_classes.store(0, Ordering::Relaxed);
        self.rescored_tuples.store(0, Ordering::Relaxed);
        self.reused_tuples.store(0, Ordering::Relaxed);
        self.cache_entries_migrated.store(0, Ordering::Relaxed);
        for cell in &self.endpoints {
            cell.reset();
        }
        self.serve_connections.store(0, Ordering::Relaxed);
        self.serve_connections_shed.store(0, Ordering::Relaxed);
        self.serve_requests.store(0, Ordering::Relaxed);
        self.serve_load_shed.store(0, Ordering::Relaxed);
        self.serve_errors.store(0, Ordering::Relaxed);
        self.serve_sessions_created.store(0, Ordering::Relaxed);
        self.serve_sessions_expired.store(0, Ordering::Relaxed);
        self.serve_sessions_evicted.store(0, Ordering::Relaxed);
        self.serve_sessions_closed.store(0, Ordering::Relaxed);
        // `started` and `sample_seq` deliberately survive: uptime stays
        // process uptime, and a still-advancing seq over shrinking counters
        // is how downstream raters detect the discontinuity.
    }

    /// A point-in-time snapshot with no cache section (see
    /// [`Metrics::snapshot_with_cache`] for the core's full view).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_with_cache(None)
    }

    /// A point-in-time snapshot, folding the score cache's own counters
    /// into the `cache` section. Safe to take while other threads record.
    pub fn snapshot_with_cache(&self, cache: Option<&CacheStats>) -> MetricsSnapshot {
        let stages = Stage::ALL
            .iter()
            .map(|&stage| cell_snapshot(stage.name(), &self.stages[stage as usize]))
            .collect();
        let endpoints = Endpoint::ALL
            .iter()
            .map(|&ep| cell_snapshot(ep.name(), &self.endpoints[ep as usize]))
            .collect();
        let exact = self.queries_exact.load(Ordering::Relaxed);
        let approximate = self.queries_approximate.load(Ordering::Relaxed);
        let queries = QuerySnapshot {
            total: exact + approximate,
            exact,
            approximate,
            index_served: self.queries_index_served.load(Ordering::Relaxed),
            by_class: self
                .queries_by_class
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
        };
        MetricsSnapshot {
            telemetry_compiled: cfg!(feature = "telemetry"),
            telemetry_enabled: self.enabled(),
            kernel: foresight_stats::kernel::mode().name().to_owned(),
            uptime_secs: self.started.elapsed().as_secs_f64(),
            sample_seq: self.sample_seq.fetch_add(1, Ordering::Relaxed) + 1,
            stages,
            queries,
            ingest: IngestSnapshot {
                rows: self.ingest_rows.load(Ordering::Relaxed),
                batches: self.ingest_batches.load(Ordering::Relaxed),
                merges: self.ingest_merges.load(Ordering::Relaxed),
                republishes_full: self.republishes_full.load(Ordering::Relaxed),
                republishes_incremental: self.republishes_incremental.load(Ordering::Relaxed),
                republishes_clean: self.republishes_clean.load(Ordering::Relaxed),
                rescored_classes: self.rescored_classes.load(Ordering::Relaxed),
                rescored_tuples: self.rescored_tuples.load(Ordering::Relaxed),
                reused_tuples: self.reused_tuples.load(Ordering::Relaxed),
                cache_entries_migrated: self.cache_entries_migrated.load(Ordering::Relaxed),
            },
            serve: ServeSnapshot {
                connections: self.serve_connections.load(Ordering::Relaxed),
                connections_shed: self.serve_connections_shed.load(Ordering::Relaxed),
                requests: self.serve_requests.load(Ordering::Relaxed),
                load_shed: self.serve_load_shed.load(Ordering::Relaxed),
                errors: self.serve_errors.load(Ordering::Relaxed),
                sessions_created: self.serve_sessions_created.load(Ordering::Relaxed),
                sessions_expired: self.serve_sessions_expired.load(Ordering::Relaxed),
                sessions_evicted: self.serve_sessions_evicted.load(Ordering::Relaxed),
                sessions_closed: self.serve_sessions_closed.load(Ordering::Relaxed),
                endpoints,
            },
            sketch_fallbacks: self.sketch_fallbacks.load(Ordering::Relaxed),
            lsh: LshSnapshot {
                queries: self.lsh_queries.load(Ordering::Relaxed),
                candidate_pairs: self.lsh_candidate_pairs.load(Ordering::Relaxed),
            },
            cache: cache.map(|stats| CacheSnapshot {
                hits: stats.hits,
                misses: stats.misses,
                entries: stats.entries as u64,
                purges: stats.purges,
                hit_rate: stats.hit_rate(),
            }),
            resources: None,
        }
    }
}

/// The crate version baked into the binary (`CARGO_PKG_VERSION`).
pub fn build_version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// The stats-kernel mode ("vectorized" / "scalar") active on the calling
/// thread — surfaced so serving layers need not depend on the stats crate.
pub fn kernel_name() -> &'static str {
    foresight_stats::kernel::mode().name()
}

/// The observability-relevant cargo features this binary was compiled
/// with, in a stable order.
pub fn build_features() -> Vec<&'static str> {
    let mut v = Vec::new();
    if cfg!(feature = "telemetry") {
        v.push("telemetry");
    }
    if cfg!(feature = "trace") {
        v.push("trace");
    }
    v
}

/// One cell's plain-data summary under a stable `name` — shared by the
/// per-stage and per-endpoint sections of a snapshot.
fn cell_snapshot(name: &str, cell: &StageCell) -> StageSnapshot {
    let mut lo = LATENCY_BUCKETS;
    let mut hi = 0usize;
    let buckets: Vec<HistogramBucket> = cell
        .buckets
        .iter()
        .enumerate()
        .filter_map(|(i, b)| {
            let n = b.load(Ordering::Relaxed);
            (n > 0).then(|| {
                lo = lo.min(i);
                hi = hi.max(i);
                HistogramBucket {
                    floor_ns: bucket_floor(i),
                    count: n,
                }
            })
        })
        .collect();
    let count: u64 = buckets.iter().map(|b| b.count).sum();
    let total_ns = cell.total_ns.load(Ordering::Relaxed);
    StageSnapshot {
        stage: name.to_owned(),
        count,
        total_ns,
        // bounds from the occupied buckets (the cell itself keeps no
        // min/max — see `StageCell`)
        min_ns: if buckets.is_empty() {
            0
        } else {
            bucket_floor(lo)
        },
        max_ns: if buckets.is_empty() {
            0
        } else {
            bucket_ceil(hi)
        },
        mean_ns: total_ns.checked_div(count).unwrap_or(0),
        p50_ns: quantile_from_buckets(&buckets, count, 0.50),
        p99_ns: quantile_from_buckets(&buckets, count, 0.99),
        buckets,
    }
}

/// Estimates the `q`-quantile from the non-empty log₂ buckets: the bucket
/// holding the `ceil(q·count)`-th sample, reported at its midpoint. Also
/// used by the monitor over windowed bucket *deltas*.
pub(crate) fn quantile_from_buckets(buckets: &[HistogramBucket], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for b in buckets {
        seen += b.count;
        if seen >= target {
            // midpoint of [floor, 2·floor) — or 1 for the [0, 2) bucket
            return if b.floor_ns == 0 {
                1
            } else {
                b.floor_ns + b.floor_ns / 2
            };
        }
    }
    buckets.last().map_or(0, |b| b.floor_ns)
}

/// A scoped stage timer: records the elapsed wall time into its
/// [`Metrics`] when dropped. Inert (no clock read, no recording) when
/// telemetry is compiled out or the runtime switch is off.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span<'a> {
    active: Option<(&'a Metrics, Stage, u64)>,
}

impl Span<'_> {
    /// Discards the span without recording a sample (e.g. when the timed
    /// path turned out not to apply).
    pub fn cancel(mut self) {
        self.active = None;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((metrics, stage, start_ns)) = self.active.take() {
            metrics.stages[stage as usize].record(clock::now_ns().saturating_sub(start_ns));
        }
    }
}

/// A span over an `Option<&Metrics>` — the form the executor uses, where a
/// standalone executor may have no registry attached.
#[inline]
pub(crate) fn maybe_span<'a>(metrics: Option<&'a Metrics>, stage: Stage) -> Span<'a> {
    match metrics {
        Some(m) => m.span(stage),
        None => Span { active: None },
    }
}

/// A boundary-sharing multi-stage timer: each [`mark`](Lap::mark) records
/// the time since the previous boundary and re-arms from the *same* clock
/// read. Back-to-back stages timed with individual [`Span`]s pay two clock
/// reads per stage; a `Lap` pays one per boundary — the executor's hot
/// path (score → rank/diversify → describe) costs four reads per query
/// instead of six, which is what keeps instrumentation inside the 3%
/// overhead budget on ~10 µs warm queries.
pub struct Lap<'a> {
    metrics: Option<&'a Metrics>,
    last_ns: u64,
}

impl<'a> Lap<'a> {
    /// Starts the lap clock (one read). Inert — no clock reads, marks are
    /// no-ops — when `metrics` is absent or recording is off.
    #[inline]
    pub fn start(metrics: Option<&'a Metrics>) -> Self {
        match metrics.filter(|m| m.enabled()) {
            Some(m) => Lap {
                metrics: Some(m),
                last_ns: clock::now_ns(),
            },
            None => Lap {
                metrics: None,
                last_ns: 0,
            },
        }
    }

    /// Records the time since the previous boundary against `stage` and
    /// makes this boundary the start of the next lap.
    #[inline]
    pub fn mark(&mut self, stage: Stage) {
        if let Some(m) = self.metrics {
            let now = clock::now_ns();
            m.stages[stage as usize].record(now.saturating_sub(self.last_ns));
            self.last_ns = now;
        }
    }
}

/// One non-empty log₂ histogram bucket: `count` samples at or above
/// `floor_ns` (and below `2·floor_ns`, or 2 ns for the zero bucket).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive lower bound of the bucket, in nanoseconds.
    pub floor_ns: u64,
    /// Samples in the bucket.
    pub count: u64,
}

/// One stage's latency summary inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// The stage's stable snake-case name (see [`Stage::name`]).
    pub stage: String,
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples, ns.
    pub total_ns: u64,
    /// Lower bound on the fastest sample — the floor of the lowest
    /// occupied histogram bucket (0 when empty).
    pub min_ns: u64,
    /// Upper bound on the slowest sample — the ceiling of the highest
    /// occupied histogram bucket (0 when empty).
    pub max_ns: u64,
    /// Arithmetic mean, ns (0 when empty).
    pub mean_ns: u64,
    /// Median estimate from the log₂ histogram, ns.
    pub p50_ns: u64,
    /// 99th-percentile estimate from the log₂ histogram, ns.
    pub p99_ns: u64,
    /// The non-empty histogram buckets, ascending.
    pub buckets: Vec<HistogramBucket>,
}

/// Query counters inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySnapshot {
    /// Queries executed (index-served included).
    pub total: u64,
    /// Queries run in exact mode.
    pub exact: u64,
    /// Queries run in approximate (sketch-backed) mode.
    pub approximate: u64,
    /// Queries answered from the prebuilt insight index.
    pub index_served: u64,
    /// Queries per insight class, sorted by class id.
    pub by_class: BTreeMap<String, u64>,
}

/// Streaming-ingest counters inside a [`MetricsSnapshot`]: how much data
/// the writer path absorbed and how much downstream work each republish
/// actually redid versus carried over.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IngestSnapshot {
    /// Rows ingested across all appended batches.
    pub rows: u64,
    /// Row batches ingested.
    pub batches: u64,
    /// Shard-catalog merges into the global sketch catalog.
    pub merges: u64,
    /// Republishes that rebuilt the index from scratch (source replaced,
    /// registry changed, or no index was alive to refresh).
    pub republishes_full: u64,
    /// Republishes that kept the index and rescored only dirty tuples.
    pub republishes_incremental: u64,
    /// Republishes with no dirty columns at all — epoch and cache kept.
    pub republishes_clean: u64,
    /// Insight classes with at least one rescored tuple, summed over
    /// incremental republishes.
    pub rescored_classes: u64,
    /// Tuples rescored by incremental republishes.
    pub rescored_tuples: u64,
    /// Tuples whose scores were carried over by incremental republishes.
    pub reused_tuples: u64,
    /// Clean score-cache entries migrated into the new epoch instead of
    /// being purged.
    pub cache_entries_migrated: u64,
}

/// Network-serving counters inside a [`MetricsSnapshot`]: admission
/// control (connections and requests accepted versus shed), session-table
/// lifecycle, and per-endpoint latency. All zero when no `foresight-serve`
/// front end records into this registry.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServeSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Connections refused by the connection budget.
    pub connections_shed: u64,
    /// Requests served (successes and typed errors alike).
    pub requests: u64,
    /// Requests shed because a worker queue was full.
    pub load_shed: u64,
    /// Requests answered with a typed protocol error (sheds not included).
    pub errors: u64,
    /// Server-side sessions created.
    pub sessions_created: u64,
    /// Sessions expired by the idle TTL.
    pub sessions_expired: u64,
    /// Sessions evicted by the LRU capacity bound.
    pub sessions_evicted: u64,
    /// Sessions closed explicitly by their clients (`default` so payloads
    /// from builds predating the monitor still parse).
    #[serde(default)]
    pub sessions_closed: u64,
    /// Per-endpoint latency summaries, in [`Endpoint::ALL`] order (every
    /// endpoint present, sampled or not; empty only in payloads written by
    /// builds predating the serving front end).
    #[serde(default)]
    pub endpoints: Vec<StageSnapshot>,
}

impl ServeSnapshot {
    /// Sessions currently alive in the server's table: created minus every
    /// way a session leaves (explicit close, TTL expiry, LRU eviction).
    pub fn sessions_live(&self) -> u64 {
        self.sessions_created
            .saturating_sub(self.sessions_closed + self.sessions_expired + self.sessions_evicted)
    }
}

/// LSH candidate-generation counters inside a [`MetricsSnapshot`]: how
/// many queries drew their candidate pairs from bucket collisions instead
/// of the quadratic scan, and how many collision pairs those walks
/// produced. All zero when no LSH index exists or every query resolved to
/// the exhaustive scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LshSnapshot {
    /// Queries whose candidates came from LSH bucket collisions.
    pub queries: u64,
    /// Total collision pairs generated across those queries.
    pub candidate_pairs: u64,
}

/// Approximate resident memory of the core's long-lived structures, in
/// bytes, plus the live session count — the gauges an operator watches for
/// slow leaks. Estimates, not allocator truth: each structure reports its
/// dominant arrays/maps and ignores per-allocation slack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceSnapshot {
    /// Sketch catalog (all per-column sketches + accumulators).
    pub catalog_bytes: u64,
    /// Score cache (keyed scores + detail strings).
    pub cache_bytes: u64,
    /// LSH candidate index (bucket tables + key cache), 0 when absent.
    pub lsh_bytes: u64,
    /// Trace ring + slow-query log (capacity-based estimate).
    pub trace_bytes: u64,
    /// Server session table (live sessions × per-entry estimate), 0 when
    /// no serving front end is attached.
    pub session_table_bytes: u64,
    /// Live server-side sessions (created − closed − expired − evicted).
    pub sessions_live: u64,
}

/// Score-cache traffic inside a [`MetricsSnapshot`], folded in from
/// [`CacheStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to scoring.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: u64,
    /// Entries retired by epoch bumps.
    pub purges: u64,
    /// `hits / (hits + misses)`, 0 when no lookups happened.
    pub hit_rate: f64,
}

/// A point-in-time, plain-data view of a [`Metrics`] registry.
///
/// Renderings are deterministic in *structure*: stages always appear, in
/// [`Stage::ALL`] order, the class map is sorted, and field order is
/// fixed — so two snapshots of identical state render identically, and
/// diffs against a previous run line up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Whether this build carries the `telemetry` feature at all.
    pub telemetry_compiled: bool,
    /// Whether recording was active when the snapshot was taken.
    pub telemetry_enabled: bool,
    /// Stats-kernel mode (`vectorized` / `scalar`) on the snapshotting
    /// thread — the implementation serving this core's scoring passes.
    pub kernel: String,
    /// Seconds since the registry was created (effectively process uptime;
    /// `default` so payloads from older builds still parse). Monotonic
    /// across [`Metrics::reset`].
    #[serde(default)]
    pub uptime_secs: f64,
    /// Monotonic capture sequence number (1 for the registry's first
    /// snapshot; survives `reset`, so deltas between two snapshots are
    /// well-defined: higher seq is strictly later).
    #[serde(default)]
    pub sample_seq: u64,
    /// Per-stage latency summaries, in [`Stage::ALL`] order (every stage
    /// present, sampled or not).
    pub stages: Vec<StageSnapshot>,
    /// Query counters.
    pub queries: QuerySnapshot,
    /// Streaming-ingest counters (all zero for a batch-built core).
    pub ingest: IngestSnapshot,
    /// Network-serving counters (all zero without a serving front end;
    /// `default` so payloads from older builds still parse).
    #[serde(default)]
    pub serve: ServeSnapshot,
    /// Approximate-mode scorings that fell back to the exact path.
    pub sketch_fallbacks: u64,
    /// LSH candidate-generation counters (`default` so payloads from
    /// builds predating the index still parse).
    #[serde(default)]
    pub lsh: LshSnapshot,
    /// Score-cache traffic, when the snapshot came from an engine core.
    pub cache: Option<CacheSnapshot>,
    /// Approximate resident-memory gauges, filled in when the snapshot
    /// came from an engine core (`default` so older payloads parse).
    #[serde(default)]
    pub resources: Option<ResourceSnapshot>,
}

impl MetricsSnapshot {
    /// The summary for one stage, by its stable name.
    pub fn stage(&self, name: &str) -> Option<&StageSnapshot> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Deterministic pretty-printed JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Deterministic fixed-width text rendering (the explorer's `metrics`
    /// command).
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let state = match (self.telemetry_compiled, self.telemetry_enabled) {
            (false, _) => "compiled out (build with --features telemetry)",
            (true, false) => "compiled in, runtime-disabled",
            (true, true) => "recording",
        };
        let _ = writeln!(out, "telemetry: {state}");
        let _ = writeln!(out, "kernel: {}", self.kernel);
        let _ = writeln!(
            out,
            "uptime: {:.1} s (sample {})",
            self.uptime_secs, self.sample_seq
        );
        let _ = writeln!(
            out,
            "\n{:<14} {:>8} {:>12} {:>10} {:>10} {:>10} {:>12}",
            "stage", "count", "total_ms", "mean_us", "p50_us", "p99_us", "max_us"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<14} {:>8} {:>12.3} {:>10.1} {:>10.1} {:>10.1} {:>12.1}",
                s.stage,
                s.count,
                s.total_ns as f64 / 1e6,
                s.mean_ns as f64 / 1e3,
                s.p50_ns as f64 / 1e3,
                s.p99_ns as f64 / 1e3,
                s.max_ns as f64 / 1e3,
            );
        }
        let q = &self.queries;
        let _ = writeln!(
            out,
            "\nqueries: {} total ({} exact, {} approximate, {} index-served)",
            q.total, q.exact, q.approximate, q.index_served
        );
        for (class, n) in &q.by_class {
            let _ = writeln!(out, "  {class:<28} {n:>8}");
        }
        let _ = writeln!(out, "sketch fallbacks to exact: {}", self.sketch_fallbacks);
        if self.lsh.queries > 0 {
            let _ = writeln!(
                out,
                "lsh candidates: {} queries from bucket collisions, {} collision pairs",
                self.lsh.queries, self.lsh.candidate_pairs
            );
        }
        let ing = &self.ingest;
        if ing.batches > 0 {
            let _ = writeln!(
                out,
                "ingest: {} rows in {} batches, {} sketch merges; republishes: {} full, {} incremental, {} clean",
                ing.rows,
                ing.batches,
                ing.merges,
                ing.republishes_full,
                ing.republishes_incremental,
                ing.republishes_clean,
            );
            let _ = writeln!(
                out,
                "  incremental refresh: {} classes / {} tuples rescored, {} tuples reused, {} cache entries migrated",
                ing.rescored_classes,
                ing.rescored_tuples,
                ing.reused_tuples,
                ing.cache_entries_migrated,
            );
        }
        let sv = &self.serve;
        if sv.connections + sv.connections_shed + sv.requests + sv.load_shed > 0 {
            let _ = writeln!(
                out,
                "serve: {} connections accepted, {} connections shed; {} requests ({} load-shed, {} errors)",
                sv.connections, sv.connections_shed, sv.requests, sv.load_shed, sv.errors,
            );
            let _ = writeln!(
                out,
                "  sessions: {} created, {} closed, {} expired (ttl), {} evicted (lru); {} live",
                sv.sessions_created,
                sv.sessions_closed,
                sv.sessions_expired,
                sv.sessions_evicted,
                sv.sessions_live(),
            );
            if sv.endpoints.iter().any(|e| e.count > 0) {
                let _ = writeln!(
                    out,
                    "{:<14} {:>8} {:>12} {:>10} {:>10} {:>10} {:>12}",
                    "  endpoint", "count", "total_ms", "mean_us", "p50_us", "p99_us", "max_us"
                );
                for e in sv.endpoints.iter().filter(|e| e.count > 0) {
                    let _ = writeln!(
                        out,
                        "  {:<12} {:>8} {:>12.3} {:>10.1} {:>10.1} {:>10.1} {:>12.1}",
                        e.stage,
                        e.count,
                        e.total_ns as f64 / 1e6,
                        e.mean_ns as f64 / 1e3,
                        e.p50_ns as f64 / 1e3,
                        e.p99_ns as f64 / 1e3,
                        e.max_ns as f64 / 1e3,
                    );
                }
            }
        }
        if let Some(c) = &self.cache {
            let _ = writeln!(
                out,
                "cache: {} hits / {} misses ({:.1}% hit rate), {} entries, {} purged",
                c.hits,
                c.misses,
                c.hit_rate * 100.0,
                c.entries,
                c.purges
            );
        }
        if let Some(r) = &self.resources {
            let _ = writeln!(
                out,
                "resources: catalog {} KiB, cache {} KiB, lsh {} KiB, traces {} KiB, sessions {} ({} KiB)",
                r.catalog_bytes / 1024,
                r.cache_bytes / 1024,
                r.lsh_bytes / 1024,
                r.trace_bytes / 1024,
                r.sessions_live,
                r.session_table_bytes / 1024,
            );
        }
        out
    }

    /// Prometheus text exposition (format 0.0.4) of the whole snapshot:
    /// every counter and histogram above, plus the resource gauges and a
    /// `foresight_build_info` constant. Every family carries `# HELP` and
    /// `# TYPE` lines; latencies stay in integer nanoseconds (`le` bounds
    /// are the log₂ bucket ceilings) rather than lossy float seconds.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut o = String::new();
        let meta = |o: &mut String, name: &str, help: &str, ty: &str| {
            let _ = writeln!(o, "# HELP {name} {help}");
            let _ = writeln!(o, "# TYPE {name} {ty}");
        };
        let counter = |o: &mut String, name: &str, help: &str, v: u64| {
            meta(o, name, help, "counter");
            let _ = writeln!(o, "{name} {v}");
        };
        let gauge_f = |o: &mut String, name: &str, help: &str, v: f64| {
            meta(o, name, help, "gauge");
            let _ = writeln!(o, "{name} {v}");
        };
        let gauge = |o: &mut String, name: &str, help: &str, v: u64| {
            meta(o, name, help, "gauge");
            let _ = writeln!(o, "{name} {v}");
        };

        // build info first: one constant-1 gauge carrying the labels a
        // scraper joins on
        meta(
            &mut o,
            "foresight_build_info",
            "Build metadata: crate version, stats-kernel mode, compiled features.",
            "gauge",
        );
        let _ = writeln!(
            o,
            "foresight_build_info{{version=\"{}\",kernel=\"{}\",features=\"{}\"}} 1",
            prom_escape(build_version()),
            prom_escape(&self.kernel),
            prom_escape(&build_features().join(",")),
        );
        gauge_f(
            &mut o,
            "foresight_uptime_seconds",
            "Seconds since the metrics registry was created.",
            self.uptime_secs,
        );
        gauge(
            &mut o,
            "foresight_metrics_sample_seq",
            "Monotonic snapshot sequence number (survives resets).",
            self.sample_seq,
        );
        gauge(
            &mut o,
            "foresight_telemetry_enabled",
            "1 when latency recording is compiled in and switched on.",
            u64::from(self.telemetry_compiled && self.telemetry_enabled),
        );

        histogram_family(
            &mut o,
            "foresight_stage_duration_ns",
            "Per-stage latency histogram of the query path, nanoseconds.",
            "stage",
            &self.stages,
        );
        histogram_family(
            &mut o,
            "foresight_endpoint_duration_ns",
            "Per-endpoint request latency histogram of the network front end, nanoseconds.",
            "endpoint",
            &self.serve.endpoints,
        );

        let q = &self.queries;
        counter(
            &mut o,
            "foresight_queries_total",
            "Queries executed.",
            q.total,
        );
        counter(
            &mut o,
            "foresight_queries_exact_total",
            "Queries run in exact mode.",
            q.exact,
        );
        counter(
            &mut o,
            "foresight_queries_approximate_total",
            "Queries run in approximate (sketch-backed) mode.",
            q.approximate,
        );
        counter(
            &mut o,
            "foresight_queries_index_served_total",
            "Queries answered from the prebuilt insight index.",
            q.index_served,
        );
        // declared only when populated: a family with HELP/TYPE but no
        // samples is legal yet trips strict scrapers' lint rules
        if !q.by_class.is_empty() {
            meta(
                &mut o,
                "foresight_queries_by_class_total",
                "Queries per insight class.",
                "counter",
            );
            for (class, n) in &q.by_class {
                let _ = writeln!(
                    o,
                    "foresight_queries_by_class_total{{class=\"{}\"}} {n}",
                    prom_escape(class)
                );
            }
        }
        counter(
            &mut o,
            "foresight_sketch_fallbacks_total",
            "Approximate-mode scorings that fell back to the exact path.",
            self.sketch_fallbacks,
        );
        counter(
            &mut o,
            "foresight_lsh_queries_total",
            "Queries whose candidates came from LSH bucket collisions.",
            self.lsh.queries,
        );
        counter(
            &mut o,
            "foresight_lsh_candidate_pairs_total",
            "Collision pairs generated across LSH-served queries.",
            self.lsh.candidate_pairs,
        );

        let ing = &self.ingest;
        counter(
            &mut o,
            "foresight_ingest_rows_total",
            "Rows ingested.",
            ing.rows,
        );
        counter(
            &mut o,
            "foresight_ingest_batches_total",
            "Row batches ingested.",
            ing.batches,
        );
        counter(
            &mut o,
            "foresight_ingest_merges_total",
            "Shard-catalog merges into the global sketch catalog.",
            ing.merges,
        );
        meta(
            &mut o,
            "foresight_republishes_total",
            "Snapshot republishes by kind (full rebuild, incremental, clean).",
            "counter",
        );
        for (kind, n) in [
            ("full", ing.republishes_full),
            ("incremental", ing.republishes_incremental),
            ("clean", ing.republishes_clean),
        ] {
            let _ = writeln!(o, "foresight_republishes_total{{kind=\"{kind}\"}} {n}");
        }
        counter(
            &mut o,
            "foresight_rescored_classes_total",
            "Classes with rescored tuples across incremental republishes.",
            ing.rescored_classes,
        );
        counter(
            &mut o,
            "foresight_rescored_tuples_total",
            "Tuples rescored by incremental republishes.",
            ing.rescored_tuples,
        );
        counter(
            &mut o,
            "foresight_reused_tuples_total",
            "Tuples carried over by incremental republishes.",
            ing.reused_tuples,
        );
        counter(
            &mut o,
            "foresight_cache_entries_migrated_total",
            "Clean score-cache entries migrated into a new epoch.",
            ing.cache_entries_migrated,
        );

        let sv = &self.serve;
        counter(
            &mut o,
            "foresight_serve_connections_total",
            "Network connections accepted.",
            sv.connections,
        );
        counter(
            &mut o,
            "foresight_serve_connections_shed_total",
            "Connections refused by the connection budget.",
            sv.connections_shed,
        );
        counter(
            &mut o,
            "foresight_serve_requests_total",
            "Requests served.",
            sv.requests,
        );
        counter(
            &mut o,
            "foresight_serve_load_shed_total",
            "Requests shed because a worker queue was full.",
            sv.load_shed,
        );
        counter(
            &mut o,
            "foresight_serve_errors_total",
            "Requests answered with a typed protocol error.",
            sv.errors,
        );
        counter(
            &mut o,
            "foresight_serve_sessions_created_total",
            "Server-side sessions created.",
            sv.sessions_created,
        );
        counter(
            &mut o,
            "foresight_serve_sessions_expired_total",
            "Sessions expired by the idle TTL.",
            sv.sessions_expired,
        );
        counter(
            &mut o,
            "foresight_serve_sessions_evicted_total",
            "Sessions evicted by the LRU capacity bound.",
            sv.sessions_evicted,
        );
        counter(
            &mut o,
            "foresight_serve_sessions_closed_total",
            "Sessions closed explicitly by their clients.",
            sv.sessions_closed,
        );
        gauge(
            &mut o,
            "foresight_serve_sessions_live",
            "Sessions currently alive in the server's table.",
            sv.sessions_live(),
        );

        if let Some(c) = &self.cache {
            counter(
                &mut o,
                "foresight_cache_hits_total",
                "Score-cache hits.",
                c.hits,
            );
            counter(
                &mut o,
                "foresight_cache_misses_total",
                "Score-cache misses.",
                c.misses,
            );
            counter(
                &mut o,
                "foresight_cache_purges_total",
                "Score-cache entries retired by epoch bumps.",
                c.purges,
            );
            gauge(
                &mut o,
                "foresight_cache_entries",
                "Score-cache entries resident.",
                c.entries,
            );
            gauge_f(
                &mut o,
                "foresight_cache_hit_rate",
                "Score-cache hit rate (0 when no lookups happened).",
                c.hit_rate,
            );
        }
        if let Some(r) = &self.resources {
            meta(
                &mut o,
                "foresight_resident_bytes",
                "Approximate resident bytes per long-lived structure.",
                "gauge",
            );
            for (component, bytes) in [
                ("catalog", r.catalog_bytes),
                ("score_cache", r.cache_bytes),
                ("lsh_index", r.lsh_bytes),
                ("trace_ring", r.trace_bytes),
                ("session_table", r.session_table_bytes),
            ] {
                let _ = writeln!(
                    o,
                    "foresight_resident_bytes{{component=\"{component}\"}} {bytes}"
                );
            }
            gauge(
                &mut o,
                "foresight_sessions_live",
                "Live server-side sessions (resource-gauge view).",
                r.sessions_live,
            );
        }
        o
    }
}

/// Escapes a Prometheus label value (backslash, double quote, newline).
fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Writes one labelled histogram family — cumulative `_bucket` series with
/// log₂ ceilings as `le` bounds, `_sum`, `_count` — plus companion gauges
/// for the summary statistics the JSON snapshot carries (min/max/mean and
/// the histogram-estimated p50/p99), so no JSON field is invisible to a
/// scraper.
fn histogram_family(o: &mut String, name: &str, help: &str, label: &str, cells: &[StageSnapshot]) {
    use std::fmt::Write;
    let _ = writeln!(o, "# HELP {name} {help}");
    let _ = writeln!(o, "# TYPE {name} histogram");
    for c in cells {
        let v = prom_escape(&c.stage);
        let mut cum = 0u64;
        for b in &c.buckets {
            cum += b.count;
            // bucket [floor, 2*floor) has inclusive ceiling 2*floor - 1
            let le = if b.floor_ns == 0 {
                1
            } else {
                b.floor_ns * 2 - 1
            };
            let _ = writeln!(o, "{name}_bucket{{{label}=\"{v}\",le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(o, "{name}_bucket{{{label}=\"{v}\",le=\"+Inf\"}} {cum}");
        let _ = writeln!(o, "{name}_sum{{{label}=\"{v}\"}} {}", c.total_ns);
        let _ = writeln!(o, "{name}_count{{{label}=\"{v}\"}} {}", c.count);
    }
    for (suffix, help, pick) in [
        (
            "min_ns",
            "Floor of the lowest occupied latency bucket.",
            0usize,
        ),
        (
            "max_ns",
            "Ceiling of the highest occupied latency bucket.",
            1,
        ),
        ("mean_ns", "Arithmetic-mean latency.", 2),
        ("p50_ns", "Histogram-estimated median latency.", 3),
        ("p99_ns", "Histogram-estimated 99th-percentile latency.", 4),
    ] {
        let fam = format!("{name}_{suffix}");
        let _ = writeln!(o, "# HELP {fam} {help}");
        let _ = writeln!(o, "# TYPE {fam} gauge");
        for c in cells {
            let v = prom_escape(&c.stage);
            let x = [c.min_ns, c.max_ns, c.mean_ns, c.p50_ns, c.p99_ns][pick];
            let _ = writeln!(o, "{fam}{{{label}=\"{v}\"}} {x}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
        for i in 0..LATENCY_BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i).max(1)), i);
        }
    }

    #[test]
    fn spans_record_when_enabled() {
        let m = Metrics::new();
        {
            let _span = m.span(Stage::Score);
            std::hint::black_box(1 + 1);
        }
        m.record_ns(Stage::Rank, 1000);
        let snap = m.snapshot();
        if cfg!(feature = "telemetry") {
            assert_eq!(snap.stage("score").unwrap().count, 1);
            let rank = snap.stage("rank").unwrap();
            assert_eq!(rank.count, 1);
            assert_eq!(rank.total_ns, 1000);
            // min/max are histogram-bucket bounds: 1000 ns ∈ [512, 1024)
            assert_eq!(rank.min_ns, 512);
            assert_eq!(rank.max_ns, 1023);
            assert_eq!(
                rank.buckets,
                vec![HistogramBucket {
                    floor_ns: 512,
                    count: 1
                }]
            );
        } else {
            assert!(snap.stages.iter().all(|s| s.count == 0));
        }
    }

    #[test]
    fn runtime_switch_stops_recording() {
        let m = Metrics::new();
        m.set_enabled(false);
        {
            let _span = m.span(Stage::Score);
        }
        m.record_ns(Stage::Score, 5);
        m.record_query("skew", Mode::Exact, false);
        m.record_sketch_fallback();
        let snap = m.snapshot();
        assert!(snap.stages.iter().all(|s| s.count == 0));
        assert_eq!(snap.queries.total, 0);
        assert_eq!(snap.sketch_fallbacks, 0);
    }

    #[test]
    fn query_counters_split_by_mode_and_class() {
        let m = Metrics::new();
        m.record_query("skew", Mode::Exact, false);
        m.record_query("skew", Mode::Approximate, true);
        m.record_query("dispersion", Mode::Approximate, false);
        let snap = m.snapshot();
        if cfg!(feature = "telemetry") {
            assert_eq!(snap.queries.total, 3);
            assert_eq!(snap.queries.exact, 1);
            assert_eq!(snap.queries.approximate, 2);
            assert_eq!(snap.queries.index_served, 1);
            assert_eq!(snap.queries.by_class["skew"], 2);
            assert_eq!(snap.queries.by_class["dispersion"], 1);
        } else {
            assert_eq!(snap.queries.total, 0);
        }
    }

    #[test]
    fn lap_records_each_boundary() {
        let m = Metrics::new();
        let mut lap = Lap::start(Some(&m));
        std::hint::black_box(1 + 1);
        lap.mark(Stage::Score);
        lap.mark(Stage::Rank);
        let snap = m.snapshot();
        if cfg!(feature = "telemetry") {
            assert_eq!(snap.stage("score").unwrap().count, 1);
            assert_eq!(snap.stage("rank").unwrap().count, 1);
        } else {
            assert!(snap.stages.iter().all(|s| s.count == 0));
        }
        // inert with no registry attached
        let mut none = Lap::start(None);
        none.mark(Stage::Score);
        assert_eq!(
            m.snapshot().stage("score").unwrap().count,
            snap.stage("score").unwrap().count
        );
    }

    #[test]
    fn snapshot_always_lists_every_stage_in_order() {
        let snap = Metrics::new().snapshot();
        let names: Vec<&str> = snap.stages.iter().map(|s| s.stage.as_str()).collect();
        let expected: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn renderings_are_deterministic() {
        let m = Metrics::new();
        m.record_ns(Stage::Score, 1500);
        m.record_ns(Stage::Score, 1700);
        m.record_query("skew", Mode::Exact, false);
        let a = m.snapshot();
        let mut b = m.snapshot();
        // capture metadata advances monotonically between snapshots …
        assert_eq!(b.sample_seq, a.sample_seq + 1);
        assert!(b.uptime_secs >= a.uptime_secs);
        // … and is the only thing that differs for identical state
        b.sample_seq = a.sample_seq;
        b.uptime_secs = a.uptime_secs;
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_text(), b.to_text());
        assert_eq!(a.to_prometheus(), b.to_prometheus());
        // and the JSON round-trips
        let back: MetricsSnapshot = serde_json::from_str(&a.to_json()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn quantiles_track_the_histogram() {
        let m = Metrics::new();
        for _ in 0..99 {
            m.record_ns(Stage::Score, 1000); // bucket [512, 1024)
        }
        m.record_ns(Stage::Score, 1 << 20); // one outlier
        let snap = m.snapshot();
        if cfg!(feature = "telemetry") {
            let s = snap.stage("score").unwrap();
            assert_eq!(s.p50_ns, 512 + 256, "median sits in the common bucket");
            assert!(s.p99_ns <= 1 << 10);
            assert!(s.max_ns >= 1 << 20);
        }
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = Metrics::new();
        m.record_ns(Stage::Score, 42);
        m.record_query("skew", Mode::Exact, false);
        m.record_sketch_fallback();
        m.record_ingest_batch(100);
        m.record_republish_incremental(2, 10, 50, 7);
        m.reset();
        let snap = m.snapshot();
        assert!(snap.stages.iter().all(|s| s.count == 0));
        assert_eq!(snap.queries.total, 0);
        assert!(snap.queries.by_class.is_empty());
        assert_eq!(snap.sketch_fallbacks, 0);
        assert_eq!(snap.ingest, IngestSnapshot::default());
    }

    #[test]
    fn serve_counters_are_always_on_and_reset() {
        let m = Metrics::new();
        m.record_connection();
        m.record_connection_shed();
        m.record_request(Endpoint::Query, 2000);
        m.record_load_shed();
        m.record_serve_error();
        m.record_session_created();
        m.record_session_created();
        m.record_session_expired();
        m.record_session_evicted();
        m.record_session_closed();
        let snap = m.snapshot();
        // counters flow regardless of the telemetry feature
        assert_eq!(snap.serve.connections, 1);
        assert_eq!(snap.serve.connections_shed, 1);
        assert_eq!(snap.serve.requests, 1);
        assert_eq!(snap.serve.load_shed, 1);
        assert_eq!(snap.serve.errors, 1);
        assert_eq!(snap.serve.sessions_created, 2);
        assert_eq!(snap.serve.sessions_expired, 1);
        assert_eq!(snap.serve.sessions_evicted, 1);
        assert_eq!(snap.serve.sessions_closed, 1);
        // 2 created − (1 closed + 1 expired + 1 evicted) saturates to 0
        assert_eq!(snap.serve.sessions_live(), 0);
        // the endpoint histogram is feature-gated like the stage cells
        let names: Vec<&str> = snap
            .serve
            .endpoints
            .iter()
            .map(|e| e.stage.as_str())
            .collect();
        let expected: Vec<&str> = Endpoint::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names, expected);
        let query = snap
            .serve
            .endpoints
            .iter()
            .find(|e| e.stage == "query")
            .unwrap();
        assert_eq!(query.count > 0, cfg!(feature = "telemetry"));
        let text = snap.to_text();
        assert!(text.contains("serve: 1 connections accepted"));
        assert!(text
            .contains("sessions: 2 created, 1 closed, 1 expired (ttl), 1 evicted (lru); 0 live"));
        m.reset();
        let clean = m.snapshot().serve;
        assert_eq!(clean.connections + clean.requests + clean.load_shed, 0);
        assert!(clean.endpoints.iter().all(|e| e.count == 0));
        // a quiet registry prints no serve section at all
        assert!(!m.snapshot().to_text().contains("serve:"));
    }

    #[test]
    fn ingest_counters_accumulate_and_render() {
        let m = Metrics::new();
        m.record_ingest_batch(100);
        m.record_ingest_batch(28);
        m.record_ingest_merge();
        m.record_republish_full();
        m.record_republish_clean();
        m.record_republish_incremental(2, 10, 50, 7);
        let snap = m.snapshot();
        if cfg!(feature = "telemetry") {
            assert_eq!(snap.ingest.rows, 128);
            assert_eq!(snap.ingest.batches, 2);
            assert_eq!(snap.ingest.merges, 1);
            assert_eq!(snap.ingest.republishes_full, 1);
            assert_eq!(snap.ingest.republishes_incremental, 1);
            assert_eq!(snap.ingest.republishes_clean, 1);
            assert_eq!(snap.ingest.rescored_classes, 2);
            assert_eq!(snap.ingest.rescored_tuples, 10);
            assert_eq!(snap.ingest.reused_tuples, 50);
            assert_eq!(snap.ingest.cache_entries_migrated, 7);
            assert!(snap.to_text().contains("ingest: 128 rows in 2 batches"));
        } else {
            assert_eq!(snap.ingest, IngestSnapshot::default());
        }
    }
}
