//! The top-level [`Foresight`] facade: load a table (or a partitioned
//! [`TableSource`]), preprocess sketches, run insight queries, focus
//! insights, assemble carousels, save sessions.

use crate::cache::{CacheStats, ScoreCache};
use crate::error::{EngineError, Result};
use crate::executor::{Executor, Mode};
use crate::neighborhood::NeighborhoodWeights;
use crate::query::InsightQuery;
use crate::recommend::{carousels_with, Carousel, CarouselConfig, DEFAULT_FOCUS_OVERFETCH};
use crate::session::Session;
use foresight_data::{Table, TableSource};
use foresight_insight::{InsightClass, InsightInstance, InsightRegistry};
use foresight_sketch::{CatalogConfig, Mergeable, SketchCatalog};
use foresight_viz::ChartSpec;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// The Foresight system over one dataset.
///
/// # Examples
/// ```
/// use foresight_engine::Foresight;
/// use foresight_engine::query::InsightQuery;
/// use foresight_data::datasets;
///
/// let mut fs = Foresight::new(datasets::oecd());
/// let top = fs.query(&InsightQuery::class("linear-relationship").top_k(1)).unwrap();
/// assert_eq!(top.len(), 1);
/// ```
///
/// ## Partitioned ingest
///
/// A [`TableSource::Sharded`] source keeps its row partitions separate;
/// after [`Foresight::preprocess`], approximate-mode queries, carousels,
/// and profiles are answered from the *merged* per-shard sketch catalog —
/// the shards are never concatenated. Exact mode materializes the shards
/// lazily on first use (and errors with
/// [`EngineError::ExactUnavailable`] when the source kept only sketches).
pub struct Foresight {
    source: TableSource,
    /// Lazy vstack of a sharded source, built on first exact-mode use.
    materialized: OnceLock<Table>,
    /// Lazy zero-row table carrying the schema (and semantic tags) — what
    /// the executor enumerates candidates against when the raw rows stay
    /// sharded.
    schema_table: OnceLock<Table>,
    registry: InsightRegistry,
    catalog: Option<SketchCatalog>,
    index: Option<crate::index::InsightIndex>,
    session: Session,
    cache: ScoreCache,
    mode: Mode,
    parallel: bool,
    focus_overfetch: usize,
    weights: NeighborhoodWeights,
}

impl Foresight {
    /// Opens a table with the 12 default insight classes, in exact mode.
    ///
    /// Parallel execution (batch scoring, multi-threaded candidate scoring,
    /// parallel carousel assembly) is on by default when the process has
    /// more than one rayon thread available.
    pub fn new(table: Table) -> Self {
        Self::from_source(TableSource::materialized(table))
    }

    /// Opens any [`TableSource`] — materialized or sharded — with the
    /// default class roster.
    pub fn from_source(source: TableSource) -> Self {
        let session = Session::new(source.name());
        Self {
            source,
            materialized: OnceLock::new(),
            schema_table: OnceLock::new(),
            registry: InsightRegistry::default(),
            catalog: None,
            index: None,
            session,
            cache: ScoreCache::new(),
            mode: Mode::Exact,
            parallel: rayon::current_num_threads() > 1,
            focus_overfetch: DEFAULT_FOCUS_OVERFETCH,
            weights: NeighborhoodWeights::default(),
        }
    }

    /// Opens a table with a custom class roster.
    pub fn with_registry(table: Table, registry: InsightRegistry) -> Self {
        Self {
            registry,
            ..Self::new(table)
        }
    }

    /// The underlying source (materialized table or row shards).
    pub fn source(&self) -> &TableSource {
        &self.source
    }

    /// The underlying table, materializing a sharded source on first call.
    ///
    /// # Panics
    /// When the source is sketch-only (raw rows dropped); use
    /// [`Foresight::try_table`] to handle that case as an error.
    pub fn table(&self) -> &Table {
        self.try_table()
            .expect("raw rows unavailable (sketch-only source); use try_table()")
    }

    /// The underlying table, concatenating a sharded source lazily (the
    /// vstack happens once, on first need; approximate-mode work never
    /// triggers it).
    pub fn try_table(&self) -> Result<&Table> {
        if let Some(t) = self.source.as_materialized() {
            return Ok(t);
        }
        if let Some(t) = self.materialized.get() {
            return Ok(t);
        }
        let t = self.source.materialize()?;
        Ok(self.materialized.get_or_init(|| t))
    }

    fn schema_table(&self) -> &Table {
        self.schema_table.get_or_init(|| self.source.schema_table())
    }

    /// Whether approximate-mode execution runs off the merged catalog with
    /// no raw-row fallback.
    fn sketch_backed(&self) -> bool {
        self.source.as_materialized().is_none() && self.mode == Mode::Approximate
    }

    /// The table the executor (and insight index) runs against under the
    /// current mode: the real rows when available and needed, a zero-row
    /// schema table when a sharded source answers from sketches alone.
    fn exec_table(&self) -> Result<&Table> {
        if self.sketch_backed() {
            Ok(self.schema_table())
        } else {
            self.try_table()
        }
    }

    /// The class registry (read-only).
    pub fn registry(&self) -> &InsightRegistry {
        &self.registry
    }

    /// Plugs in an insight class (§2.2 extensibility). Invalidates any
    /// built insight index (rebuild with [`Foresight::build_index`]) and
    /// the score cache (a re-registered id may score differently).
    pub fn register_class(&mut self, class: Arc<dyn InsightClass>) {
        self.registry.register(class);
        self.index = None;
        self.cache.clear();
    }

    /// Materializes the insight index — the "indexes" of the paper's
    /// preprocessing triad. Basic top-k queries are then answered from a
    /// precomputed sorted list without re-scoring candidates. Uses sketch
    /// scores when [`Foresight::preprocess`] ran first.
    ///
    /// # Errors
    /// [`EngineError::ExactUnavailable`] when the index would need raw rows
    /// a sketch-only source cannot provide (exact mode without materialized
    /// data).
    pub fn build_index(&mut self) -> Result<&crate::index::InsightIndex> {
        let index = if self.sketch_backed() {
            let catalog = self.catalog.as_ref().ok_or(EngineError::NoCatalog)?;
            crate::index::InsightIndex::build_sketch_only(
                self.schema_table(),
                &self.registry,
                catalog,
            )
        } else {
            let catalog = if self.mode == Mode::Approximate {
                self.catalog.as_ref()
            } else {
                None
            };
            crate::index::InsightIndex::build(self.try_table()?, &self.registry, catalog)
        };
        self.index = Some(index);
        Ok(self.index.as_ref().expect("just built"))
    }

    /// The insight index, if one was built.
    pub fn insight_index(&self) -> Option<&crate::index::InsightIndex> {
        self.index.as_ref()
    }

    /// The current session state.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Replaces the session (e.g. one restored via [`Session::load`]).
    pub fn restore_session(&mut self, session: Session) {
        self.session = session;
    }

    /// Sets the neighborhood re-ranking weights.
    pub fn set_weights(&mut self, weights: NeighborhoodWeights) {
        self.weights = weights;
    }

    /// Enables rayon-parallel query execution and carousel assembly (on by
    /// default when more than one thread is available).
    pub fn set_parallel(&mut self, on: bool) {
        self.parallel = on;
    }

    /// Sets the focus over-fetch factor used by carousel assembly (see
    /// [`DEFAULT_FOCUS_OVERFETCH`]); values below 1 are treated as 1.
    pub fn set_focus_overfetch(&mut self, factor: usize) {
        self.focus_overfetch = factor.max(1);
    }

    /// Hit/miss/size counters of the cross-query score cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached score. Normally unnecessary — the engine clears
    /// the cache itself whenever scores could change.
    pub fn clear_score_cache(&mut self) {
        self.cache.clear();
    }

    /// Runs the paper's preprocessing phase: builds the sketch catalog and
    /// switches the engine to approximate (interactive) mode. For a sharded
    /// source the per-shard catalogs are built independently (fanned out
    /// with rayon when `config.parallel` is set) and merged — the shards
    /// themselves are never concatenated. Any built insight index is
    /// invalidated (its scores were computed in the old mode); call
    /// [`Foresight::build_index`] again to re-materialize it.
    ///
    /// # Errors
    /// [`EngineError::ExactUnavailable`] when the raw shards were dropped
    /// (a sketch-only source cannot be re-sketched);
    /// [`EngineError::Merge`] if per-shard catalogs fail to combine.
    pub fn preprocess(&mut self, config: &CatalogConfig) -> Result<&SketchCatalog> {
        let catalog = match self.source.as_materialized() {
            Some(t) => SketchCatalog::build(t, config),
            None => {
                if self.source.is_sketch_only() {
                    return Err(EngineError::ExactUnavailable(
                        "cannot rebuild the catalog: the raw shards were dropped",
                    ));
                }
                let shards: Vec<&Table> = self.source.shards().collect();
                SketchCatalog::build_sharded(&shards, config)?
            }
        };
        self.catalog = Some(catalog);
        self.mode = Mode::Approximate;
        self.index = None;
        // approximate-mode entries would reflect the old catalog
        self.cache.clear();
        Ok(self.catalog.as_ref().expect("just built"))
    }

    /// Ingests one more disjoint row partition.
    ///
    /// The shard is appended to the source (a materialized table is
    /// promoted to a sharded source in place) and, when a catalog exists,
    /// sketched at its global row offset and merged in — no rebuild, no
    /// concatenation. The insight index is invalidated, any lazily
    /// materialized concatenation is discarded, and the score cache's data
    /// generation is bumped: stale scores become unreachable without
    /// discarding still-valid describe memoization.
    ///
    /// Returns the appended shard's global row offset.
    ///
    /// # Errors
    /// Schema mismatches surface as [`EngineError::Data`]; catalog merge
    /// failures as [`EngineError::Merge`].
    pub fn append_shard(&mut self, shard: Table) -> Result<usize> {
        let offset = self.source.append_shard(shard)?;
        if let Some(catalog) = self.catalog.as_mut() {
            let added = self.source.shards().last().expect("shard just appended");
            let config = catalog.config().clone();
            let shard_catalog = SketchCatalog::build_shard(added, &config, offset as u64);
            catalog.merge(&shard_catalog)?;
        }
        self.index = None;
        self.materialized = OnceLock::new();
        self.cache.bump_epoch();
        Ok(offset)
    }

    /// Switches between exact and approximate scoring.
    ///
    /// # Errors
    /// Approximate mode requires a prior [`Foresight::preprocess`]; exact
    /// mode requires raw rows the source can still provide.
    pub fn set_mode(&mut self, mode: Mode) -> Result<()> {
        match mode {
            Mode::Approximate if self.catalog.is_none() => Err(EngineError::NoCatalog),
            Mode::Exact if self.source.is_sketch_only() => Err(EngineError::ExactUnavailable(
                "exact mode needs raw rows, but this source kept only sketches",
            )),
            _ => {
                self.mode = mode;
                Ok(())
            }
        }
    }

    /// The current mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The sketch catalog, if preprocessing ran.
    pub fn catalog(&self) -> Option<&SketchCatalog> {
        self.catalog.as_ref()
    }

    fn executor(&self) -> Result<Executor<'_>> {
        let ex = match (self.mode, self.catalog.as_ref()) {
            (Mode::Approximate, Some(catalog)) => {
                Executor::approximate(self.exec_table()?, &self.registry, catalog)
                    .sketch_only(self.sketch_backed())
            }
            _ => Executor::exact(self.try_table()?, &self.registry),
        };
        Ok(ex.parallel(self.parallel).with_cache(&self.cache))
    }

    /// Runs an insight query and records it in the session history.
    ///
    /// Served from the insight index when one is built and covers the
    /// query; otherwise scored by the executor (sketch or exact mode).
    pub fn query(&mut self, query: &InsightQuery) -> Result<Vec<InsightInstance>> {
        let indexed = match self.index.as_ref() {
            Some(i) => i.query(self.exec_table()?, &self.registry, query),
            None => None,
        };
        let out = match indexed {
            Some(out) => out,
            None => self.executor()?.execute(query)?,
        };
        self.session.record_query(query, out.len());
        Ok(out)
    }

    /// Re-executes every query recorded in the current session's history
    /// (e.g. one restored from a colleague's saved session) and returns the
    /// per-query results. The replay itself is appended to the history.
    pub fn replay_session(&mut self) -> Result<Vec<Vec<InsightInstance>>> {
        let queries: Vec<InsightQuery> = self.session.queries().into_iter().cloned().collect();
        queries.iter().map(|q| self.query(q)).collect()
    }

    /// Builds all carousels (one per class), re-ranked toward the focus set.
    /// Assembled in parallel (one task per class) when parallelism is on.
    pub fn carousels(&self, per_class: usize) -> Result<Vec<Carousel>> {
        carousels_with(
            &self.executor()?,
            &self.registry,
            &self.session,
            &CarouselConfig {
                per_class,
                weights: self.weights,
                focus_overfetch: self.focus_overfetch,
                parallel: self.parallel,
            },
        )
    }

    /// Focuses an insight, steering future recommendations toward its
    /// neighborhood.
    pub fn focus(&mut self, instance: InsightInstance) {
        self.session.focus(instance);
    }

    /// Removes a focused insight.
    pub fn unfocus(&mut self, attrs: &foresight_insight::AttrTuple) -> bool {
        self.session.unfocus(attrs)
    }

    /// Profiles the dataset: per-column summaries plus the strongest
    /// instance of every registered class. A sharded source in approximate
    /// mode is profiled entirely from the merged catalog (moments, KLL
    /// quantiles, heavy hitters, entropy, HLL cardinality) — no shard
    /// concatenation.
    pub fn profile(&self) -> Result<crate::profile::DatasetProfile> {
        if self.sketch_backed() {
            let catalog = self.catalog.as_ref().ok_or(EngineError::NoCatalog)?;
            return crate::profile::profile_from_catalog(
                &self.source,
                catalog,
                &self.registry,
                self.schema_table(),
            );
        }
        crate::profile::profile(self.try_table()?, &self.registry)
    }

    /// Persists the full engine state — session *and* sketch catalog — so a
    /// later process can resume exploration without re-running the
    /// preprocessing phase.
    pub fn save_state(&self, writer: impl std::io::Write) -> Result<()> {
        let state = PersistedState {
            session: self.session.clone(),
            catalog: self.catalog.clone(),
        };
        serde_json::to_writer(writer, &state)?;
        Ok(())
    }

    /// Restores state saved with [`Foresight::save_state`]. When the saved
    /// state includes a catalog, the engine switches to approximate mode.
    pub fn load_state(&mut self, reader: impl std::io::Read) -> Result<()> {
        let state: PersistedState = serde_json::from_reader(reader)?;
        self.session = state.session;
        if state.catalog.is_some() {
            self.catalog = state.catalog;
            self.mode = Mode::Approximate;
        }
        self.index = None;
        // the restored catalog is not the one cached scores came from
        self.cache.clear();
        Ok(())
    }

    /// Builds a self-contained HTML report: one carousel section per class
    /// (top `per_class` charts each) plus every available class overview —
    /// the library-shaped version of the paper's demo UI. Charts read raw
    /// rows, so a sketch-only source cannot be reported on.
    pub fn report(&self, per_class: usize) -> Result<foresight_viz::Report> {
        let mut report =
            foresight_viz::Report::new(format!("Foresight insights — {}", self.source.name()));
        report.intro = format!(
            "{} rows × {} columns; per-class carousels ranked strongest first",
            self.source.n_rows(),
            self.source.n_cols()
        );
        for carousel in self.carousels(per_class)? {
            let mut charts = Vec::new();
            for inst in &carousel.instances {
                if let Some(spec) = self.chart(inst)? {
                    charts.push(spec);
                }
            }
            if !charts.is_empty() {
                report.section(
                    carousel.class_name,
                    format!("ranked by {}", carousel.metric),
                    charts,
                );
            }
        }
        if let Some(fig2) = self.overview("linear-relationship")? {
            report.section("Correlation overview", "all pairwise ρ", vec![fig2]);
        }
        Ok(report)
    }

    /// The chart for one insight instance (reads raw rows — errors on a
    /// sketch-only source).
    pub fn chart(&self, instance: &InsightInstance) -> Result<Option<ChartSpec>> {
        let class = self
            .registry
            .get(&instance.class_id)
            .ok_or_else(|| EngineError::UnknownClass(instance.class_id.clone()))?;
        Ok(class.chart(self.try_table()?, &instance.attrs))
    }

    /// The class-level overview chart (§2.1's third level of exploration;
    /// Figure 2 for the linear-relationship class). Reads raw rows.
    pub fn overview(&self, class_id: &str) -> Result<Option<ChartSpec>> {
        let class = self
            .registry
            .get(class_id)
            .ok_or_else(|| EngineError::UnknownClass(class_id.to_owned()))?;
        Ok(class.overview(self.try_table()?))
    }
}

/// The serialized form of a [`Foresight`] engine's resumable state.
#[derive(Serialize, Deserialize)]
struct PersistedState {
    session: Session,
    catalog: Option<SketchCatalog>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::{datasets, TableBuilder};
    use foresight_insight::AttrTuple;

    fn oecd() -> Foresight {
        Foresight::new(datasets::oecd())
    }

    /// One synthetic table plus the same rows cut into `bounds`-delimited
    /// shards.
    fn whole_and_shards(n: usize, bounds: &[usize]) -> (Table, Vec<Table>) {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        let z: Vec<f64> = (0..n).map(|i| ((i * 37) % n) as f64).collect();
        let cats: Vec<&str> = (0..n)
            .map(|i| if i % 4 == 0 { "gold" } else { "base" })
            .collect();
        let build = |name: &str, lo: usize, hi: usize| {
            TableBuilder::new(name)
                .numeric("x", x[lo..hi].to_vec())
                .numeric("y", y[lo..hi].to_vec())
                .numeric("z", z[lo..hi].to_vec())
                .categorical("c", cats[lo..hi].iter().copied())
                .build()
                .unwrap()
        };
        let whole = build("whole", 0, n);
        let mut edges = vec![0];
        edges.extend_from_slice(bounds);
        edges.push(n);
        let shards = edges
            .windows(2)
            .map(|w| build("shard", w[0], w[1]))
            .collect();
        (whole, shards)
    }

    #[test]
    fn query_and_history() {
        let mut fs = oecd();
        let out = fs
            .query(&InsightQuery::class("linear-relationship").top_k(3))
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(fs.session().history.len(), 1);
    }

    #[test]
    fn preprocess_switches_modes() {
        let mut fs = oecd();
        assert_eq!(fs.mode(), Mode::Exact);
        assert!(matches!(
            fs.set_mode(Mode::Approximate),
            Err(EngineError::NoCatalog)
        ));
        fs.preprocess(&CatalogConfig::default()).unwrap();
        assert_eq!(fs.mode(), Mode::Approximate);
        fs.set_mode(Mode::Exact).unwrap();
        fs.set_mode(Mode::Approximate).unwrap();
    }

    #[test]
    fn charts_and_overviews() {
        let mut fs = oecd();
        let top = fs
            .query(&InsightQuery::class("linear-relationship").top_k(1))
            .unwrap();
        let chart = fs.chart(&top[0]).unwrap().unwrap();
        assert_eq!(chart.kind_name(), "scatter");
        let fig2 = fs.overview("linear-relationship").unwrap().unwrap();
        assert_eq!(fig2.kind_name(), "heatmap");
        assert!(fs.overview("nope").is_err());
    }

    #[test]
    fn focus_round_trip() {
        let mut fs = oecd();
        let top = fs
            .query(&InsightQuery::class("linear-relationship").top_k(1))
            .unwrap();
        fs.focus(top[0].clone());
        assert_eq!(fs.session().focus.len(), 1);
        let attrs = top[0].attrs;
        assert!(fs.unfocus(&attrs));
        assert!(fs.session().focus.is_empty());
    }

    #[test]
    fn full_state_round_trip_resumes_approximate_mode() {
        let mut fs = oecd();
        fs.preprocess(&CatalogConfig::default()).unwrap();
        let q = InsightQuery::class("linear-relationship").top_k(3);
        let before = fs.query(&q).unwrap();
        let mut buf = Vec::new();
        fs.save_state(&mut buf).unwrap();

        let mut resumed = oecd();
        assert_eq!(resumed.mode(), Mode::Exact);
        resumed.load_state(buf.as_slice()).unwrap();
        assert_eq!(resumed.mode(), Mode::Approximate);
        // the restored catalog reproduces the sketch-backed results exactly
        let after = resumed.query(&q).unwrap();
        assert_eq!(before, after);
        // and the history carried over (1 query before save + 1 after)
        assert_eq!(resumed.session().queries().len(), 2);
    }

    #[test]
    fn indexed_queries_match_executor_queries() {
        let mut fs = oecd();
        let q = InsightQuery::class("linear-relationship").top_k(4);
        let unindexed = fs.query(&q).unwrap();
        fs.build_index().unwrap();
        assert!(fs.insight_index().is_some());
        let indexed = fs.query(&q).unwrap();
        assert_eq!(unindexed, indexed);
        // registering a class invalidates the index
        fs.preprocess(&CatalogConfig::default()).unwrap();
        assert!(fs.insight_index().is_none());
    }

    #[test]
    fn session_survives_save_restore() {
        let mut fs = oecd();
        fs.focus(InsightInstance {
            class_id: "skew".into(),
            attrs: AttrTuple::One(5),
            score: 1.2,
            metric: "|skewness|".into(),
            detail: "test".into(),
        });
        let json = fs.session().to_json().unwrap();
        let mut fs2 = oecd();
        fs2.restore_session(Session::from_json(&json).unwrap());
        assert_eq!(fs.session(), fs2.session());
    }

    #[test]
    fn sharded_source_answers_from_merged_catalog() {
        let (whole, shards) = whole_and_shards(600, &[150, 400]);
        let config = CatalogConfig {
            hyperplane_k: Some(1024),
            ..Default::default()
        };

        let mut mono = Foresight::new(whole);
        mono.preprocess(&config).unwrap();
        let mut sharded = Foresight::from_source(TableSource::sharded(shards).unwrap());
        sharded.preprocess(&config).unwrap();
        assert_eq!(sharded.source().shard_count(), 3);

        let q = InsightQuery::class("linear-relationship").top_k(2);
        let a = mono.query(&q).unwrap();
        let b = sharded.query(&q).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].attrs, b[0].attrs, "top pair must agree");
        // sketch-only details make no claims raw rows would be needed for
        assert!(b[0].detail.contains("sketch"));

        // carousels and profiles run without ever concatenating the shards
        let carousels = sharded.carousels(2).unwrap();
        assert!(!carousels.is_empty());
        let profile = sharded.profile().unwrap();
        assert_eq!(profile.rows, 600);
        assert!(sharded.source().as_materialized().is_none());
    }

    #[test]
    fn sharded_exact_mode_materializes_lazily() {
        let (whole, shards) = whole_and_shards(300, &[100]);
        let mut sharded = Foresight::from_source(TableSource::sharded(shards).unwrap());
        // exact mode concatenates on first query and matches the whole table
        let q = InsightQuery::class("linear-relationship").top_k(1);
        let exact = sharded.query(&q).unwrap();
        let mut mono = Foresight::new(whole);
        assert_eq!(exact, mono.query(&q).unwrap());
    }

    #[test]
    fn sketch_only_source_rejects_exact_paths() {
        let (_, shards) = whole_and_shards(400, &[200]);
        let mut source = TableSource::sharded(shards).unwrap();
        let mut fs = Foresight::from_source(source.clone());
        fs.preprocess(&CatalogConfig::default()).unwrap();

        // drop the raw rows *after* sketching: queries keep working…
        source.drop_raw();
        let mut lean = Foresight::from_source(source);
        let mut buf = Vec::new();
        fs.save_state(&mut buf).unwrap();
        lean.load_state(buf.as_slice()).unwrap();
        let out = lean.query(&InsightQuery::class("skew").top_k(1)).unwrap();
        assert_eq!(out.len(), 1);

        // …but every raw-row path is a typed error, not a panic
        assert!(matches!(
            lean.set_mode(Mode::Exact),
            Err(EngineError::ExactUnavailable(_))
        ));
        assert!(lean.try_table().is_err());
        assert!(lean.chart(&out[0]).is_err());
        assert!(matches!(
            lean.preprocess(&CatalogConfig::default()),
            Err(EngineError::ExactUnavailable(_))
        ));
    }

    #[test]
    fn append_shard_merges_into_catalog_and_bumps_epoch() {
        let (_, mut shards) = whole_and_shards(800, &[300, 600]);
        let last = shards.pop().expect("three shards");
        let mut fs = Foresight::from_source(TableSource::sharded(shards).unwrap());
        fs.preprocess(&CatalogConfig {
            hyperplane_k: Some(1024),
            ..Default::default()
        })
        .unwrap();
        assert_eq!(fs.catalog().unwrap().rows(), 600);

        let q = InsightQuery::class("linear-relationship").top_k(1);
        fs.query(&q).unwrap();
        let entries_before = fs.cache_stats().entries;
        assert!(entries_before > 0);

        let offset = fs.append_shard(last).unwrap();
        assert_eq!(offset, 600);
        assert_eq!(fs.source().n_rows(), 800);
        // the epoch bump retired every pre-append score
        assert_eq!(fs.cache_stats().entries, 0);
        // the merged catalog now covers every row — identical to sketching
        // the full partition set in one preprocess
        assert_eq!(fs.catalog().unwrap().rows(), 800);
        let mut all_at_once = Foresight::from_source(
            TableSource::sharded(whole_and_shards(800, &[300, 600]).1).unwrap(),
        );
        all_at_once
            .preprocess(&CatalogConfig {
                hyperplane_k: Some(1024),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(fs.query(&q).unwrap(), all_at_once.query(&q).unwrap());
    }

    #[test]
    fn append_shard_promotes_materialized_sources() {
        let (whole, shards) = whole_and_shards(200, &[120]);
        let mut fs = Foresight::new(shards[0].clone());
        assert!(fs.source().as_materialized().is_some());
        let offset = fs.append_shard(shards[1].clone()).unwrap();
        assert_eq!(offset, 120);
        assert!(fs.source().as_materialized().is_none());
        assert_eq!(fs.source().n_rows(), 200);
        // exact mode still works — the shards concatenate lazily
        let q = InsightQuery::class("linear-relationship").top_k(1);
        assert_eq!(
            fs.query(&q).unwrap(),
            Foresight::new(whole).query(&q).unwrap()
        );
    }
}
