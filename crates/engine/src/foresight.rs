//! The top-level [`Foresight`] facade: load a table (or a partitioned
//! [`TableSource`]), preprocess sketches, run insight queries, focus
//! insights, assemble carousels, save sessions.
//!
//! The facade is a thin convenience over the real split: an immutable,
//! shareable [`EngineCore`] plus one owned [`Session`]. Mutating calls
//! (`register_class`, `preprocess`, `append_shard`, `load_state`,
//! `set_mode`) republish the core through [`CoreBuilder`]; read calls
//! delegate to the current snapshot. Call [`Foresight::core`] /
//! [`Foresight::handle`] to serve additional concurrent users over the
//! same snapshot.

use crate::cache::CacheStats;
use crate::candidates::CandidateStrategy;
use crate::core::{CoreBuilder, EngineCore};
use crate::error::{EngineError, Result};
use crate::executor::Mode;
use crate::neighborhood::NeighborhoodWeights;
use crate::query::InsightQuery;
use crate::recommend::{Carousel, CarouselConfig, DEFAULT_FOCUS_OVERFETCH};
use crate::session::Session;
use foresight_data::{Table, TableSource};
use foresight_insight::{InsightClass, InsightInstance, InsightRegistry};
use foresight_sketch::{CatalogConfig, SketchCatalog};
use foresight_viz::ChartSpec;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The newest persisted-state format this build writes (and the highest it
/// reads). Version 0 is the legacy pre-versioning format, still accepted.
pub const STATE_FORMAT_VERSION: u32 = 1;

/// The Foresight system over one dataset: a shared [`EngineCore`] snapshot
/// plus this caller's own [`Session`].
///
/// # Examples
/// ```
/// use foresight_engine::Foresight;
/// use foresight_engine::query::InsightQuery;
/// use foresight_data::datasets;
///
/// let mut fs = Foresight::new(datasets::oecd());
/// let top = fs.query(&InsightQuery::class("linear-relationship").top_k(1)).unwrap();
/// assert_eq!(top.len(), 1);
/// ```
///
/// ## Partitioned ingest
///
/// A [`TableSource::Sharded`] source keeps its row partitions separate;
/// after [`Foresight::preprocess`], approximate-mode queries, carousels,
/// and profiles are answered from the *merged* per-shard sketch catalog —
/// the shards are never concatenated. Exact mode materializes the shards
/// lazily on first use (and errors with
/// [`EngineError::ExactUnavailable`] when the source kept only sketches).
///
/// ## Concurrent serving
///
/// Every query path runs `&self` on the underlying core. To serve many
/// users over one dataset, share [`Foresight::core`] and give each user a
/// [`crate::SessionHandle`] via [`Foresight::handle`]; the facade's own
/// mutating methods republish a fresh snapshot without disturbing
/// handles that hold the old one.
pub struct Foresight {
    /// Always `Some` between method calls; taken transiently while the
    /// writer path republishes a new snapshot.
    core: Option<Arc<EngineCore>>,
    session: Session,
    focus_overfetch: usize,
    weights: NeighborhoodWeights,
    candidates: CandidateStrategy,
}

impl Foresight {
    /// Opens a table with the 12 default insight classes, in exact mode.
    ///
    /// Parallel execution (batch scoring, multi-threaded candidate scoring,
    /// parallel carousel assembly) is on by default when the process has
    /// more than one rayon thread available.
    pub fn new(table: Table) -> Self {
        Self::from_source(TableSource::materialized(table))
    }

    /// Opens any [`TableSource`] — materialized or sharded — with the
    /// default class roster.
    pub fn from_source(source: TableSource) -> Self {
        Self::from_core(CoreBuilder::new(source).freeze())
    }

    /// Opens a table with a custom class roster.
    pub fn with_registry(table: Table, registry: InsightRegistry) -> Self {
        Self::from_core(
            CoreBuilder::new(TableSource::materialized(table))
                .with_registry(registry)
                .freeze(),
        )
    }

    /// Wraps an already-published core snapshot (plus a fresh session).
    pub fn from_core(core: Arc<EngineCore>) -> Self {
        let session = Session::new(core.source().name());
        Self {
            core: Some(core),
            session,
            focus_overfetch: DEFAULT_FOCUS_OVERFETCH,
            weights: NeighborhoodWeights::default(),
            candidates: CandidateStrategy::Auto,
        }
    }

    /// The current core snapshot — share it (via [`Arc::clone`]) to serve
    /// concurrent sessions.
    pub fn core(&self) -> &Arc<EngineCore> {
        self.core.as_ref().expect("engine core always present")
    }

    /// A fresh per-user [`crate::SessionHandle`] over the current
    /// snapshot. Later mutations of this facade republish a *new*
    /// snapshot; existing handles keep the one they were created with.
    pub fn handle(&self) -> crate::SessionHandle {
        self.core().handle()
    }

    /// Runs a mutation through the writer path: takes the snapshot,
    /// stages edits on a [`CoreBuilder`], and republishes. When the facade
    /// is the sole owner the core is edited in place (no copies).
    fn edit<R>(&mut self, f: impl FnOnce(&mut CoreBuilder) -> Result<R>) -> Result<R> {
        let arc = self.core.take().expect("engine core always present");
        let mut builder = CoreBuilder::from_arc(arc);
        let out = f(&mut builder);
        // republish even on error: failed stages leave prior state intact
        self.core = Some(builder.freeze());
        out
    }

    /// The underlying source (materialized table or row shards).
    pub fn source(&self) -> &TableSource {
        self.core().source()
    }

    /// The underlying table, materializing a sharded source on first call.
    ///
    /// # Panics
    /// When the source is sketch-only (raw rows dropped); use
    /// [`Foresight::try_table`] to handle that case as an error.
    pub fn table(&self) -> &Table {
        self.core().table()
    }

    /// The underlying table, concatenating a sharded source lazily (the
    /// vstack happens once, on first need; approximate-mode work never
    /// triggers it).
    pub fn try_table(&self) -> Result<&Table> {
        self.core().try_table()
    }

    /// The class registry (read-only).
    pub fn registry(&self) -> &InsightRegistry {
        self.core().registry()
    }

    /// Plugs in an insight class (§2.2 extensibility). Republishes the
    /// core: any built insight index is dropped (rebuild with
    /// [`Foresight::build_index`]) and a fresh score-cache epoch is minted
    /// (a re-registered id may score differently).
    pub fn register_class(&mut self, class: Arc<dyn InsightClass>) {
        self.edit(|b| {
            b.register_class(class);
            Ok(())
        })
        .expect("register_class cannot fail");
    }

    /// Materializes the insight index — the "indexes" of the paper's
    /// preprocessing triad. Basic top-k queries are then answered from a
    /// precomputed sorted list without re-scoring candidates. Uses sketch
    /// scores when [`Foresight::preprocess`] ran first.
    ///
    /// # Errors
    /// [`EngineError::ExactUnavailable`] when the index would need raw rows
    /// a sketch-only source cannot provide (exact mode without materialized
    /// data).
    pub fn build_index(&mut self) -> Result<&crate::index::InsightIndex> {
        self.edit(|b| b.build_index())?;
        Ok(self.core().insight_index().expect("just built"))
    }

    /// The insight index, if one was built.
    pub fn insight_index(&self) -> Option<&crate::index::InsightIndex> {
        self.core().insight_index()
    }

    /// The current session state.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Replaces the session (e.g. one restored via [`Session::load`]).
    pub fn restore_session(&mut self, session: Session) {
        self.session = session;
    }

    /// Sets the neighborhood re-ranking weights.
    pub fn set_weights(&mut self, weights: NeighborhoodWeights) {
        self.weights = weights;
    }

    /// Enables rayon-parallel query execution and carousel assembly (on by
    /// default when more than one thread is available). Republishes the
    /// core with the new default; cached scores survive.
    pub fn set_parallel(&mut self, on: bool) {
        self.edit(|b| {
            b.set_parallel(on);
            Ok(())
        })
        .expect("set_parallel cannot fail");
    }

    /// Sets the focus over-fetch factor used by carousel assembly (see
    /// [`DEFAULT_FOCUS_OVERFETCH`]); values below 1 are treated as 1.
    pub fn set_focus_overfetch(&mut self, factor: usize) {
        self.focus_overfetch = factor.max(1);
    }

    /// The candidate-generation strategy in effect.
    pub fn candidate_strategy(&self) -> CandidateStrategy {
        self.candidates
    }

    /// Sets how pairwise queries generate candidates — the recall-vs-speed
    /// knob. [`CandidateStrategy::Auto`] (default) uses LSH bucket
    /// collisions only on wide tables with a sketch catalog;
    /// [`CandidateStrategy::Exhaustive`] pins recall to 1.0. No republish:
    /// this is session state, like the focus set.
    pub fn set_candidate_strategy(&mut self, strategy: CandidateStrategy) {
        self.candidates = strategy;
    }

    /// Hit/miss/occupancy/purge counters of the cross-query score cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.core().cache_stats()
    }

    /// A deterministic snapshot of the engine's telemetry — per-stage
    /// latency histograms, query counters, and score-cache traffic. The
    /// registry survives republishes, so preprocess/freeze timings stay
    /// visible after later mutations.
    pub fn metrics(&self) -> crate::telemetry::MetricsSnapshot {
        self.core().metrics_snapshot()
    }

    /// Drops every cached score. Normally unnecessary — the engine retires
    /// stale scores itself whenever they could change.
    pub fn clear_score_cache(&mut self) {
        self.core().cache().clear();
    }

    /// Runs the paper's preprocessing phase: builds the sketch catalog and
    /// switches the engine to approximate (interactive) mode. For a sharded
    /// source the per-shard catalogs are built independently (fanned out
    /// with rayon when `config.parallel` is set) and merged — the shards
    /// themselves are never concatenated. Any built insight index is
    /// invalidated (its scores were computed in the old mode); call
    /// [`Foresight::build_index`] again to re-materialize it.
    ///
    /// # Errors
    /// [`EngineError::ExactUnavailable`] when the raw shards were dropped
    /// (a sketch-only source cannot be re-sketched);
    /// [`EngineError::Merge`] if per-shard catalogs fail to combine.
    pub fn preprocess(&mut self, config: &CatalogConfig) -> Result<&SketchCatalog> {
        self.edit(|b| b.preprocess(config))?;
        Ok(self.core().catalog().expect("just built"))
    }

    /// Ingests one more disjoint row partition.
    ///
    /// The shard is appended to the source (a materialized table is
    /// promoted to a sharded source in place) and, when a catalog exists,
    /// sketched at its global row offset and merged in — no rebuild, no
    /// concatenation. The insight index is invalidated, any lazily
    /// materialized concatenation is discarded, and the score cache's data
    /// generation is bumped: stale scores become unreachable without
    /// discarding still-valid describe memoization.
    ///
    /// Returns the appended shard's global row offset.
    ///
    /// # Errors
    /// Schema mismatches surface as [`EngineError::Data`]; catalog merge
    /// failures as [`EngineError::Merge`].
    pub fn append_shard(&mut self, shard: Table) -> Result<usize> {
        self.edit(|b| b.append_shard(shard))
    }

    /// Switches between exact and approximate scoring.
    ///
    /// # Errors
    /// Approximate mode requires a prior [`Foresight::preprocess`]; exact
    /// mode requires raw rows the source can still provide.
    pub fn set_mode(&mut self, mode: Mode) -> Result<()> {
        self.edit(|b| b.set_mode(mode))
    }

    /// The current mode.
    pub fn mode(&self) -> Mode {
        self.core().mode()
    }

    /// The sketch catalog, if preprocessing ran.
    pub fn catalog(&self) -> Option<&SketchCatalog> {
        self.core().catalog()
    }

    /// Runs an insight query and records it in the session history.
    ///
    /// Served from the insight index when one is built and covers the
    /// query; otherwise scored by the executor (sketch or exact mode).
    /// Only the history append needs `&mut` — the core itself is
    /// read-only (see [`EngineCore::run_query`]).
    pub fn query(&mut self, query: &InsightQuery) -> Result<Vec<InsightInstance>> {
        let core = self.core();
        let out = core.run_query_strategy(query, core.mode(), core.parallel(), self.candidates)?;
        self.session.record_query(query, out.len());
        Ok(out)
    }

    /// EXPLAIN: runs the query with a forced trace and returns the results
    /// together with the captured [`QueryTrace`] — per-stage timings, this
    /// query's cache hits and misses, each candidate's sketch-vs-exact
    /// path, typed skip reasons, and the final top-k with rank deltas.
    /// Results are bit-identical to [`query`](Self::query); the trace is
    /// `None` only when the `trace` cargo feature is compiled out. Recorded
    /// in the session history like any other query.
    ///
    /// [`QueryTrace`]: crate::trace::QueryTrace
    pub fn explain(&mut self, query: &InsightQuery) -> Result<crate::trace::Explained> {
        let core = self.core();
        let (results, trace) = core.run_query_traced_strategy(
            query,
            core.mode(),
            core.parallel(),
            self.candidates,
            true,
        )?;
        self.session.record_query(query, results.len());
        Ok(crate::trace::Explained { results, trace })
    }

    /// The shared request-tracing registry — recent [`QueryTrace`]s, the
    /// slow-query log, and their runtime switches. Survives republishes
    /// like the telemetry registry.
    ///
    /// [`QueryTrace`]: crate::trace::QueryTrace
    pub fn tracer(&self) -> &crate::trace::Tracer {
        self.core().tracer()
    }

    /// Re-executes every query recorded in the current session's history
    /// (e.g. one restored from a colleague's saved session) and returns the
    /// per-query results. The replay itself is appended to the history.
    pub fn replay_session(&mut self) -> Result<Vec<Vec<InsightInstance>>> {
        let queries: Vec<InsightQuery> = self.session.queries().into_iter().cloned().collect();
        queries.iter().map(|q| self.query(q)).collect()
    }

    /// Builds all carousels (one per class), re-ranked toward the focus set.
    /// Assembled in parallel (one task per class) when parallelism is on.
    pub fn carousels(&self, per_class: usize) -> Result<Vec<Carousel>> {
        let core = self.core();
        core.carousels_strategy(
            &self.session,
            &CarouselConfig {
                per_class,
                weights: self.weights,
                focus_overfetch: self.focus_overfetch,
                parallel: core.parallel(),
            },
            core.mode(),
            self.candidates,
        )
    }

    /// Focuses an insight, steering future recommendations toward its
    /// neighborhood.
    pub fn focus(&mut self, instance: InsightInstance) {
        self.session.focus(instance);
    }

    /// Removes a focused insight.
    pub fn unfocus(&mut self, attrs: &foresight_insight::AttrTuple) -> bool {
        self.session.unfocus(attrs)
    }

    /// Profiles the dataset: per-column summaries plus the strongest
    /// instance of every registered class. A sharded source in approximate
    /// mode is profiled entirely from the merged catalog (moments, KLL
    /// quantiles, heavy hitters, entropy, HLL cardinality) — no shard
    /// concatenation.
    pub fn profile(&self) -> Result<crate::profile::DatasetProfile> {
        self.core().profile()
    }

    /// Persists the full engine state — session *and* sketch catalog,
    /// under [`STATE_FORMAT_VERSION`] — so a later process can resume
    /// exploration without re-running the preprocessing phase.
    pub fn save_state(&self, writer: impl std::io::Write) -> Result<()> {
        let state = PersistedState {
            version: STATE_FORMAT_VERSION,
            session: self.session.clone(),
            catalog: self.core().catalog().cloned(),
        };
        serde_json::to_writer(writer, &state)?;
        Ok(())
    }

    /// Restores state saved with [`Foresight::save_state`]. When the saved
    /// state includes a catalog, the engine switches to approximate mode.
    ///
    /// # Errors
    /// [`EngineError::StateVersion`] when the payload declares a format
    /// version newer than [`STATE_FORMAT_VERSION`] (version 0, the legacy
    /// unversioned format, still loads).
    pub fn load_state(&mut self, reader: impl std::io::Read) -> Result<()> {
        let state: PersistedState = serde_json::from_reader(reader)?;
        if state.version > STATE_FORMAT_VERSION {
            return Err(EngineError::StateVersion {
                found: state.version,
                supported: STATE_FORMAT_VERSION,
            });
        }
        self.session = state.session;
        self.edit(|b| {
            b.restore_catalog(state.catalog);
            Ok(())
        })
    }

    /// Builds a self-contained HTML report: one carousel section per class
    /// (top `per_class` charts each) plus every available class overview —
    /// the library-shaped version of the paper's demo UI. Charts read raw
    /// rows, so a sketch-only source cannot be reported on.
    pub fn report(&self, per_class: usize) -> Result<foresight_viz::Report> {
        let source = self.core().source();
        let mut report =
            foresight_viz::Report::new(format!("Foresight insights — {}", source.name()));
        report.intro = format!(
            "{} rows × {} columns; per-class carousels ranked strongest first",
            source.n_rows(),
            source.n_cols()
        );
        for carousel in self.carousels(per_class)? {
            let mut charts = Vec::new();
            for inst in &carousel.instances {
                if let Some(spec) = self.chart(inst)? {
                    charts.push(spec);
                }
            }
            if !charts.is_empty() {
                report.section(
                    carousel.class_name,
                    format!("ranked by {}", carousel.metric),
                    charts,
                );
            }
        }
        if let Some(fig2) = self.overview("linear-relationship")? {
            report.section("Correlation overview", "all pairwise ρ", vec![fig2]);
        }
        Ok(report)
    }

    /// The chart for one insight instance (reads raw rows — errors on a
    /// sketch-only source).
    pub fn chart(&self, instance: &InsightInstance) -> Result<Option<ChartSpec>> {
        self.core().chart(instance)
    }

    /// The class-level overview chart (§2.1's third level of exploration;
    /// Figure 2 for the linear-relationship class). Reads raw rows.
    pub fn overview(&self, class_id: &str) -> Result<Option<ChartSpec>> {
        self.core().overview(class_id)
    }
}

/// The serialized form of a [`Foresight`] engine's resumable state.
#[derive(Serialize, Deserialize)]
struct PersistedState {
    /// Format version; absent in legacy payloads (deserializes to 0).
    #[serde(default)]
    version: u32,
    session: Session,
    catalog: Option<SketchCatalog>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::{datasets, TableBuilder};
    use foresight_insight::AttrTuple;

    fn oecd() -> Foresight {
        Foresight::new(datasets::oecd())
    }

    /// One synthetic table plus the same rows cut into `bounds`-delimited
    /// shards.
    fn whole_and_shards(n: usize, bounds: &[usize]) -> (Table, Vec<Table>) {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        let z: Vec<f64> = (0..n).map(|i| ((i * 37) % n) as f64).collect();
        let cats: Vec<&str> = (0..n)
            .map(|i| if i % 4 == 0 { "gold" } else { "base" })
            .collect();
        let build = |name: &str, lo: usize, hi: usize| {
            TableBuilder::new(name)
                .numeric("x", x[lo..hi].to_vec())
                .numeric("y", y[lo..hi].to_vec())
                .numeric("z", z[lo..hi].to_vec())
                .categorical("c", cats[lo..hi].iter().copied())
                .build()
                .unwrap()
        };
        let whole = build("whole", 0, n);
        let mut edges = vec![0];
        edges.extend_from_slice(bounds);
        edges.push(n);
        let shards = edges
            .windows(2)
            .map(|w| build("shard", w[0], w[1]))
            .collect();
        (whole, shards)
    }

    #[test]
    fn query_and_history() {
        let mut fs = oecd();
        let out = fs
            .query(&InsightQuery::class("linear-relationship").top_k(3))
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(fs.session().history.len(), 1);
    }

    #[test]
    fn preprocess_switches_modes() {
        let mut fs = oecd();
        assert_eq!(fs.mode(), Mode::Exact);
        assert!(matches!(
            fs.set_mode(Mode::Approximate),
            Err(EngineError::NoCatalog)
        ));
        fs.preprocess(&CatalogConfig::default()).unwrap();
        assert_eq!(fs.mode(), Mode::Approximate);
        fs.set_mode(Mode::Exact).unwrap();
        fs.set_mode(Mode::Approximate).unwrap();
    }

    #[test]
    fn charts_and_overviews() {
        let mut fs = oecd();
        let top = fs
            .query(&InsightQuery::class("linear-relationship").top_k(1))
            .unwrap();
        let chart = fs.chart(&top[0]).unwrap().unwrap();
        assert_eq!(chart.kind_name(), "scatter");
        let fig2 = fs.overview("linear-relationship").unwrap().unwrap();
        assert_eq!(fig2.kind_name(), "heatmap");
        assert!(fs.overview("nope").is_err());
    }

    #[test]
    fn focus_round_trip() {
        let mut fs = oecd();
        let top = fs
            .query(&InsightQuery::class("linear-relationship").top_k(1))
            .unwrap();
        fs.focus(top[0].clone());
        assert_eq!(fs.session().focus.len(), 1);
        let attrs = top[0].attrs;
        assert!(fs.unfocus(&attrs));
        assert!(fs.session().focus.is_empty());
    }

    #[test]
    fn full_state_round_trip_resumes_approximate_mode() {
        let mut fs = oecd();
        fs.preprocess(&CatalogConfig::default()).unwrap();
        let q = InsightQuery::class("linear-relationship").top_k(3);
        let before = fs.query(&q).unwrap();
        let mut buf = Vec::new();
        fs.save_state(&mut buf).unwrap();

        let mut resumed = oecd();
        assert_eq!(resumed.mode(), Mode::Exact);
        resumed.load_state(buf.as_slice()).unwrap();
        assert_eq!(resumed.mode(), Mode::Approximate);
        // the restored catalog reproduces the sketch-backed results exactly
        let after = resumed.query(&q).unwrap();
        assert_eq!(before, after);
        // and the history carried over (1 query before save + 1 after)
        assert_eq!(resumed.session().queries().len(), 2);
    }

    #[test]
    fn save_state_is_versioned_and_future_versions_are_rejected() {
        let fs = oecd();
        let mut buf = Vec::new();
        fs.save_state(&mut buf).unwrap();
        let saved = String::from_utf8(buf).unwrap();
        let tag = format!("\"version\":{STATE_FORMAT_VERSION}");
        assert!(saved.contains(&tag), "state is tagged with the version");

        // a payload from a newer build fails with the typed error…
        let newer = saved.replacen(
            &tag,
            &format!("\"version\":{}", STATE_FORMAT_VERSION + 7),
            1,
        );
        let mut fs2 = oecd();
        let err = fs2.load_state(newer.as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            EngineError::StateVersion { found, supported }
                if found == STATE_FORMAT_VERSION + 7 && supported == STATE_FORMAT_VERSION
        ));

        // …while a legacy unversioned payload (version 0) still loads
        let legacy = saved.replacen(&format!("{tag},"), "", 1);
        assert!(!legacy.contains("version"));
        fs2.load_state(legacy.as_bytes()).unwrap();
    }

    #[test]
    fn indexed_queries_match_executor_queries() {
        let mut fs = oecd();
        let q = InsightQuery::class("linear-relationship").top_k(4);
        let unindexed = fs.query(&q).unwrap();
        fs.build_index().unwrap();
        assert!(fs.insight_index().is_some());
        let indexed = fs.query(&q).unwrap();
        assert_eq!(unindexed, indexed);
        // registering a class invalidates the index
        fs.preprocess(&CatalogConfig::default()).unwrap();
        assert!(fs.insight_index().is_none());
    }

    #[test]
    fn session_survives_save_restore() {
        let mut fs = oecd();
        fs.focus(InsightInstance {
            class_id: "skew".into(),
            attrs: AttrTuple::One(5),
            score: 1.2,
            metric: "|skewness|".into(),
            detail: "test".into(),
        });
        let json = fs.session().to_json().unwrap();
        let mut fs2 = oecd();
        fs2.restore_session(Session::from_json(&json).unwrap());
        assert_eq!(fs.session(), fs2.session());
    }

    #[test]
    fn facade_mutation_republishes_while_handles_keep_old_snapshot() {
        let mut fs = oecd();
        let q = InsightQuery::class("linear-relationship").top_k(2);
        let mut handle = fs.handle();
        let before_core = Arc::clone(fs.core());
        let baseline = handle.query(&q).unwrap();

        fs.preprocess(&CatalogConfig::default()).unwrap();
        assert!(
            !Arc::ptr_eq(fs.core(), &before_core),
            "mutation republished a new snapshot"
        );
        // the old handle still answers from its exact-mode snapshot
        assert_eq!(handle.query(&q).unwrap(), baseline);
        assert_eq!(handle.mode(), Mode::Exact);
        // a fresh handle sees the new approximate-mode snapshot
        assert_eq!(fs.handle().mode(), Mode::Approximate);
    }

    #[test]
    fn sharded_source_answers_from_merged_catalog() {
        let (whole, shards) = whole_and_shards(600, &[150, 400]);
        let config = CatalogConfig {
            hyperplane_k: Some(1024),
            ..Default::default()
        };

        let mut mono = Foresight::new(whole);
        mono.preprocess(&config).unwrap();
        let mut sharded = Foresight::from_source(TableSource::sharded(shards).unwrap());
        sharded.preprocess(&config).unwrap();
        assert_eq!(sharded.source().shard_count(), 3);

        let q = InsightQuery::class("linear-relationship").top_k(2);
        let a = mono.query(&q).unwrap();
        let b = sharded.query(&q).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].attrs, b[0].attrs, "top pair must agree");
        // sketch-only details make no claims raw rows would be needed for
        assert!(b[0].detail.contains("sketch"));

        // carousels and profiles run without ever concatenating the shards
        let carousels = sharded.carousels(2).unwrap();
        assert!(!carousels.is_empty());
        let profile = sharded.profile().unwrap();
        assert_eq!(profile.rows, 600);
        assert!(sharded.source().as_materialized().is_none());
    }

    #[test]
    fn sharded_exact_mode_materializes_lazily() {
        let (whole, shards) = whole_and_shards(300, &[100]);
        let mut sharded = Foresight::from_source(TableSource::sharded(shards).unwrap());
        // exact mode concatenates on first query and matches the whole table
        let q = InsightQuery::class("linear-relationship").top_k(1);
        let exact = sharded.query(&q).unwrap();
        let mut mono = Foresight::new(whole);
        assert_eq!(exact, mono.query(&q).unwrap());
    }

    #[test]
    fn sketch_only_source_rejects_exact_paths() {
        let (_, shards) = whole_and_shards(400, &[200]);
        let mut source = TableSource::sharded(shards).unwrap();
        let mut fs = Foresight::from_source(source.clone());
        fs.preprocess(&CatalogConfig::default()).unwrap();

        // drop the raw rows *after* sketching: queries keep working…
        source.drop_raw();
        let mut lean = Foresight::from_source(source);
        let mut buf = Vec::new();
        fs.save_state(&mut buf).unwrap();
        lean.load_state(buf.as_slice()).unwrap();
        let out = lean.query(&InsightQuery::class("skew").top_k(1)).unwrap();
        assert_eq!(out.len(), 1);

        // …but every raw-row path is a typed error, not a panic
        assert!(matches!(
            lean.set_mode(Mode::Exact),
            Err(EngineError::ExactUnavailable(_))
        ));
        assert!(lean.try_table().is_err());
        assert!(lean.chart(&out[0]).is_err());
        assert!(matches!(
            lean.preprocess(&CatalogConfig::default()),
            Err(EngineError::ExactUnavailable(_))
        ));
    }

    #[test]
    fn append_shard_merges_into_catalog_and_bumps_epoch() {
        let (_, mut shards) = whole_and_shards(800, &[300, 600]);
        let last = shards.pop().expect("three shards");
        let mut fs = Foresight::from_source(TableSource::sharded(shards).unwrap());
        fs.preprocess(&CatalogConfig {
            hyperplane_k: Some(1024),
            ..Default::default()
        })
        .unwrap();
        assert_eq!(fs.catalog().unwrap().rows(), 600);

        let q = InsightQuery::class("linear-relationship").top_k(1);
        fs.query(&q).unwrap();
        let entries_before = fs.cache_stats().entries;
        assert!(entries_before > 0);

        let offset = fs.append_shard(last).unwrap();
        assert_eq!(offset, 600);
        assert_eq!(fs.source().n_rows(), 800);
        // the epoch bump retired every pre-append score
        assert_eq!(fs.cache_stats().entries, 0);
        // the merged catalog now covers every row — identical to sketching
        // the full partition set in one preprocess
        assert_eq!(fs.catalog().unwrap().rows(), 800);
        let mut all_at_once = Foresight::from_source(
            TableSource::sharded(whole_and_shards(800, &[300, 600]).1).unwrap(),
        );
        all_at_once
            .preprocess(&CatalogConfig {
                hyperplane_k: Some(1024),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(fs.query(&q).unwrap(), all_at_once.query(&q).unwrap());
    }

    #[test]
    fn append_shard_promotes_materialized_sources() {
        let (whole, shards) = whole_and_shards(200, &[120]);
        let mut fs = Foresight::new(shards[0].clone());
        assert!(fs.source().as_materialized().is_some());
        let offset = fs.append_shard(shards[1].clone()).unwrap();
        assert_eq!(offset, 120);
        assert!(fs.source().as_materialized().is_none());
        assert_eq!(fs.source().n_rows(), 200);
        // exact mode still works — the shards concatenate lazily
        let q = InsightQuery::class("linear-relationship").top_k(1);
        assert_eq!(
            fs.query(&q).unwrap(),
            Foresight::new(whole).query(&q).unwrap()
        );
    }
}
