//! The top-level [`Foresight`] facade: load a table, preprocess sketches,
//! run insight queries, focus insights, assemble carousels, save sessions.

use crate::cache::{CacheStats, ScoreCache};
use crate::error::{EngineError, Result};
use crate::executor::{Executor, Mode};
use crate::neighborhood::NeighborhoodWeights;
use crate::query::InsightQuery;
use crate::recommend::{carousels_with, Carousel, CarouselConfig, DEFAULT_FOCUS_OVERFETCH};
use crate::session::Session;
use foresight_data::Table;
use foresight_insight::{InsightClass, InsightInstance, InsightRegistry};
use foresight_sketch::{CatalogConfig, SketchCatalog};
use foresight_viz::ChartSpec;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The Foresight system over one dataset.
///
/// # Examples
/// ```
/// use foresight_engine::Foresight;
/// use foresight_engine::query::InsightQuery;
/// use foresight_data::datasets;
///
/// let mut fs = Foresight::new(datasets::oecd());
/// let top = fs.query(&InsightQuery::class("linear-relationship").top_k(1)).unwrap();
/// assert_eq!(top.len(), 1);
/// ```
pub struct Foresight {
    table: Table,
    registry: InsightRegistry,
    catalog: Option<SketchCatalog>,
    index: Option<crate::index::InsightIndex>,
    session: Session,
    cache: ScoreCache,
    mode: Mode,
    parallel: bool,
    focus_overfetch: usize,
    weights: NeighborhoodWeights,
}

impl Foresight {
    /// Opens a table with the 12 default insight classes, in exact mode.
    ///
    /// Parallel execution (batch scoring, multi-threaded candidate scoring,
    /// parallel carousel assembly) is on by default when the process has
    /// more than one rayon thread available.
    pub fn new(table: Table) -> Self {
        let session = Session::new(table.name());
        Self {
            table,
            registry: InsightRegistry::default(),
            catalog: None,
            index: None,
            session,
            cache: ScoreCache::new(),
            mode: Mode::Exact,
            parallel: rayon::current_num_threads() > 1,
            focus_overfetch: DEFAULT_FOCUS_OVERFETCH,
            weights: NeighborhoodWeights::default(),
        }
    }

    /// Opens a table with a custom class roster.
    pub fn with_registry(table: Table, registry: InsightRegistry) -> Self {
        Self {
            registry,
            ..Self::new(table)
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The class registry (read-only).
    pub fn registry(&self) -> &InsightRegistry {
        &self.registry
    }

    /// Plugs in an insight class (§2.2 extensibility). Invalidates any
    /// built insight index (rebuild with [`Foresight::build_index`]) and
    /// the score cache (a re-registered id may score differently).
    pub fn register_class(&mut self, class: Arc<dyn InsightClass>) {
        self.registry.register(class);
        self.index = None;
        self.cache.clear();
    }

    /// Materializes the insight index — the "indexes" of the paper's
    /// preprocessing triad. Basic top-k queries are then answered from a
    /// precomputed sorted list without re-scoring candidates. Uses sketch
    /// scores when [`Foresight::preprocess`] ran first.
    pub fn build_index(&mut self) -> &crate::index::InsightIndex {
        let catalog = if self.mode == Mode::Approximate {
            self.catalog.as_ref()
        } else {
            None
        };
        self.index = Some(crate::index::InsightIndex::build(
            &self.table,
            &self.registry,
            catalog,
        ));
        self.index.as_ref().expect("just built")
    }

    /// The insight index, if one was built.
    pub fn insight_index(&self) -> Option<&crate::index::InsightIndex> {
        self.index.as_ref()
    }

    /// The current session state.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Replaces the session (e.g. one restored via [`Session::load`]).
    pub fn restore_session(&mut self, session: Session) {
        self.session = session;
    }

    /// Sets the neighborhood re-ranking weights.
    pub fn set_weights(&mut self, weights: NeighborhoodWeights) {
        self.weights = weights;
    }

    /// Enables rayon-parallel query execution and carousel assembly (on by
    /// default when more than one thread is available).
    pub fn set_parallel(&mut self, on: bool) {
        self.parallel = on;
    }

    /// Sets the focus over-fetch factor used by carousel assembly (see
    /// [`DEFAULT_FOCUS_OVERFETCH`]); values below 1 are treated as 1.
    pub fn set_focus_overfetch(&mut self, factor: usize) {
        self.focus_overfetch = factor.max(1);
    }

    /// Hit/miss/size counters of the cross-query score cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached score. Normally unnecessary — the engine clears
    /// the cache itself whenever scores could change.
    pub fn clear_score_cache(&mut self) {
        self.cache.clear();
    }

    /// Runs the paper's preprocessing phase: builds the sketch catalog and
    /// switches the engine to approximate (interactive) mode. Any built
    /// insight index is invalidated (its scores were computed in the old
    /// mode); call [`Foresight::build_index`] again to re-materialize it.
    pub fn preprocess(&mut self, config: &CatalogConfig) -> &SketchCatalog {
        self.catalog = Some(SketchCatalog::build(&self.table, config));
        self.mode = Mode::Approximate;
        self.index = None;
        // approximate-mode entries would reflect the old catalog
        self.cache.clear();
        self.catalog.as_ref().expect("just built")
    }

    /// Switches between exact and approximate scoring.
    ///
    /// # Errors
    /// Approximate mode requires a prior [`Foresight::preprocess`].
    pub fn set_mode(&mut self, mode: Mode) -> Result<()> {
        if mode == Mode::Approximate && self.catalog.is_none() {
            return Err(EngineError::NoCatalog);
        }
        self.mode = mode;
        Ok(())
    }

    /// The current mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The sketch catalog, if preprocessing ran.
    pub fn catalog(&self) -> Option<&SketchCatalog> {
        self.catalog.as_ref()
    }

    fn executor(&self) -> Executor<'_> {
        let ex = match (self.mode, self.catalog.as_ref()) {
            (Mode::Approximate, Some(catalog)) => {
                Executor::approximate(&self.table, &self.registry, catalog)
            }
            _ => Executor::exact(&self.table, &self.registry),
        };
        ex.parallel(self.parallel).with_cache(&self.cache)
    }

    /// Runs an insight query and records it in the session history.
    ///
    /// Served from the insight index when one is built and covers the
    /// query; otherwise scored by the executor (sketch or exact mode).
    pub fn query(&mut self, query: &InsightQuery) -> Result<Vec<InsightInstance>> {
        let out = match self
            .index
            .as_ref()
            .and_then(|i| i.query(&self.table, &self.registry, query))
        {
            Some(out) => out,
            None => self.executor().execute(query)?,
        };
        self.session.record_query(query, out.len());
        Ok(out)
    }

    /// Re-executes every query recorded in the current session's history
    /// (e.g. one restored from a colleague's saved session) and returns the
    /// per-query results. The replay itself is appended to the history.
    pub fn replay_session(&mut self) -> Result<Vec<Vec<InsightInstance>>> {
        let queries: Vec<InsightQuery> = self.session.queries().into_iter().cloned().collect();
        queries.iter().map(|q| self.query(q)).collect()
    }

    /// Builds all carousels (one per class), re-ranked toward the focus set.
    /// Assembled in parallel (one task per class) when parallelism is on.
    pub fn carousels(&self, per_class: usize) -> Result<Vec<Carousel>> {
        carousels_with(
            &self.executor(),
            &self.registry,
            &self.session,
            &CarouselConfig {
                per_class,
                weights: self.weights,
                focus_overfetch: self.focus_overfetch,
                parallel: self.parallel,
            },
        )
    }

    /// Focuses an insight, steering future recommendations toward its
    /// neighborhood.
    pub fn focus(&mut self, instance: InsightInstance) {
        self.session.focus(instance);
    }

    /// Removes a focused insight.
    pub fn unfocus(&mut self, attrs: &foresight_insight::AttrTuple) -> bool {
        self.session.unfocus(attrs)
    }

    /// Profiles the dataset: per-column summaries plus the strongest
    /// instance of every registered class.
    pub fn profile(&self) -> Result<crate::profile::DatasetProfile> {
        crate::profile::profile(&self.table, &self.registry)
    }

    /// Persists the full engine state — session *and* sketch catalog — so a
    /// later process can resume exploration without re-running the
    /// preprocessing phase.
    pub fn save_state(&self, writer: impl std::io::Write) -> Result<()> {
        let state = PersistedState {
            session: self.session.clone(),
            catalog: self.catalog.clone(),
        };
        serde_json::to_writer(writer, &state)?;
        Ok(())
    }

    /// Restores state saved with [`Foresight::save_state`]. When the saved
    /// state includes a catalog, the engine switches to approximate mode.
    pub fn load_state(&mut self, reader: impl std::io::Read) -> Result<()> {
        let state: PersistedState = serde_json::from_reader(reader)?;
        self.session = state.session;
        if state.catalog.is_some() {
            self.catalog = state.catalog;
            self.mode = Mode::Approximate;
        }
        self.index = None;
        // the restored catalog is not the one cached scores came from
        self.cache.clear();
        Ok(())
    }

    /// Builds a self-contained HTML report: one carousel section per class
    /// (top `per_class` charts each) plus every available class overview —
    /// the library-shaped version of the paper's demo UI.
    pub fn report(&self, per_class: usize) -> Result<foresight_viz::Report> {
        let mut report =
            foresight_viz::Report::new(format!("Foresight insights — {}", self.table.name()));
        report.intro = format!(
            "{} rows × {} columns; per-class carousels ranked strongest first",
            self.table.n_rows(),
            self.table.n_cols()
        );
        for carousel in self.carousels(per_class)? {
            let mut charts = Vec::new();
            for inst in &carousel.instances {
                if let Some(spec) = self.chart(inst)? {
                    charts.push(spec);
                }
            }
            if !charts.is_empty() {
                report.section(
                    carousel.class_name,
                    format!("ranked by {}", carousel.metric),
                    charts,
                );
            }
        }
        if let Some(fig2) = self.overview("linear-relationship")? {
            report.section("Correlation overview", "all pairwise ρ", vec![fig2]);
        }
        Ok(report)
    }

    /// The chart for one insight instance.
    pub fn chart(&self, instance: &InsightInstance) -> Result<Option<ChartSpec>> {
        let class = self
            .registry
            .get(&instance.class_id)
            .ok_or_else(|| EngineError::UnknownClass(instance.class_id.clone()))?;
        Ok(class.chart(&self.table, &instance.attrs))
    }

    /// The class-level overview chart (§2.1's third level of exploration;
    /// Figure 2 for the linear-relationship class).
    pub fn overview(&self, class_id: &str) -> Result<Option<ChartSpec>> {
        let class = self
            .registry
            .get(class_id)
            .ok_or_else(|| EngineError::UnknownClass(class_id.to_owned()))?;
        Ok(class.overview(&self.table))
    }
}

/// The serialized form of a [`Foresight`] engine's resumable state.
#[derive(Serialize, Deserialize)]
struct PersistedState {
    session: Session,
    catalog: Option<SketchCatalog>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::datasets;
    use foresight_insight::AttrTuple;

    fn oecd() -> Foresight {
        Foresight::new(datasets::oecd())
    }

    #[test]
    fn query_and_history() {
        let mut fs = oecd();
        let out = fs
            .query(&InsightQuery::class("linear-relationship").top_k(3))
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(fs.session().history.len(), 1);
    }

    #[test]
    fn preprocess_switches_modes() {
        let mut fs = oecd();
        assert_eq!(fs.mode(), Mode::Exact);
        assert!(matches!(
            fs.set_mode(Mode::Approximate),
            Err(EngineError::NoCatalog)
        ));
        fs.preprocess(&CatalogConfig::default());
        assert_eq!(fs.mode(), Mode::Approximate);
        fs.set_mode(Mode::Exact).unwrap();
        fs.set_mode(Mode::Approximate).unwrap();
    }

    #[test]
    fn charts_and_overviews() {
        let mut fs = oecd();
        let top = fs
            .query(&InsightQuery::class("linear-relationship").top_k(1))
            .unwrap();
        let chart = fs.chart(&top[0]).unwrap().unwrap();
        assert_eq!(chart.kind_name(), "scatter");
        let fig2 = fs.overview("linear-relationship").unwrap().unwrap();
        assert_eq!(fig2.kind_name(), "heatmap");
        assert!(fs.overview("nope").is_err());
    }

    #[test]
    fn focus_round_trip() {
        let mut fs = oecd();
        let top = fs
            .query(&InsightQuery::class("linear-relationship").top_k(1))
            .unwrap();
        fs.focus(top[0].clone());
        assert_eq!(fs.session().focus.len(), 1);
        let attrs = top[0].attrs;
        assert!(fs.unfocus(&attrs));
        assert!(fs.session().focus.is_empty());
    }

    #[test]
    fn full_state_round_trip_resumes_approximate_mode() {
        let mut fs = oecd();
        fs.preprocess(&CatalogConfig::default());
        let q = InsightQuery::class("linear-relationship").top_k(3);
        let before = fs.query(&q).unwrap();
        let mut buf = Vec::new();
        fs.save_state(&mut buf).unwrap();

        let mut resumed = oecd();
        assert_eq!(resumed.mode(), Mode::Exact);
        resumed.load_state(buf.as_slice()).unwrap();
        assert_eq!(resumed.mode(), Mode::Approximate);
        // the restored catalog reproduces the sketch-backed results exactly
        let after = resumed.query(&q).unwrap();
        assert_eq!(before, after);
        // and the history carried over (1 query before save + 1 after)
        assert_eq!(resumed.session().queries().len(), 2);
    }

    #[test]
    fn indexed_queries_match_executor_queries() {
        let mut fs = oecd();
        let q = InsightQuery::class("linear-relationship").top_k(4);
        let unindexed = fs.query(&q).unwrap();
        fs.build_index();
        assert!(fs.insight_index().is_some());
        let indexed = fs.query(&q).unwrap();
        assert_eq!(unindexed, indexed);
        // registering a class invalidates the index
        fs.preprocess(&CatalogConfig::default());
        assert!(fs.insight_index().is_none());
    }

    #[test]
    fn session_survives_save_restore() {
        let mut fs = oecd();
        fs.focus(InsightInstance {
            class_id: "skew".into(),
            attrs: AttrTuple::One(5),
            score: 1.2,
            metric: "|skewness|".into(),
            detail: "test".into(),
        });
        let json = fs.session().to_json().unwrap();
        let mut fs2 = oecd();
        fs2.restore_session(Session::from_json(&json).unwrap());
        assert_eq!(fs.session(), fs2.session());
    }
}
