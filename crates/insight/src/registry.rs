//! The insight-class registry — Foresight ships 12 classes (Figure 1's
//! caption: "3 of the 12 insight classes supported by Foresight") and lets
//! a data scientist plug in more (§2.2).

use crate::class::InsightClass;
use crate::classes::*;
use std::sync::Arc;

/// An ordered, extensible collection of insight classes.
#[derive(Clone)]
pub struct InsightRegistry {
    classes: Vec<Arc<dyn InsightClass>>,
}

impl std::fmt::Debug for InsightRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.classes.iter().map(|c| c.id()))
            .finish()
    }
}

impl Default for InsightRegistry {
    /// The 12 built-in classes, in carousel display order.
    fn default() -> Self {
        Self {
            classes: vec![
                Arc::new(LinearRelationship),
                Arc::new(MonotonicRelationship),
                Arc::new(Outliers::default()),
                Arc::new(HeavyTails),
                Arc::new(Skew),
                Arc::new(Dispersion),
                Arc::new(Multimodality),
                Arc::new(Normality),
                Arc::new(HeteroFreq::default()),
                Arc::new(Concentration),
                Arc::new(StatisticalDependence),
                Arc::new(Segmentation::default()),
            ],
        }
    }
}

impl InsightRegistry {
    /// An empty registry (build your own roster).
    pub fn empty() -> Self {
        Self {
            classes: Vec::new(),
        }
    }

    /// Registers a class (appended to the display order). Replaces any
    /// existing class with the same id.
    pub fn register(&mut self, class: Arc<dyn InsightClass>) {
        self.classes.retain(|c| c.id() != class.id());
        self.classes.push(class);
    }

    /// Removes a class by id; returns whether it was present.
    pub fn unregister(&mut self, id: &str) -> bool {
        let before = self.classes.len();
        self.classes.retain(|c| c.id() != id);
        self.classes.len() != before
    }

    /// All classes, in display order.
    pub fn classes(&self) -> &[Arc<dyn InsightClass>] {
        &self.classes
    }

    /// Looks up a class by id.
    pub fn get(&self, id: &str) -> Option<&Arc<dyn InsightClass>> {
        self.classes.iter().find(|c| c.id() == id)
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` when no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Freezes the roster into a shared, immutable handle.
    ///
    /// [`InsightClass`] requires `Send + Sync`, so a frozen registry can be
    /// read from any number of threads at once — this is the form the
    /// engine's shared core holds. Editing after a freeze means building a
    /// new roster (clone, mutate, freeze again), which is exactly the
    /// snapshot-republish discipline the engine's writer path follows.
    pub fn freeze(self) -> Arc<Self> {
        Arc::new(self)
    }
}

// A frozen registry is shared across every session thread.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<InsightRegistry>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AttrTuple;
    use foresight_data::Table;
    use foresight_viz::ChartSpec;

    #[test]
    fn twelve_built_in_classes() {
        let r = InsightRegistry::default();
        assert_eq!(r.len(), 12);
        // ids are unique
        let mut ids: Vec<&str> = r.classes().iter().map(|c| c.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
        assert!(r.get("linear-relationship").is_some());
        assert!(r.get("segmentation").is_some());
        assert!(r.get("nope").is_none());
    }

    struct Custom;

    impl InsightClass for Custom {
        fn id(&self) -> &'static str {
            "custom-thirteenth"
        }
        fn name(&self) -> &'static str {
            "Custom"
        }
        fn description(&self) -> &'static str {
            "test plug-in"
        }
        fn metric(&self) -> &'static str {
            "m"
        }
        fn candidates(&self, _table: &Table) -> Vec<AttrTuple> {
            vec![]
        }
        fn score(&self, _table: &Table, _attrs: &AttrTuple) -> Option<f64> {
            None
        }
        fn chart(&self, _table: &Table, _attrs: &AttrTuple) -> Option<ChartSpec> {
            None
        }
    }

    #[test]
    fn plug_in_registration() {
        let mut r = InsightRegistry::default();
        r.register(Arc::new(Custom));
        assert_eq!(r.len(), 13);
        assert!(r.get("custom-thirteenth").is_some());
        // re-registering replaces, not duplicates
        r.register(Arc::new(Custom));
        assert_eq!(r.len(), 13);
        assert!(r.unregister("custom-thirteenth"));
        assert_eq!(r.len(), 12);
        assert!(!r.unregister("custom-thirteenth"));
    }

    #[test]
    fn freeze_shares_across_threads() {
        let frozen = InsightRegistry::default().freeze();
        let other = Arc::clone(&frozen);
        let id = std::thread::spawn(move || other.classes()[0].id().to_owned())
            .join()
            .unwrap();
        assert_eq!(id, frozen.classes()[0].id());
    }

    #[test]
    fn empty_registry() {
        let r = InsightRegistry::empty();
        assert!(r.is_empty());
    }
}
