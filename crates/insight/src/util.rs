//! Shared helpers for building charts from table columns.

use crate::class::column_name;
use foresight_data::Table;
use foresight_stats::histogram::{BinRule, Histogram};
use foresight_viz::{ChartKind, ChartSpec, HistogramSpec, ScatterSpec};

/// Builds a histogram chart of one numeric column.
pub fn histogram_chart(table: &Table, idx: usize, title: String) -> Option<ChartSpec> {
    let col = table.numeric(idx).ok()?;
    let h = Histogram::build(col.values(), BinRule::FreedmanDiaconis)?;
    Some(ChartSpec {
        title,
        x_label: column_name(table, idx).to_owned(),
        y_label: "count".to_owned(),
        kind: ChartKind::Histogram(HistogramSpec {
            min: h.min(),
            max: h.max(),
            counts: h.counts().to_vec(),
        }),
    })
}

/// Deterministically samples up to `cap` pairwise-complete `(x, y)` points
/// (every ⌈n/cap⌉-th complete row), preserving the joint distribution shape
/// for scatter previews.
pub fn sampled_points(table: &Table, xi: usize, yi: usize, cap: usize) -> Vec<[f64; 2]> {
    let Ok(x) = table.numeric(xi) else {
        return Vec::new();
    };
    let Ok(y) = table.numeric(yi) else {
        return Vec::new();
    };
    let complete: Vec<[f64; 2]> = x
        .values()
        .iter()
        .zip(y.values())
        .filter(|(a, b)| !a.is_nan() && !b.is_nan())
        .map(|(&a, &b)| [a, b])
        .collect();
    if complete.len() <= cap {
        return complete;
    }
    let step = complete.len().div_ceil(cap);
    complete.into_iter().step_by(step).collect()
}

/// Builds a scatter chart of two numeric columns with an optional fit line.
pub fn scatter_chart(
    table: &Table,
    xi: usize,
    yi: usize,
    title: String,
    with_fit: bool,
) -> Option<ChartSpec> {
    let points = sampled_points(table, xi, yi, 500);
    let fit = if with_fit {
        foresight_stats::regression::linear_fit(
            table.numeric(xi).ok()?.values(),
            table.numeric(yi).ok()?.values(),
        )
        .map(|f| (f.slope, f.intercept))
    } else {
        None
    };
    Some(ChartSpec {
        title,
        x_label: column_name(table, xi).to_owned(),
        y_label: column_name(table, yi).to_owned(),
        kind: ChartKind::Scatter(ScatterSpec { points, fit }),
    })
}

/// Deterministically downsamples the present values of a column to at most
/// `cap` points (every ⌈n/cap⌉-th), preserving distribution shape — used to
/// bound KDE/dip costs on large columns.
pub fn downsample_present(values: &[f64], cap: usize) -> Vec<f64> {
    let present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if present.len() <= cap {
        return present;
    }
    let step = present.len().div_ceil(cap);
    present.into_iter().step_by(step).collect()
}

/// Compact human formatting for metric values: trims trailing zeros and
/// switches to scientific notation outside [1e-3, 1e6).
pub fn fmt_compact(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a != 0.0 && !(1e-3..1e6).contains(&a) {
        format!("{v:.2e}")
    } else {
        let s = format!("{v:.3}");
        s.trim_end_matches('0').trim_end_matches('.').to_owned()
    }
}

/// All unordered pairs of the given indices, as `(a, b)` with `a < b`.
pub fn pairs(indices: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(indices.len() * indices.len().saturating_sub(1) / 2);
    for (i, &a) in indices.iter().enumerate() {
        for &b in &indices[i + 1..] {
            out.push((a.min(b), a.max(b)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::TableBuilder;

    fn table() -> Table {
        TableBuilder::new("t")
            .numeric("x", (0..100).map(|i| i as f64).collect())
            .numeric("y", (0..100).map(|i| (2 * i) as f64).collect())
            .build()
            .unwrap()
    }

    #[test]
    fn histogram_chart_builds() {
        let c = histogram_chart(&table(), 0, "h".into()).unwrap();
        assert_eq!(c.kind_name(), "histogram");
        assert_eq!(c.x_label, "x");
    }

    #[test]
    fn sampling_caps_and_keeps_pairs() {
        let pts = sampled_points(&table(), 0, 1, 10);
        assert!(pts.len() <= 10 && pts.len() >= 5);
        for [x, y] in pts {
            assert_eq!(y, 2.0 * x);
        }
    }

    #[test]
    fn scatter_chart_with_fit() {
        let c = scatter_chart(&table(), 0, 1, "s".into(), true).unwrap();
        match c.kind {
            ChartKind::Scatter(s) => {
                let (slope, _) = s.fit.unwrap();
                assert!((slope - 2.0).abs() < 1e-9);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn downsampling_caps_and_preserves_shape() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let d = downsample_present(&values, 500);
        assert!(d.len() <= 500 && d.len() >= 250);
        assert!(d.windows(2).all(|w| w[0] < w[1]));
        let with_nan = vec![1.0, f64::NAN, 3.0];
        assert_eq!(downsample_present(&with_nan, 10), vec![1.0, 3.0]);
    }

    #[test]
    fn compact_formatting() {
        assert_eq!(fmt_compact(211_570_959.9), "2.12e8");
        assert_eq!(fmt_compact(3.5), "3.5");
        assert_eq!(fmt_compact(0.25), "0.25");
        assert_eq!(fmt_compact(0.0), "0");
        assert_eq!(fmt_compact(0.0001), "1.00e-4");
    }

    #[test]
    fn pairs_enumeration() {
        assert_eq!(pairs(&[1, 2, 3]), vec![(1, 2), (1, 3), (2, 3)]);
        assert!(pairs(&[7]).is_empty());
    }
}
