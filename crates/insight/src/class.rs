//! The [`InsightClass`] trait — the paper's extensibility point (§2.2:
//! "Foresight is designed to be an extensible system where a data scientist
//! can 'plug in' new insight classes along with their corresponding ranking
//! measures and visualizations").

use crate::types::AttrTuple;
use foresight_data::Table;
use foresight_sketch::SketchCatalog;
use foresight_viz::ChartSpec;

/// How a class's candidate space relates to pairwise column similarity —
/// what an index over per-column signatures can prune for it.
///
/// Pruned generation is *advisory*: the engine only substitutes an indexed
/// candidate list when the class declares its scan shape here, and the
/// class's own [`InsightClass::candidates`] stays the ground truth that
/// recall is measured against (and the fallback when no index exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidatePruning {
    /// Candidate space is not pairwise-similarity shaped; always use the
    /// class's own scan.
    None,
    /// Candidates are exactly the unordered pairs of *numeric* columns
    /// ranked by a |ρ|-like metric (linear, monotonic): an LSH index over
    /// column signatures covers the whole space.
    NumericPairs,
    /// Candidates are unordered pairs over *all* columns (dependence): the
    /// index covers the numeric×numeric subset; pairs touching a
    /// non-numeric column must still be enumerated exhaustively.
    AllPairs,
}

/// One insight class: applicability rule, ranking metric(s), visualization,
/// and optional class-level overview visualization.
pub trait InsightClass: Send + Sync {
    /// Stable machine id, kebab-case (e.g. `"linear-relationship"`).
    fn id(&self) -> &'static str;

    /// Display name (e.g. `"Linear Relationship"`).
    fn name(&self) -> &'static str;

    /// One-sentence description of what a strong instance means.
    fn description(&self) -> &'static str;

    /// The primary ranking metric's name.
    fn metric(&self) -> &'static str;

    /// Names of alternative ranking metrics (may be empty). The §4.1
    /// scenario switches a correlation carousel from Pearson to Spearman.
    fn alternative_metrics(&self) -> Vec<&'static str> {
        Vec::new()
    }

    /// All attribute tuples this class applies to in `table` — the insight
    /// class as a set of candidate feature tuples (§2.1).
    fn candidates(&self, table: &Table) -> Vec<AttrTuple>;

    /// Declares the shape of [`InsightClass::candidates`] for index-assisted
    /// pruning. Defaults to [`CandidatePruning::None`] (no pruning); classes
    /// whose candidate space is the pairwise column grid override this so
    /// the engine's LSH candidate source can stand in for the O(d²) scan.
    fn pruning(&self) -> CandidatePruning {
        CandidatePruning::None
    }

    /// Exact score of `attrs` under the primary metric. Higher is stronger.
    /// `None` when the tuple is degenerate (constant column, too few rows).
    fn score(&self, table: &Table, attrs: &AttrTuple) -> Option<f64>;

    /// Exact scores for a whole batch of candidate tuples under the primary
    /// metric, in input order.
    ///
    /// The default delegates to [`InsightClass::score`] per tuple. Classes
    /// whose metric shares per-column work across tuples (centering for
    /// Pearson, ranking for Spearman) override this to materialize that work
    /// once per column instead of once per pair — the executor's batch path
    /// uses it for every tuple a query has to score.
    ///
    /// **Contract:** `score_batch(t, attrs)[i]` must be *bit-identical* to
    /// `score(t, &attrs[i])` for every tuple; the engine's property tests
    /// assert this across all registered classes.
    fn score_batch(&self, table: &Table, attrs: &[AttrTuple]) -> Vec<Option<f64>> {
        attrs.iter().map(|a| self.score(table, a)).collect()
    }

    /// Score under a named alternative metric; defaults to the primary.
    fn score_metric(&self, table: &Table, attrs: &AttrTuple, metric: &str) -> Option<f64> {
        let _ = metric;
        self.score(table, attrs)
    }

    /// Approximate score from the sketch catalog — used by the interactive
    /// query path. `None` means this class has no sketch path; the engine
    /// then falls back to the exact score.
    fn score_sketch(
        &self,
        catalog: &SketchCatalog,
        table: &Table,
        attrs: &AttrTuple,
    ) -> Option<f64> {
        let _ = (catalog, table, attrs);
        None
    }

    /// Human-readable strength sentence for a scored tuple.
    fn describe(&self, table: &Table, attrs: &AttrTuple, score: f64) -> String {
        let names: Vec<&str> = attrs
            .indices()
            .iter()
            .map(|&i| {
                table
                    .schema()
                    .field(i)
                    .map(|f| f.name.as_str())
                    .unwrap_or("?")
            })
            .collect();
        format!(
            "{} of {}: {} = {:.3}",
            self.name(),
            names.join(" × "),
            self.metric(),
            score
        )
    }

    /// The visualization of one instance (paper: each insight has one or
    /// more associated data visualizations).
    fn chart(&self, table: &Table, attrs: &AttrTuple) -> Option<ChartSpec>;

    /// The optional class-level overview visualization (paper §2.1; the
    /// linear-relationship class's overview is the Figure 2 heatmap).
    fn overview(&self, table: &Table) -> Option<ChartSpec> {
        let _ = table;
        None
    }
}

/// Helper: the column name at `idx` (empty string if out of range).
pub fn column_name(table: &Table, idx: usize) -> &str {
    table
        .schema()
        .field(idx)
        .map(|f| f.name.as_str())
        .unwrap_or("")
}
