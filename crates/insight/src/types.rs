//! Core vocabulary of the insight framework (paper §2.1).

use serde::{Deserialize, Serialize};

/// The attribute tuple an insight is about — the paper considers marginal
/// distributions of one, two, or three attributes. Values are column
/// indices into the table's schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttrTuple {
    /// A univariate insight.
    One(usize),
    /// A bivariate insight (ordered so `a < b` for unordered pairs).
    Two(usize, usize),
    /// A trivariate insight, e.g. (x, y) segmented by z.
    Three(usize, usize, usize),
}

impl AttrTuple {
    /// The attribute indices, in declaration order.
    pub fn indices(&self) -> Vec<usize> {
        match *self {
            AttrTuple::One(a) => vec![a],
            AttrTuple::Two(a, b) => vec![a, b],
            AttrTuple::Three(a, b, c) => vec![a, b, c],
        }
    }

    /// Number of attributes (1–3).
    pub fn arity(&self) -> usize {
        match self {
            AttrTuple::One(_) => 1,
            AttrTuple::Two(..) => 2,
            AttrTuple::Three(..) => 3,
        }
    }

    /// Does the tuple mention attribute `idx`?
    pub fn contains(&self, idx: usize) -> bool {
        self.indices().contains(&idx)
    }

    /// Number of attributes shared with another tuple (the attribute-overlap
    /// component of insight similarity, §2.1).
    pub fn overlap(&self, other: &AttrTuple) -> usize {
        self.indices()
            .iter()
            .filter(|i| other.contains(**i))
            .count()
    }
}

/// One scored member of an insight class: "attribute tuple T manifests
/// insight I with strength s".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsightInstance {
    /// Id of the insight class that produced this instance.
    pub class_id: String,
    /// The attribute tuple.
    pub attrs: AttrTuple,
    /// Ranking score — higher is always stronger, within one class.
    pub score: f64,
    /// Name of the metric that produced `score`.
    pub metric: String,
    /// Human-readable sentence (shown as the chart caption).
    pub detail: String,
}

impl InsightInstance {
    /// Similarity to another instance, in [0, 1]: the mean of attribute
    /// overlap (Jaccard) and metric-score proximity. Instances of different
    /// classes compare on attribute overlap only. This is the neighborhood
    /// structure the exploration engine uses (paper §2.1: "two insights can
    /// be considered similar if their metric scores are similar or if the
    /// sets of fixed attributes are similar").
    pub fn similarity(&self, other: &InsightInstance) -> f64 {
        let union = {
            let mut all = self.attrs.indices();
            all.extend(other.attrs.indices());
            all.sort_unstable();
            all.dedup();
            all.len()
        };
        let jaccard = self.attrs.overlap(&other.attrs) as f64 / union.max(1) as f64;
        if self.class_id == other.class_id {
            let score_prox = 1.0 - (self.score - other.score).abs().min(1.0);
            (jaccard + score_prox) / 2.0
        } else {
            jaccard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_indices() {
        assert_eq!(AttrTuple::One(3).arity(), 1);
        assert_eq!(AttrTuple::Two(1, 2).indices(), vec![1, 2]);
        assert_eq!(AttrTuple::Three(0, 1, 2).arity(), 3);
        assert!(AttrTuple::Two(1, 2).contains(2));
        assert!(!AttrTuple::Two(1, 2).contains(3));
    }

    #[test]
    fn overlap_counts_shared() {
        let a = AttrTuple::Two(1, 2);
        assert_eq!(a.overlap(&AttrTuple::Two(2, 3)), 1);
        assert_eq!(a.overlap(&AttrTuple::Two(1, 2)), 2);
        assert_eq!(a.overlap(&AttrTuple::One(9)), 0);
    }

    fn inst(class: &str, attrs: AttrTuple, score: f64) -> InsightInstance {
        InsightInstance {
            class_id: class.into(),
            attrs,
            score,
            metric: "m".into(),
            detail: String::new(),
        }
    }

    #[test]
    fn similarity_rewards_shared_attrs_and_close_scores() {
        let a = inst("c", AttrTuple::Two(1, 2), 0.9);
        let same_attr_close = inst("c", AttrTuple::Two(1, 2), 0.85);
        let same_attr_far = inst("c", AttrTuple::Two(1, 2), 0.1);
        let diff_attr = inst("c", AttrTuple::Two(7, 8), 0.9);
        assert!(a.similarity(&same_attr_close) > a.similarity(&same_attr_far));
        assert!(a.similarity(&same_attr_close) > a.similarity(&diff_attr));
        // symmetric
        assert_eq!(a.similarity(&diff_attr), diff_attr.similarity(&a));
    }

    #[test]
    fn cross_class_similarity_uses_attrs_only() {
        let a = inst("c1", AttrTuple::One(5), 0.9);
        let b = inst("c2", AttrTuple::Two(5, 6), 0.1);
        let c = inst("c2", AttrTuple::Two(6, 7), 0.1);
        assert!(a.similarity(&b) > a.similarity(&c));
        assert_eq!(a.similarity(&c), 0.0);
    }
}
