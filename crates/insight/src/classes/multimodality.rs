//! The **Multimodality** insight — named in the paper's "additional
//! insights". Ranked by Hartigan's dip statistic and visualized with a
//! kernel density curve (modes are much easier to see in a smooth density
//! than in a histogram).

use crate::class::{column_name, InsightClass};
use crate::classes::dispersion::overview_bar;
use crate::types::AttrTuple;
use crate::util::histogram_chart;
use foresight_data::Table;
use foresight_sketch::SketchCatalog;
use foresight_stats::kde::Kde;
use foresight_stats::multimodal::{bimodality_coefficient, dip_statistic};
use foresight_viz::{ChartKind, ChartSpec, DensitySpec};

/// The multimodality insight class.
#[derive(Debug, Default, Clone, Copy)]
pub struct Multimodality;

impl InsightClass for Multimodality {
    fn id(&self) -> &'static str {
        "multimodality"
    }

    fn name(&self) -> &'static str {
        "Multimodality"
    }

    fn description(&self) -> &'static str {
        "The distribution has two or more distinct modes"
    }

    fn metric(&self) -> &'static str {
        "dip statistic"
    }

    fn alternative_metrics(&self) -> Vec<&'static str> {
        vec!["bimodality-coefficient"]
    }

    fn candidates(&self, table: &Table) -> Vec<AttrTuple> {
        table
            .numeric_indices()
            .into_iter()
            .map(AttrTuple::One)
            .collect()
    }

    fn score(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        dip_statistic(table.numeric(*idx).ok()?.values())
    }

    fn score_metric(&self, table: &Table, attrs: &AttrTuple, metric: &str) -> Option<f64> {
        if metric != "bimodality-coefficient" {
            return self.score(table, attrs);
        }
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let bc = bimodality_coefficient(table.numeric(*idx).ok()?.values());
        bc.is_finite().then_some(bc)
    }

    fn score_sketch(
        &self,
        catalog: &SketchCatalog,
        _table: &Table,
        attrs: &AttrTuple,
    ) -> Option<f64> {
        // The dip has no dedicated sketch; approximate it on the uniform
        // reservoir sample, which preserves distribution shape.
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        dip_statistic(catalog.numeric(*idx)?.reservoir.sample())
    }

    fn describe(&self, table: &Table, attrs: &AttrTuple, score: f64) -> String {
        let AttrTuple::One(idx) = attrs else {
            return String::new();
        };
        let name = column_name(table, *idx);
        let modes = table
            .numeric(*idx)
            .ok()
            .map(|col| crate::util::downsample_present(col.values(), 2_000))
            .and_then(|sample| Kde::fit(&sample))
            .map(|kde| kde.count_modes(256, 0.1));
        match modes {
            Some(m) if m >= 2 => {
                format!("{name} has {m} distinct modes (dip = {score:.3})")
            }
            _ => format!("{name}: dip statistic = {score:.3}"),
        }
    }

    fn chart(&self, table: &Table, attrs: &AttrTuple) -> Option<ChartSpec> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let dip = self.score(table, attrs)?;
        let values = crate::util::downsample_present(table.numeric(*idx).ok()?.values(), 2_000);
        let values = values.as_slice();
        let title = format!("{}: dip = {:.3}", column_name(table, *idx), dip);
        match Kde::fit(values) {
            Some(kde) => {
                let modes = kde.count_modes(256, 0.1);
                let (xs, densities) = kde.grid(128);
                Some(ChartSpec {
                    title: format!("{title}, {modes} modes"),
                    x_label: column_name(table, *idx).to_owned(),
                    y_label: "density".to_owned(),
                    kind: ChartKind::Density(DensitySpec { xs, densities }),
                })
            }
            None => histogram_chart(table, *idx, title),
        }
    }

    fn overview(&self, table: &Table) -> Option<ChartSpec> {
        overview_bar(self, table, "Multimodality by attribute (dip)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::datasets::dist::normal_quantile;
    use foresight_data::TableBuilder;

    fn table() -> Table {
        let uni: Vec<f64> = (1..400)
            .map(|i| normal_quantile(i as f64 / 400.0))
            .collect();
        let mut bi: Vec<f64> = (1..200)
            .map(|i| normal_quantile(i as f64 / 200.0))
            .collect();
        bi.extend((1..200).map(|i| normal_quantile(i as f64 / 200.0) + 7.0));
        bi.push(0.0); // equalize length to 399
        TableBuilder::new("t")
            .numeric("unimodal", uni)
            .numeric("bimodal", bi)
            .build()
            .unwrap()
    }

    #[test]
    fn bimodal_outranks_unimodal() {
        let m = Multimodality;
        let t = table();
        let bi = m.score(&t, &AttrTuple::One(1)).unwrap();
        let uni = m.score(&t, &AttrTuple::One(0)).unwrap();
        assert!(bi > 3.0 * uni, "bi {bi} uni {uni}");
    }

    #[test]
    fn chart_reports_mode_count() {
        let m = Multimodality;
        let c = m.chart(&table(), &AttrTuple::One(1)).unwrap();
        assert_eq!(c.kind_name(), "density");
        assert!(c.title.contains("2 modes"), "{}", c.title);
    }

    #[test]
    fn bimodality_coefficient_metric() {
        let m = Multimodality;
        let t = table();
        let bc = m
            .score_metric(&t, &AttrTuple::One(1), "bimodality-coefficient")
            .unwrap();
        assert!(bc > 5.0 / 9.0, "bc {bc}");
    }

    #[test]
    fn constant_column_falls_back() {
        let t = TableBuilder::new("t")
            .numeric("c", vec![2.0; 50])
            .build()
            .unwrap();
        let m = Multimodality;
        assert_eq!(m.score(&t, &AttrTuple::One(0)), Some(0.0));
        // KDE fails on zero spread; chart falls back to a histogram
        let c = m.chart(&t, &AttrTuple::One(0)).unwrap();
        assert_eq!(c.kind_name(), "histogram");
    }
}
