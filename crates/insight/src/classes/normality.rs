//! The **Normality** insight — the distribution-shape observation the §4.1
//! scenario relies on ("Time Devoted To Leisure has a Normal distribution").
//! Ranked by the Jarque–Bera p-value (most normal first) and visualized with
//! a histogram overlaid conceptually against the fitted normal (the chart
//! shows the KDE).

use crate::class::{column_name, InsightClass};
use crate::classes::dispersion::overview_bar;
use crate::types::AttrTuple;
use crate::util::histogram_chart;
use foresight_data::Table;
use foresight_sketch::SketchCatalog;
use foresight_stats::kde::Kde;
use foresight_stats::normality::{chi2_2_sf, jarque_bera_from_moments, normality_score};
use foresight_viz::{ChartKind, ChartSpec, DensitySpec};

/// The normality insight class.
#[derive(Debug, Default, Clone, Copy)]
pub struct Normality;

impl InsightClass for Normality {
    fn id(&self) -> &'static str {
        "normality"
    }

    fn name(&self) -> &'static str {
        "Normality"
    }

    fn description(&self) -> &'static str {
        "The distribution is consistent with a Normal distribution"
    }

    fn metric(&self) -> &'static str {
        "Jarque-Bera p-value"
    }

    fn candidates(&self, table: &Table) -> Vec<AttrTuple> {
        table
            .numeric_indices()
            .into_iter()
            .map(AttrTuple::One)
            .collect()
    }

    fn score(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let p = normality_score(table.numeric(*idx).ok()?.values());
        p.is_finite().then_some(p)
    }

    fn score_sketch(
        &self,
        catalog: &SketchCatalog,
        _table: &Table,
        attrs: &AttrTuple,
    ) -> Option<f64> {
        // JB is a pure function of the (exactly maintained) moments sketch.
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let jb = jarque_bera_from_moments(&catalog.numeric(*idx)?.moments);
        jb.is_finite().then(|| chi2_2_sf(jb))
    }

    fn describe(&self, table: &Table, attrs: &AttrTuple, score: f64) -> String {
        let name = attrs
            .indices()
            .first()
            .map(|&i| column_name(table, i))
            .unwrap_or("");
        if score > 0.05 {
            format!("{name} is consistent with a Normal distribution (JB p = {score:.2})")
        } else {
            format!("{name} departs from normality (JB p = {score:.1e})")
        }
    }

    fn chart(&self, table: &Table, attrs: &AttrTuple) -> Option<ChartSpec> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let p = self.score(table, attrs)?;
        let values = crate::util::downsample_present(table.numeric(*idx).ok()?.values(), 2_000);
        let values = values.as_slice();
        let title = format!("{}: JB p = {:.2}", column_name(table, *idx), p);
        match Kde::fit(values) {
            Some(kde) => {
                let (xs, densities) = kde.grid(128);
                Some(ChartSpec {
                    title,
                    x_label: column_name(table, *idx).to_owned(),
                    y_label: "density".to_owned(),
                    kind: ChartKind::Density(DensitySpec { xs, densities }),
                })
            }
            None => histogram_chart(table, *idx, title),
        }
    }

    fn overview(&self, table: &Table) -> Option<ChartSpec> {
        overview_bar(self, table, "Normality by attribute (JB p-value)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::datasets::dist::normal_quantile;
    use foresight_data::TableBuilder;

    fn table() -> Table {
        let normal: Vec<f64> = (1..600)
            .map(|i| normal_quantile(i as f64 / 600.0))
            .collect();
        let skewed: Vec<f64> = normal.iter().map(|z| z.exp()).collect();
        TableBuilder::new("t")
            .numeric("normal", normal)
            .numeric("skewed", skewed)
            .build()
            .unwrap()
    }

    #[test]
    fn normal_outranks_skewed() {
        let n = Normality;
        let t = table();
        let good = n.score(&t, &AttrTuple::One(0)).unwrap();
        let bad = n.score(&t, &AttrTuple::One(1)).unwrap();
        assert!(good > 0.5, "normal p {good}");
        assert!(bad < 1e-4, "skewed p {bad}");
    }

    #[test]
    fn describe_states_conclusion() {
        let n = Normality;
        let t = table();
        let good = n.score(&t, &AttrTuple::One(0)).unwrap();
        assert!(n
            .describe(&t, &AttrTuple::One(0), good)
            .contains("consistent with a Normal"));
        let bad = n.score(&t, &AttrTuple::One(1)).unwrap();
        assert!(n.describe(&t, &AttrTuple::One(1), bad).contains("departs"));
    }

    #[test]
    fn sketch_path_equals_exact() {
        // JB from the moments sketch is exact by construction
        let t = table();
        let cat =
            foresight_sketch::SketchCatalog::build(&t, &foresight_sketch::CatalogConfig::default());
        let n = Normality;
        let exact = n.score(&t, &AttrTuple::One(0)).unwrap();
        let approx = n.score_sketch(&cat, &t, &AttrTuple::One(0)).unwrap();
        assert!((exact - approx).abs() < 1e-12);
    }
}
